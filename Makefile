# Development targets. `make verify` is the repo's tier-1 check: build, vet,
# the full test suite, and the race detector over the packages whose hot path
# shares pooled state across goroutines (the dense scoring kernel under
# concurrent index swaps).

GO ?= go

.PHONY: verify build vet test race slo-race quality-race bench kernel-bench index-bench batch-bench slo-bench quality-bench http-bench fuzz-replay

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/serving ./internal/obs/... ./internal/metrics ./internal/cluster ./internal/kvstore ./client
	$(GO) test -run 'TestHTTPAllocBudgets' ./internal/serving

# The SLO engine and its feeders under the race detector: rolling-window
# accumulators, burn-rate trackers, tail retention, health snapshots.
slo-race:
	$(GO) test -race ./internal/obs/... ./internal/metrics ./internal/serving ./internal/cluster

# The online quality loop under the race detector: exposure recording,
# click attribution, windowed gauges, drift detection, and the click-model
# harness that drives them.
quality-race:
	$(GO) test -race ./internal/obs/... ./internal/serving ./internal/loadgen ./internal/cluster ./client

# All microbenchmarks, quick.
bench: batch-bench
	$(GO) test -bench=. -benchmem .

# Hot-path scoring kernel vs the retained map-based reference.
kernel-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRecommend|BenchmarkNeighborSessions' -benchmem ./internal/core

# Index load cost: v1 streaming decode vs v2 mmap zero-copy (EXPERIMENTS E13).
index-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkLoadFile|BenchmarkBuild' -benchmem ./internal/index ./internal/core

# Batched scoring (B=1..64, remap on/off) and the result-cache hot path,
# committed as the versioned BENCH_batch.json artifact.
batch-bench: slo-bench
	$(GO) test -run '^$$' -bench 'BenchmarkBatchRecommend|BenchmarkRecommendCache|BenchmarkRecommendNoCache' -benchmem \
		./internal/core ./internal/serving | $(GO) run ./tools/benchjson > BENCH_batch.json
	@echo wrote BENCH_batch.json

# Burn-rate-vs-RPS trajectory from the load harness, committed as the
# versioned BENCH_slo.json artifact (the BENCHJSON line carries the rows).
slo-bench:
	$(GO) run ./cmd/serenade-loadtest -quick -slo-sweep -slo-latency-p99 5ms \
		-rates 200,400 -per-rate 2s | $(GO) run ./tools/benchjson > BENCH_slo.json
	@echo wrote BENCH_slo.json

# Online-vs-offline quality loop from the click-model harness plus the
# quality record-path microbenchmarks, committed as the versioned
# BENCH_quality.json artifact (the BENCHJSON line carries the MRR table).
quality-bench:
	{ $(GO) run ./cmd/serenade-loadtest -quick -seed 99 -click-model \
		-click-seed 17 -click-rounds 12 -click-skew 'b=0.7'; \
	  $(GO) test -run '^$$' -bench 'BenchmarkRecordExposure$$|BenchmarkAttribute' -benchmem ./internal/obs/quality; } \
		| $(GO) run ./tools/benchjson > BENCH_quality.json
	@echo wrote BENCH_quality.json

# Full-stack HTTP edge benchmarks (recommend POST/GET, cache hit, idempotent
# replay, track) with allocation counts, committed as the versioned
# BENCH_http.json artifact — the zero-allocation edge's regression baseline.
http-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHTTP' -benchmem \
		./internal/serving | $(GO) run ./tools/benchjson > BENCH_http.json
	@echo wrote BENCH_http.json

# Replay the fuzz seed corpora without fuzzing: the index loader's on-disk
# formats, the fastjson scanner differential, and the serving codec's
# schema-level differential against encoding/json.
fuzz-replay:
	$(GO) test -run 'Fuzz' ./internal/index ./internal/fastjson ./internal/serving
