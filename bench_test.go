package serenade_test

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates its experiment via internal/experiments (Quick sizes, so that
// `go test -bench=. -benchmem` completes in minutes) and reports the
// headline quantity as custom metrics. Full-size runs are available through
// the cmd/ binaries; measured-vs-paper numbers live in EXPERIMENTS.md.

import (
	"io"
	"testing"
	"time"

	"serenade/internal/experiments"
)

var benchOpts = experiments.Options{Quick: true, Seed: 1}

// BenchmarkTable1DatasetStats regenerates the Table 1 dataset statistics.
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintTable1(io.Discard, rows)
			b.ReportMetric(float64(len(rows)), "datasets")
		}
	}
}

// BenchmarkSec511PredictionQuality regenerates the §5.1.1 model comparison
// (VMIS-kNN vs GRU4Rec, NARM, STAMP, legacy CF) and reports VMIS-kNN's
// MRR@20 and its margin over the best neural baseline.
func BenchmarkSec511PredictionQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Quality(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var vmis, bestNeural float64
			for _, r := range rows {
				switch r.Model {
				case "VMIS-kNN":
					vmis = r.Report.MRR
				case "GRU4Rec", "NARM", "STAMP":
					if r.Report.MRR > bestNeural {
						bestNeural = r.Report.MRR
					}
				}
			}
			b.ReportMetric(vmis, "vmis-mrr@20")
			b.ReportMetric(bestNeural, "best-neural-mrr@20")
		}
	}
}

// BenchmarkFig2HyperparameterGrid regenerates the Figure 2 sensitivity
// sweep over (m, k) and reports the best MRR@20 found.
func BenchmarkFig2HyperparameterGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Grid("retailrocket-sim", benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best := 0.0
			for _, c := range cells {
				if c.MRR > best {
					best = c.MRR
				}
			}
			b.ReportMetric(best, "best-mrr@20")
			b.ReportMetric(float64(len(cells)), "grid-cells")
		}
	}
}

// BenchmarkFig3aImplementations regenerates the Figure 3(a) top comparison
// of implementation design points and reports VMIS-kNN's speedup over the
// two-phase VS-Scan baseline at the p90.
func BenchmarkFig3aImplementations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ImplComparison(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var scanP90, vmisP90 time.Duration
			for _, r := range rows {
				switch r.Impl {
				case "VS-Scan":
					scanP90 = r.P90
				case "VMIS-kNN":
					vmisP90 = r.P90
				}
			}
			if vmisP90 > 0 {
				b.ReportMetric(float64(scanP90)/float64(vmisP90), "speedup-vs-scan-p90")
			}
			b.ReportMetric(float64(vmisP90.Microseconds()), "vmis-p90-us")
		}
	}
}

// BenchmarkFig3aMicrobenchVariants regenerates the Figure 3(a) bottom
// microbenchmark (VS-kNN vs VMIS-kNN-no-opt vs VMIS-kNN) and reports the
// speedups at the largest m.
func BenchmarkFig3aMicrobenchVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Micro(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var vs, noopt, opt time.Duration
			maxM := 0
			for _, r := range rows {
				if r.M > maxM {
					maxM = r.M
				}
			}
			for _, r := range rows {
				if r.M != maxM {
					continue
				}
				switch r.Variant {
				case "VS-kNN":
					vs = r.Median
				case "VMIS-kNN-no-opt":
					noopt = r.Median
				case "VMIS-kNN":
					opt = r.Median
				}
			}
			if opt > 0 {
				b.ReportMetric(float64(vs)/float64(opt), "speedup-vs-vsknn")
				b.ReportMetric(float64(noopt)/float64(opt), "speedup-vs-noopt")
			}
		}
	}
}

// BenchmarkFig3bLoadTest regenerates a short Figure 3(b) load test against
// two stateful replicas and reports the p90 latency and achieved rate.
func BenchmarkFig3bLoadTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadTest(experiments.LoadTestConfig{
			RPS:      1000,
			Duration: 3 * time.Second,
			Replicas: 2,
		}, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.AchievedRPS, "req/s")
			b.ReportMetric(float64(res.Total.Percentile(90).Microseconds()), "p90-us")
			b.ReportMetric(float64(res.Total.Percentile(99.5).Microseconds()), "p99.5-us")
		}
	}
}

// BenchmarkFig3cABTest regenerates the §5.2.3 / Figure 3(c) A/B simulation
// and reports the slot-engagement lifts of both Serenade variants.
func BenchmarkFig3cABTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ABTest(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range res.Comparisons {
				switch c.Arm {
				case "serenade-hist":
					b.ReportMetric(c.Slot1LiftPct, "hist-lift-%")
				case "serenade-recent":
					b.ReportMetric(c.Slot1LiftPct, "recent-lift-%")
				}
			}
			b.ReportMetric(float64(res.Latency.Total().Percentile(90).Microseconds()), "p90-us")
		}
	}
}

// BenchmarkSec7Extensions regenerates the future-work ablations: compressed
// index footprint/latency and incremental maintenance throughput.
func BenchmarkSec7Extensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Extensions(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.RawBytes)/float64(res.CompressedBytes), "compression-ratio")
			b.ReportMetric(res.AppendsPerSec, "appends/s")
		}
	}
}

// BenchmarkSec42KVStoreLatency regenerates the §4.2 session-store
// microbenchmark (paper: RocksDB p99 read 5µs, write 18µs).
func BenchmarkSec42KVStoreLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.KVBench(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.ReadP99.Nanoseconds())/1e3, "read-p99-us")
			b.ReportMetric(float64(res.WriteP99.Nanoseconds())/1e3, "write-p99-us")
		}
	}
}

// BenchmarkSec523CoreScaling regenerates the core-usage-vs-rate observation
// of §5.2.3/§7 and reports the cores consumed at the highest rate.
func BenchmarkSec523CoreScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CoreScaling([]int{200, 400}, 2*time.Second, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Cores, "cores-at-max-rate")
			b.ReportMetric(last.AchievedRPS, "req/s")
		}
	}
}
