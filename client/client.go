// Package client is the Go client for the Serenade recommendation REST API
// (see internal/serving for the server side). The shop frontend — or any
// service embedding recommendations — calls Recommend on every product
// detail page view; the client handles timeouts, retries on transient
// failures, and the session affinity header used by the sticky-session
// proxy.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/core"
	"serenade/internal/fastjson"
	"serenade/internal/serving"
	"serenade/internal/sessions"
)

// clientBuf is the pooled per-call scratch: the request body encodes into
// enc, the response body reads into body, and dec is the reusable JSON
// scanner. A buffer is held for the whole of do — retries re-read the same
// encoded body — and recycled when the call returns.
type clientBuf struct {
	enc  []byte
	body []byte
	dec  fastjson.Dec
}

var bufPool = sync.Pool{New: func() any {
	return &clientBuf{enc: make([]byte, 0, 256), body: make([]byte, 0, 2048)}
}}

// Options configures a Client.
type Options struct {
	// BaseURL is the server or proxy address, e.g. "http://localhost:8080".
	BaseURL string
	// Timeout bounds each attempt; 0 means 50ms — the paper's SLA is
	// "respond in 50 ms or less", beyond which the frontend drops the slot.
	Timeout time.Duration
	// Retries is the number of additional attempts on transient errors
	// (network failures and 5xx); 0 means 1 retry. Retried POSTs carry the
	// same X-Idempotency-Key, so the server deduplicates a retry whose
	// first attempt actually landed. Set DisableRetries to turn retries
	// off entirely.
	Retries int
	// DisableRetries makes every request single-attempt, overriding
	// Retries. (Retries cannot express this: its zero value means one
	// retry, and changing that would silently alter existing callers.)
	DisableRetries bool
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
}

// Client calls the Serenade API. Safe for concurrent use.
type Client struct {
	base    *url.URL
	http    *http.Client
	retries int
}

// New validates the options and returns a client.
func New(opts Options) (*Client, error) {
	base, err := url.Parse(opts.BaseURL)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", opts.BaseURL)
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 50 * time.Millisecond
	}
	if opts.Retries <= 0 {
		opts.Retries = 1
	}
	if opts.DisableRetries {
		opts.Retries = 0
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	// The per-attempt timeout lives on the client copy so callers' shared
	// transports are not mutated.
	attempt := *hc
	attempt.Timeout = opts.Timeout
	return &Client{base: base, http: &attempt, retries: opts.Retries}, nil
}

// Recommend reports the user's interaction with item in session sessionKey
// and returns the next-item recommendations.
func (c *Client) Recommend(ctx context.Context, sessionKey string, item sessions.ItemID, consent bool) (serving.Response, error) {
	if sessionKey == "" {
		return serving.Response{}, fmt.Errorf("client: session key is required")
	}
	cb := bufPool.Get().(*clientBuf)
	defer bufPool.Put(cb)
	req := serving.Request{SessionKey: sessionKey, Item: item, Consent: consent}
	cb.enc = serving.EncodeRequest(cb.enc[:0], &req)
	var out serving.Response
	// One key per logical click: every retry of this call carries the same
	// key, so a retry whose first attempt actually landed is deduplicated
	// server-side instead of appending the click to the session twice.
	err := c.do(ctx, http.MethodPost, "/v1/recommend", sessionKey, newIdempotencyKey(), cb, cb.enc,
		func(data []byte) error { return serving.DecodeResponse(&cb.dec, data, &out) })
	return out, err
}

// Track reports click/conversion feedback on a recommendation the user was
// shown, referencing the RecommendationID from the Recommend response so the
// server can attribute the event to the exposure. event is "click" or
// "conversion" (empty means click); sessionKey carries the affinity header
// so a sticky proxy routes the event to the replica that served the
// exposure. POSTing feedback is not idempotent-keyed: a duplicated click
// is deduplicated server-side by the per-exposure attribution state.
func (c *Client) Track(ctx context.Context, sessionKey string, recommendationID uint64, item sessions.ItemID, event string) (serving.TrackResponse, error) {
	cb := bufPool.Get().(*clientBuf)
	defer bufPool.Put(cb)
	req := serving.TrackRequest{RecommendationID: recommendationID, Item: item, Event: event}
	cb.enc = serving.EncodeTrackRequest(cb.enc[:0], &req)
	var out serving.TrackResponse
	err := c.do(ctx, http.MethodPost, "/track", sessionKey, "", cb, cb.enc,
		func(data []byte) error { return serving.DecodeTrackResponse(&cb.dec, data, &out) })
	return out, err
}

// Explain asks why item would be recommended to the session.
func (c *Client) Explain(ctx context.Context, sessionKey string, item sessions.ItemID) (core.Explanation, error) {
	var out core.Explanation
	path := "/v1/explain?session_id=" + url.QueryEscape(sessionKey) + "&item_id=" + strconv.FormatUint(uint64(item), 10)
	err := c.do(ctx, http.MethodGet, path, sessionKey, "", nil, nil,
		func(data []byte) error { return json.Unmarshal(data, &out) })
	return out, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (serving.Stats, error) {
	var out serving.Stats
	err := c.do(ctx, http.MethodGet, "/metrics", "", "", nil, nil,
		func(data []byte) error { return json.Unmarshal(data, &out) })
	return out, err
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := c.newRequest(ctx, http.MethodGet, "/healthz", "", "", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Client) newRequest(ctx context.Context, method, path, sessionKey, idemKey string, body []byte) (*http.Request, error) {
	u, err := c.base.Parse(path)
	if err != nil {
		return nil, err
	}
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sessionKey != "" {
		// Affinity header for proxies that cannot see the body.
		req.Header.Set("X-Session-Id", sessionKey)
	}
	if idemKey != "" {
		req.Header.Set(serving.IdempotencyKeyHeader, idemKey)
	}
	return req, nil
}

// apiError is a non-2xx response.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// retryable reports whether the failure is worth another attempt.
func retryable(err error) bool {
	var ae *apiError
	if asAPIError(err, &ae) {
		return ae.Status >= 500
	}
	return true // transport errors
}

func asAPIError(err error, target **apiError) bool {
	ae, ok := err.(*apiError)
	if ok {
		*target = ae
	}
	return ok
}

// do runs one API call with retries. cb, when non-nil, provides the reusable
// response-read buffer (the request body, if any, is the caller's and must
// stay valid across attempts); decode is handed the complete response body.
func (c *Client) do(ctx context.Context, method, path, sessionKey, idemKey string, cb *clientBuf, body []byte, decode func([]byte) error) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 2 * time.Millisecond):
			}
		}
		req, err := c.newRequest(ctx, method, path, sessionKey, idemKey, body)
		if err != nil {
			return err
		}
		// A context cancelled during the previous attempt (not just during
		// the backoff sleep) must stop here, before another transport call.
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
			resp.Body.Close()
			lastErr = &apiError{Status: resp.StatusCode, Message: string(bytes.TrimSpace(msg))}
			if !retryable(lastErr) {
				return lastErr
			}
			continue
		}
		var data []byte
		if cb != nil {
			cb.body, err = readAppend(cb.body[:0], resp.Body)
			data = cb.body
		} else {
			data, err = io.ReadAll(resp.Body)
		}
		resp.Body.Close()
		if err == nil {
			err = decode(data)
		}
		if err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
		return nil
	}
	return lastErr
}

// readAppend reads r to EOF into dst's backing array, growing only when the
// body exceeds the retained capacity.
func readAppend(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// idemSeq breaks ties in the fallback key path; see newIdempotencyKey.
var idemSeq atomic.Uint64

// newIdempotencyKey returns a key unique to one logical request. Random
// keys need no coordination; if the system entropy source fails the key
// falls back to wall-clock nanoseconds plus a process-wide counter, which
// is still unique within this process — the only scope retries come from.
func newIdempotencyKey() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		binary.BigEndian.PutUint64(buf[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(buf[8:], idemSeq.Add(1))
	}
	var dst [32]byte
	hex.Encode(dst[:], buf[:])
	return string(dst[:])
}

// StatusCode extracts the HTTP status from an error returned by this
// package, or 0 when the error was not an API response.
func StatusCode(err error) int {
	var ae *apiError
	if asAPIError(err, &ae) {
		return ae.Status
	}
	return 0
}
