package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/obs/quality"
	"serenade/internal/serving"
	"serenade/internal/synth"
)

func newServing(t *testing.T) *serving.Server {
	t.Helper()
	ds, err := synth.Generate(synth.Small(44))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serving.NewServer(idx, serving.Config{Params: core.Params{M: 100, K: 50}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func startServer(t *testing.T) (*httptest.Server, *serving.Server) {
	t.Helper()
	srv := newServing(t)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func newClient(t *testing.T, base string) *Client {
	t.Helper()
	c, err := New(Options{BaseURL: base, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative"} {
		if _, err := New(Options{BaseURL: bad}); err == nil {
			t.Errorf("base URL %q accepted", bad)
		}
	}
	if _, err := New(Options{BaseURL: "http://localhost:8080"}); err != nil {
		t.Errorf("valid base URL rejected: %v", err)
	}
}

func TestRecommendRoundTrip(t *testing.T) {
	ts, _ := startServer(t)
	c := newClient(t, ts.URL)
	ctx := context.Background()

	resp, err := c.Recommend(ctx, "u1", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) == 0 {
		t.Error("no recommendations over the client")
	}
	if resp.SessionLength != 1 {
		t.Errorf("session length = %d, want 1", resp.SessionLength)
	}
	resp2, err := c.Recommend(ctx, "u1", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.SessionLength != 2 {
		t.Errorf("session did not accumulate: %d", resp2.SessionLength)
	}
}

func TestRecommendRequiresSession(t *testing.T) {
	ts, _ := startServer(t)
	c := newClient(t, ts.URL)
	if _, err := c.Recommend(context.Background(), "", 1, true); err == nil {
		t.Error("empty session key accepted")
	}
}

func TestExplainAndStatsAndHealth(t *testing.T) {
	ts, _ := startServer(t)
	c := newClient(t, ts.URL)
	ctx := context.Background()

	if !c.Healthy(ctx) {
		t.Error("healthy server reported unhealthy")
	}
	resp, err := c.Recommend(ctx, "ex", 0, true)
	if err != nil || len(resp.Items) == 0 {
		t.Fatalf("setup: %v", err)
	}
	ex, err := c.Explain(ctx, "ex", resp.Items[0].Item)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Score <= 0 {
		t.Error("empty explanation over the client")
	}
	// Explain on an unknown session is a 404, surfaced with its status.
	_, err = c.Explain(ctx, "nobody", 1)
	if StatusCode(err) != http.StatusNotFound {
		t.Errorf("status = %d, want 404", StatusCode(err))
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Error("stats show no requests")
	}
}

func TestRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"items":[],"session_length":1}`))
	}))
	defer flaky.Close()

	c, err := New(Options{BaseURL: flaky.URL, Timeout: time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recommend(context.Background(), "u", 1, true); err != nil {
		t.Fatalf("retry did not recover from 502: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()

	c, _ := New(Options{BaseURL: srv.URL, Timeout: time.Second, Retries: 3})
	_, err := c.Recommend(context.Background(), "u", 1, true)
	if StatusCode(err) != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", StatusCode(err))
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (client errors must not retry)", calls.Load())
	}
}

// TestDuplicateClickRetryDeduplicated reproduces the duplicate-click
// failure mode end-to-end: the server appends the click but the response is
// lost on the network, the client times out and retries with the same
// X-Idempotency-Key, and the server must replay the stored response instead
// of counting the click twice.
func TestDuplicateClickRetryDeduplicated(t *testing.T) {
	srv := newServing(t)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt: fully processed server-side, response
			// discarded; stall past the client timeout so it retries.
			srv.Handler().ServeHTTP(httptest.NewRecorder(), r)
			time.Sleep(200 * time.Millisecond)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Timeout: 50 * time.Millisecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Recommend(context.Background(), "dup", 7, true)
	if err != nil {
		t.Fatalf("retry did not recover the lost response: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2 (one lost, one replayed)", got)
	}
	if resp.SessionLength != 1 {
		t.Errorf("session length = %d, want 1: the retry appended the click again", resp.SessionLength)
	}
	if state, ok := srv.SessionState("dup"); !ok || len(state) != 1 {
		t.Errorf("stored session = %v, %v; want exactly the one click", state, ok)
	}
}

func TestDisableRetries(t *testing.T) {
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "transient", http.StatusBadGateway)
	}))
	defer flaky.Close()

	// DisableRetries must win even when Retries asks for more attempts.
	c, err := New(Options{BaseURL: flaky.URL, Timeout: time.Second, Retries: 5, DisableRetries: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Recommend(context.Background(), "u", 1, true)
	if StatusCode(err) != http.StatusBadGateway {
		t.Fatalf("err = %v, want the 502 surfaced", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 with retries disabled", calls.Load())
	}
}

// TestContextCancelledDuringAttempt: a context cancelled while an attempt
// is in flight must stop the retry loop before another transport call.
func TestContextCancelledDuringAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		cancel() // the caller gives up while the request is being served
		http.Error(w, "transient", http.StatusBadGateway)
	}))
	defer srv.Close()

	c, _ := New(Options{BaseURL: srv.URL, Timeout: time.Second, Retries: 3})
	_, err := c.Recommend(ctx, "u", 1, true)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no attempts after cancellation)", calls.Load())
	}
}

func TestTimeoutSurfaces(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	}))
	defer slow.Close()

	c, _ := New(Options{BaseURL: slow.URL, Timeout: 10 * time.Millisecond, Retries: 1})
	if _, err := c.Recommend(context.Background(), "u", 1, true); err == nil {
		t.Error("timeout did not surface")
	}
}

func TestContextCancellation(t *testing.T) {
	ts, _ := startServer(t)
	c := newClient(t, ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Recommend(ctx, "u", 1, true); err == nil {
		t.Error("cancelled context did not surface")
	}
}

func TestStatusCodeHelper(t *testing.T) {
	if StatusCode(nil) != 0 {
		t.Error("nil error should give status 0")
	}
	if StatusCode(context.Canceled) != 0 {
		t.Error("non-API error should give status 0")
	}
}

// TestTrackRoundTrip closes the feedback loop over the wire: Recommend
// returns a recommendation id, Track attributes a click to it, and the
// server's quality counters reflect the attribution.
func TestTrackRoundTrip(t *testing.T) {
	ds, err := synth.Generate(synth.Small(44))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serving.NewServer(idx, serving.Config{
		Params:  core.Params{M: 100, K: 50},
		Quality: &quality.Options{Variant: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := newClient(t, ts.URL)

	resp, err := c.Recommend(context.Background(), "u1", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RecommendationID == 0 || len(resp.Items) == 0 {
		t.Fatalf("recommend response = %+v", resp)
	}
	out, err := c.Track(context.Background(), "u1", resp.RecommendationID, resp.Items[0].Item, "click")
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcome != quality.OutcomeAttributed || out.Rank != 1 {
		t.Fatalf("track = %+v", out)
	}
	// An empty event means click; a second click is a duplicate.
	dup, err := c.Track(context.Background(), "u1", resp.RecommendationID, resp.Items[0].Item, "")
	if err != nil {
		t.Fatal(err)
	}
	if dup.Outcome != quality.OutcomeDuplicate {
		t.Fatalf("duplicate track = %+v", dup)
	}
	snap := srv.Quality().Snapshot()
	var clicks uint64
	for _, ln := range snap.Lines {
		clicks += ln.Cumulative.Clicks
	}
	if clicks != 1 {
		t.Fatalf("server counted %d clicks, want 1", clicks)
	}
}

// TestTrackAgainstDisabledServer: a 404 from a quality-disabled server
// surfaces as an API error, not a retry loop.
func TestTrackAgainstDisabledServer(t *testing.T) {
	ts, _ := startServer(t)
	c := newClient(t, ts.URL)
	_, err := c.Track(context.Background(), "u1", 1, 0, "click")
	if StatusCode(err) != http.StatusNotFound {
		t.Fatalf("err = %v, want 404", err)
	}
}
