// Command serenade-abtest runs the simulated 21-day A/B test of §5.2.3 /
// Figure 3(c): serenade-hist and serenade-recent against the legacy
// item-to-item recommender, reporting engagement lifts with significance
// tests and the per-day latency series.
//
//	serenade-abtest            # full-size simulation
//	serenade-abtest -quick     # small dataset
package main

import (
	"flag"
	"log"
	"os"

	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-abtest: ")

	var (
		quick = flag.Bool("quick", false, "use a small dataset")
		seed  = flag.Int64("seed", 0, "random seed override")
	)
	flag.Parse()

	res, err := experiments.ABTest(experiments.Options{Quick: *quick, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintABTest(os.Stdout, res)
}
