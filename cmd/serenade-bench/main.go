// Command serenade-bench runs the systems microbenchmarks of §5:
//
//	serenade-bench -experiment implementations   # Figure 3(a) top
//	serenade-bench -experiment micro             # Figure 3(a) bottom
//	serenade-bench -experiment kv                # §4.2 session store
//	serenade-bench -experiment extensions        # §7 future-work ablations
//
// Add -quick for shrunk datasets.
package main

import (
	"flag"
	"log"
	"os"

	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-bench: ")

	var (
		experiment = flag.String("experiment", "micro", "experiment: implementations | micro | kv")
		quick      = flag.Bool("quick", false, "shrink datasets")
		seed       = flag.Int64("seed", 0, "random seed override")
	)
	flag.Parse()
	opts := experiments.Options{Quick: *quick, Seed: *seed}

	switch *experiment {
	case "implementations":
		rows, err := experiments.ImplComparison(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintImplComparison(os.Stdout, rows)
	case "micro":
		rows, err := experiments.Micro(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintMicro(os.Stdout, rows)
	case "kv":
		res, err := experiments.KVBench(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintKVBench(os.Stdout, res)
	case "extensions":
		res, err := experiments.Extensions(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintExtensions(os.Stdout, res)
	case "complexity":
		rows, err := experiments.Complexity(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintComplexity(os.Stdout, rows)
	default:
		log.Fatalf("unknown experiment %q (want implementations, micro, kv, extensions or complexity)", *experiment)
	}
}
