// Command serenade-datagen generates synthetic clickstream datasets (the
// stand-ins for the paper's proprietary and public datasets) and prints
// Table 1 statistics.
//
// Usage:
//
//	serenade-datagen -list
//	serenade-datagen -profile ecom-1m-sim -out ecom-1m.csv.gz
//	serenade-datagen -stats                     # regenerate Table 1
//	serenade-datagen -stats -quick              # shrunk sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"serenade"
	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-datagen: ")

	var (
		list    = flag.Bool("list", false, "list available dataset profiles")
		profile = flag.String("profile", "", "dataset profile to generate")
		out     = flag.String("out", "", "output CSV path (.gz for compression)")
		stats   = flag.Bool("stats", false, "print Table 1 statistics for all profiles")
		quick   = flag.Bool("quick", false, "shrink dataset sizes for fast runs")
		seed    = flag.Int64("seed", 0, "override the profile's random seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, name := range serenade.DatasetProfiles() {
			fmt.Println(name)
		}
	case *stats:
		rows, err := experiments.Table1(experiments.Options{Quick: *quick, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable1(os.Stdout, rows)
	case *profile != "":
		cfg, err := serenade.DatasetProfile(*profile)
		if err != nil {
			log.Fatal(err)
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		ds, err := serenade.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			*out = *profile + ".csv.gz"
		}
		if err := serenade.SaveCSV(*out, ds); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n%s\n", *out, serenade.Stats(ds))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
