// Command serenade-eval runs the offline quality experiments:
//
//	serenade-eval -experiment quality          # §5.1.1 model comparison
//	serenade-eval -experiment grid             # Figure 2 hyperparameter sweep
//	serenade-eval -experiment grid -profile rsc15-sim
//
// Add -quick for shrunk datasets.
package main

import (
	"flag"
	"log"
	"os"

	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-eval: ")

	var (
		experiment = flag.String("experiment", "quality", "experiment to run: quality | grid")
		profile    = flag.String("profile", "ecom-1m-sim", "dataset profile for the grid sweep")
		quick      = flag.Bool("quick", false, "shrink datasets and sweeps")
		seed       = flag.Int64("seed", 0, "random seed override")
	)
	flag.Parse()
	opts := experiments.Options{Quick: *quick, Seed: *seed}

	switch *experiment {
	case "quality":
		rows, err := experiments.Quality(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintQuality(os.Stdout, rows)
	case "grid":
		cells, err := experiments.Grid(*profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintGrid(os.Stdout, *profile, cells)
	default:
		log.Fatalf("unknown experiment %q (want quality or grid)", *experiment)
	}
}
