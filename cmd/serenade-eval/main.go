// Command serenade-eval runs the offline quality experiments:
//
//	serenade-eval -experiment quality          # §5.1.1 model comparison
//	serenade-eval -experiment grid             # Figure 2 hyperparameter sweep
//	serenade-eval -experiment grid -profile rsc15-sim
//	serenade-eval -quality-baseline baseline.json -profile ecom-1m-sim
//
// -quality-baseline replays the held-out test day through the serving
// pipeline and writes the offline quality snapshot (MRR@k, hit-rank
// distribution, coverage, popularity bias) that serenade-server loads as the
// online drift detector's reference.
//
// Add -quick for shrunk datasets.
package main

import (
	"flag"
	"log"
	"os"

	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-eval: ")

	var (
		experiment = flag.String("experiment", "quality", "experiment to run: quality | grid")
		profile    = flag.String("profile", "ecom-1m-sim", "dataset profile for the grid sweep and baseline")
		quick      = flag.Bool("quick", false, "shrink datasets and sweeps")
		seed       = flag.Int64("seed", 0, "random seed override")
		baseline   = flag.String("quality-baseline", "", "write the offline drift baseline for -profile to this path and exit")
	)
	flag.Parse()
	opts := experiments.Options{Quick: *quick, Seed: *seed}

	if *baseline != "" {
		base, err := experiments.QualityBaseline(*profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := base.Save(*baseline); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s: profile=%s events=%d MRR@%d=%.4f hit=%.4f cond=%.4f coverage=%.3f",
			*baseline, base.Profile, base.Events, base.K, base.MRR, base.HitRate, base.CondMRR, base.Coverage)
		return
	}

	switch *experiment {
	case "quality":
		rows, err := experiments.Quality(opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintQuality(os.Stdout, rows)
	case "grid":
		cells, err := experiments.Grid(*profile, opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintGrid(os.Stdout, *profile, cells)
	default:
		log.Fatalf("unknown experiment %q (want quality or grid)", *experiment)
	}
}
