// Command serenade-experiments regenerates the paper's entire evaluation in
// one run — every table and figure, in order — writing the report to
// stdout. This is the one-command reproduction script.
//
//	serenade-experiments            # full-size (minutes)
//	serenade-experiments -quick     # shrunk datasets (tens of seconds)
//	serenade-experiments -skip grid,abtest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"serenade/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-experiments: ")

	var (
		quick = flag.Bool("quick", false, "shrink datasets and sweeps")
		seed  = flag.Int64("seed", 0, "random seed override")
		skip  = flag.String("skip", "", "comma-separated experiments to skip (table1,quality,grid,implementations,micro,loadtest,abtest,kv,scaling,extensions,complexity)")
	)
	flag.Parse()
	opts := experiments.Options{Quick: *quick, Seed: *seed}

	skipped := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipped[s] = true
		}
	}

	steps := []struct {
		name string
		run  func() error
	}{
		{"table1", func() error {
			rows, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			return nil
		}},
		{"quality", func() error {
			rows, err := experiments.Quality(opts)
			if err != nil {
				return err
			}
			experiments.PrintQuality(os.Stdout, rows)
			return nil
		}},
		{"grid", func() error {
			cells, err := experiments.Grid("ecom-1m-sim", opts)
			if err != nil {
				return err
			}
			experiments.PrintGrid(os.Stdout, "ecom-1m-sim", cells)
			return nil
		}},
		{"implementations", func() error {
			rows, err := experiments.ImplComparison(opts)
			if err != nil {
				return err
			}
			experiments.PrintImplComparison(os.Stdout, rows)
			return nil
		}},
		{"micro", func() error {
			rows, err := experiments.Micro(opts)
			if err != nil {
				return err
			}
			experiments.PrintMicro(os.Stdout, rows)
			return nil
		}},
		{"loadtest", func() error {
			dur := 10 * time.Second
			if opts.Quick {
				dur = 2 * time.Second
			}
			res, err := experiments.LoadTest(experiments.LoadTestConfig{RPS: 1000, Duration: dur, Replicas: 2}, opts)
			if err != nil {
				return err
			}
			experiments.PrintLoadTest(os.Stdout, res)
			return nil
		}},
		{"abtest", func() error {
			res, err := experiments.ABTest(opts)
			if err != nil {
				return err
			}
			experiments.PrintABTest(os.Stdout, res)
			return nil
		}},
		{"kv", func() error {
			res, err := experiments.KVBench(opts)
			if err != nil {
				return err
			}
			experiments.PrintKVBench(os.Stdout, res)
			return nil
		}},
		{"scaling", func() error {
			per := 4 * time.Second
			if opts.Quick {
				per = time.Second
			}
			rows, err := experiments.CoreScaling(nil, per, opts)
			if err != nil {
				return err
			}
			experiments.PrintCoreScaling(os.Stdout, rows)
			return nil
		}},
		{"extensions", func() error {
			res, err := experiments.Extensions(opts)
			if err != nil {
				return err
			}
			experiments.PrintExtensions(os.Stdout, res)
			return nil
		}},
		{"complexity", func() error {
			rows, err := experiments.Complexity(opts)
			if err != nil {
				return err
			}
			experiments.PrintComplexity(os.Stdout, rows)
			return nil
		}},
	}

	start := time.Now()
	for _, step := range steps {
		if skipped[step.name] {
			fmt.Printf("== %s: skipped ==\n\n", step.name)
			continue
		}
		fmt.Printf("== %s ==\n", step.name)
		stepStart := time.Now()
		if err := step.run(); err != nil {
			log.Fatalf("%s: %v", step.name, err)
		}
		fmt.Printf("(%s in %v)\n\n", step.name, time.Since(stepStart).Round(time.Millisecond))
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(start).Round(time.Second))
}
