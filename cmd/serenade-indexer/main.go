// Command serenade-indexer runs the offline index generation job: it reads
// a click-log CSV, builds the VMIS-kNN session similarity index with the
// data-parallel batch engine (the paper's daily Spark job), and writes the
// compressed index file consumed by serenade-server.
//
// Usage:
//
//	serenade-indexer -data clicks.csv.gz -out index.srn -capacity 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"serenade"
	"serenade/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-indexer: ")

	var (
		data     = flag.String("data", "", "input click-log CSV (required)")
		out      = flag.String("out", "index.srn", "output index path")
		capacity = flag.Int("capacity", 1000, "posting-list capacity (max query-time m; 0 = unbounded)")
		workers  = flag.Int("workers", 0, "parallel build workers (0 = GOMAXPROCS)")
		format   = flag.String("format", "v2", "on-disk format: v2 (mmap-able section layout) or v1 (compressed stream)")
		remap    = flag.Bool("remap", false, "store posting lists in popularity order (v2 only; hot items share pages)")
	)
	flag.Parse()
	if *data == "" {
		log.Fatal("-data is required")
	}

	phases := obs.StartPhases()
	ds, err := serenade.LoadCSV(*data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s in %v\n", serenade.Stats(ds), phases.Mark("load").Round(time.Millisecond))

	idx, err := serenade.BuildIndexParallel(ds, *capacity, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index: %d sessions, %d items, ~%.1f MB in memory, in %v\n",
		idx.NumSessions(), idx.NumItems(),
		float64(idx.MemoryFootprint())/(1<<20),
		phases.Mark("build").Round(time.Millisecond))

	if *remap {
		// The v1 stream serialises through the logical accessors, which undoes
		// the physical permutation — remap only survives the v2 section format.
		if *format != serenade.IndexFormatV2 {
			log.Fatalf("-remap requires -format %s (the v1 stream cannot carry the layout)", serenade.IndexFormatV2)
		}
		idx, err = idx.RemappedByPopularity()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("remapped postings by popularity in %v\n", phases.Mark("remap").Round(time.Millisecond))
	}

	if err := serenade.SaveIndexFormat(*out, idx, *format); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s) in %v\n", *out, *format, phases.Mark("save").Round(time.Millisecond))
	fmt.Printf("phases: %s\n", phases)
}
