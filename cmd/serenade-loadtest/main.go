// Command serenade-loadtest reproduces the Figure 3(b) load test: replayed
// traffic at a target rate against a pool of stateful replicas, reporting
// per-second request counts, latency percentiles and core usage.
//
//	serenade-loadtest -rps 1000 -duration 30s -replicas 2
//	serenade-loadtest -sweep                      # §7 core-usage scaling
//	serenade-loadtest -slo-sweep -slo-latency-p99 5ms   # burn rate vs RPS
//	serenade-loadtest -click-model -click-seed 17 -click-skew 'b=0.7'
//
// -slo-sweep additionally prints a `BENCHJSON slo_sweep <json>` line; piping
// the output through tools/benchjson captures the trajectory as the
// versioned BENCH_slo.json artifact.
//
// -click-model runs the online quality loop instead: one quality-enabled
// replica per -click-variants arm replays the labelled test workload while a
// seeded position-biased click model simulates feedback through POST /track,
// and the run prints the online-vs-offline MRR table plus a
// `BENCHJSON quality <json>` line (the BENCH_quality.json artifact). The
// click stream is a pure function of -click-seed and the (session, step,
// variant) identities, so a fixed seed reproduces the numbers exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"serenade/internal/experiments"
	"serenade/internal/loadgen"
)

func parseRates(raw string) []int {
	var rs []int
	for _, s := range strings.Split(raw, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad rate %q: %v", s, err)
		}
		rs = append(rs, v)
	}
	return rs
}

// parseSkew parses `name=mult,name=mult` per-variant CTR skews.
func parseSkew(raw string) map[string]float64 {
	if raw == "" {
		return nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(raw, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			log.Fatalf("bad -click-skew entry %q (want name=multiplier)", pair)
		}
		m, err := strconv.ParseFloat(val, 64)
		if err != nil || m <= 0 {
			log.Fatalf("bad -click-skew multiplier %q: %v", val, err)
		}
		out[name] = m
	}
	return out
}

// parseVariants splits a comma-separated arm list.
func parseVariants(raw string) []string {
	var out []string
	for _, v := range strings.Split(raw, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-loadtest: ")

	var (
		rps      = flag.Int("rps", 1000, "target requests per second")
		duration = flag.Duration("duration", 15*time.Second, "test duration")
		replicas = flag.Int("replicas", 2, "stateful serving replicas")
		quick    = flag.Bool("quick", false, "use a small dataset")
		sweep    = flag.Bool("sweep", false, "run the core-usage scaling sweep instead")
		rates    = flag.String("rates", "100,200,400,600", "comma-separated rates for -sweep")
		perRate  = flag.Duration("per-rate", 5*time.Second, "duration per rate for -sweep")
		seed     = flag.Int64("seed", 0, "random seed override")
		batchWin = flag.Duration("batch-window", 0, "replica request-batching window (0 disables batching)")
		batchMax = flag.Int("batch-max", 0, "largest gathered batch (0 = serving default)")
		cacheSz  = flag.Int("result-cache-size", 0, "replica single-flight result cache entries (0 disables)")
		cacheTTL = flag.Duration("result-cache-ttl", 0, "result cache entry lifetime (0 = serving default)")
		burst    = flag.Int("burst", 1, "replay each session under this many session keys (duplicate-heavy traffic)")
		sloSweep = flag.Bool("slo-sweep", false, "run the burn-rate-vs-RPS sweep instead (uses -rates and -per-rate)")
		sloP99   = flag.Duration("slo-latency-p99", 0, "replica latency objective; slower requests burn budget (0 = off, or 5ms for -slo-sweep)")
		sloErr   = flag.Float64("slo-error-budget", 0, "fraction of requests allowed to fail (0 = error objective off)")

		clickModel    = flag.Bool("click-model", false, "run the online quality loop instead (click simulation + online-vs-offline MRR table)")
		clickSeed     = flag.Int64("click-seed", 17, "click-model seed; the whole run is deterministic under a fixed seed")
		clickBase     = flag.Float64("click-base", 0, "rank-1 click propensity (0 = default 0.35)")
		clickDecay    = flag.Float64("click-pos-decay", 0, "multiplicative propensity decay per rank position (0 = default 0.85)")
		clickSkew     = flag.String("click-skew", "", "per-variant CTR skew, e.g. 'b=0.7,c=1.1' (unlisted arms are neutral)")
		clickVariants = flag.String("click-variants", "a,b", "comma-separated A/B arms to simulate")
		clickRounds   = flag.Int("click-rounds", 12, "workload replays per arm (more rounds tighten the IPW estimate)")
		clickSteps    = flag.Int("click-steps", 0, "cap on labelled steps per round (0 = all)")
	)
	flag.Parse()
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	cfg := experiments.LoadTestConfig{
		RPS:            *rps,
		Duration:       *duration,
		Replicas:       *replicas,
		BatchWindow:    *batchWin,
		BatchMax:       *batchMax,
		CacheSize:      *cacheSz,
		CacheTTL:       *cacheTTL,
		Burst:          *burst,
		SLOLatencyP99:  *sloP99,
		SLOErrorBudget: *sloErr,
	}

	if *clickModel {
		res, err := experiments.QualityRun(experiments.QualityRunConfig{
			Variants: parseVariants(*clickVariants),
			Model: loadgen.ClickModel{
				Seed:        *clickSeed,
				Base:        *clickBase,
				PosDecay:    *clickDecay,
				VariantSkew: parseSkew(*clickSkew),
			},
			Rounds:   *clickRounds,
			MaxSteps: *clickSteps,
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintQualityRun(os.Stdout, res)
		// Machine-readable loop for tools/benchjson → BENCH_quality.json.
		raw, err := json.Marshal(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("BENCHJSON quality %s\n", raw)
		return
	}

	if *sweep {
		rows, err := experiments.CoreScaling(parseRates(*rates), *perRate, opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintCoreScaling(os.Stdout, rows)
		return
	}

	if *sloSweep {
		rows, err := experiments.SLOSweep(parseRates(*rates), *perRate, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintSLOSweep(os.Stdout, rows)
		// Machine-readable trajectory for tools/benchjson → BENCH_slo.json.
		raw, err := json.Marshal(rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("BENCHJSON slo_sweep %s\n", raw)
		return
	}

	res, err := experiments.LoadTest(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintLoadTest(os.Stdout, res)
}
