// Command serenade-server is the online serving component: a stateful
// recommendation server that loads the prebuilt session-similarity index,
// maintains evolving user sessions in a local TTL store, and answers
// next-item recommendation requests over HTTP (see internal/serving for the
// endpoints).
//
// Usage:
//
//	serenade-server -index index.srn -addr :8080 -m 500 -k 500
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug mux (flag-gated)
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"serenade"
)

// parseByteSize parses a human byte size for -gomemlimit: a plain integer is
// bytes; binary suffixes KiB/MiB/GiB/TiB and decimal KB/MB/GB/TB (and bare
// K/M/G/T, binary) are accepted, matching the runtime's GOMEMLIMIT syntax
// plus the decimal forms.
func parseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	n, err := strconv.ParseFloat(t, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return int64(n * float64(mult)), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serenade-server: ")

	var (
		indexPath = flag.String("index", "", "index file from serenade-indexer (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		m         = flag.Int("m", 500, "recency sample size (hyperparameter m)")
		k         = flag.Int("k", 500, "number of neighbours (hyperparameter k)")
		history   = flag.Int("history", 0, "session items used for prediction (0 = all; 2 = serenade-hist; 1 = serenade-recent)")
		slotSize  = flag.Int("recommendations", 21, "items per response")
		ttl       = flag.Duration("session-ttl", 30*time.Minute, "session inactivity expiry")
		storeDir  = flag.String("store-dir", "", "durable session store directory (empty = memory only)")
		walSync   = flag.String("wal-sync", "interval", "session store WAL fsync policy: always | interval | never")
		walSyncIv = flag.Duration("wal-sync-interval", 5*time.Millisecond, "group-commit window for -wal-sync=interval")
		idemTTL   = flag.Duration("idempotency-ttl", 2*time.Minute, "response retention for X-Idempotency-Key deduplication (negative disables)")
		fallback  = flag.Bool("fallback-popular", true, "pad short lists with popular items")
		trendHL   = flag.Duration("trending-half-life", 2*time.Hour, "trending tracker half-life (0 disables /v1/trending)")
		debugAddr = flag.String("debug-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled)")
		slowQuery = flag.Duration("slow-query", 25*time.Millisecond, "log requests slower than this (0 disables the slow-query log)")
		traceRing = flag.Int("trace-ring", 256, "traces retained for /debug/traces (<0 disables tracing sample retention)")
		traceEach = flag.Int("trace-sample", 16, "sample 1 in N requests into the trace ring (slow requests always kept)")
		logJSON   = flag.Bool("log-json", false, "structured logs as JSON instead of text")
		batchWin  = flag.Duration("batch-window", 0, "gather concurrent requests for this long and score them as one batch (0 disables batching)")
		batchMax  = flag.Int("batch-max", 0, "largest gathered batch for -batch-window (0 = default 16)")
		cacheSize = flag.Int("result-cache-size", 0, "single-flight result cache entries (0 disables the cache)")
		cacheTTL  = flag.Duration("result-cache-ttl", 0, "result cache entry lifetime (0 = default 5s)")
		f32Scores = flag.Bool("float32-scores", false, "accumulate item scores in float32 (half the accumulator footprint; ranks may differ in ties)")
		sloP99    = flag.Duration("slo-latency-p99", 50*time.Millisecond, "latency objective: requests slower than this burn error budget, tracked at /debug/slo (0 disables)")
		sloBudget = flag.Float64("slo-latency-budget", 0, "fraction of requests allowed to exceed -slo-latency-p99 (0 = default 1%, a p99 objective)")
		sloErr    = flag.Float64("slo-error-budget", 0.001, "fraction of requests allowed to fail before the error-rate SLO burns (0 disables)")

		qVariant  = flag.String("quality-variant", "", "enable quality telemetry (POST /track, GET /debug/quality), naming this replica's A/B arm")
		qWindow   = flag.Duration("quality-window", 0, "click-attribution window (0 = default 2m; requires -quality-variant)")
		qBaseline = flag.String("quality-baseline", "", "offline baseline JSON from `serenade-eval -quality-baseline`, enables drift detection")

		gogc     = flag.Int("gogc", 0, "GC target percentage (runtime/debug.SetGCPercent); 0 keeps the runtime default / GOGC env. The mostly-static index heap tolerates a high value (e.g. 400) for fewer GC cycles")
		memLimit = flag.String("gomemlimit", "", "soft memory limit, e.g. 4GiB (runtime/debug.SetMemoryLimit); empty keeps the runtime default / GOMEMLIMIT env. Pair with a high -gogc to cap the pod instead of pacing by live-heap growth")
	)
	flag.Parse()
	if *indexPath == "" {
		log.Fatal("-index is required")
	}
	if *gogc > 0 {
		prev := debug.SetGCPercent(*gogc)
		log.Printf("gc target set to %d%% (was %d%%)", *gogc, prev)
	}
	if *memLimit != "" {
		limit, err := parseByteSize(*memLimit)
		if err != nil {
			log.Fatalf("-gomemlimit: %v", err)
		}
		debug.SetMemoryLimit(limit)
		log.Printf("soft memory limit set to %s (%d bytes)", *memLimit, limit)
	}
	syncPolicy, err := serenade.ParseWALSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	start := time.Now()
	idx, err := serenade.LoadIndex(*indexPath)
	if err != nil {
		log.Fatal(err)
	}
	loadDur := time.Since(start)
	heapBytes, mmapBytes := idx.MemoryBreakdown()
	log.Printf("loaded index: %d sessions, %d items in %v (mmap=%v, heap=%.1f MB, mmap=%.1f MB)",
		idx.NumSessions(), idx.NumItems(), loadDur.Round(time.Millisecond),
		idx.Mapped(), float64(heapBytes)/(1<<20), float64(mmapBytes)/(1<<20))

	var tracker *serenade.TrendingTracker
	if *trendHL > 0 {
		tracker = serenade.NewTrendingTracker(*trendHL)
	}

	var qualityOpts *serenade.QualityOptions
	if *qVariant != "" || *qBaseline != "" {
		qualityOpts = &serenade.QualityOptions{Variant: *qVariant, Window: *qWindow}
		if *qBaseline != "" {
			base, err := serenade.LoadQualityBaseline(*qBaseline)
			if err != nil {
				log.Fatal(err)
			}
			qualityOpts.Baseline = base
			log.Printf("loaded quality baseline %s: profile=%s MRR@%d=%.4f cond=%.4f events=%d",
				*qBaseline, base.Profile, base.K, base.MRR, base.CondMRR, base.Events)
		}
	}
	srv, err := serenade.NewServer(idx, serenade.ServerConfig{
		Params:             serenade.Params{M: *m, K: *k, Float32Scores: *f32Scores},
		BatchWindow:        *batchWin,
		BatchMax:           *batchMax,
		ResultCacheSize:    *cacheSize,
		ResultCacheTTL:     *cacheTTL,
		Recommendations:    *slotSize,
		HistoryLength:      *history,
		SessionTTL:         *ttl,
		StoreDir:           *storeDir,
		WALSync:            syncPolicy,
		WALSyncInterval:    *walSyncIv,
		IdempotencyTTL:     *idemTTL,
		Catalog:            serenade.NewCatalog(),
		FallbackToPopular:  *fallback,
		OwnIndex:           true, // rollover munmaps the outgoing index once drained
		Trending:           tracker,
		SlowQueryThreshold: *slowQuery,
		TraceRingSize:      *traceRing,
		TraceSampleEvery:   *traceEach,
		Logger:             logger,

		SLOLatencyThreshold: *sloP99,
		SLOLatencyBudget:    *sloBudget,
		SLOErrorBudget:      *sloErr,

		Quality: qualityOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RecordIndexLoad(loadDur)

	// SIGHUP triggers the daily rollover without downtime: reload the index
	// file (mmap for v2 — the new generation pages in on demand) and swap it
	// under the in-flight traffic; the replaced mapping is released once its
	// last request drains.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			t0 := time.Now()
			next, err := serenade.LoadIndex(*indexPath)
			if err != nil {
				logger.Error("index reload failed", "path", *indexPath, "err", err)
				continue
			}
			if err := srv.SwapIndex(next); err != nil {
				next.Close()
				logger.Error("index swap rejected", "err", err)
				continue
			}
			d := time.Since(t0)
			srv.RecordIndexLoad(d)
			logger.Info("index rolled over", "sessions", next.NumSessions(),
				"items", next.NumItems(), "mmap", next.Mapped(), "load", d.Round(time.Millisecond))
		}
	}()

	// Periodic session expiry, mirroring the 30-minute RocksDB TTL.
	sweepDone := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Minute)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := srv.SweepSessions(); n > 0 {
					log.Printf("swept %d expired sessions", n)
				}
			case <-sweepDone:
				return
			}
		}
	}()
	defer close(sweepDone)

	// Profiling endpoints live on their own listener so they are never
	// reachable through the public serving address: CPU and allocation
	// profiles of the live scoring kernel come from
	// /debug/pprof/{profile,heap,allocs} on this port only.
	if *debugAddr != "" {
		go func() {
			dbg := &http.Server{
				Addr:              *debugAddr,
				Handler:           http.DefaultServeMux, // net/http/pprof registers here
				ReadHeaderTimeout: 5 * time.Second,
			}
			log.Printf("pprof debug server on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// drain in-flight requests (bounded at 10s). ListenAndServe returns as
	// soon as Shutdown is CALLED, so main must wait on `drained` — which
	// closes only when Shutdown RETURNS — before reporting final state.
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
		}
		close(drained)
	}()

	fmt.Printf("serving on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	srv.FlushSlowLog()

	st := srv.Stats()
	attrs := []any{
		"requests", st.Requests,
		"errors", st.Errors,
		"mean", st.MeanLatency,
		"p90", st.P90Latency,
		"p995", st.P995Latency,
	}
	for _, sg := range st.Stages {
		attrs = append(attrs, "stage_"+sg.Stage+"_p90", sg.P90Latency)
	}
	logger.Info("final stats", attrs...)
}
