package serenade_test

import (
	"fmt"

	"serenade"
)

// Example demonstrates the library's core lifecycle: generate (or load)
// historical clicks, build the index offline, recommend online.
func Example() {
	ds, err := serenade.Generate(serenade.SmallDataset(42))
	if err != nil {
		panic(err)
	}
	idx, err := serenade.BuildIndex(ds, 500)
	if err != nil {
		panic(err)
	}
	rec, err := serenade.New(idx, serenade.Params{M: 500, K: 100})
	if err != nil {
		panic(err)
	}
	items := rec.Recommend([]serenade.ItemID{10, 11, 12}, 3)
	fmt.Println(len(items), "recommendations")
	// Output: 3 recommendations
}

// ExampleEvaluate shows offline evaluation with the session-rec protocol.
func ExampleEvaluate() {
	ds, _ := serenade.Generate(serenade.SmallDataset(42))
	train, test := serenade.Split(ds, 1)
	idx, _ := serenade.BuildIndex(train, 500)
	rec, _ := serenade.New(idx, serenade.Params{M: 500, K: 100})

	report, err := serenade.Evaluate(rec.Recommend, test, 20)
	if err != nil {
		panic(err)
	}
	fmt.Println(report.N > 0, report.MRR > 0)
	// Output: true true
}

// ExampleCompress shows the compressed query-time index: a smaller memory
// footprint with identical recommendations.
func ExampleCompress() {
	ds, _ := serenade.Generate(serenade.SmallDataset(42))
	idx, _ := serenade.BuildIndex(ds, 0)
	comp := serenade.Compress(idx)

	raw, _ := serenade.New(idx, serenade.Params{M: 100, K: 50})
	small, _ := serenade.NewCompressed(comp, serenade.Params{M: 100, K: 50})

	q := []serenade.ItemID{7}
	a, b := raw.Recommend(q, 5), small.Recommend(q, 5)
	same := len(a) == len(b)
	for i := range a {
		same = same && a[i] == b[i]
	}
	fmt.Println("identical:", same, "— smaller:", comp.MemoryFootprint() < idx.MemoryFootprint())
	// Output: identical: true — smaller: true
}

// ExampleNewIncrementalIndex shows online index maintenance: appending
// finished sessions and compacting with a retention horizon.
func ExampleNewIncrementalIndex() {
	ds, _ := serenade.Generate(serenade.SmallDataset(42))
	inc, _ := serenade.NewIncrementalIndex(ds, 0)

	last := ds.Sessions[len(ds.Sessions)-1].Time()
	inc.Append([]serenade.ItemID{1, 2, 3}, last+60)
	fmt.Println("delta sessions:", inc.DeltaSessions())

	inc.EvictBefore(last - 180*24*3600) // 180-day retention
	if err := inc.Compact(); err != nil {
		panic(err)
	}
	fmt.Println("delta after compaction:", inc.DeltaSessions())
	// Output:
	// delta sessions: 1
	// delta after compaction: 0
}
