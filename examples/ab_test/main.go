// A/B comparison: evaluate the paper's two production variants —
// serenade-hist (predict from the last two session items) and
// serenade-recent (last item only) — against the legacy item-to-item
// collaborative filter they replaced, on held-out sessions.
package main

import (
	"fmt"
	"log"

	"serenade"
)

func main() {
	log.SetFlags(0)

	cfg := serenade.SmallDataset(11)
	cfg.NumSessions = 6000
	ds, err := serenade.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test := serenade.Split(ds, 1)

	idx, err := serenade.BuildIndex(train, 500)
	if err != nil {
		log.Fatal(err)
	}
	vmis, err := serenade.New(idx, serenade.Params{M: 500, K: 500})
	if err != nil {
		log.Fatal(err)
	}
	legacy := serenade.NewItemItemCF(train)

	// The production variants are prediction policies on top of the same
	// index: they differ only in how much session history feeds the query.
	variants := []struct {
		name string
		rec  func([]serenade.ItemID, int) []serenade.ScoredItem
	}{
		{"legacy (item-item CF)", legacy.Recommend},
		{"serenade-hist", lastN(vmis.Recommend, 2)},
		{"serenade-recent", lastN(vmis.Recommend, 1)},
	}

	fmt.Println("variant                  MRR@20   HR@20    Prec@20")
	var control serenade.Metrics
	for i, v := range variants {
		report, err := serenade.Evaluate(v.rec, test, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-23s  %.4f   %.4f   %.4f", v.name, report.MRR, report.HitRate, report.Precision)
		if i == 0 {
			control = report
			fmt.Println("   (control)")
			continue
		}
		fmt.Printf("   (MRR %+.1f%% vs control)\n", (report.MRR-control.MRR)/control.MRR*100)
	}
}

// lastN restricts the prediction input to the session's most recent n items.
func lastN(rec func([]serenade.ItemID, int) []serenade.ScoredItem, n int) func([]serenade.ItemID, int) []serenade.ScoredItem {
	return func(ev []serenade.ItemID, size int) []serenade.ScoredItem {
		if len(ev) > n {
			ev = ev[len(ev)-n:]
		}
		return rec(ev, size)
	}
}
