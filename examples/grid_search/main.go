// Grid search: tune the VMIS-kNN hyperparameters m (recency sample size)
// and k (neighbours) on a held-out day, the offline procedure behind
// Figure 2 of the paper.
package main

import (
	"fmt"
	"log"

	"serenade"
)

func main() {
	log.SetFlags(0)

	cfg := serenade.SmallDataset(3)
	cfg.NumSessions = 5000
	ds, err := serenade.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test := serenade.Split(ds, 1)
	fmt.Printf("train: %d sessions, test: %d sessions\n", len(train.Sessions), len(test.Sessions))

	// One index build covers every combination: the posting-list capacity
	// just has to admit the largest m.
	ms := []int{50, 100, 500, 1000}
	ks := []int{50, 100, 500}
	idx, err := serenade.BuildIndex(train, ms[len(ms)-1])
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n   m      k   MRR@20   Prec@20")
	best := struct {
		m, k int
		mrr  float64
	}{}
	for _, m := range ms {
		for _, k := range ks {
			if k > m {
				continue // neighbours are drawn from the sample
			}
			rec, err := serenade.New(idx, serenade.Params{M: m, K: k})
			if err != nil {
				log.Fatal(err)
			}
			report, err := serenade.Evaluate(rec.Recommend, test, 20)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d  %5d   %.4f   %.4f\n", m, k, report.MRR, report.Precision)
			if report.MRR > best.mrr {
				best.m, best.k, best.mrr = m, k, report.MRR
			}
		}
	}
	fmt.Printf("\nbest by MRR@20: m=%d k=%d (%.4f)\n", best.m, best.k, best.mrr)
}
