// Incremental maintenance: keep the session-similarity index fresh online
// instead of rebuilding it once per day — appending finished sessions as
// they complete, expiring sessions past the retention window, and
// periodically compacting. This exercises the future-work direction from
// the paper's conclusion, together with the compressed query-time index.
package main

import (
	"fmt"
	"log"

	"serenade"
)

func main() {
	log.SetFlags(0)

	// Yesterday's batch build seeds the index.
	cfg := serenade.SmallDataset(99)
	ds, err := serenade.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inc, err := serenade.NewIncrementalIndex(ds, 0)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := serenade.NewIncremental(inc, serenade.Params{M: 500, K: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base index: %d sessions\n", inc.NumSessions())

	// New sessions stream in as users finish browsing. Queries observe
	// them immediately — no overnight delay for new activity.
	last := ds.Sessions[len(ds.Sessions)-1].Time()
	trending := []serenade.ItemID{7, 300, 301} // item 300/301 suddenly co-browsed
	for i := 0; i < 500; i++ {
		last += 30
		if _, err := inc.Append(trending, last); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after streaming appends: %d sessions (%d in delta)\n",
		inc.NumSessions(), inc.DeltaSessions())

	fmt.Println("\nrecommendations for a session on item 300 (live trend visible):")
	for i, item := range rec.Recommend([]serenade.ItemID{300}, 5) {
		fmt.Printf("%2d. item %-5d score %.3f\n", i+1, item.Item, item.Score)
	}

	// Nightly housekeeping: drop sessions past the retention window and
	// fold the delta into a fresh base.
	horizon := last - 6*24*3600
	inc.EvictBefore(horizon)
	if err := inc.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter retention eviction + compaction: %d sessions (%d in delta)\n",
		inc.NumSessions(), inc.DeltaSessions())

	// For memory-constrained replicas, ship a compressed snapshot instead.
	full, err := serenade.BuildIndex(ds, 0)
	if err != nil {
		log.Fatal(err)
	}
	comp := serenade.Compress(full)
	crec, err := serenade.NewCompressed(comp, serenade.Params{M: 500, K: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompressed index: %.1f%% of the raw footprint, identical results: %v\n",
		100*float64(comp.MemoryFootprint())/float64(full.MemoryFootprint()),
		sameTop(crec.Recommend([]serenade.ItemID{7}, 5), mustRecommend(full, []serenade.ItemID{7})))
}

func mustRecommend(idx *serenade.Index, q []serenade.ItemID) []serenade.ScoredItem {
	r, err := serenade.New(idx, serenade.Params{M: 500, K: 100})
	if err != nil {
		log.Fatal(err)
	}
	return r.Recommend(q, 5)
}

func sameTop(a, b []serenade.ScoredItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
