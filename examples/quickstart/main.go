// Quickstart: generate a small clickstream, build the VMIS-kNN index, and
// compute next-item recommendations for an evolving session.
package main

import (
	"fmt"
	"log"

	"serenade"
)

func main() {
	log.SetFlags(0)

	// 1. Historical click data. In production this comes from the last 180
	// days of platform logs; here we generate a small synthetic clickstream
	// with realistic session structure.
	ds, err := serenade.Generate(serenade.SmallDataset(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("historical data:", serenade.Stats(ds))

	// 2. Offline index build (the paper's daily batch job). The capacity
	// must cover the largest sample size m we plan to query.
	idx, err := serenade.BuildIndex(ds, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d sessions, %d items, ~%.1f MB\n",
		idx.NumSessions(), idx.NumItems(), float64(idx.MemoryFootprint())/(1<<20))

	// 3. Online recommendation. An evolving session is the sequence of
	// items the user has viewed, most recent last.
	rec, err := serenade.New(idx, serenade.Params{M: 500, K: 100})
	if err != nil {
		log.Fatal(err)
	}
	evolving := []serenade.ItemID{10, 11, 12}
	fmt.Printf("\nsession %v — top 10 next items:\n", evolving)
	for i, item := range rec.Recommend(evolving, 10) {
		fmt.Printf("%2d. item %-5d score %.3f\n", i+1, item.Item, item.Score)
	}

	// The recommendations adapt as the session evolves.
	evolving = append(evolving, 200)
	fmt.Printf("\nafter viewing item 200 — top 10 next items:\n")
	for i, item := range rec.Recommend(evolving, 10) {
		fmt.Printf("%2d. item %-5d score %.3f\n", i+1, item.Item, item.Score)
	}
}
