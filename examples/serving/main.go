// Serving: run a stateful recommendation server on localhost and drive a
// user session against its REST API, including the depersonalisation
// (consent) flow and a business-rule filter.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"serenade"
)

func main() {
	log.SetFlags(0)

	ds, err := serenade.Generate(serenade.SmallDataset(7))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := serenade.BuildIndex(ds, 500)
	if err != nil {
		log.Fatal(err)
	}

	// The catalog carries the business rules: flag one popular item as out
	// of stock so it never appears in a recommendation slot.
	catalog := serenade.NewCatalog()
	catalog.SetAvailable(1, false)

	srv, err := serenade.NewServer(idx, serenade.ServerConfig{
		Params:     serenade.Params{M: 500, K: 100},
		Catalog:    catalog,
		SessionTTL: 30 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("server listening on", base)

	// A user browses three product detail pages; each view is one request
	// that both updates the session state and returns recommendations.
	for _, item := range []serenade.ItemID{10, 11, 12} {
		resp := recommend(base, "user-1", item, true)
		fmt.Printf("viewed item %-3d -> session length %d, top recs: %v\n",
			item, resp.SessionLength, itemIDs(resp.Items, 5))
	}

	// The user revokes consent: the stored history is dropped and the
	// prediction uses only the currently displayed item.
	resp := recommend(base, "user-1", 12, false)
	fmt.Printf("consent revoked   -> session length %d (history discarded)\n", resp.SessionLength)

	// Score attribution: why would the top item be recommended to user-2?
	resp2 := recommend(base, "user-2", 10, true)
	if len(resp2.Items) > 0 {
		var ex struct {
			Score         float64 `json:"Score"`
			Contributions []any   `json:"Contributions"`
		}
		get(fmt.Sprintf("%s/v1/explain?session_id=user-2&item_id=%d", base, resp2.Items[0].Item), &ex)
		fmt.Printf("explain item %d   -> score %.2f from %d neighbour sessions\n",
			resp2.Items[0].Item, ex.Score, len(ex.Contributions))
	}

	var stats struct {
		Requests       uint64 `json:"requests"`
		ActiveSessions int    `json:"active_sessions"`
	}
	get(base+"/metrics", &stats)
	fmt.Printf("server metrics: %d requests, %d active sessions\n", stats.Requests, stats.ActiveSessions)
}

func recommend(base, session string, item serenade.ItemID, consent bool) serenade.Response {
	var out serenade.Response
	url := fmt.Sprintf("%s/v1/recommend?session_id=%s&item_id=%d&consent=%t", base, session, item, consent)
	get(url, &out)
	return out
}

func get(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func itemIDs(items []serenade.ScoredItem, n int) []serenade.ItemID {
	if len(items) > n {
		items = items[:n]
	}
	out := make([]serenade.ItemID, len(items))
	for i, it := range items {
		out[i] = it.Item
	}
	return out
}
