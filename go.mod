module serenade

go 1.24
