package serenade_test

// End-to-end integration tests across the full stack: dataset generation →
// CSV persistence → parallel index build → on-disk index format → HTTP
// serving behind the sticky-session proxy → load replay → hot index
// rollover under traffic.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"serenade"
	"serenade/internal/cluster"
	"serenade/internal/core"
	"serenade/internal/loadgen"
	"serenade/internal/serving"
)

func TestFullPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// 1. Offline: generate the click log, persist, reload, build the index
	// with the data-parallel engine, ship it to disk.
	ds, err := serenade.Generate(serenade.SmallDataset(2024))
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "clicks.csv.gz")
	if err := serenade.SaveCSV(csvPath, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := serenade.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	train, test := serenade.Split(loaded, 1)
	idx, err := serenade.BuildIndexParallel(train, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "index.srn")
	if err := serenade.SaveIndex(idxPath, idx); err != nil {
		t.Fatal(err)
	}

	// 2. Online: two stateful replicas loading the shipped index, behind
	// the sticky proxy.
	shipped, err := serenade.LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	proxy := cluster.NewProxy()
	var replicas []*serving.Server
	for i := 0; i < 2; i++ {
		srv, err := serenade.NewServer(shipped, serenade.ServerConfig{
			Params: serenade.Params{M: 500, K: 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		u, _ := url.Parse(ts.URL)
		proxy.AddBackend(fmt.Sprintf("pod-%d", i), u)
		replicas = append(replicas, srv)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	// 3. Replay held-out traffic through the HTTP front door.
	workload := loadgen.Workload(test, 400)
	if len(workload) == 0 {
		t.Fatal("empty workload")
	}
	client := front.Client()
	var served int
	for _, req := range workload {
		resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?session_id=%s&item_id=%d",
			front.URL, req.SessionKey, req.Item))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var out serving.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		served++
	}
	if served != len(workload) {
		t.Fatalf("served %d of %d", served, len(workload))
	}

	// 4. Both replicas took traffic, and every session's state lives on
	// exactly one replica.
	var totalRequests uint64
	for _, r := range replicas {
		st := r.Stats()
		if st.Requests == 0 {
			t.Error("a replica received no traffic")
		}
		totalRequests += st.Requests
	}
	if totalRequests != uint64(len(workload)) {
		t.Errorf("replica request sum = %d, want %d", totalRequests, len(workload))
	}
	seen := map[string]int{}
	for _, req := range workload {
		seen[req.SessionKey] = 0
	}
	for key := range seen {
		for _, r := range replicas {
			if _, ok := r.SessionState(key); ok {
				seen[key]++
			}
		}
		if seen[key] != 1 {
			t.Fatalf("session %s state on %d replicas, want 1", key, seen[key])
		}
	}
}

func TestHotRolloverUnderTraffic(t *testing.T) {
	ds, err := serenade.Generate(serenade.SmallDataset(31))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := serenade.BuildIndex(ds, 500)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serenade.NewServer(idx, serenade.ServerConfig{Params: serenade.Params{M: 500, K: 100}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Tomorrow's index build, shipped to disk.
	ds2, _ := serenade.Generate(serenade.SmallDataset(32))
	idx2, err := serenade.BuildIndex(ds2, 500)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "next.srn")
	if err := serenade.SaveIndex(path, idx2); err != nil {
		t.Fatal(err)
	}

	// Traffic flows while the rollover happens.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?session_id=w%d&item_id=%d", ts.URL, w, i%400))
				if err != nil {
					t.Errorf("request failed during rollover: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d during rollover", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	body := fmt.Sprintf(`{"path":%q}`, path)
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if got := srv.Stats().IndexSwaps; got != 1 {
		t.Errorf("index swaps = %d, want 1", got)
	}
}

// TestInternalAndFacadeIndexesAgree guards the facade against drifting from
// the internals: an index built through the facade answers exactly like one
// built directly with internal/core.
func TestInternalAndFacadeIndexesAgree(t *testing.T) {
	ds, _ := serenade.Generate(serenade.SmallDataset(5))
	viaFacade, err := serenade.BuildIndex(ds, 200)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.BuildIndex(ds, 200) // Generate already renumbers
	if err != nil {
		t.Fatal(err)
	}
	a, _ := serenade.New(viaFacade, serenade.Params{M: 200, K: 50})
	b, _ := core.NewRecommender(direct, core.Params{M: 200, K: 50})
	for item := 0; item < 50; item++ {
		q := []serenade.ItemID{serenade.ItemID(item)}
		ra := a.Recommend(q, 10)
		rb := b.Recommend(q, 10)
		if len(ra) != len(rb) {
			t.Fatalf("facade and internal disagree on item %d", item)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("facade and internal disagree on item %d at rank %d", item, i)
			}
		}
	}
}
