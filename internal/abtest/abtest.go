// Package abtest simulates the three-week online A/B test of §5.2.3.
//
// The paper randomly assigns 45 million live user sessions to one of three
// arms — legacy item-to-item CF, serenade-hist (predicting from the last two
// session items) and serenade-recent (last item only) — and measures a
// conversion-related engagement metric for the product-detail-page slot,
// plus a site-wide view that exposed serenade-recent's cannibalisation of
// the neighbouring "often bought together" slot.
//
// Live users are unavailable, so engagement is simulated with a behavioural
// model grounded in what the recommenders actually produce: a user engages
// with the slot with a probability that rises when the item they actually
// clicked next appears high in the recommendation list (relevance drives
// clicks), and the neighbouring slot loses attention in proportion to how
// much the two slots' recommendations overlap (two slots showing the same
// items compete for the same click). Cannibalisation is therefore emergent:
// an arm that conditions only on the current item produces lists that
// overlap the item-to-item "bought together" slot far more than an arm that
// blends in session history.
package abtest

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"serenade/internal/core"
	"serenade/internal/metrics"
	"serenade/internal/rank"
	"serenade/internal/sessions"
)

// RecommendFunc produces a ranked top-n recommendation list for an evolving
// session.
type RecommendFunc func(evolving []sessions.ItemID, n int) []core.ScoredItem

// Arm is one experiment variant.
type Arm struct {
	Name      string
	Recommend RecommendFunc
}

// EngagementModel parameterises the simulated user behaviour.
type EngagementModel struct {
	// BaseRate is the probability of engaging with the slot when the
	// recommendations are irrelevant (brand effects, curiosity).
	BaseRate float64
	// HitBoost is the additional engagement probability when the user's
	// true next item is ranked first; it decays geometrically with rank.
	HitBoost float64
	// RankDecay is the per-rank multiplicative decay of HitBoost.
	RankDecay float64
	// Slot2Base is the baseline engagement of the neighbouring
	// "often bought together" slot.
	Slot2Base float64
	// OverlapPenalty scales how strongly slot-1/slot-2 recommendation
	// overlap suppresses slot-2 engagement.
	OverlapPenalty float64
	// AttentionPenalty models the user's limited attention per page view:
	// slot-2 engagement is suppressed in proportion to slot-1's engagement
	// probability on the same impression. The arm that wins the most
	// clicks for its own slot therefore drains the neighbouring slot — the
	// cannibalisation §5.2.3 observed for serenade-recent.
	AttentionPenalty float64
}

// DefaultEngagementModel returns parameters producing click-through rates
// in the low single-digit percent range typical of e-commerce slots.
func DefaultEngagementModel() EngagementModel {
	return EngagementModel{
		BaseRate:         0.010,
		HitBoost:         0.35,
		RankDecay:        0.85,
		Slot2Base:        0.030,
		OverlapPenalty:   0.4,
		AttentionPenalty: 1.2,
	}
}

// Config describes one simulated A/B test.
type Config struct {
	// Test supplies the user sessions replayed through the experiment.
	Test *sessions.Dataset
	// Arms are the experiment variants; the first arm is the control that
	// lifts are computed against.
	Arms []Arm
	// Slot2 produces the neighbouring slot's recommendations (the legacy
	// complements slot); nil disables the cannibalisation model.
	Slot2 RecommendFunc
	// Model is the engagement model; the zero value selects
	// DefaultEngagementModel.
	Model EngagementModel
	// SlotSize is the recommendation list length (production: 21).
	SlotSize int
	// Seed drives the simulated user randomness.
	Seed int64
}

// ArmResult aggregates one arm's outcome.
type ArmResult struct {
	Name        string
	Sessions    int
	Impressions int
	// Slot1Engagements counts engagements with the slot under test
	// ("other customers also viewed").
	Slot1Engagements int
	// Slot2Engagements counts engagements with the neighbouring slot.
	Slot2Engagements int
	Slot1Rate        float64
	Slot2Rate        float64
	SitewideRate     float64
}

// Comparison is an arm-vs-control readout.
type Comparison struct {
	Arm string
	// Slot1LiftPct is the relative change of the slot engagement rate vs
	// control, in percent — the paper's headline +2.85% / +5.72%.
	Slot1LiftPct float64
	// Slot2LiftPct exposes cannibalisation of the neighbouring slot.
	Slot2LiftPct float64
	// SitewideLiftPct is the combined-slots change.
	SitewideLiftPct float64
	// PValue is the two-sided two-proportion z-test p-value for the slot-1
	// engagement difference.
	PValue float64
	// Significant reports PValue < 0.05.
	Significant bool
}

// DailySignificance tracks one treatment arm's cumulative evidence day by
// day — the monitoring view an experimenter watches to decide when the test
// can stop.
type DailySignificance struct {
	Arm string
	// PValues[d] is the two-proportion z-test p-value of the slot-1
	// engagement difference vs control using all data up to and including
	// day d (0-based).
	PValues []float64
	// FirstSignificantDay is the first day (1-based) at which the
	// cumulative p-value dropped below 0.05 and stayed interpretable;
	// 0 when the test never reached significance.
	FirstSignificantDay int
}

// Result is the full experiment outcome.
type Result struct {
	Arms        []ArmResult
	Comparisons []Comparison
	// Latency aggregates per-request recommendation latency over the whole
	// test, bucketed by simulated day (the Figure 3(c) series).
	Latency *metrics.Series
	// Daily is the cumulative significance trajectory per treatment arm.
	Daily []DailySignificance
}

// assign deterministically maps a session to an arm, mimicking the
// hash-based randomised assignment of production experimentation platforms.
func assign(sessionID sessions.SessionID, seed int64, arms int) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", seed, sessionID)
	return int(h.Sum64() % uint64(arms))
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Arms) < 2 {
		return nil, fmt.Errorf("abtest: need at least a control and one treatment, got %d arms", len(cfg.Arms))
	}
	if cfg.Test == nil || len(cfg.Test.Sessions) == 0 {
		return nil, fmt.Errorf("abtest: empty test dataset")
	}
	if cfg.SlotSize <= 0 {
		cfg.SlotSize = 21
	}
	if cfg.Model == (EngagementModel{}) {
		cfg.Model = DefaultEngagementModel()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	results := make([]ArmResult, len(cfg.Arms))
	for i, arm := range cfg.Arms {
		results[i].Name = arm.Name
	}
	latency := metrics.NewSeries(24 * time.Hour)
	start := cfg.Test.Sessions[0].Time()

	// Per-arm, per-day slot-1 counts for the cumulative significance
	// trajectory.
	dailyImp := make([][]int, len(cfg.Arms))
	dailyEng := make([][]int, len(cfg.Arms))
	record := func(arm, day int, engaged bool) {
		for len(dailyImp[arm]) <= day {
			dailyImp[arm] = append(dailyImp[arm], 0)
			dailyEng[arm] = append(dailyEng[arm], 0)
		}
		dailyImp[arm][day]++
		if engaged {
			dailyEng[arm][day]++
		}
	}

	for si := range cfg.Test.Sessions {
		s := &cfg.Test.Sessions[si]
		if s.Len() < 2 {
			continue
		}
		armIdx := assign(s.ID, cfg.Seed, len(cfg.Arms))
		arm := cfg.Arms[armIdx]
		res := &results[armIdx]
		res.Sessions++

		for t := 0; t < s.Len()-1; t++ {
			evolving := s.Items[:t+1]
			next := s.Items[t+1]

			began := time.Now()
			recs := arm.Recommend(evolving, cfg.SlotSize)
			took := time.Since(began)
			latency.Record(time.Duration(s.Times[t]-start)*time.Second, took)

			res.Impressions++
			p1 := cfg.Model.BaseRate
			if r := rank.RankOfScored(recs, next, 0); r > 0 {
				p1 += cfg.Model.HitBoost * math.Pow(cfg.Model.RankDecay, float64(r-1))
			}
			engaged1 := rng.Float64() < p1
			if engaged1 {
				res.Slot1Engagements++
			}
			day := int((s.Times[t] - start) / (24 * 3600))
			if day < 0 {
				day = 0
			}
			record(armIdx, day, engaged1)

			if cfg.Slot2 != nil {
				slot2 := cfg.Slot2(evolving, cfg.SlotSize)
				overlap := overlapFraction(recs, slot2)
				p2 := cfg.Model.Slot2Base *
					(1 - cfg.Model.OverlapPenalty*overlap) *
					(1 - cfg.Model.AttentionPenalty*p1)
				if p2 < 0 {
					p2 = 0
				}
				if rng.Float64() < p2 {
					res.Slot2Engagements++
				}
			}
		}
	}

	for i := range results {
		r := &results[i]
		if r.Impressions == 0 {
			continue
		}
		n := float64(r.Impressions)
		r.Slot1Rate = float64(r.Slot1Engagements) / n
		r.Slot2Rate = float64(r.Slot2Engagements) / n
		r.SitewideRate = float64(r.Slot1Engagements+r.Slot2Engagements) / n
	}

	control := results[0]
	var comps []Comparison
	for _, r := range results[1:] {
		c := Comparison{Arm: r.Name}
		c.Slot1LiftPct = liftPct(r.Slot1Rate, control.Slot1Rate)
		c.Slot2LiftPct = liftPct(r.Slot2Rate, control.Slot2Rate)
		c.SitewideLiftPct = liftPct(r.SitewideRate, control.SitewideRate)
		c.PValue = TwoProportionZTest(
			r.Slot1Engagements, r.Impressions,
			control.Slot1Engagements, control.Impressions,
		)
		c.Significant = c.PValue < 0.05
		comps = append(comps, c)
	}
	daily := dailySignificance(cfg.Arms, dailyImp, dailyEng)
	return &Result{Arms: results, Comparisons: comps, Latency: latency, Daily: daily}, nil
}

// dailySignificance computes each treatment's cumulative p-value per day
// against the control (arm 0).
func dailySignificance(arms []Arm, dailyImp, dailyEng [][]int) []DailySignificance {
	days := 0
	for _, d := range dailyImp {
		if len(d) > days {
			days = len(d)
		}
	}
	if days == 0 {
		return nil
	}
	cumulative := func(arm, day int) (eng, imp int) {
		for d := 0; d <= day && d < len(dailyImp[arm]); d++ {
			imp += dailyImp[arm][d]
			eng += dailyEng[arm][d]
		}
		return eng, imp
	}
	var out []DailySignificance
	for arm := 1; arm < len(arms); arm++ {
		ds := DailySignificance{Arm: arms[arm].Name, PValues: make([]float64, days)}
		for day := 0; day < days; day++ {
			e1, n1 := cumulative(arm, day)
			e0, n0 := cumulative(0, day)
			p := TwoProportionZTest(e1, n1, e0, n0)
			ds.PValues[day] = p
			if ds.FirstSignificantDay == 0 && p < 0.05 {
				ds.FirstSignificantDay = day + 1
			}
		}
		out = append(out, ds)
	}
	return out
}

func liftPct(treatment, control float64) float64 {
	if control == 0 {
		return 0
	}
	return (treatment - control) / control * 100
}

// overlapFraction is |A ∩ B| / max(|A|,|B|) over the items of two ranked
// lists.
func overlapFraction(a, b []core.ScoredItem) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[sessions.ItemID]struct{}, len(a))
	for _, x := range a {
		set[x.Item] = struct{}{}
	}
	shared := 0
	for _, y := range b {
		if _, ok := set[y.Item]; ok {
			shared++
		}
	}
	denom := len(a)
	if len(b) > denom {
		denom = len(b)
	}
	return float64(shared) / float64(denom)
}

// TwoProportionZTest returns the two-sided p-value for the difference of
// two binomial proportions x1/n1 vs x2/n2 under the pooled normal
// approximation.
func TwoProportionZTest(x1, n1, x2, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return 1
	}
	p1 := float64(x1) / float64(n1)
	p2 := float64(x2) / float64(n2)
	pooled := float64(x1+x2) / float64(n1+n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return 1
	}
	z := (p1 - p2) / se
	// Two-sided p-value via the complementary normal CDF.
	return 2 * (1 - normalCDF(math.Abs(z)))
}

func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
