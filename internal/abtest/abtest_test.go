package abtest

import (
	"math"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// oracle recommends the session's true next item first (only possible in a
// simulation — used to give one arm a known quality edge).
func oracle(ds *sessions.Dataset) RecommendFunc {
	nextOf := map[string]sessions.ItemID{}
	key := func(ev []sessions.ItemID) string {
		return string(encode(ev))
	}
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		for t := 0; t < s.Len()-1; t++ {
			nextOf[key(s.Items[:t+1])] = s.Items[t+1]
		}
	}
	return func(ev []sessions.ItemID, n int) []core.ScoredItem {
		out := make([]core.ScoredItem, 0, n)
		if next, ok := nextOf[key(ev)]; ok {
			out = append(out, core.ScoredItem{Item: next, Score: 1})
		}
		for i := 0; len(out) < n; i++ {
			out = append(out, core.ScoredItem{Item: sessions.ItemID(1000 + i), Score: 0})
		}
		return out
	}
}

func encode(ev []sessions.ItemID) []byte {
	b := make([]byte, 0, len(ev)*4)
	for _, it := range ev {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return b
}

// junk recommends constant irrelevant items.
func junk(ev []sessions.ItemID, n int) []core.ScoredItem {
	out := make([]core.ScoredItem, n)
	for i := range out {
		out[i] = core.ScoredItem{Item: sessions.ItemID(90000 + i), Score: 1}
	}
	return out
}

func testDataset(t *testing.T) *sessions.Dataset {
	t.Helper()
	cfg := synth.Small(31)
	cfg.NumSessions = 1500
	ds, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := Run(Config{Test: ds, Arms: []Arm{{Name: "only", Recommend: junk}}}); err == nil {
		t.Error("single arm accepted")
	}
	if _, err := Run(Config{Arms: []Arm{{Name: "a", Recommend: junk}, {Name: "b", Recommend: junk}}}); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestBetterArmWins(t *testing.T) {
	ds := testDataset(t)
	res, err := Run(Config{
		Test: ds,
		Arms: []Arm{
			{Name: "control-junk", Recommend: junk},
			{Name: "treatment-oracle", Recommend: oracle(ds)},
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 1 {
		t.Fatalf("comparisons = %d, want 1", len(res.Comparisons))
	}
	c := res.Comparisons[0]
	if c.Slot1LiftPct <= 0 {
		t.Errorf("oracle arm lift = %.2f%%, want positive", c.Slot1LiftPct)
	}
	if !c.Significant {
		t.Errorf("oracle-vs-junk difference not significant (p=%.4f)", c.PValue)
	}
}

func TestAssignmentIsDeterministicAndBalanced(t *testing.T) {
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		a := assign(sessions.SessionID(i), 42, 3)
		if a != assign(sessions.SessionID(i), 42, 3) {
			t.Fatal("assignment not deterministic")
		}
		counts[a]++
	}
	for arm, c := range counts {
		share := float64(c) / 9000
		if share < 0.25 || share > 0.42 {
			t.Errorf("arm %d share = %.3f, want ~1/3", arm, share)
		}
	}
}

func TestCannibalisationEmergesFromOverlap(t *testing.T) {
	ds := testDataset(t)
	slot2 := junk // slot 2 shows fixed items 90000+
	overlapping := func(ev []sessions.ItemID, n int) []core.ScoredItem {
		return junk(ev, n) // identical items -> full overlap
	}
	distinct := func(ev []sessions.ItemID, n int) []core.ScoredItem {
		out := make([]core.ScoredItem, n)
		for i := range out {
			out[i] = core.ScoredItem{Item: sessions.ItemID(50000 + i), Score: 1}
		}
		return out
	}
	res, err := Run(Config{
		Test: ds,
		Arms: []Arm{
			{Name: "distinct", Recommend: distinct},
			{Name: "overlapping", Recommend: overlapping},
		},
		Slot2: slot2,
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Comparisons[0]
	if c.Slot2LiftPct >= 0 {
		t.Errorf("overlapping arm slot2 lift = %.2f%%, want negative (cannibalisation)", c.Slot2LiftPct)
	}
}

func TestAttentionCannibalisation(t *testing.T) {
	ds := testDataset(t)
	// Slot 2 shows items disjoint from both arms, so overlap plays no
	// role; only the attention competition differs. The arm with the more
	// relevant slot-1 list must drain slot-2 engagement.
	slot2 := func(ev []sessions.ItemID, n int) []core.ScoredItem {
		out := make([]core.ScoredItem, n)
		for i := range out {
			out[i] = core.ScoredItem{Item: sessions.ItemID(70000 + i), Score: 1}
		}
		return out
	}
	res, err := Run(Config{
		Test: ds,
		Arms: []Arm{
			{Name: "control-junk", Recommend: junk},
			{Name: "treatment-oracle", Recommend: oracle(ds)},
		},
		Slot2: slot2,
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Comparisons[0]
	if c.Slot1LiftPct <= 0 {
		t.Fatalf("oracle arm slot1 lift = %.2f%%, want positive", c.Slot1LiftPct)
	}
	if c.Slot2LiftPct >= 0 {
		t.Errorf("oracle arm slot2 lift = %.2f%%, want negative (attention cannibalisation)", c.Slot2LiftPct)
	}
}

func TestLatencySeriesPopulated(t *testing.T) {
	ds := testDataset(t)
	res, err := Run(Config{
		Test: ds,
		Arms: []Arm{{Name: "a", Recommend: junk}, {Name: "b", Recommend: junk}},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Total().Count() == 0 {
		t.Error("no latency samples recorded")
	}
	var imps int
	for _, a := range res.Arms {
		imps += a.Impressions
	}
	if got := res.Latency.Total().Count(); got != uint64(imps) {
		t.Errorf("latency samples = %d, impressions = %d", got, imps)
	}
}

func TestDailySignificanceTrajectory(t *testing.T) {
	ds := testDataset(t)
	res, err := Run(Config{
		Test: ds,
		Arms: []Arm{
			{Name: "control-junk", Recommend: junk},
			{Name: "treatment-oracle", Recommend: oracle(ds)},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Daily) != 1 {
		t.Fatalf("daily trajectories = %d, want 1", len(res.Daily))
	}
	d := res.Daily[0]
	if d.Arm != "treatment-oracle" {
		t.Errorf("arm = %q", d.Arm)
	}
	if len(d.PValues) == 0 {
		t.Fatal("no daily p-values")
	}
	for _, p := range d.PValues {
		if p < 0 || p > 1 {
			t.Errorf("p-value %v out of range", p)
		}
	}
	// An oracle-vs-junk test must eventually become significant, and its
	// final cumulative p-value must match the overall comparison.
	if d.FirstSignificantDay == 0 {
		t.Error("oracle treatment never reached significance")
	}
	final := d.PValues[len(d.PValues)-1]
	if math.Abs(final-res.Comparisons[0].PValue) > 1e-12 {
		t.Errorf("final daily p %v != overall p %v", final, res.Comparisons[0].PValue)
	}
}

func TestOverlapFraction(t *testing.T) {
	a := []core.ScoredItem{{Item: 1}, {Item: 2}, {Item: 3}}
	b := []core.ScoredItem{{Item: 3}, {Item: 4}}
	if got := overlapFraction(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("overlap = %v, want 1/3", got)
	}
	if overlapFraction(nil, b) != 0 || overlapFraction(a, nil) != 0 {
		t.Error("empty overlap must be 0")
	}
	if got := overlapFraction(a, a); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestTwoProportionZTest(t *testing.T) {
	// Identical proportions: p-value ~ 1.
	if p := TwoProportionZTest(50, 1000, 50, 1000); p < 0.99 {
		t.Errorf("equal proportions p = %v, want ~1", p)
	}
	// Clearly different proportions: p ~ 0.
	if p := TwoProportionZTest(200, 1000, 50, 1000); p > 1e-6 {
		t.Errorf("different proportions p = %v, want ~0", p)
	}
	// Degenerate inputs.
	if p := TwoProportionZTest(0, 0, 5, 10); p != 1 {
		t.Errorf("zero-n p = %v, want 1", p)
	}
	if p := TwoProportionZTest(0, 10, 0, 10); p != 1 {
		t.Errorf("zero-variance p = %v, want 1", p)
	}
	// Symmetry.
	p1 := TwoProportionZTest(60, 1000, 45, 1000)
	p2 := TwoProportionZTest(45, 1000, 60, 1000)
	if math.Abs(p1-p2) > 1e-12 {
		t.Errorf("z-test not symmetric: %v vs %v", p1, p2)
	}
}
