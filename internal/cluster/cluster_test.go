package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"serenade/internal/core"
	"serenade/internal/serving"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Node("key"); ok {
		t.Error("empty ring returned a node")
	}
	if len(r.Nodes()) != 0 {
		t.Error("empty ring has nodes")
	}
}

func TestRingDeterministicRouting(t *testing.T) {
	r := NewRing(32)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("session-%d", i)
		n1, _ := r.Node(key)
		n2, _ := r.Node(key)
		if n1 != n2 {
			t.Fatalf("routing of %q not deterministic: %s vs %s", key, n1, n2)
		}
	}
}

func TestRingAddIdempotent(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("a")
	if got := len(r.Nodes()); got != 1 {
		t.Errorf("nodes = %d, want 1", got)
	}
}

func TestRingRemoveUnknownNoop(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Remove("zzz")
	if _, ok := r.Node("k"); !ok {
		t.Error("ring broke after removing unknown node")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		n, _ := r.Node(fmt.Sprintf("session-%d", i))
		counts[n]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys, want roughly balanced", n, share*100)
		}
	}
}

// TestRingMinimalDisruption: removing one node must only remap the keys it
// owned; every other key keeps its node.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Add(n)
	}
	before := map[string]string{}
	const keys = 5000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("s%d", i)
		before[k], _ = r.Node(k)
	}
	r.Remove("b")
	moved := 0
	for k, prev := range before {
		now, _ := r.Node(k)
		if prev == "b" {
			if now == "b" {
				t.Fatalf("key %s still routed to removed node", k)
			}
			continue
		}
		if now != prev {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node were remapped", moved)
	}
}

// TestRingRoutingProperty: any key routes to some live node, for arbitrary
// membership sequences.
func TestRingRoutingProperty(t *testing.T) {
	prop := func(ops []uint8, keySeed []uint8) bool {
		r := NewRing(16)
		live := map[string]bool{}
		for _, op := range ops {
			node := fmt.Sprintf("n%d", op%6)
			if op%2 == 0 {
				r.Add(node)
				live[node] = true
			} else {
				r.Remove(node)
				delete(live, node)
			}
		}
		for _, ks := range keySeed {
			key := fmt.Sprintf("k%d", ks)
			node, ok := r.Node(key)
			if ok != (len(live) > 0) {
				return false
			}
			if ok && !live[node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func testPool(t *testing.T, n int) *Pool {
	t.Helper()
	ds, err := synth.Generate(synth.Small(55))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(idx, serving.Config{Params: core.Params{M: 100, K: 50}}, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolRejectsZeroReplicas(t *testing.T) {
	if _, err := NewPool(nil, serving.Config{}, 0); err == nil {
		t.Error("zero replicas accepted")
	}
}

func TestPoolStickiness(t *testing.T) {
	p := testPool(t, 3)
	// Issue several updates for one session; the state must accumulate on
	// exactly one replica.
	for i := 1; i <= 4; i++ {
		resp, err := p.Recommend(serving.Request{SessionKey: "sticky", Item: sessions.ItemID(i), Consent: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.SessionLength != i {
			t.Fatalf("request %d: session length %d, want %d (state split across replicas?)", i, resp.SessionLength, i)
		}
	}
	owner, _ := p.Route("sticky")
	withState := 0
	for _, name := range p.Replicas() {
		srv, _ := p.Replica(name)
		if _, ok := srv.SessionState("sticky"); ok {
			withState++
			if name != owner {
				t.Errorf("session state on %s, but router owner is %s", name, owner)
			}
		}
	}
	if withState != 1 {
		t.Errorf("session state present on %d replicas, want exactly 1", withState)
	}
}

func TestPoolSpreadsSessions(t *testing.T) {
	p := testPool(t, 2)
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user-%d", i)
		node, _ := p.Route(key)
		counts[node]++
	}
	for node, c := range counts {
		if c == 0 || c == 500 {
			t.Errorf("replica %s owns %d of 500 sessions, want a spread", node, c)
		}
	}
}

func TestPoolReplicaLoss(t *testing.T) {
	p := testPool(t, 2)
	// Fill sessions on both replicas.
	for i := 0; i < 50; i++ {
		p.Recommend(serving.Request{SessionKey: fmt.Sprintf("u%d", i), Item: 1, Consent: true})
	}
	victim := p.Replicas()[0]
	if err := p.RemoveReplica(victim); err != nil {
		t.Fatal(err)
	}
	// All sessions must still be servable (possibly with fresh state).
	for i := 0; i < 50; i++ {
		if _, err := p.Recommend(serving.Request{SessionKey: fmt.Sprintf("u%d", i), Item: 2, Consent: true}); err != nil {
			t.Fatalf("request after replica loss failed: %v", err)
		}
	}
	if err := p.RemoveReplica(victim); err == nil {
		t.Error("removing an already-removed replica succeeded")
	}
}

func TestPoolAddReplicaDuplicate(t *testing.T) {
	p := testPool(t, 1)
	if err := p.AddReplica("pod-0"); err == nil {
		t.Error("duplicate replica name accepted")
	}
}

func TestPoolNoReplicas(t *testing.T) {
	p := testPool(t, 1)
	p.RemoveReplica("pod-0")
	if _, err := p.Recommend(serving.Request{SessionKey: "u", Item: 1, Consent: true}); err == nil {
		t.Error("recommend with no replicas succeeded")
	}
}
