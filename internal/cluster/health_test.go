package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/obs"
	"serenade/internal/serving"
	"serenade/internal/synth"
)

// TestProxyHealthFanOut drives traffic through a proxy in front of real
// backends and checks that GET /proxy/health aggregates every replica's
// overload signal, keyed and stamped with the backend name.
func TestProxyHealthFanOut(t *testing.T) {
	ds, err := synth.Generate(synth.Small(66))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy()
	for i := 0; i < 2; i++ {
		srv, err := serving.NewServer(idx, serving.Config{
			Params:              core.Params{M: 100, K: 50},
			SLOLatencyThreshold: time.Nanosecond, // every request burns budget
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		u, _ := url.Parse(ts.URL)
		proxy.AddBackend(fmt.Sprintf("pod-%d", i), u)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	// Enough distinct sessions that the ring lands traffic on both pods.
	for i := 0; i < 20; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?session_id=s%d&item_id=1", front.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(front.URL + "/proxy/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Replicas map[string]obs.HealthSignal `json:"replicas"`
		Errors   map[string]string           `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Errors) != 0 {
		t.Fatalf("healthy backends reported errors: %v", out.Errors)
	}
	if len(out.Replicas) != 2 {
		t.Fatalf("got %d replicas, want 2: %v", len(out.Replicas), out.Replicas)
	}
	for name, sig := range out.Replicas {
		if sig.Replica != name {
			t.Errorf("replica %s: signal stamped %q", name, sig.Replica)
		}
		if sig.Goroutines == 0 || sig.Time.IsZero() {
			t.Errorf("replica %s: runtime fields unfilled: %+v", name, sig)
		}
		if !sig.FastBurn {
			t.Errorf("replica %s: 1ns threshold did not burn: %+v", name, sig)
		}
	}
}

// TestProxyHealthUnreachableBackend points one backend at a closed port: the
// aggregate must still return, with the dead pod under errors and the live
// one under replicas.
func TestProxyHealthUnreachableBackend(t *testing.T) {
	proxy, _ := startBackends(t, 1)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL, _ := url.Parse(dead.URL)
	dead.Close() // port is now refused
	proxy.AddBackend("pod-dead", deadURL)

	front := httptest.NewServer(proxy)
	defer front.Close()
	resp, err := http.Get(front.URL + "/proxy/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Replicas map[string]obs.HealthSignal `json:"replicas"`
		Errors   map[string]string           `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Replicas["pod-0"]; !ok {
		t.Errorf("live backend missing from replicas: %v", out.Replicas)
	}
	if _, ok := out.Errors["pod-dead"]; !ok {
		t.Errorf("dead backend missing from errors: %v", out.Errors)
	}
}

// TestPoolHealth checks the in-process analogue: per-replica signals keyed
// and stamped by pod name.
func TestPoolHealth(t *testing.T) {
	ds, err := synth.Generate(synth.Small(66))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(idx, serving.Config{Params: core.Params{M: 100, K: 50}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 10; i++ {
		if _, err := pool.Recommend(serving.Request{SessionKey: fmt.Sprintf("s%d", i), Item: 1, Consent: true}); err != nil {
			t.Fatal(err)
		}
	}
	health := pool.Health()
	if len(health) != 3 {
		t.Fatalf("got %d signals, want 3", len(health))
	}
	for name, sig := range health {
		if sig.Replica != name {
			t.Errorf("replica %s stamped %q", name, sig.Replica)
		}
		if sig.Goroutines == 0 {
			t.Errorf("replica %s: runtime fields unfilled", name)
		}
	}
}
