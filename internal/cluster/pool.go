package cluster

import (
	"fmt"
	"sync"

	"serenade/internal/core"
	"serenade/internal/obs"
	"serenade/internal/obs/quality"
	"serenade/internal/serving"
)

// Pool is a set of stateful serving replicas behind sticky-session routing:
// the in-process equivalent of the paper's two Serenade pods behind istio
// session affinity. Each replica holds its own evolving-session store and a
// reference to the shared, replicated index.
type Pool struct {
	idx *core.Index
	cfg serving.Config

	mu       sync.RWMutex
	ring     *Ring
	replicas map[string]*serving.Server
}

// NewPool creates a pool of n replicas named pod-0 … pod-(n-1), each serving
// from the shared index with the given configuration.
func NewPool(idx *core.Index, cfg serving.Config, n int) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: pool needs at least one replica, got %d", n)
	}
	p := &Pool{
		idx:      idx,
		cfg:      cfg,
		ring:     NewRing(0),
		replicas: make(map[string]*serving.Server),
	}
	for i := 0; i < n; i++ {
		if err := p.AddReplica(fmt.Sprintf("pod-%d", i)); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// AddReplica spins up a new stateful replica and joins it to the ring.
// Sessions remapped onto it start empty — the state-loss trade-off §4.2
// accepts for scaling events.
func (p *Pool) AddReplica(name string) error {
	srv, err := serving.NewServer(p.idx, p.cfg)
	if err != nil {
		return fmt.Errorf("cluster: starting replica %s: %w", name, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.replicas[name]; exists {
		srv.Close()
		return fmt.Errorf("cluster: replica %s already exists", name)
	}
	p.replicas[name] = srv
	p.ring.Add(name)
	return nil
}

// RemoveReplica simulates a pod failure or scale-down: the replica leaves
// the ring and its session state is lost.
func (p *Pool) RemoveReplica(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	srv, ok := p.replicas[name]
	if !ok {
		return fmt.Errorf("cluster: unknown replica %s", name)
	}
	p.ring.Remove(name)
	delete(p.replicas, name)
	return srv.Close()
}

// Route returns the replica name owning a session key.
func (p *Pool) Route(sessionKey string) (string, bool) {
	return p.ring.Node(sessionKey)
}

// Replica returns the named replica's server.
func (p *Pool) Replica(name string) (*serving.Server, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s, ok := p.replicas[name]
	return s, ok
}

// Replicas returns the replica names currently in the ring.
func (p *Pool) Replicas() []string { return p.ring.Nodes() }

// Stats snapshots every replica's serving counters, keyed by replica name —
// the per-pod view a load test or operator dashboard aggregates.
func (p *Pool) Stats() map[string]serving.Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]serving.Stats, len(p.replicas))
	for name, srv := range p.replicas {
		out[name] = srv.Stats()
	}
	return out
}

// Health snapshots every replica's overload telemetry, keyed and stamped by
// replica name — the in-process analogue of the proxy's /proxy/health fan-out.
// A load test consumes this to correlate burn rate with offered load per pod.
func (p *Pool) Health() map[string]obs.HealthSignal {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]obs.HealthSignal, len(p.replicas))
	for name, srv := range p.replicas {
		h := srv.Health()
		h.Replica = name
		out[name] = h
	}
	return out
}

// Quality collects the per-replica online quality snapshots, keyed by
// replica name; replicas without quality telemetry enabled are omitted.
func (p *Pool) Quality() map[string]quality.Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]quality.Snapshot, len(p.replicas))
	for name, srv := range p.replicas {
		if q := srv.Quality(); q != nil {
			out[name] = q.Snapshot()
		}
	}
	return out
}

// Track routes a feedback event to every replica that has quality telemetry
// until one attributes it: recommendation ids are replica-local, so the
// event belongs to whichever replica recognises the id. The boolean result
// is false when no replica attributed the event.
func (p *Pool) Track(req serving.TrackRequest) (serving.TrackResponse, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var last serving.TrackResponse
	tried := false
	for _, srv := range p.replicas {
		resp, ok := srv.Track(req)
		if !ok {
			continue
		}
		tried = true
		last = resp
		if resp.Outcome != "unknown_id" {
			return resp, true
		}
	}
	return last, tried
}

// Recommend routes the request to the session's sticky replica and serves
// it there.
func (p *Pool) Recommend(req serving.Request) (serving.Response, error) {
	node, ok := p.Route(req.SessionKey)
	if !ok {
		return serving.Response{}, fmt.Errorf("cluster: no replicas available")
	}
	p.mu.RLock()
	srv := p.replicas[node]
	p.mu.RUnlock()
	if srv == nil {
		return serving.Response{}, fmt.Errorf("cluster: replica %s vanished", node)
	}
	return srv.Recommend(req)
}

// Close shuts down every replica.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for name, srv := range p.replicas {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
		p.ring.Remove(name)
		delete(p.replicas, name)
	}
	return first
}
