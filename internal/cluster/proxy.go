package cluster

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
)

// Proxy is an HTTP reverse proxy with sticky-session routing: every request
// is forwarded to the backend owning its session key on the consistent-hash
// ring. It models the istio sidecar / Kubernetes session-affinity layer in
// front of the Serenade pods (§4.2) for deployments where the replicas are
// separate processes.
//
// The session key is taken from the `session_id` query parameter or, when
// absent, the X-Session-Id header (for POST bodies the proxy must not
// consume). Requests without a key are rejected, since affinity is the
// correctness contract of the stateful servers.
type Proxy struct {
	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*httputil.ReverseProxy
}

// NewProxy returns a proxy with no backends.
func NewProxy() *Proxy {
	return &Proxy{
		ring:     NewRing(0),
		backends: make(map[string]*httputil.ReverseProxy),
	}
}

// AddBackend registers a named backend serving at target. Adding an
// existing name replaces its target.
func (p *Proxy) AddBackend(name string, target *url.URL) {
	rp := httputil.NewSingleHostReverseProxy(target)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.backends[name]; !exists {
		p.ring.Add(name)
	}
	p.backends[name] = rp
}

// RemoveBackend deregisters a backend; its sessions remap to the remaining
// ones (losing their server-side state, the accepted trade-off of §4.2).
func (p *Proxy) RemoveBackend(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ring.Remove(name)
	delete(p.backends, name)
}

// Backends lists registered backend names.
func (p *Proxy) Backends() []string { return p.ring.Nodes() }

// SessionKey extracts the affinity key from a request.
func SessionKey(r *http.Request) string {
	if key := r.URL.Query().Get("session_id"); key != "" {
		return key
	}
	return r.Header.Get("X-Session-Id")
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := SessionKey(r)
	if key == "" {
		http.Error(w, "session_id query parameter or X-Session-Id header required", http.StatusBadRequest)
		return
	}
	p.mu.RLock()
	name, ok := p.ring.Node(key)
	var backend *httputil.ReverseProxy
	if ok {
		backend = p.backends[name]
	}
	p.mu.RUnlock()
	if backend == nil {
		http.Error(w, "no backends available", http.StatusServiceUnavailable)
		return
	}
	backend.ServeHTTP(w, r)
}
