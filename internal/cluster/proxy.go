package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"

	"serenade/internal/obs"
)

// Proxy is an HTTP reverse proxy with sticky-session routing: every request
// is forwarded to the backend owning its session key on the consistent-hash
// ring. It models the istio sidecar / Kubernetes session-affinity layer in
// front of the Serenade pods (§4.2) for deployments where the replicas are
// separate processes.
//
// The session key is taken from the `session_id` query parameter or, when
// absent, the X-Session-Id header (for POST bodies the proxy must not
// consume). Requests without a key are rejected, since affinity is the
// correctness contract of the stateful servers.
//
// The proxy participates in distributed tracing: it stamps a Traceparent
// header onto requests that arrive without one (and leaves propagated ones
// untouched), so the backend's span records the hop as its parent. It keeps
// per-backend request/error/retry counters in its own metrics registry,
// scrapeable at GET /proxy/metrics.prom, and retries idempotent requests
// once on a transport failure before answering 502. GET /proxy/health fans
// out to every backend's /debug/health and returns the overload signals
// keyed by replica name; GET /proxy/quality does the same for the backends'
// /debug/quality documents, the pool-wide view of the online quality loop.
type Proxy struct {
	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*backend
	reg      *obs.Registry
	health   *http.Client
}

// backend is one upstream with its forwarding proxy and traffic counters.
type backend struct {
	rp       *httputil.ReverseProxy
	target   *url.URL
	requests *obs.Counter
	errors   *obs.Counter
	retries  *obs.Counter
}

// proxyErrKey carries the transport-error slot through the reverse proxy so
// the ErrorHandler can report a failure without writing the response,
// leaving the retry decision to ServeHTTP.
type proxyErrKey struct{}

type proxyErr struct{ err error }

// copyBufPool feeds the reverse proxies' body-copy loops. Without a
// BufferPool, httputil.ReverseProxy allocates a fresh 32 KiB buffer per
// forwarded request; recycling them here makes the proxy's fan-out copies
// steady-state allocation-free, matching the discipline on the serving edge.
type copyBufPool struct{ p sync.Pool }

func (b *copyBufPool) Get() []byte  { return *b.p.Get().(*[]byte) }
func (b *copyBufPool) Put(v []byte) { b.p.Put(&v) }

var proxyCopyBufs = &copyBufPool{p: sync.Pool{New: func() any {
	buf := make([]byte, 32*1024)
	return &buf
}}}

// NewProxy returns a proxy with no backends.
func NewProxy() *Proxy {
	return &Proxy{
		ring:     NewRing(0),
		backends: make(map[string]*backend),
		reg:      obs.NewRegistry(),
		// Short timeout so one wedged replica cannot stall the aggregate
		// /proxy/health view the autoscaler or load test is polling.
		health: &http.Client{Timeout: 2 * time.Second},
	}
}

// Registry exposes the proxy's metrics registry (per-backend counters).
func (p *Proxy) Registry() *obs.Registry { return p.reg }

// AddBackend registers a named backend serving at target. Adding an
// existing name replaces its target; the counters survive the swap so a
// redeployed backend keeps its series.
func (p *Proxy) AddBackend(name string, target *url.URL) {
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.BufferPool = proxyCopyBufs
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		if slot, ok := r.Context().Value(proxyErrKey{}).(*proxyErr); ok {
			slot.err = err
			return
		}
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, exists := p.backends[name]; exists {
		b.rp = rp
		b.target = target
		return
	}
	p.ring.Add(name)
	p.backends[name] = &backend{
		rp:       rp,
		target:   target,
		requests: p.reg.Counter("serenade_proxy_backend_requests_total", "Requests forwarded per backend.", "backend", name),
		errors:   p.reg.Counter("serenade_proxy_backend_errors_total", "Forwarding failures per backend (after retries).", "backend", name),
		retries:  p.reg.Counter("serenade_proxy_backend_retries_total", "Idempotent retries per backend.", "backend", name),
	}
}

// RemoveBackend deregisters a backend; its sessions remap to the remaining
// ones (losing their server-side state, the accepted trade-off of §4.2).
// Its counter series stay in the registry as a record of past traffic.
func (p *Proxy) RemoveBackend(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ring.Remove(name)
	delete(p.backends, name)
}

// Backends lists registered backend names.
func (p *Proxy) Backends() []string { return p.ring.Nodes() }

// SessionKey extracts the affinity key from a request. The query string is
// scanned by hand rather than through r.URL.Query(): building url.Values
// allocates a map plus a string per parameter on every forwarded request,
// and the proxy only ever needs the first session_id. The scan mirrors
// url.ParseQuery's semantics — first occurrence wins, segments containing a
// semicolon are skipped — and unescapes only when the value actually
// contains '%' or '+', so the common case returns a substring of RawQuery.
func SessionKey(r *http.Request) string {
	q := r.URL.RawQuery
	for len(q) > 0 {
		seg := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			seg, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		if seg == "" || strings.IndexByte(seg, ';') >= 0 {
			continue
		}
		k, v, _ := strings.Cut(seg, "=")
		if k != "session_id" {
			continue
		}
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			if v != "" {
				return v
			}
			continue
		}
		if dec, err := url.QueryUnescape(v); err == nil && dec != "" {
			return dec
		}
	}
	return r.Header.Get("X-Session-Id")
}

// retryable reports whether a failed forward may be replayed: the method
// must be idempotent and the body must not have been consumed.
func retryable(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return r.Body == nil || r.Body == http.NoBody
	}
	return false
}

// handleHealth fans a GET /debug/health out to every backend concurrently
// and aggregates the per-replica overload signals, keyed by backend name.
// Unreachable replicas appear under "errors" instead of silently vanishing —
// a wedged pod is exactly the one the operator needs to see.
func (p *Proxy) handleHealth(w http.ResponseWriter, r *http.Request) {
	p.mu.RLock()
	targets := make(map[string]*url.URL, len(p.backends))
	for name, b := range p.backends {
		targets[name] = b.target
	}
	p.mu.RUnlock()

	type result struct {
		name string
		sig  obs.HealthSignal
		err  error
	}
	results := make(chan result, len(targets))
	for name, target := range targets {
		go func(name string, target *url.URL) {
			res := result{name: name}
			res.sig, res.err = p.fetchHealth(r.Context(), target)
			results <- res
		}(name, target)
	}
	out := struct {
		Replicas map[string]obs.HealthSignal `json:"replicas"`
		Errors   map[string]string           `json:"errors,omitempty"`
	}{Replicas: make(map[string]obs.HealthSignal, len(targets))}
	for range targets {
		res := <-results
		if res.err != nil {
			if out.Errors == nil {
				out.Errors = make(map[string]string)
			}
			out.Errors[res.name] = res.err.Error()
			continue
		}
		res.sig.Replica = res.name
		out.Replicas[res.name] = res.sig
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleQuality fans a GET /debug/quality out to every backend concurrently
// and aggregates the per-replica quality documents, keyed by backend name.
// The payloads stay opaque (json.RawMessage): the proxy republishes what the
// replicas report rather than coupling to the quality schema.
func (p *Proxy) handleQuality(w http.ResponseWriter, r *http.Request) {
	p.mu.RLock()
	targets := make(map[string]*url.URL, len(p.backends))
	for name, b := range p.backends {
		targets[name] = b.target
	}
	p.mu.RUnlock()

	type result struct {
		name string
		doc  json.RawMessage
		err  error
	}
	results := make(chan result, len(targets))
	for name, target := range targets {
		go func(name string, target *url.URL) {
			res := result{name: name}
			res.doc, res.err = p.fetchQuality(r.Context(), target)
			results <- res
		}(name, target)
	}
	out := struct {
		Replicas map[string]json.RawMessage `json:"replicas"`
		Errors   map[string]string          `json:"errors,omitempty"`
	}{Replicas: make(map[string]json.RawMessage, len(targets))}
	for range targets {
		res := <-results
		if res.err != nil {
			if out.Errors == nil {
				out.Errors = make(map[string]string)
			}
			out.Errors[res.name] = res.err.Error()
			continue
		}
		out.Replicas[res.name] = res.doc
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// fetchQuality retrieves one backend's /debug/quality document. A replica
// without quality telemetry enabled (404) reports as an error entry.
func (p *Proxy) fetchQuality(ctx context.Context, target *url.URL) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.JoinPath("debug", "quality").String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.health.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// fetchHealth retrieves one backend's /debug/health snapshot.
func (p *Proxy) fetchHealth(ctx context.Context, target *url.URL) (obs.HealthSignal, error) {
	var sig obs.HealthSignal
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target.JoinPath("debug", "health").String(), nil)
	if err != nil {
		return sig, err
	}
	resp, err := p.health.Do(req)
	if err != nil {
		return sig, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sig); err != nil {
		return sig, err
	}
	return sig, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/proxy/metrics.prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p.reg.WritePrometheus(w)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/proxy/health" {
		p.handleHealth(w, r)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/proxy/quality" {
		p.handleQuality(w, r)
		return
	}
	key := SessionKey(r)
	if key == "" {
		http.Error(w, "session_id query parameter or X-Session-Id header required", http.StatusBadRequest)
		return
	}
	p.mu.RLock()
	name, ok := p.ring.Node(key)
	var b *backend
	if ok {
		b = p.backends[name]
	}
	p.mu.RUnlock()
	if b == nil {
		http.Error(w, "no backends available", http.StatusServiceUnavailable)
		return
	}

	// Stamp (or continue) the trace before forwarding so the backend span
	// links to this hop, and surface the id to the caller even on failure.
	traceID := obs.PropagateTrace(r.Header)
	w.Header().Set(obs.RequestIDHeader, traceID)

	slot := &proxyErr{}
	req := r.WithContext(context.WithValue(r.Context(), proxyErrKey{}, slot))
	b.requests.Inc()
	b.rp.ServeHTTP(w, req)
	if slot.err == nil {
		return
	}
	if retryable(r) {
		b.retries.Inc()
		slot.err = nil
		b.rp.ServeHTTP(w, req)
		if slot.err == nil {
			return
		}
	}
	b.errors.Inc()
	http.Error(w, "upstream error: "+slot.err.Error(), http.StatusBadGateway)
}
