package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"serenade/internal/core"
	"serenade/internal/obs"
	"serenade/internal/serving"
	"serenade/internal/synth"
)

// startTracedBackend runs one serving instance with every request sampled,
// behind the proxy, and returns both.
func startTracedBackend(t *testing.T) (*Proxy, *serving.Server) {
	t.Helper()
	ds, err := synth.Generate(synth.Small(66))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serving.NewServer(idx, serving.Config{
		Params:           core.Params{M: 100, K: 50},
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	u, _ := url.Parse(ts.URL)
	proxy := NewProxy()
	proxy.AddBackend("pod-0", u)
	return proxy, srv
}

// TestProxyTracePropagation checks the cross-process tracing contract: a
// request entering at the proxy without a Traceparent gets one stamped, the
// backend continues that trace (its sampled span carries the proxy's trace
// id and a parent span id), and the caller sees the id in X-Request-Id.
func TestProxyTracePropagation(t *testing.T) {
	proxy, srv := startTracedBackend(t)
	front := httptest.NewServer(proxy)
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/recommend?session_id=u1&item_id=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	reqID := resp.Header.Get(obs.RequestIDHeader)
	if len(reqID) != 32 {
		t.Fatalf("X-Request-Id = %q, want 32-hex trace id", reqID)
	}

	traces := srv.Tracer().Recent()
	if len(traces) != 1 {
		t.Fatalf("backend sampled %d traces, want 1", len(traces))
	}
	sp := traces[0]
	if sp.TraceID != reqID {
		t.Errorf("backend trace id %q != proxy trace id %q", sp.TraceID, reqID)
	}
	if sp.ParentID == "" {
		t.Error("backend span has no parent: traceparent was not propagated")
	}
}

// TestProxyBackendCounters drives traffic at a live backend and a dead one
// and checks the per-backend requests/retries/errors series, both directly
// and via the /proxy/metrics.prom scrape.
func TestProxyBackendCounters(t *testing.T) {
	proxy, _ := startTracedBackend(t)
	// A backend nobody listens on: connection refused on every forward.
	dead, _ := url.Parse("http://127.0.0.1:1")
	proxy.AddBackend("pod-dead", dead)
	front := httptest.NewServer(proxy)
	defer front.Close()

	// Find session keys that land on each backend.
	liveKey, deadKey := "", ""
	for i := 0; liveKey == "" || deadKey == ""; i++ {
		key := "s" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		name, _ := proxy.ring.Node(key)
		switch name {
		case "pod-0":
			if liveKey == "" {
				liveKey = key
			}
		case "pod-dead":
			if deadKey == "" {
				deadKey = key
			}
		}
	}

	get := func(key string) int {
		resp, err := http.Get(front.URL + "/v1/recommend?session_id=" + key + "&item_id=0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(liveKey); code != http.StatusOK {
		t.Fatalf("live backend status = %d", code)
	}
	if code := get(deadKey); code != http.StatusBadGateway {
		t.Fatalf("dead backend status = %d, want 502", code)
	}

	resp, err := http.Get(front.URL + "/proxy/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	text := body.String()
	for _, want := range []string{
		`serenade_proxy_backend_requests_total{backend="pod-0"} 1`,
		`serenade_proxy_backend_requests_total{backend="pod-dead"} 1`,
		`serenade_proxy_backend_retries_total{backend="pod-dead"} 1`,
		`serenade_proxy_backend_errors_total{backend="pod-dead"} 1`,
		`serenade_proxy_backend_errors_total{backend="pod-0"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}
