package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"serenade/internal/core"
	"serenade/internal/serving"
	"serenade/internal/synth"
)

// startBackends runs n real serving instances behind httptest servers and
// returns the proxy wired to them plus the backing servers.
func startBackends(t *testing.T, n int) (*Proxy, []*serving.Server) {
	t.Helper()
	ds, err := synth.Generate(synth.Small(66))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy()
	var servers []*serving.Server
	for i := 0; i < n; i++ {
		srv, err := serving.NewServer(idx, serving.Config{Params: core.Params{M: 100, K: 50}})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		u, _ := url.Parse(ts.URL)
		proxy.AddBackend(fmt.Sprintf("pod-%d", i), u)
		servers = append(servers, srv)
	}
	return proxy, servers
}

func TestProxyRequiresSessionKey(t *testing.T) {
	proxy, _ := startBackends(t, 1)
	front := httptest.NewServer(proxy)
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/recommend?item_id=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 without session key", resp.StatusCode)
	}
}

func TestProxyNoBackends(t *testing.T) {
	front := httptest.NewServer(NewProxy())
	defer front.Close()
	resp, err := http.Get(front.URL + "/v1/recommend?session_id=u&item_id=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestProxyStickyAffinity(t *testing.T) {
	proxy, servers := startBackends(t, 3)
	front := httptest.NewServer(proxy)
	defer front.Close()

	// Drive one session through the proxy; its state must accumulate on
	// exactly one backend.
	for i := 1; i <= 4; i++ {
		url := fmt.Sprintf("%s/v1/recommend?session_id=sticky&item_id=%d", front.URL, i)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var out serving.Response
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out.SessionLength != i {
			t.Fatalf("request %d: session length %d, want %d", i, out.SessionLength, i)
		}
	}
	withState := 0
	for _, srv := range servers {
		if _, ok := srv.SessionState("sticky"); ok {
			withState++
		}
	}
	if withState != 1 {
		t.Errorf("session state on %d backends, want 1", withState)
	}
}

func TestProxyHeaderKey(t *testing.T) {
	proxy, _ := startBackends(t, 2)
	front := httptest.NewServer(proxy)
	defer front.Close()

	req, _ := http.NewRequest("GET", front.URL+"/v1/recommend?session_id=h1&item_id=2", nil)
	req.Header.Set("X-Session-Id", "ignored-because-query-wins")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}

	// Header-only requests (e.g. POST with a JSON body) also route.
	req2, _ := http.NewRequest("GET", front.URL+"/healthz", nil)
	req2.Header.Set("X-Session-Id", "h2")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("header-routed status = %d", resp2.StatusCode)
	}
}

func TestProxyBackendRemoval(t *testing.T) {
	proxy, _ := startBackends(t, 2)
	front := httptest.NewServer(proxy)
	defer front.Close()

	get := func(session string) int {
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?session_id=%s&item_id=1", front.URL, session))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 20; i++ {
		if got := get(fmt.Sprintf("u%d", i)); got != http.StatusOK {
			t.Fatalf("pre-removal status = %d", got)
		}
	}
	proxy.RemoveBackend("pod-0")
	if got := len(proxy.Backends()); got != 1 {
		t.Fatalf("backends = %d, want 1", got)
	}
	for i := 0; i < 20; i++ {
		if got := get(fmt.Sprintf("u%d", i)); got != http.StatusOK {
			t.Fatalf("post-removal status = %d (sessions must remap)", got)
		}
	}
}
