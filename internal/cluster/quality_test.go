package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/obs/quality"
	"serenade/internal/serving"
	"serenade/internal/synth"
)

func qualityIndex(t *testing.T) *core.Index {
	t.Helper()
	ds, err := synth.Generate(synth.Small(66))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestProxyQualityFanOut: GET /proxy/quality aggregates every backend's
// /debug/quality document keyed by backend name, and surfaces replicas
// without quality telemetry under errors instead of dropping them.
func TestProxyQualityFanOut(t *testing.T) {
	idx := qualityIndex(t)
	proxy := NewProxy()
	for i := 0; i < 2; i++ {
		cfg := serving.Config{Params: core.Params{M: 100, K: 50}}
		if i == 0 {
			cfg.Quality = &quality.Options{Variant: fmt.Sprintf("arm-%d", i)}
		}
		srv, err := serving.NewServer(idx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		u, _ := url.Parse(ts.URL)
		proxy.AddBackend(fmt.Sprintf("pod-%d", i), u)
	}
	front := httptest.NewServer(proxy)
	defer front.Close()

	for i := 0; i < 10; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?session_id=s%d&item_id=1", front.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(front.URL + "/proxy/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Replicas map[string]quality.Snapshot `json:"replicas"`
		Errors   map[string]string           `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// pod-0 has telemetry; pod-1 404s and must land under errors.
	if _, ok := out.Replicas["pod-0"]; !ok {
		t.Fatalf("pod-0 missing from replicas: %+v", out)
	}
	if out.Replicas["pod-0"].Variant != "arm-0" {
		t.Fatalf("pod-0 snapshot = %+v", out.Replicas["pod-0"])
	}
	if _, ok := out.Errors["pod-1"]; !ok {
		t.Fatalf("quality-disabled pod-1 not surfaced under errors: %+v", out)
	}
}

// TestPoolQualityAndTrack: recommendation ids are replica-local, so the pool
// fans a feedback event across replicas until one attributes it, and the
// aggregate Quality() view carries each replica's lines.
func TestPoolQualityAndTrack(t *testing.T) {
	idx := qualityIndex(t)
	pool, err := NewPool(idx, serving.Config{
		Params:  core.Params{M: 100, K: 50},
		Quality: &quality.Options{Variant: "a", Window: time.Minute},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var tracked int
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("sess-%d", i)
		resp, err := pool.Recommend(serving.Request{SessionKey: key, Item: 1, Consent: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.RecommendationID == 0 {
			t.Fatal("pool response has no recommendation id")
		}
		if len(resp.Items) == 0 {
			continue
		}
		tr, ok := pool.Track(serving.TrackRequest{
			RecommendationID: resp.RecommendationID,
			Item:             resp.Items[0].Item,
		})
		if !ok {
			t.Fatalf("Track found no quality-enabled replica")
		}
		if tr.Outcome == quality.OutcomeAttributed {
			tracked++
		}
	}
	if tracked == 0 {
		t.Fatal("no clicks attributed through the pool")
	}

	snaps := pool.Quality()
	if len(snaps) != 3 {
		t.Fatalf("Quality() covered %d replicas, want 3", len(snaps))
	}
	var clicks uint64
	for _, snap := range snaps {
		for _, ln := range snap.Lines {
			clicks += ln.Cumulative.Clicks
		}
	}
	if clicks != uint64(tracked) {
		t.Fatalf("aggregated clicks = %d, want %d", clicks, tracked)
	}

	// Note: ids are per-replica sequences, so an id can collide on a replica
	// that did not serve the exposure. The fan-out stops at the first replica
	// whose live slot matches the id; an id nobody recognises must not count.
	if tr, _ := pool.Track(serving.TrackRequest{RecommendationID: 1 << 40, Item: 0}); tr.Outcome == quality.OutcomeAttributed {
		t.Fatalf("phantom id attributed: %+v", tr)
	}
}
