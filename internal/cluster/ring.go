// Package cluster provides sticky-session request routing over a pool of
// stateful recommendation servers.
//
// The paper colocates each evolving session with a single serving pod by
// partitioning requests on the session identifier, implemented in production
// with Kubernetes session affinity and istio sidecars (§4.1-4.2). Here the
// same guarantee — every request of a session is handled by the same
// stateful replica — is provided by a consistent-hash ring with virtual
// nodes, so that adding or removing a replica only remaps a 1/n fraction of
// the sessions (the paper's trade-off discussion: losing a slice of session
// state on scaling events is acceptable because sessions are short-lived).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over named nodes. It is safe for
// concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	hashes []uint32          // sorted virtual node positions
	owner  map[uint32]string // virtual node position -> node name
	nodes  map[string]struct{}
}

// NewRing creates a ring with the given virtual nodes per physical node.
// vnodes <= 0 selects a default of 64.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{
		vnodes: vnodes,
		owner:  make(map[uint32]string),
		nodes:  make(map[string]struct{}),
	}
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// Add inserts a node. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		h := hash32(fmt.Sprintf("%s#%d", node, v))
		if _, taken := r.owner[h]; taken {
			continue // vanishingly rare collision: skip this virtual node
		}
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a node. Removing an unknown node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Nodes returns the current node names in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Node returns the node owning key. The second result is false when the
// ring is empty.
func (r *Ring) Node(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return "", false
	}
	h := hash32(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[r.hashes[i]], true
}
