// Package compressed implements VMIS-kNN over a compressed in-memory index,
// the first future-work direction named in the paper's conclusion ("whether
// we can run our similarity computations on a compressed version of the
// index").
//
// Posting lists are descending in session id, so they are stored as a head
// value plus positive deltas in varint encoding, and per-session item lists
// are varint-encoded; both live in two shared byte arenas with per-entry
// offsets. Timestamps keep their dense array because the algorithm needs
// random access by session id. The similarity computation decodes posting
// lists lazily through a cursor, so early stopping also skips *decoding*
// the cold tail of each list — compression and the algorithm's access
// pattern compose.
package compressed

import (
	"encoding/binary"
	"fmt"
	"math"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Index is a compressed, immutable VMIS-kNN index. Safe for concurrent
// readers.
type Index struct {
	numSessions int
	numItems    int
	capacity    int
	times       []int64

	postingData []byte
	postingOff  []uint32 // numItems+1 offsets into postingData

	itemData []byte
	itemOff  []uint32 // numSessions+1 offsets into itemData

	df  []int32
	idf []float64
}

// FromIndex compresses an existing index. The original can be released
// afterwards.
func FromIndex(src *core.Index) *Index {
	n := src.NumSessions()
	items := src.NumItems()
	c := &Index{
		numSessions: n,
		numItems:    items,
		capacity:    src.Capacity(),
		times:       src.Times(),
		postingOff:  make([]uint32, items+1),
		itemOff:     make([]uint32, n+1),
		df:          make([]int32, items),
		idf:         make([]float64, items),
	}

	var buf [binary.MaxVarintLen64]byte
	for i := 0; i < items; i++ {
		item := sessions.ItemID(i)
		c.df[i] = int32(src.DF(item))
		c.idf[i] = src.IDF(item)
		c.postingOff[i] = uint32(len(c.postingData))
		postings := src.Postings(item)
		k := binary.PutUvarint(buf[:], uint64(len(postings)))
		c.postingData = append(c.postingData, buf[:k]...)
		prev := uint64(0)
		for j, sid := range postings {
			v := uint64(sid)
			if j == 0 {
				k = binary.PutUvarint(buf[:], v)
			} else {
				k = binary.PutUvarint(buf[:], prev-v) // descending: deltas >= 0
			}
			prev = v
			c.postingData = append(c.postingData, buf[:k]...)
		}
	}
	c.postingOff[items] = uint32(len(c.postingData))

	for s := 0; s < n; s++ {
		c.itemOff[s] = uint32(len(c.itemData))
		list := src.SessionItems(sessions.SessionID(s))
		k := binary.PutUvarint(buf[:], uint64(len(list)))
		c.itemData = append(c.itemData, buf[:k]...)
		for _, it := range list {
			k = binary.PutUvarint(buf[:], uint64(it))
			c.itemData = append(c.itemData, buf[:k]...)
		}
	}
	c.itemOff[n] = uint32(len(c.itemData))
	return c
}

// NumSessions reports |H|.
func (c *Index) NumSessions() int { return c.numSessions }

// NumItems reports the dense item-id space size.
func (c *Index) NumItems() int { return c.numItems }

// Capacity reports the posting-list truncation bound inherited from the
// source index.
func (c *Index) Capacity() int { return c.capacity }

// Time returns the timestamp of a historical session.
func (c *Index) Time(s sessions.SessionID) int64 { return c.times[s] }

// IDF returns log(|H|/h_i).
func (c *Index) IDF(item sessions.ItemID) float64 {
	if int(item) >= len(c.idf) {
		return 0
	}
	return c.idf[item]
}

// DF returns the document frequency of an item.
func (c *Index) DF(item sessions.ItemID) int {
	if int(item) >= len(c.df) {
		return 0
	}
	return int(c.df[item])
}

// MemoryFootprint estimates the compressed index's in-memory size in bytes,
// comparable to (*core.Index).MemoryFootprint.
func (c *Index) MemoryFootprint() int64 {
	var b int64
	b += int64(len(c.times)) * 8
	b += int64(len(c.postingData)) + int64(len(c.postingOff))*4
	b += int64(len(c.itemData)) + int64(len(c.itemOff))*4
	b += int64(len(c.df))*4 + int64(len(c.idf))*8
	return b
}

// postingCursor iterates a compressed posting list without materialising it.
type postingCursor struct {
	data      []byte
	remaining int
	cur       uint64
	first     bool
}

// postings opens a cursor over an item's posting list.
func (c *Index) postings(item sessions.ItemID) postingCursor {
	if int(item) >= c.numItems {
		return postingCursor{}
	}
	data := c.postingData[c.postingOff[item]:c.postingOff[item+1]]
	count, n := binary.Uvarint(data)
	return postingCursor{data: data[n:], remaining: int(count), first: true}
}

// next yields the next (most recent remaining) session id.
func (pc *postingCursor) next() (sessions.SessionID, bool) {
	if pc.remaining == 0 {
		return 0, false
	}
	v, n := binary.Uvarint(pc.data)
	pc.data = pc.data[n:]
	pc.remaining--
	if pc.first {
		pc.cur = v
		pc.first = false
	} else {
		pc.cur -= v
	}
	return sessions.SessionID(pc.cur), true
}

// sessionItemsInto decodes a session's distinct items into buf.
func (c *Index) sessionItemsInto(s sessions.SessionID, buf []sessions.ItemID) []sessions.ItemID {
	data := c.itemData[c.itemOff[s]:c.itemOff[s+1]]
	count, n := binary.Uvarint(data)
	data = data[n:]
	buf = buf[:0]
	for i := 0; i < int(count); i++ {
		v, n := binary.Uvarint(data)
		data = data[n:]
		buf = append(buf, sessions.ItemID(v))
	}
	return buf
}

// SessionItems returns a session's distinct items (allocating; tests and
// inspection — the recommender uses the pooled variant).
func (c *Index) SessionItems(s sessions.SessionID) []sessions.ItemID {
	return c.sessionItemsInto(s, nil)
}

// Postings materialises an item's posting list (allocating; for tests).
func (c *Index) Postings(item sessions.ItemID) []sessions.SessionID {
	var out []sessions.SessionID
	pc := c.postings(item)
	for {
		sid, ok := pc.next()
		if !ok {
			return out
		}
		out = append(out, sid)
	}
}

// CompressionRatio reports source footprint divided by compressed
// footprint.
func CompressionRatio(src *core.Index, c *Index) float64 {
	d := float64(c.MemoryFootprint())
	if d == 0 {
		return math.Inf(1)
	}
	return float64(src.MemoryFootprint()) / d
}

// validate is used by tests to ensure offsets are coherent.
func (c *Index) validate() error {
	if len(c.postingOff) != c.numItems+1 || len(c.itemOff) != c.numSessions+1 {
		return fmt.Errorf("compressed: offset table sizes inconsistent")
	}
	return nil
}
