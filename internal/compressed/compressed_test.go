package compressed

import (
	"math/rand"
	"reflect"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

func sourceIndex(t testing.TB, seed int64, capacity int) *core.Index {
	t.Helper()
	ds, err := synth.Generate(synth.Small(seed))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestRoundTripStructures(t *testing.T) {
	src := sourceIndex(t, 9, 50)
	c := FromIndex(src)
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSessions() != src.NumSessions() || c.NumItems() != src.NumItems() || c.Capacity() != src.Capacity() {
		t.Fatal("shape changed under compression")
	}
	for i := 0; i < src.NumItems(); i++ {
		item := sessions.ItemID(i)
		if c.DF(item) != src.DF(item) || c.IDF(item) != src.IDF(item) {
			t.Fatalf("df/idf of item %d changed", i)
		}
		got, want := c.Postings(item), src.Postings(item)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("postings of item %d changed: %v vs %v", i, got, want)
		}
	}
	for s := 0; s < src.NumSessions(); s++ {
		sid := sessions.SessionID(s)
		got, want := c.SessionItems(sid), src.SessionItems(sid)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("items of session %d changed", s)
		}
		if c.Time(sid) != src.Times()[s] {
			t.Fatalf("time of session %d changed", s)
		}
	}
}

func TestOutOfRangeAccessors(t *testing.T) {
	c := FromIndex(sourceIndex(t, 1, 0))
	if c.DF(99999) != 0 || c.IDF(99999) != 0 {
		t.Error("out-of-range df/idf not zero")
	}
	if got := c.Postings(99999); got != nil {
		t.Errorf("out-of-range postings = %v", got)
	}
}

func TestCompressionShrinksFootprint(t *testing.T) {
	src := sourceIndex(t, 2, 0)
	c := FromIndex(src)
	ratio := CompressionRatio(src, c)
	if ratio <= 1.2 {
		t.Errorf("compression ratio = %.2f, want > 1.2", ratio)
	}
}

// TestRecommenderMatchesCore is the headline property: the compressed
// executor returns exactly the same neighbours and recommendations as the
// uncompressed one, across parameter settings and random queries.
func TestRecommenderMatchesCore(t *testing.T) {
	src := sourceIndex(t, 3, 0)
	c := FromIndex(src)
	for _, p := range []core.Params{
		{M: 10, K: 5},
		{M: 100, K: 50},
		{M: 500, K: 100, DisableEarlyStopping: true, HeapArity: 2},
	} {
		ref, err := core.NewRecommender(src, p)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := NewRecommender(c, p)
		if err != nil {
			t.Fatal(err)
		}
		run(t, ref, comp, int64(p.M))
	}
}

func run(t *testing.T, ref *core.Recommender, comp *Recommender, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 200; trial++ {
		length := 1 + rng.Intn(6)
		q := make([]sessions.ItemID, length)
		for i := range q {
			q[i] = sessions.ItemID(rng.Intn(500))
		}
		a := ref.Recommend(q, 21)
		b := comp.Recommend(q, 21)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("compressed recommender disagrees on %v:\n%v\nvs\n%v", q, a, b)
		}
	}
}

func TestRecommenderValidation(t *testing.T) {
	c := FromIndex(sourceIndex(t, 4, 20))
	if _, err := NewRecommender(c, core.Params{M: 100, K: 10}); err == nil {
		t.Error("M beyond capacity accepted")
	}
	if _, err := NewRecommender(c, core.Params{M: 0, K: 0}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCloneShareIndex(t *testing.T) {
	c := FromIndex(sourceIndex(t, 5, 0))
	r, err := NewRecommender(c, core.Params{M: 50, K: 20})
	if err != nil {
		t.Fatal(err)
	}
	cl := r.Clone()
	q := []sessions.ItemID{1, 2}
	if !reflect.DeepEqual(r.Recommend(q, 10), cl.Recommend(q, 10)) {
		t.Error("clone disagrees")
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	c := FromIndex(sourceIndex(t, 6, 0))
	r, _ := NewRecommender(c, core.Params{M: 50, K: 20})
	if r.Recommend(nil, 5) != nil {
		t.Error("empty session must return nil")
	}
	if r.Recommend([]sessions.ItemID{1}, 0) != nil {
		t.Error("n=0 must return nil")
	}
	if r.Recommend([]sessions.ItemID{999999}, 5) != nil {
		t.Error("unknown item must return nil")
	}
}

// BenchmarkAblationCompressedVsRaw compares query latency over the two
// index representations (the compression trade-off study).
func BenchmarkAblationCompressedVsRaw(b *testing.B) {
	src := sourceIndex(b, 7, 0)
	c := FromIndex(src)
	p := core.Params{M: 500, K: 100}
	rawRec, err := core.NewRecommender(src, p)
	if err != nil {
		b.Fatal(err)
	}
	compRec, err := NewRecommender(c, p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	queries := make([][]sessions.ItemID, 256)
	for i := range queries {
		q := make([]sessions.ItemID, 1+rng.Intn(5))
		for j := range q {
			q[j] = sessions.ItemID(rng.Intn(500))
		}
		queries[i] = q
	}
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rawRec.Recommend(queries[i%len(queries)], 21)
		}
		b.ReportMetric(float64(src.MemoryFootprint()), "index-bytes")
	})
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			compRec.Recommend(queries[i%len(queries)], 21)
		}
		b.ReportMetric(float64(c.MemoryFootprint()), "index-bytes")
	})
}
