package compressed

import "fmt"

func errMExceedsCapacity(m, capacity int) error {
	return fmt.Errorf("compressed: M (%d) exceeds the index posting-list capacity (%d)", m, capacity)
}
