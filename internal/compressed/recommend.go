package compressed

import (
	"serenade/internal/core"
	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

// Recommender executes VMIS-kNN (Algorithm 2) directly over the compressed
// index: posting lists are decoded lazily through cursors, so early
// stopping skips decoding the old tail of each list. Semantics are
// identical to core.Recommender — the equivalence is property-tested.
// A Recommender reuses buffers and is not safe for concurrent use; create
// one per goroutine with Clone.
type Recommender struct {
	idx *Index
	p   core.Params

	r       map[sessions.SessionID]accum
	dup     map[sessions.ItemID]struct{}
	bt      *dheap.Heap[btEntry]
	topk    *dheap.Bounded[core.Neighbor]
	scores  map[sessions.ItemID]float64
	itemBuf []sessions.ItemID
	outH    *dheap.Bounded[core.ScoredItem]
	outCap  int
}

type accum struct {
	score  float64
	maxPos int32
}

type btEntry struct {
	id   sessions.SessionID
	time int64
}

// NewRecommender validates parameters and returns a query executor over the
// compressed index.
func NewRecommender(idx *Index, p core.Params) (*Recommender, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if idx.capacity > 0 && p.M > idx.capacity {
		return nil, errMExceedsCapacity(p.M, idx.capacity)
	}
	p = withDefaults(p)
	r := &Recommender{
		idx:    idx,
		p:      p,
		r:      make(map[sessions.SessionID]accum, p.M),
		dup:    make(map[sessions.ItemID]struct{}, p.MaxSessionLength),
		scores: make(map[sessions.ItemID]float64, 256),
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	r.topk = dheap.NewBounded(p.HeapArity, p.K, neighborLess)
	return r, nil
}

func withDefaults(p core.Params) core.Params {
	if p.MaxSessionLength <= 0 {
		p.MaxSessionLength = core.DefaultMaxSessionLength
	}
	if p.Decay == nil {
		p.Decay = core.LinearDecay
	}
	if p.MatchWeight == nil {
		p.MatchWeight = core.LinearMatchWeight
	}
	if p.HeapArity == 0 {
		p.HeapArity = 8
	}
	return p
}

func neighborLess(a, b core.Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Time < b.Time
}

// Clone returns an independent Recommender sharing the immutable index.
func (r *Recommender) Clone() *Recommender {
	c, err := NewRecommender(r.idx, r.p)
	if err != nil {
		panic("compressed: Clone failed: " + err.Error())
	}
	return c
}

// NeighborSessions computes the k most similar historical sessions.
func (r *Recommender) NeighborSessions(evolving []sessions.ItemID) []core.Neighbor {
	s := evolving
	if len(s) > r.p.MaxSessionLength {
		s = s[len(s)-r.p.MaxSessionLength:]
	}
	length := len(s)

	clear(r.r)
	clear(r.dup)
	r.bt.Reset()
	r.topk.Reset()

	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if _, dup := r.dup[item]; dup {
			continue
		}
		r.dup[item] = struct{}{}
		cursor := r.idx.postings(item)
		pi := r.p.Decay(pos, length)

		for {
			j, ok := cursor.next()
			if !ok {
				break
			}
			if acc, ok := r.r[j]; ok {
				acc.score += pi
				r.r[j] = acc
				continue
			}
			tj := r.idx.times[j]
			if len(r.r) < r.p.M {
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.Push(btEntry{id: j, time: tj})
				continue
			}
			oldest, _ := r.bt.Peek()
			if tj > oldest.time {
				delete(r.r, oldest.id)
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.ReplaceRoot(btEntry{id: j, time: tj})
				continue
			}
			if !r.p.DisableEarlyStopping {
				// Early stopping also ends *decoding* this posting list.
				break
			}
		}
	}

	for j, acc := range r.r {
		r.topk.Offer(core.Neighbor{
			ID:     j,
			Score:  acc.score,
			MaxPos: int(acc.maxPos),
			Time:   r.idx.times[j],
		})
	}
	return r.topk.DrainDescending()
}

// Recommend computes the top-n next-item recommendations.
func (r *Recommender) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	neighbors := r.NeighborSessions(evolving)
	if len(neighbors) == 0 {
		return nil
	}
	clear(r.scores)
	for _, nb := range neighbors {
		w := r.p.MatchWeight(nb.MaxPos) * nb.Score
		if w == 0 {
			continue
		}
		r.itemBuf = r.idx.sessionItemsInto(nb.ID, r.itemBuf)
		for _, item := range r.itemBuf {
			r.scores[item] += w * r.idx.idf[item]
		}
	}
	if r.outH == nil {
		r.outH = dheap.NewBounded(r.p.HeapArity, n, scoredItemLess)
		r.outCap = n
	} else if r.outCap != n {
		// Callers alternating n must not thrash the heap: reuse its
		// storage, growing only when the new bound exceeds it.
		r.outH.ResetWithCap(n)
		r.outCap = n
	} else {
		r.outH.Reset()
	}
	for item, score := range r.scores {
		if score > 0 {
			r.outH.Offer(core.ScoredItem{Item: item, Score: score})
		}
	}
	out := r.outH.DrainDescending()
	if len(out) == 0 {
		return nil
	}
	return out
}

func scoredItemLess(a, b core.ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}
