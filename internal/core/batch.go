package core

import (
	"slices"

	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

// BatchRecommender executes up to B concurrent VMIS-kNN queries as one batch,
// walking each CSR posting list once per distinct (recency round, item) pair
// across the whole batch instead of once per request. Concurrent sessions in
// production traffic overlap heavily in their recent items (trending
// products, flash sales), so the batch amortises the posting-arena cache
// misses — the dominant cost of the intersection loop — across every request
// that shares an item, while each request keeps its own epoch-stamped
// candidate table.
//
// Exactness is by construction, not by tolerance. A lane's output depends on
// the order its postings are consumed (float64 accumulation order, and the
// strictly-greater timestamp test of the eviction rule), so the batch
// schedules work round-major: round r visits every lane's r-th most recent
// item, lanes whose round-r items coincide share one walk of that posting
// list, and each posting entry is applied to every sharing lane through the
// same consumePosting method the single-query path runs. Every lane therefore
// consumes exactly the (item, posting) sequence the single-query path would,
// in the same order, against private candidate state — so BatchRecommend is
// bit-identical to per-request Recommend in both float64 and float32 modes
// (pinned by TestBatchRecommendMatchesSingle).
//
// Identical queries in one batch (duplicate-burst traffic) are computed once:
// lanes whose truncated sessions are equal share the canonical lane's result
// slice.
//
// Scoring (the second phase) runs lane-serial through one shared item-score
// accumulator, so batch memory is O(B·M + numItems), not O(B·numItems).
//
// A BatchRecommender reuses internal buffers across calls and is NOT safe for
// concurrent use; the serving layer pools one per worker. Results alias those
// buffers (and duplicates alias each other) and are valid, read-only, until
// the next call.
type BatchRecommender struct {
	idx *Index
	p   Params

	lanes   []*batchLane
	acc     *itemAccumulator
	walkers []*batchLane
	results [][]ScoredItem
}

// batchLane is the per-request slot of a batch: a private candidate kernel
// plus the round-walk bookkeeping.
type batchLane struct {
	rec    *Recommender
	query  []sessions.ItemID // truncated evolving session
	length int
	canon  int // lane computing this query (itself when unique)

	// Per-group walk state: the lane's decay weight and 1-based position for
	// the item being walked, and whether it is still consuming postings
	// (early stopping clears it).
	pi      float64
	pos     int
	walking bool
	grouped bool // lane already handled in the current round
}

// NewBatchRecommender validates the parameters and returns a batch executor
// pre-sized for maxBatch lanes (further lanes are grown on demand). Like
// NewRecommender it is bound to one index generation.
func NewBatchRecommender(idx *Index, p Params, maxBatch int) (*BatchRecommender, error) {
	proto, err := NewRecommender(idx, p)
	if err != nil {
		return nil, err
	}
	b := &BatchRecommender{idx: idx, p: proto.p, acc: proto.acc}
	b.lanes = append(b.lanes, &batchLane{rec: proto})
	for len(b.lanes) < maxBatch {
		b.addLane()
	}
	return b, nil
}

// addLane appends one more per-request candidate kernel. The item-score
// accumulator is shared (scoring is lane-serial), so a lane costs O(M), not
// O(numItems).
func (b *BatchRecommender) addLane() {
	p := b.p
	r := &Recommender{
		idx:  b.idx,
		p:    p,
		tab:  newProbeTable(p.M),
		seen: make([]sessions.ItemID, 0, p.MaxSessionLength),
		acc:  b.acc,
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	b.lanes = append(b.lanes, &batchLane{rec: r})
}

// Params returns the batch recommender's (defaulted) parameters.
func (b *BatchRecommender) Params() Params { return b.p }

// Index returns the underlying index.
func (b *BatchRecommender) Index() *Index { return b.idx }

// Lanes reports the number of allocated per-request kernels.
func (b *BatchRecommender) Lanes() int { return len(b.lanes) }

// MemoryFootprint estimates the batch executor's buffer size in bytes:
// O(B·M) of per-lane candidate state plus one O(numItems) shared accumulator.
func (b *BatchRecommender) MemoryFootprint() int64 {
	total := b.acc.footprint()
	for _, ln := range b.lanes {
		r := ln.rec
		total += r.tab.footprint()
		total += int64(cap(r.seen)) * 4
		total += int64(b.p.M) * 16         // bt heap storage
		total += int64(cap(r.nbrBuf)) * 32 // neighbour collect buffer
		total += int64(cap(r.outBuf)) * 16 // per-lane output buffer
	}
	return total
}

// BatchRecommend computes top-n recommendations for every evolving session in
// the batch. Element i of the result corresponds to batch[i], ordered by
// descending score with ties toward smaller item ids — exactly what
// Recommend(batch[i], n) returns (nil for empty sessions or n <= 0). The
// result and its element slices alias reused buffers (duplicate queries share
// one slice) and are valid, read-only, until the next call.
func (b *BatchRecommender) BatchRecommend(batch [][]sessions.ItemID, n int) [][]ScoredItem {
	res := b.results[:0]
	for range batch {
		res = append(res, nil)
	}
	b.results = res
	if n <= 0 || len(batch) == 0 {
		return res
	}
	for len(b.lanes) < len(batch) {
		b.addLane()
	}

	// Lane assignment + in-batch dedup: a lane whose truncated query equals
	// an earlier canonical lane's just borrows that lane's result.
	maxRounds := 0
	for i, evolving := range batch {
		ln := b.lanes[i]
		ln.query, ln.length, ln.canon = nil, 0, i
		if len(evolving) == 0 {
			continue
		}
		q := ln.rec.truncate(evolving)
		ln.query, ln.length = q, len(q)
		for k := 0; k < i; k++ {
			if prev := b.lanes[k]; prev.canon == k && slices.Equal(prev.query, q) {
				ln.canon = k
				break
			}
		}
		if ln.canon != i {
			continue
		}
		ln.rec.resetCandidates()
		if ln.length > maxRounds {
			maxRounds = ln.length
		}
	}

	// Phase 1, round-major intersection: round r visits each lane's r-th most
	// recent item (1-based evolving position length−r+1), so every lane sees
	// its own items in exactly the single-query order while lanes that agree
	// on the round's item share one walk of its posting list.
	for round := 1; round <= maxRounds; round++ {
		for i := range batch {
			b.lanes[i].grouped = false
		}
		for i := range batch {
			ln := b.lanes[i]
			if ln.canon != i || round > ln.length || ln.grouped {
				continue
			}
			ln.grouped = true
			item := ln.query[ln.length-round]

			walkers := b.walkers[:0]
			if b.joinWalk(ln, item, round) {
				walkers = append(walkers, ln)
			}
			for j := i + 1; j < len(batch); j++ {
				lj := b.lanes[j]
				if lj.canon != j || round > lj.length || lj.grouped {
					continue
				}
				if lj.query[lj.length-round] != item {
					continue
				}
				lj.grouped = true
				if b.joinWalk(lj, item, round) {
					walkers = append(walkers, lj)
				}
			}
			b.walkers = walkers // retain grown storage

			if len(walkers) == 0 {
				continue
			}
			remaining := len(walkers)
			for _, sid := range b.idx.Postings(item) {
				for _, w := range walkers {
					if !w.walking {
						continue
					}
					if !w.rec.consumePosting(sid, w.pi, w.pos) {
						w.walking = false
						remaining--
					}
				}
				if remaining == 0 {
					break
				}
			}
		}
	}

	// Phase 2, lane-serial top-k + scoring through the shared accumulator —
	// the same collect/score code the single-query path runs, so outputs
	// match it bit for bit.
	for i := range batch {
		ln := b.lanes[i]
		if ln.canon != i || ln.length == 0 {
			continue
		}
		res[i] = ln.rec.ScoreNeighbors(ln.rec.collectTopNeighbors(), n)
	}
	for i := range batch {
		if c := b.lanes[i].canon; c != i {
			res[i] = res[c]
		}
	}
	return res
}

// joinWalk applies the per-lane duplicate-item check for the round's item and
// primes the lane's walk state (decay weight, position). It mirrors the head
// of the single-query intersection loop: a duplicate item keeps only its most
// recent position, and the seen list records the item whether or not its
// posting list is empty.
func (b *BatchRecommender) joinWalk(ln *batchLane, item sessions.ItemID, round int) bool {
	if ln.rec.seenBefore(item) {
		return false
	}
	ln.rec.seen = append(ln.rec.seen, item)
	ln.pos = ln.length - round + 1
	ln.pi = b.p.Decay(ln.pos, ln.length)
	ln.walking = true
	return true
}
