package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"serenade/internal/sessions"
)

// randomBatch draws a batch of evolving sessions, deliberately duplicating
// earlier entries about a third of the time (sharing the same backing slice,
// like coalesced duplicate-burst traffic) and occasionally inserting an empty
// session.
func randomBatch(rng *rand.Rand, size, vocab int) [][]sessions.ItemID {
	batch := make([][]sessions.ItemID, 0, size)
	for len(batch) < size {
		switch {
		case len(batch) > 0 && rng.Intn(3) == 0:
			batch = append(batch, batch[rng.Intn(len(batch))])
		case rng.Intn(10) == 0:
			batch = append(batch, nil)
		default:
			batch = append(batch, randomEvolving(rng, vocab))
		}
	}
	return batch
}

// assertBatchMatchesSingle runs the same batch through BatchRecommend and
// per-request Recommend and fails on any divergence. tol 0 demands exact
// (bit-identical) scores; a positive tol allows that much absolute drift.
func assertBatchMatchesSingle(t *testing.T, br *BatchRecommender, rec *Recommender, batch [][]sessions.ItemID, n int, tol float64) {
	t.Helper()
	got := br.BatchRecommend(batch, n)
	if len(got) != len(batch) {
		t.Fatalf("batch of %d returned %d results", len(batch), len(got))
	}
	for i, q := range batch {
		want := rec.Recommend(q, n)
		if len(got[i]) != len(want) {
			t.Fatalf("lane %d (query %v): batch returned %d items, single %d\nbatch:  %v\nsingle: %v",
				i, q, len(got[i]), len(want), got[i], want)
		}
		for j := range want {
			if got[i][j].Item != want[j].Item {
				t.Fatalf("lane %d (query %v): rank %d is item %d (batch) vs %d (single)",
					i, q, j, got[i][j].Item, want[j].Item)
			}
			if d := math.Abs(got[i][j].Score - want[j].Score); d > tol {
				t.Fatalf("lane %d (query %v): item %d scored %v (batch) vs %v (single), |Δ|=%g > %g",
					i, q, got[i][j].Item, got[i][j].Score, want[j].Score, d, tol)
			}
		}
	}
}

// TestBatchRecommendMatchesSingle is the batch differential property test:
// over randomized datasets, parameters, batch sizes and duplicate-laden
// batches, BatchRecommend must equal per-request Recommend lane for lane —
// exactly (score ==, tol 0) in float64 mode, and within tolerance in float32
// mode (the implementation is bit-identical there too, so the 1e-6 headroom
// is slack, not a crutch). Early stopping runs both on and off so the
// shared-walk drop-out path is exercised.
func TestBatchRecommendMatchesSingle(t *testing.T) {
	prop := func(seed int64, mSeed, kSeed, nSeed, bSeed uint8, noEarlyStop, f32 bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 100+rng.Intn(300), 10+rng.Intn(40))
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		m := int(mSeed)%25 + 1
		k := int(kSeed)%m + 1
		n := int(nSeed)%30 + 1
		p := Params{M: m, K: k, DisableEarlyStopping: noEarlyStop, Float32Scores: f32}
		br, err := NewBatchRecommender(idx, p, 4)
		if err != nil {
			return false
		}
		rec, err := NewRecommender(idx, p)
		if err != nil {
			return false
		}
		tol := 0.0
		if f32 {
			tol = 1e-6
		}
		for trial := 0; trial < 6; trial++ {
			batch := randomBatch(rng, 1+rng.Intn(24), 50)
			assertBatchMatchesSingle(t, br, rec, batch, n, tol)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBatchRecommendDuplicateLanes pins in-batch dedup semantics: duplicated
// queries (same items, distinct backing slices) must return the same ranked
// output as their canonical lane and as a standalone Recommend, and the
// duplicate lanes must share the canonical lane's result slice (computed
// once, not re-derived).
func TestBatchRecommendDuplicateLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idx := mustIndex(t, randomDataset(rng, 200, 30), 0)
	p := Params{M: 15, K: 8}
	br, err := NewBatchRecommender(idx, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec := mustRecommender(t, idx, p)

	q := randomEvolving(rng, 30)
	for len(q) == 0 {
		q = randomEvolving(rng, 30)
	}
	qCopy := append([]sessions.ItemID(nil), q...)
	other := randomEvolving(rng, 30)
	batch := [][]sessions.ItemID{q, other, qCopy, q}

	got := br.BatchRecommend(batch, 10)
	want := rec.Recommend(q, 10)
	for _, lane := range []int{0, 2, 3} {
		if len(got[lane]) != len(want) {
			t.Fatalf("lane %d: %d items, want %d", lane, len(got[lane]), len(want))
		}
		for j := range want {
			if got[lane][j] != want[j] {
				t.Fatalf("lane %d rank %d: %+v, want %+v", lane, j, got[lane][j], want[j])
			}
		}
	}
	if len(want) > 0 {
		if &got[0][0] != &got[2][0] || &got[0][0] != &got[3][0] {
			t.Error("duplicate lanes did not share the canonical result slice")
		}
	}
}

// TestBatchRecommendOnRemappedIndex checks that the popularity remap is
// invisible to query semantics: batch and single-query output over the
// remapped index must equal single-query output over the original layout.
func TestBatchRecommendOnRemappedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := mustIndex(t, randomDataset(rng, 250, 40), 0)
	remapped, err := idx.RemappedByPopularity()
	if err != nil {
		t.Fatal(err)
	}
	if !remapped.Remapped() {
		t.Fatal("RemappedByPopularity returned an identity-layout index")
	}
	p := Params{M: 20, K: 10}
	base := mustRecommender(t, idx, p)
	single := mustRecommender(t, remapped, p)
	br, err := NewBatchRecommender(remapped, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		batch := randomBatch(rng, 8, 40)
		got := br.BatchRecommend(batch, 10)
		for i, q := range batch {
			want := base.Recommend(q, 10)
			alsoSingle := single.Recommend(q, 10)
			if len(got[i]) != len(want) || len(alsoSingle) != len(want) {
				t.Fatalf("query %v: lengths diverge (batch %d, remapped single %d, original %d)",
					q, len(got[i]), len(alsoSingle), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] || alsoSingle[j] != want[j] {
					t.Fatalf("query %v rank %d: batch %+v / remapped %+v, want %+v",
						q, j, got[i][j], alsoSingle[j], want[j])
				}
			}
		}
	}
}

// TestCloneAndLaneIsolation audits the scratch-state sharing rules the
// serving pool and batcher rely on: Clone must share nothing mutable with its
// origin, and batch lanes must share exactly the item-score accumulator
// (scoring is lane-serial) and nothing else.
func TestCloneAndLaneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx := mustIndex(t, randomDataset(rng, 150, 25), 0)
	p := Params{M: 12, K: 6}
	rec := mustRecommender(t, idx, p)
	clone := rec.Clone()
	if clone.tab == rec.tab || clone.acc == rec.acc || clone.bt == rec.bt {
		t.Fatal("Clone shares mutable kernel state with its origin")
	}
	br, err := NewBatchRecommender(idx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range br.lanes {
		if ln.rec.acc != br.acc {
			t.Fatalf("lane %d does not share the batch accumulator", i)
		}
		for j := i + 1; j < len(br.lanes); j++ {
			other := br.lanes[j]
			if ln.rec.tab == other.rec.tab || ln.rec.bt == other.rec.bt {
				t.Fatalf("lanes %d and %d share candidate state", i, j)
			}
		}
	}
}

// TestBatchRecommendConcurrentExecutors hammers independent BatchRecommenders
// over one shared index from many goroutines (run under -race via the race
// suite): the index must be read-only to the kernel, and every concurrent
// batch must still match a private single-query recommender.
func TestBatchRecommendConcurrentExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	idx := mustIndex(t, randomDataset(rng, 300, 35), 0)
	p := Params{M: 20, K: 10}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			br, err := NewBatchRecommender(idx, p, 16)
			if err != nil {
				t.Error(err)
				return
			}
			rec, err := NewRecommender(idx, p)
			if err != nil {
				t.Error(err)
				return
			}
			for trial := 0; trial < 30; trial++ {
				batch := randomBatch(wrng, 1+wrng.Intn(16), 35)
				got := br.BatchRecommend(batch, 10)
				for i, q := range batch {
					want := rec.Recommend(q, 10)
					if len(got[i]) != len(want) {
						t.Errorf("worker batch diverged on query %v: %d vs %d items", q, len(got[i]), len(want))
						return
					}
					for j := range want {
						if got[i][j] != want[j] {
							t.Errorf("worker batch diverged on query %v rank %d: %+v vs %+v", q, j, got[i][j], want[j])
							return
						}
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
}
