package core

import (
	"fmt"
	"math/rand"
	"testing"

	"serenade/internal/sessions"
)

// Hot-path microbenchmarks for the dense scoring kernel, with the retained
// map-based reference measured under identical workloads so the kernel's
// win (ns/op and allocs/op) is directly visible in one `go test -bench` run.
// Session lengths: small (2 clicks, the median of Table 1), medium (9, the
// full default scoring window), large (30, exercising truncation).

const benchVocab = 500

func benchSetup(b testing.TB) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := randomDataset(rng, 5000, benchVocab)
	idx, err := BuildIndex(ds, 0)
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

func benchQueries(length int) [][]sessions.ItemID {
	rng := rand.New(rand.NewSource(2))
	queries := make([][]sessions.ItemID, 256)
	for i := range queries {
		q := make([]sessions.ItemID, length)
		for j := range q {
			q[j] = sessions.ItemID(rng.Intn(benchVocab))
		}
		queries[i] = q
	}
	return queries
}

var benchLengths = []int{2, 9, 30}

func BenchmarkNeighborSessions(b *testing.B) {
	idx := benchSetup(b)
	for _, length := range benchLengths {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			r, err := NewRecommender(idx, Params{M: 500, K: 100})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(length)
			r.NeighborSessions(queries[0]) // warm buffer growth out of the measurement
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.NeighborSessions(queries[i%len(queries)])
			}
		})
	}
}

func BenchmarkNeighborSessionsMapReference(b *testing.B) {
	idx := benchSetup(b)
	for _, length := range benchLengths {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			r, err := NewReferenceRecommender(idx, Params{M: 500, K: 100})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(length)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.NeighborSessions(queries[i%len(queries)])
			}
		})
	}
}

func BenchmarkRecommend(b *testing.B) {
	idx := benchSetup(b)
	for _, length := range benchLengths {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			r, err := NewRecommender(idx, Params{M: 500, K: 100})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(length)
			r.Recommend(queries[0], 21)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Recommend(queries[i%len(queries)], 21)
			}
		})
	}
}

func BenchmarkRecommendMapReference(b *testing.B) {
	idx := benchSetup(b)
	for _, length := range benchLengths {
		b.Run(fmt.Sprintf("len=%d", length), func(b *testing.B) {
			r, err := NewReferenceRecommender(idx, Params{M: 500, K: 100})
			if err != nil {
				b.Fatal(err)
			}
			queries := benchQueries(length)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Recommend(queries[i%len(queries)], 21)
			}
		})
	}
}

// BenchmarkBatchRecommend measures the batched scoring path at batch sizes
// 1 through 64. Per-op time is per REQUEST (b.N requests are scored, grouped
// into batches of B), so the batching win reads directly off the B=1 row.
// The remap=on variants run the same workload against the popularity-ordered
// posting layout the batch path is designed to exploit.
func BenchmarkBatchRecommend(b *testing.B) {
	idx := benchSetup(b)
	remapped, err := idx.RemappedByPopularity()
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		idx  *Index
	}{{"remap=off", idx}, {"remap=on", remapped}} {
		for _, size := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/B=%d", variant.name, size), func(b *testing.B) {
				br, err := NewBatchRecommender(variant.idx, Params{M: 500, K: 100}, size)
				if err != nil {
					b.Fatal(err)
				}
				queries := benchQueries(9)
				batch := make([][]sessions.ItemID, size)
				for i := range batch {
					batch[i] = queries[i]
				}
				br.BatchRecommend(batch, 21) // warm lane buffers out of the measurement
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += size {
					for j := range batch {
						batch[j] = queries[(i+j)%len(queries)]
					}
					br.BatchRecommend(batch, 21)
				}
			})
		}
	}
}

// BenchmarkBatchRecommendDuplicates measures the in-batch dedup fast path:
// a batch where every lane carries the same query costs one kernel execution
// plus B-1 slice assignments.
func BenchmarkBatchRecommendDuplicates(b *testing.B) {
	idx := benchSetup(b)
	const size = 16
	br, err := NewBatchRecommender(idx, Params{M: 500, K: 100}, size)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(9)
	batch := make([][]sessions.ItemID, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += size {
		q := queries[i%len(queries)]
		for j := range batch {
			batch[j] = q
		}
		br.BatchRecommend(batch, 21)
	}
}

// BenchmarkBuildIndex measures the offline build: the epoch-stamped scratch
// dedup and two-pass CSR scatter keep allocations to the arena arrays
// themselves instead of one map + two slices per session/item.
func BenchmarkBuildIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ds := randomDataset(rng, 20_000, 5_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(ds, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecommendSteadyStateZeroAlloc pins the kernel's headline property: a
// steady-state query allocates nothing on the heap.
func TestRecommendSteadyStateZeroAlloc(t *testing.T) {
	idx := benchSetup(t)
	r, err := NewRecommender(idx, Params{M: 500, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	queries := benchQueries(9)
	// Warm-up: let nbrBuf/outBuf/touched grow to their steady-state sizes.
	for _, q := range queries {
		r.Recommend(q, 21)
	}
	var i int
	allocs := testing.AllocsPerRun(200, func() {
		r.Recommend(queries[i%len(queries)], 21)
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Recommend allocates %.1f times per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		r.NeighborSessions(queries[i%len(queries)])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state NeighborSessions allocates %.1f times per op, want 0", allocs)
	}
}
