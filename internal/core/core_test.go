package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"serenade/internal/sessions"
)

// buildDataset makes a renumbered dataset from item lists with strictly
// increasing session timestamps.
func buildDataset(t *testing.T, itemLists [][]sessions.ItemID) *sessions.Dataset {
	t.Helper()
	return datasetFromLists(itemLists)
}

func datasetFromLists(itemLists [][]sessions.ItemID) *sessions.Dataset {
	var ss []sessions.Session
	base := int64(1000)
	for i, items := range itemLists {
		times := make([]int64, len(items))
		for j := range times {
			times[j] = base + int64(i)*100 + int64(j)
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	return sessions.FromSessions("test", ss)
}

func mustIndex(t *testing.T, ds *sessions.Dataset, capacity int) *Index {
	t.Helper()
	idx, err := BuildIndex(ds, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustRecommender(t *testing.T, idx *Index, p Params) *Recommender {
	t.Helper()
	r, err := NewRecommender(idx, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDecayFunctions(t *testing.T) {
	if got := LinearDecay(3, 3); got != 1.0 {
		t.Errorf("LinearDecay(3,3) = %v, want 1", got)
	}
	if got := LinearDecay(1, 3); math.Abs(got-1.0/3) > 1e-15 {
		t.Errorf("LinearDecay(1,3) = %v, want 1/3", got)
	}
	if LinearDecay(1, 0) != 0 || QuadraticDecay(1, 0) != 0 {
		t.Error("decay with zero length must be 0")
	}
	if got := QuadraticDecay(2, 4); got != 0.25 {
		t.Errorf("QuadraticDecay(2,4) = %v, want 0.25", got)
	}
}

func TestMatchWeightPaperToyExample(t *testing.T) {
	// §2: λ(3) = 1 − 0.1·3 = 0.7.
	if got := LinearMatchWeight(3); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("λ(3) = %v, want 0.7", got)
	}
	if got := LinearMatchWeight(10); got != 0 {
		t.Errorf("λ(10) = %v, want 0", got)
	}
	if got := ConstantMatchWeight(99); got != 1 {
		t.Errorf("constant λ = %v, want 1", got)
	}
}

func TestParamsValidate(t *testing.T) {
	valid := Params{M: 100, K: 50}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, p := range []Params{
		{M: 0, K: 1},
		{M: 10, K: 0},
		{M: 10, K: 11}, // k > m
		{M: 10, K: 5, HeapArity: 1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted, want error", p)
		}
	}
}

func TestBuildIndexRequiresDenseIDs(t *testing.T) {
	ds := sessions.FromSessions("bad", []sessions.Session{
		{ID: 5, Items: []sessions.ItemID{1}, Times: []int64{10}},
	})
	if _, err := BuildIndex(ds, 0); err == nil {
		t.Error("expected error for non-dense ids")
	}
}

func TestBuildIndexRequiresAscendingTimes(t *testing.T) {
	ds := sessions.FromSessions("bad", []sessions.Session{
		{ID: 0, Items: []sessions.ItemID{1}, Times: []int64{100}},
		{ID: 1, Items: []sessions.ItemID{1}, Times: []int64{50}},
	})
	if _, err := BuildIndex(ds, 0); err == nil {
		t.Error("expected error for descending session times")
	}
}

func TestBuildIndexPostingsDescendingAndTruncated(t *testing.T) {
	// Item 7 occurs in sessions 0,1,2,3 (ascending time).
	lists := [][]sessions.ItemID{{7, 1}, {7}, {7, 2}, {7}}
	idx := mustIndex(t, buildDataset(t, lists), 2)
	got := idx.Postings(7)
	want := []sessions.SessionID{3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postings(7) = %v, want %v (most recent first, truncated)", got, want)
	}
	if idx.DF(7) != 4 {
		t.Errorf("DF(7) = %d, want full count 4 despite truncation", idx.DF(7))
	}
	if want := math.Log(4.0 / 4.0); idx.IDF(7) != want {
		t.Errorf("IDF(7) = %v, want %v", idx.IDF(7), want)
	}
	if want := math.Log(4.0 / 1.0); math.Abs(idx.IDF(1)-want) > 1e-15 {
		t.Errorf("IDF(1) = %v, want %v", idx.IDF(1), want)
	}
}

func TestBuildIndexDeduplicatesWithinSession(t *testing.T) {
	idx := mustIndex(t, buildDataset(t, [][]sessions.ItemID{{5, 5, 5, 6}}), 0)
	if got := idx.Postings(5); len(got) != 1 {
		t.Errorf("postings(5) = %v, want single entry for duplicated item", got)
	}
	if got := idx.SessionItems(0); !reflect.DeepEqual(got, []sessions.ItemID{5, 6}) {
		t.Errorf("SessionItems(0) = %v, want [5 6]", got)
	}
	if idx.DF(5) != 1 {
		t.Errorf("DF(5) = %d, want 1", idx.DF(5))
	}
}

func TestIndexAccessorsOutOfRange(t *testing.T) {
	idx := mustIndex(t, buildDataset(t, [][]sessions.ItemID{{1}}), 0)
	if idx.Postings(999) != nil {
		t.Error("Postings of unknown item must be nil")
	}
	if idx.DF(999) != 0 || idx.IDF(999) != 0 {
		t.Error("DF/IDF of unknown item must be 0")
	}
	if idx.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint must be positive")
	}
}

// TestPaperToyExample reproduces the §2 worked example: evolving session
// with items [1,2,4] against a historical session [2,4] has similarity
// π-weighted dot product 2/3 + 3/3 = 5/3 and match position 3 (λ = 0.7).
func TestPaperToyExample(t *testing.T) {
	ds := buildDataset(t, [][]sessions.ItemID{
		{2, 4},    // session 0 = h
		{9, 8, 7}, // filler so idf > 0 for items 2 and 4
	})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10})

	neighbors := r.NeighborSessions([]sessions.ItemID{1, 2, 4})
	if len(neighbors) != 1 {
		t.Fatalf("neighbors = %d, want 1", len(neighbors))
	}
	nb := neighbors[0]
	if nb.ID != 0 {
		t.Errorf("neighbor id = %d, want 0", nb.ID)
	}
	if want := 2.0/3.0 + 3.0/3.0; math.Abs(nb.Score-want) > 1e-12 {
		t.Errorf("similarity = %v, want 5/3", nb.Score)
	}
	if nb.MaxPos != 3 {
		t.Errorf("match position = %d, want 3", nb.MaxPos)
	}

	recs := r.Recommend([]sessions.ItemID{1, 2, 4}, 10)
	if len(recs) != 2 {
		t.Fatalf("recommendations = %v, want items 2 and 4", recs)
	}
	// d_i = λ(3) · (5/3) · log(2/1) for both items; ties order by item id.
	want := 0.7 * (5.0 / 3.0) * math.Log(2.0)
	for _, rec := range recs {
		if math.Abs(rec.Score-want) > 1e-12 {
			t.Errorf("score(%d) = %v, want %v", rec.Item, rec.Score, want)
		}
	}
	if recs[0].Item != 2 || recs[1].Item != 4 {
		t.Errorf("tie order = [%d %d], want [2 4]", recs[0].Item, recs[1].Item)
	}
}

func TestRecommendEmptyInputs(t *testing.T) {
	idx := mustIndex(t, buildDataset(t, [][]sessions.ItemID{{1, 2}, {2, 3}}), 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 5})
	if got := r.Recommend(nil, 5); got != nil {
		t.Errorf("Recommend(nil) = %v, want nil", got)
	}
	if got := r.Recommend([]sessions.ItemID{1}, 0); got != nil {
		t.Errorf("Recommend(n=0) = %v, want nil", got)
	}
	if got := r.Recommend([]sessions.ItemID{999}, 5); got != nil {
		t.Errorf("Recommend(unknown item) = %v, want nil", got)
	}
}

func TestRecommendExcludesZeroIDF(t *testing.T) {
	// Item 1 occurs in every session -> idf = 0 -> never recommended.
	ds := buildDataset(t, [][]sessions.ItemID{{1, 2}, {1, 3}, {1, 4}})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10})
	for _, rec := range r.Recommend([]sessions.ItemID{2}, 10) {
		if rec.Item == 1 {
			t.Error("item with zero idf was recommended")
		}
	}
}

func TestRecencyEviction(t *testing.T) {
	// Five sessions contain item 1; with M=2 only the two most recent
	// (ids 3 and 4) may be neighbours.
	lists := [][]sessions.ItemID{{1}, {1}, {1}, {1}, {1}, {9}}
	idx := mustIndex(t, buildDataset(t, lists), 0)
	r := mustRecommender(t, idx, Params{M: 2, K: 2})
	neighbors := r.NeighborSessions([]sessions.ItemID{1})
	if len(neighbors) != 2 {
		t.Fatalf("neighbors = %d, want 2", len(neighbors))
	}
	ids := map[sessions.SessionID]bool{neighbors[0].ID: true, neighbors[1].ID: true}
	if !ids[3] || !ids[4] {
		t.Errorf("neighbor ids = %v, want the most recent {3,4}", ids)
	}
}

func TestDuplicateEvolvingItemsUseMostRecentPosition(t *testing.T) {
	ds := buildDataset(t, [][]sessions.ItemID{{5}, {6}})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10})
	// Item 5 at positions 1 and 3 of the evolving session; only position 3
	// (the most recent occurrence) must contribute: π(3,3) = 1.
	neighbors := r.NeighborSessions([]sessions.ItemID{5, 6, 5})
	for _, nb := range neighbors {
		if nb.ID == 0 {
			if math.Abs(nb.Score-1.0) > 1e-12 {
				t.Errorf("score = %v, want 1.0 (single contribution at pos 3)", nb.Score)
			}
			if nb.MaxPos != 3 {
				t.Errorf("maxPos = %d, want 3", nb.MaxPos)
			}
		}
	}
}

func TestMaxSessionLengthTruncation(t *testing.T) {
	ds := buildDataset(t, [][]sessions.ItemID{{1}, {2}})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10, MaxSessionLength: 2})
	// Item 1 is pushed out of the 2-item window by [2, 3]: session 0 must
	// not match.
	neighbors := r.NeighborSessions([]sessions.ItemID{1, 2, 3})
	for _, nb := range neighbors {
		if nb.ID == 0 {
			t.Error("item outside the truncated window still matched")
		}
	}
}

func TestNoOptVariantSameResults(t *testing.T) {
	ds := randomDataset(rand.New(rand.NewSource(3)), 200, 50)
	idx, err := BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := mustRecommender(t, idx, Params{M: 20, K: 10})
	noopt := mustRecommender(t, idx, Params{M: 20, K: 10, HeapArity: 2, DisableEarlyStopping: true})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		evolving := randomEvolving(rng, 50)
		a := opt.Recommend(evolving, 21)
		b := noopt.Recommend(evolving, 21)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("optimised and no-opt variants disagree on %v:\n%v\nvs\n%v", evolving, a, b)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	idx := mustIndex(t, buildDataset(t, [][]sessions.ItemID{{1, 2}, {2, 3}}), 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 5})
	c := r.Clone()
	if c == r {
		t.Fatal("Clone returned the same instance")
	}
	if c.Index() != r.Index() {
		t.Error("Clone must share the immutable index")
	}
	a := r.Recommend([]sessions.ItemID{2}, 5)
	b := c.Recommend([]sessions.ItemID{2}, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("clone returns different results")
	}
}

func TestNewRecommenderRejectsMBeyondCapacity(t *testing.T) {
	idx := mustIndex(t, buildDataset(t, [][]sessions.ItemID{{1}}), 5)
	if _, err := NewRecommender(idx, Params{M: 10, K: 5}); err == nil {
		t.Error("expected error when M exceeds index capacity")
	}
}

func TestNewIndexFromPartsValidation(t *testing.T) {
	times := []int64{100, 200}
	sessionItems := [][]sessions.ItemID{{0}, {0}}
	goodPostings := [][]sessions.SessionID{{1, 0}}
	df := []int32{2}
	if _, err := NewIndexFromParts(times, goodPostings, sessionItems, df, 0); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	// length mismatch
	if _, err := NewIndexFromParts(times, goodPostings, sessionItems, []int32{1, 2}, 0); err == nil {
		t.Error("df length mismatch accepted")
	}
	if _, err := NewIndexFromParts(times[:1], goodPostings, sessionItems, df, 0); err == nil {
		t.Error("times length mismatch accepted")
	}
	// unknown session reference
	if _, err := NewIndexFromParts(times, [][]sessions.SessionID{{7}}, sessionItems, df, 0); err == nil {
		t.Error("dangling session reference accepted")
	}
	// wrong order
	if _, err := NewIndexFromParts(times, [][]sessions.SessionID{{0, 1}}, sessionItems, df, 0); err == nil {
		t.Error("ascending posting order accepted")
	}
}

// randomDataset builds a dataset of n sessions over an item vocabulary with
// strictly increasing timestamps (so recency tie-breaks are deterministic).
func randomDataset(rng *rand.Rand, n, vocab int) *sessions.Dataset {
	var ss []sessions.Session
	tick := int64(1000)
	for i := 0; i < n; i++ {
		length := 2 + rng.Intn(6)
		items := make([]sessions.ItemID, length)
		times := make([]int64, length)
		for j := range items {
			items[j] = sessions.ItemID(rng.Intn(vocab))
			tick++
			times[j] = tick
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	return sessions.FromSessions("rand", ss)
}

func randomEvolving(rng *rand.Rand, vocab int) []sessions.ItemID {
	length := 1 + rng.Intn(6)
	out := make([]sessions.ItemID, length)
	for i := range out {
		out[i] = sessions.ItemID(rng.Intn(vocab))
	}
	return out
}
