package core

import (
	"testing"

	"serenade/internal/sessions"
)

// TestEmptyIndexLifecycle: a freshly deployed system has no historical
// sessions yet; every operation must degrade gracefully rather than panic.
func TestEmptyIndexLifecycle(t *testing.T) {
	idx, err := BuildIndex(sessions.FromSessions("empty", nil), 100)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumSessions() != 0 || idx.NumItems() != 0 {
		t.Fatalf("empty index has sessions=%d items=%d", idx.NumSessions(), idx.NumItems())
	}
	r, err := NewRecommender(idx, Params{M: 10, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Recommend([]sessions.ItemID{1, 2, 3}, 21); got != nil {
		t.Errorf("recommendations from an empty index: %v", got)
	}
	if got := r.NeighborSessions([]sessions.ItemID{1}); len(got) != 0 {
		t.Errorf("neighbours from an empty index: %v", got)
	}
	if _, ok := r.Explain([]sessions.ItemID{1}, 2); ok {
		t.Error("explanation from an empty index")
	}
	if idx.MemoryFootprint() < 0 {
		t.Error("negative footprint")
	}
}

// TestSingleSessionIndex: the minimal non-empty index.
func TestSingleSessionIndex(t *testing.T) {
	ds := sessions.FromSessions("one", []sessions.Session{
		{ID: 0, Items: []sessions.ItemID{3, 4}, Times: []int64{10, 20}},
	})
	idx, err := BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecommender(idx, Params{M: 5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// idf = log(1/1) = 0 for both items, so no recommendations — but the
	// neighbour machinery must still find the session.
	if ns := r.NeighborSessions([]sessions.ItemID{3}); len(ns) != 1 {
		t.Errorf("neighbours = %v, want the single session", ns)
	}
	if recs := r.Recommend([]sessions.ItemID{3}, 5); recs != nil {
		t.Errorf("recommendations with zero idf: %v", recs)
	}
}
