package core

import "fmt"

func errBadParam(name string, v int) error {
	return fmt.Errorf("core: parameter %s = %d is invalid", name, v)
}

func errKExceedsM(k, m int) error {
	return fmt.Errorf("core: K (%d) must not exceed M (%d): neighbours are drawn from the recency sample", k, m)
}

func errMExceedsCapacity(m, capacity int) error {
	return fmt.Errorf("core: M (%d) exceeds the index posting-list capacity (%d): rebuild the index with a larger capacity", m, capacity)
}
