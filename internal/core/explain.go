package core

import "serenade/internal/sessions"

// Contribution is one neighbour session's share of a recommended item's
// score.
type Contribution struct {
	// Session is the contributing historical session.
	Session sessions.SessionID
	// Similarity is the session similarity r_n from the item intersection
	// loop.
	Similarity float64
	// MatchWeight is λ(maxPos): the weight of the most recent shared item's
	// position.
	MatchWeight float64
	// SharedItems are the items the evolving session (truncated window)
	// shares with this neighbour.
	SharedItems []sessions.ItemID
	// Amount is this neighbour's addition to the item score:
	// MatchWeight · Similarity · idf(item).
	Amount float64
}

// Explanation attributes a recommended item's score to the neighbour
// sessions that produced it — the answer to "why was this item
// recommended?" that production debugging and merchandising reviews need.
type Explanation struct {
	Item  sessions.ItemID
	Score float64
	// IDF is the item weight log(|H|/h_i) shared by every contribution.
	IDF           float64
	Contributions []Contribution
}

// Explain recomputes the recommendation for the evolving session and breaks
// down the given item's score by neighbour session. The second result is
// false when the item receives no score (it occurs in no neighbour session,
// or its idf is zero). Explain is intended for debugging endpoints, not the
// hot path: it allocates its result.
func (r *Recommender) Explain(evolving []sessions.ItemID, item sessions.ItemID) (Explanation, bool) {
	ex := Explanation{Item: item, IDF: r.idx.IDF(item)}
	if len(evolving) == 0 || ex.IDF == 0 {
		return ex, false
	}
	neighbors := r.NeighborSessions(evolving)
	if len(neighbors) == 0 {
		return ex, false
	}

	window := r.truncate(evolving)
	inWindow := make(map[sessions.ItemID]struct{}, len(window))
	for _, it := range window {
		inWindow[it] = struct{}{}
	}

	for _, nb := range neighbors {
		items := r.idx.SessionItems(nb.ID)
		contains := false
		var shared []sessions.ItemID
		for _, it := range items {
			if it == item {
				contains = true
			}
			if _, ok := inWindow[it]; ok {
				shared = append(shared, it)
			}
		}
		if !contains {
			continue
		}
		w := r.p.MatchWeight(nb.MaxPos)
		amount := w * nb.Score * ex.IDF
		if amount == 0 {
			continue
		}
		ex.Contributions = append(ex.Contributions, Contribution{
			Session:     nb.ID,
			Similarity:  nb.Score,
			MatchWeight: w,
			SharedItems: shared,
			Amount:      amount,
		})
		ex.Score += amount
	}
	return ex, len(ex.Contributions) > 0
}
