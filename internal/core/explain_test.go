package core

import (
	"math"
	"math/rand"
	"testing"

	"serenade/internal/sessions"
)

func TestExplainToyExample(t *testing.T) {
	ds := buildDataset(t, [][]sessions.ItemID{
		{2, 4},    // the matching historical session
		{9, 8, 7}, // filler for non-zero idf
	})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10})

	evolving := []sessions.ItemID{1, 2, 4}
	ex, ok := r.Explain(evolving, 4)
	if !ok {
		t.Fatal("no explanation for a recommended item")
	}
	if len(ex.Contributions) != 1 {
		t.Fatalf("contributions = %d, want 1", len(ex.Contributions))
	}
	c := ex.Contributions[0]
	if c.Session != 0 {
		t.Errorf("contributing session = %d, want 0", c.Session)
	}
	if want := 5.0 / 3.0; math.Abs(c.Similarity-want) > 1e-12 {
		t.Errorf("similarity = %v, want 5/3", c.Similarity)
	}
	if math.Abs(c.MatchWeight-0.7) > 1e-12 {
		t.Errorf("match weight = %v, want λ(3)=0.7", c.MatchWeight)
	}
	if len(c.SharedItems) != 2 {
		t.Errorf("shared items = %v, want items 2 and 4", c.SharedItems)
	}
	if math.Abs(ex.Score-c.Amount) > 1e-12 {
		t.Errorf("score %v != sum of contributions %v", ex.Score, c.Amount)
	}
}

// TestExplainMatchesRecommendScores: for every recommended item, the
// explanation's score must equal the score Recommend produced.
func TestExplainMatchesRecommendScores(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := randomDataset(rng, 300, 60)
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 50, K: 20})

	for trial := 0; trial < 50; trial++ {
		evolving := randomEvolving(rng, 60)
		recs := r.Recommend(evolving, 10)
		for _, rec := range recs {
			ex, ok := r.Explain(evolving, rec.Item)
			if !ok {
				t.Fatalf("no explanation for recommended item %d", rec.Item)
			}
			if math.Abs(ex.Score-rec.Score) > 1e-9 {
				t.Fatalf("explanation score %v != recommendation score %v for item %d",
					ex.Score, rec.Score, rec.Item)
			}
			for _, c := range ex.Contributions {
				if len(c.SharedItems) == 0 {
					t.Fatalf("contribution from session %d shares no items", c.Session)
				}
			}
		}
	}
}

func TestExplainNegativeCases(t *testing.T) {
	ds := buildDataset(t, [][]sessions.ItemID{{1, 2}, {2, 3}})
	idx := mustIndex(t, ds, 0)
	r := mustRecommender(t, idx, Params{M: 10, K: 10})

	if _, ok := r.Explain(nil, 2); ok {
		t.Error("explanation for empty session")
	}
	if _, ok := r.Explain([]sessions.ItemID{1}, 999); ok {
		t.Error("explanation for unknown item")
	}
	// Item 2 occurs in every session -> idf 0 -> never recommended.
	if _, ok := r.Explain([]sessions.ItemID{1}, 2); ok {
		t.Error("explanation for zero-idf item")
	}
}
