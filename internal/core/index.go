package core

import (
	"fmt"
	"math"

	"serenade/internal/sessions"
)

// Index is the VMIS-kNN session similarity index (M, t) of §3:
//
//   - a posting list M mapping each item to the identifiers of the most
//     recent historical sessions containing it, in descending session
//     timestamp order and truncated to the index capacity, giving amortised
//     constant-time access to the m most recent sessions per item;
//   - a dense timestamp array t giving constant-time random access to the
//     timestamp of any historical session;
//   - the per-session item sets needed to score the items of neighbour
//     sessions, and the precomputed inverse document frequencies
//     log(|H|/h_i) used as item weights.
//
// Historical session identifiers are consecutive integers assigned in
// ascending timestamp order (see sessions.Renumber), so a session id doubles
// as an index into the timestamp array and ordering by id equals ordering by
// recency. An Index is immutable after construction and safe for concurrent
// readers.
type Index struct {
	numSessions int
	numItems    int
	capacity    int
	times       []int64
	postings    [][]sessions.SessionID
	sessionItem [][]sessions.ItemID
	df          []int32
	idf         []float64
}

// BuildIndex constructs the index from a dataset whose session ids are
// dense and ascend with session timestamp (use sessions.Renumber first).
// capacity bounds the posting list length per item — it must be at least the
// largest sample size m that will be queried; capacity <= 0 keeps complete
// posting lists.
func BuildIndex(ds *sessions.Dataset, capacity int) (*Index, error) {
	n := len(ds.Sessions)
	for i := range ds.Sessions {
		if ds.Sessions[i].ID != sessions.SessionID(i) {
			return nil, fmt.Errorf("core: session ids must be dense, got %d at position %d (renumber the dataset first)", ds.Sessions[i].ID, i)
		}
		if i > 0 && ds.Sessions[i].Time() < ds.Sessions[i-1].Time() {
			return nil, fmt.Errorf("core: session %d is older than its predecessor (renumber the dataset first)", i)
		}
	}

	idx := &Index{
		numSessions: n,
		numItems:    ds.NumItems,
		capacity:    capacity,
		times:       make([]int64, n),
		postings:    make([][]sessions.SessionID, ds.NumItems),
		sessionItem: make([][]sessions.ItemID, n),
		df:          make([]int32, ds.NumItems),
		idf:         make([]float64, ds.NumItems),
	}

	// One ascending pass over sessions appends each session once to the
	// posting list of each of its distinct items; reversing afterwards
	// yields descending-timestamp posting lists.
	seen := make(map[sessions.ItemID]struct{}, 16)
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		idx.times[i] = s.Time()
		clear(seen)
		unique := make([]sessions.ItemID, 0, len(s.Items))
		for _, it := range s.Items {
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			unique = append(unique, it)
			idx.postings[it] = append(idx.postings[it], sessions.SessionID(i))
		}
		idx.sessionItem[i] = unique
	}

	for item, list := range idx.postings {
		idx.df[item] = int32(len(list))
		reverse(list)
		if capacity > 0 && len(list) > capacity {
			idx.postings[item] = list[:capacity:capacity]
		}
	}
	idx.computeIDF()
	return idx, nil
}

// NewIndexFromParts assembles an index from its serialised components,
// recomputing the derived inverse document frequencies. It validates the
// structural invariants that Recommend relies on.
func NewIndexFromParts(times []int64, postings [][]sessions.SessionID, sessionItems [][]sessions.ItemID, df []int32, capacity int) (*Index, error) {
	if len(postings) != len(df) {
		return nil, fmt.Errorf("core: postings (%d) and document frequencies (%d) disagree on item count", len(postings), len(df))
	}
	if len(times) != len(sessionItems) {
		return nil, fmt.Errorf("core: timestamps (%d) and session items (%d) disagree on session count", len(times), len(sessionItems))
	}
	n := len(times)
	for item, list := range postings {
		for k, sid := range list {
			if int(sid) >= n {
				return nil, fmt.Errorf("core: posting list of item %d references unknown session %d", item, sid)
			}
			if k > 0 && times[list[k-1]] < times[sid] {
				return nil, fmt.Errorf("core: posting list of item %d is not in descending timestamp order", item)
			}
		}
	}
	idx := &Index{
		numSessions: n,
		numItems:    len(postings),
		capacity:    capacity,
		times:       times,
		postings:    postings,
		sessionItem: sessionItems,
		df:          df,
		idf:         make([]float64, len(postings)),
	}
	idx.computeIDF()
	return idx, nil
}

func (idx *Index) computeIDF() {
	for item, f := range idx.df {
		if f > 0 {
			idx.idf[item] = math.Log(float64(idx.numSessions) / float64(f))
		}
	}
}

func reverse[T any](xs []T) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// NumSessions reports the number of indexed historical sessions |H|.
func (idx *Index) NumSessions() int { return idx.numSessions }

// NumItems reports the dense item-id space size.
func (idx *Index) NumItems() int { return idx.numItems }

// Capacity reports the posting-list truncation bound (0 = unbounded).
func (idx *Index) Capacity() int { return idx.capacity }

// Postings returns the posting list m_i for an item: the most recent
// sessions containing it, most recent first. The returned slice is shared
// and must not be modified. Unknown items yield nil.
func (idx *Index) Postings(item sessions.ItemID) []sessions.SessionID {
	if int(item) >= len(idx.postings) {
		return nil
	}
	return idx.postings[item]
}

// Time returns the timestamp t_h of a historical session.
func (idx *Index) Time(s sessions.SessionID) int64 { return idx.times[s] }

// Times returns the dense session timestamp array (shared, read-only).
func (idx *Index) Times() []int64 { return idx.times }

// SessionItems returns the distinct items of a historical session in first
// occurrence order (shared, read-only).
func (idx *Index) SessionItems(s sessions.SessionID) []sessions.ItemID {
	return idx.sessionItem[s]
}

// DF returns the document frequency h_i: the number of historical sessions
// containing the item (before posting-list truncation).
func (idx *Index) DF(item sessions.ItemID) int {
	if int(item) >= len(idx.df) {
		return 0
	}
	return int(idx.df[item])
}

// IDF returns the precomputed weight log(|H|/h_i) (0 for unseen items).
func (idx *Index) IDF(item sessions.ItemID) float64 {
	if int(item) >= len(idx.idf) {
		return 0
	}
	return idx.idf[item]
}

// MemoryFootprint estimates the index's in-memory size in bytes, the number
// the paper quotes as "around 13 gigabytes" for its production index.
func (idx *Index) MemoryFootprint() int64 {
	var b int64
	b += int64(len(idx.times)) * 8
	b += int64(len(idx.df)) * 4
	b += int64(len(idx.idf)) * 8
	for _, p := range idx.postings {
		b += int64(len(p))*4 + 24
	}
	for _, s := range idx.sessionItem {
		b += int64(len(s))*4 + 24
	}
	return b
}
