package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"serenade/internal/sessions"
)

// Index is the VMIS-kNN session similarity index (M, t) of §3:
//
//   - a posting list M mapping each item to the identifiers of the most
//     recent historical sessions containing it, in descending session
//     timestamp order and truncated to the index capacity, giving amortised
//     constant-time access to the m most recent sessions per item;
//   - a dense timestamp array t giving constant-time random access to the
//     timestamp of any historical session;
//   - the per-session item sets needed to score the items of neighbour
//     sessions, and the precomputed inverse document frequencies
//     log(|H|/h_i) used as item weights.
//
// Historical session identifiers are consecutive integers assigned in
// ascending timestamp order (see sessions.Renumber), so a session id doubles
// as an index into the timestamp array and ordering by id equals ordering by
// recency. An Index is immutable after construction and safe for concurrent
// readers.
//
// The variable-length collections (posting lists, per-session item sets) are
// stored in CSR (compressed sparse row) form: one flat data array per
// collection plus an offsets array, instead of a slice per item/session. At
// production scale the slice-of-slices layout is hundreds of millions of
// separately allocated objects the garbage collector must scan on every
// cycle; the CSR arena is seven pointers regardless of index size, and it is
// exactly the shape the on-disk format v2 maps into memory (see
// internal/index), so a file-backed index reads straight out of the mapping.
type Index struct {
	numSessions int
	numItems    int
	capacity    int

	times []int64
	// postingOffsets has numItems+1 entries; item i's posting list occupies
	// the CSR row postingData[postingOffsets[r]:postingOffsets[r+1]] where
	// r = postingRemap[i] (or r = i when postingRemap is nil). A
	// popularity-ordered remap gives frequent items dense low rows, so the
	// posting bytes hot queries touch cluster on a few pages instead of
	// being scattered across the whole arena (see RemappedByPopularity).
	postingOffsets []uint32
	postingData    []sessions.SessionID
	// postingRemap maps an item id to its posting row; nil means identity
	// (row i holds item i, the layout BuildIndex produces).
	postingRemap []uint32
	// sessionItemOffsets has numSessions+1 entries; session s's distinct
	// items are sessionItemData[sessionItemOffsets[s]:sessionItemOffsets[s+1]].
	sessionItemOffsets []uint32
	sessionItemData    []sessions.ItemID
	df                 []int32
	idf                []float64

	// Arena backing (set by the index package loaders): when arenaBytes is
	// non-zero every CSR array above (except a recomputed idf, see idfHeap)
	// is a view into one contiguous region of that many bytes — an mmap(2)
	// region when mapped is true, a single heap allocation otherwise.
	arenaBytes int64
	mapped     bool
	idfHeap    bool
	closeOnce  sync.Once
	closeFn    func() error
	closeErr   error
	closed     bool
}

// CSR is the flat-arena view of an index: the seven dense arrays that fully
// describe it. All slices are read-only; for a file-backed index they alias
// the underlying mapping and are valid only while the index is open.
type CSR struct {
	Times              []int64
	PostingOffsets     []uint32
	PostingData        []sessions.SessionID
	SessionItemOffsets []uint32
	SessionItemData    []sessions.ItemID
	DF                 []int32
	// IDF may be nil when constructing (NewIndexFromCSR recomputes it);
	// CSR() always returns it populated.
	IDF []float64
	// PostingRemap maps item id -> posting row; nil means the identity
	// layout. When non-nil it must be a permutation of [0, numItems).
	PostingRemap []uint32
}

// Arena describes the backing storage of a CSR view handed to
// NewIndexFromCSR: Bytes is the size of the contiguous region the slices
// alias (0 when they are ordinary heap slices), Mapped marks an mmap(2)
// region, and Close releases it (invoked at most once, by Index.Close).
type Arena struct {
	Bytes  int64
	Mapped bool
	Close  func() error
}

// checkEpoch returns the next per-session epoch for the build scratch array,
// wiping the array on the (practically unreachable) uint32 wraparound so a
// stale stamp can never collide with a restarted epoch sequence.
func nextEpoch(epoch uint32, seen []uint32) uint32 {
	epoch++
	if epoch == 0 {
		clear(seen)
		epoch = 1
	}
	return epoch
}

// BuildIndex constructs the index from a dataset whose session ids are
// dense and ascend with session timestamp (use sessions.Renumber first).
// capacity bounds the posting list length per item — it must be at least the
// largest sample size m that will be queried; capacity <= 0 keeps complete
// posting lists.
//
// The build is two passes over the click log straight into the CSR arena:
// pass one counts distinct items per session and sessions per item (the
// document frequencies, which size the arrays exactly), pass two scatters
// each occurrence into its final slot. Per-session item deduplication uses
// an epoch-stamped scratch array over the item vocabulary — the same trick
// as the query kernel's accumulators — so the build allocates nothing per
// session and touches no hash buckets.
func BuildIndex(ds *sessions.Dataset, capacity int) (*Index, error) {
	n := len(ds.Sessions)
	for i := range ds.Sessions {
		if ds.Sessions[i].ID != sessions.SessionID(i) {
			return nil, fmt.Errorf("core: session ids must be dense, got %d at position %d (renumber the dataset first)", ds.Sessions[i].ID, i)
		}
		if i > 0 && ds.Sessions[i].Time() < ds.Sessions[i-1].Time() {
			return nil, fmt.Errorf("core: session %d is older than its predecessor (renumber the dataset first)", i)
		}
	}

	times := make([]int64, n)
	df := make([]int32, ds.NumItems)
	sessionItemOffsets := make([]uint32, n+1)
	seen := make([]uint32, ds.NumItems)
	var epoch uint32

	// Pass 1: count distinct items per session and sessions per item.
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		times[i] = s.Time()
		epoch = nextEpoch(epoch, seen)
		distinct := uint32(0)
		for _, it := range s.Items {
			if seen[it] == epoch {
				continue
			}
			seen[it] = epoch
			distinct++
			df[it]++
		}
		sessionItemOffsets[i+1] = sessionItemOffsets[i] + distinct
	}

	postingOffsets := make([]uint32, ds.NumItems+1)
	var totalPostings uint64
	for item, f := range df {
		kept := uint64(f)
		if capacity > 0 && kept > uint64(capacity) {
			kept = uint64(capacity)
		}
		totalPostings += kept
		if totalPostings > math.MaxUint32 {
			return nil, fmt.Errorf("core: posting arena exceeds 2^32 entries at item %d", item)
		}
		postingOffsets[item+1] = uint32(totalPostings)
	}

	postingData := make([]sessions.SessionID, totalPostings)
	sessionItemData := make([]sessions.ItemID, sessionItemOffsets[n])
	// occ counts, per item, the ascending-time occurrences placed so far;
	// occurrence o of df total lands at descending rank df-1-o, and only
	// ranks below the kept (truncated) length have a slot.
	occ := make([]uint32, ds.NumItems)

	// Pass 2: scatter. Sessions arrive oldest first, so the most recent
	// occurrence has descending rank 0 and posting lists come out in
	// descending timestamp order with no reversal step.
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		epoch = nextEpoch(epoch, seen)
		w := sessionItemOffsets[i]
		for _, it := range s.Items {
			if seen[it] == epoch {
				continue
			}
			seen[it] = epoch
			sessionItemData[w] = it
			w++
			rank := uint32(df[it]) - 1 - occ[it]
			occ[it]++
			if kept := postingOffsets[it+1] - postingOffsets[it]; rank < kept {
				postingData[postingOffsets[it]+rank] = sessions.SessionID(i)
			}
		}
	}

	idx := &Index{
		numSessions:        n,
		numItems:           ds.NumItems,
		capacity:           capacity,
		times:              times,
		postingOffsets:     postingOffsets,
		postingData:        postingData,
		sessionItemOffsets: sessionItemOffsets,
		sessionItemData:    sessionItemData,
		df:                 df,
		idf:                make([]float64, ds.NumItems),
	}
	idx.computeIDF()
	return idx, nil
}

// NewIndexFromParts assembles an index from per-list slices (the layout the
// dataflow build job and the v1 file format produce), flattening them into
// the CSR arena and recomputing the derived inverse document frequencies. It
// validates the structural invariants that Recommend relies on.
func NewIndexFromParts(times []int64, postings [][]sessions.SessionID, sessionItems [][]sessions.ItemID, df []int32, capacity int) (*Index, error) {
	if len(postings) != len(df) {
		return nil, fmt.Errorf("core: postings (%d) and document frequencies (%d) disagree on item count", len(postings), len(df))
	}
	if len(times) != len(sessionItems) {
		return nil, fmt.Errorf("core: timestamps (%d) and session items (%d) disagree on session count", len(times), len(sessionItems))
	}
	c := CSR{
		Times:              times,
		PostingOffsets:     make([]uint32, len(postings)+1),
		SessionItemOffsets: make([]uint32, len(times)+1),
		DF:                 df,
	}
	var total uint64
	for i, list := range postings {
		total += uint64(len(list))
		if total > math.MaxUint32 {
			return nil, fmt.Errorf("core: posting arena exceeds 2^32 entries at item %d", i)
		}
		c.PostingOffsets[i+1] = uint32(total)
	}
	c.PostingData = make([]sessions.SessionID, 0, total)
	for _, list := range postings {
		c.PostingData = append(c.PostingData, list...)
	}
	total = 0
	for s, list := range sessionItems {
		total += uint64(len(list))
		if total > math.MaxUint32 {
			return nil, fmt.Errorf("core: session-item arena exceeds 2^32 entries at session %d", s)
		}
		c.SessionItemOffsets[s+1] = uint32(total)
	}
	c.SessionItemData = make([]sessions.ItemID, 0, total)
	for _, list := range sessionItems {
		c.SessionItemData = append(c.SessionItemData, list...)
	}
	return NewIndexFromCSR(c, capacity, Arena{})
}

// NewIndexFromCSR assembles an index directly from its flat-arena form — the
// zero-copy constructor behind the v2 file format: the slices may alias an
// mmap region described by arena, and nothing is copied. It validates every
// structural invariant Recommend relies on (offset monotonicity and bounds,
// posting ids in range and in descending timestamp order, item ids in range,
// plausible document frequencies, the posting remap a permutation) without
// allocating — except a transient row-seen bitmap when a remap is present —
// so a file-backed load stays O(1) in allocations no matter how large the
// index. A nil c.IDF is recomputed from the document frequencies; a provided
// one (e.g. a mapped section) is cross-checked against them.
func NewIndexFromCSR(c CSR, capacity int, arena Arena) (*Index, error) {
	numSessions := len(c.Times)
	numItems := len(c.DF)
	if len(c.PostingOffsets) != numItems+1 {
		return nil, fmt.Errorf("core: posting offsets (%d) disagree with item count %d", len(c.PostingOffsets), numItems)
	}
	if len(c.SessionItemOffsets) != numSessions+1 {
		return nil, fmt.Errorf("core: session-item offsets (%d) disagree with session count %d", len(c.SessionItemOffsets), numSessions)
	}
	if c.IDF != nil && len(c.IDF) != numItems {
		return nil, fmt.Errorf("core: idf (%d) disagrees with item count %d", len(c.IDF), numItems)
	}
	if err := checkOffsets(c.PostingOffsets, len(c.PostingData), "posting"); err != nil {
		return nil, err
	}
	if err := checkOffsets(c.SessionItemOffsets, len(c.SessionItemData), "session-item"); err != nil {
		return nil, err
	}
	if c.PostingRemap != nil {
		if len(c.PostingRemap) != numItems {
			return nil, fmt.Errorf("core: posting remap (%d) disagrees with item count %d", len(c.PostingRemap), numItems)
		}
		seenRow := make([]bool, numItems)
		for item, row := range c.PostingRemap {
			if int(row) >= numItems {
				return nil, fmt.Errorf("core: posting remap of item %d references row %d of %d", item, row, numItems)
			}
			if seenRow[row] {
				return nil, fmt.Errorf("core: posting remap is not a permutation (row %d claimed twice)", row)
			}
			seenRow[row] = true
		}
	}
	for item := 0; item < numItems; item++ {
		row := item
		if c.PostingRemap != nil {
			row = int(c.PostingRemap[item])
		}
		lo, hi := c.PostingOffsets[row], c.PostingOffsets[row+1]
		count := int(hi - lo)
		if capacity > 0 && count > capacity {
			return nil, fmt.Errorf("core: posting list of item %d has %d entries, beyond capacity %d", item, count, capacity)
		}
		if int(c.DF[item]) < count || int(c.DF[item]) > numSessions {
			return nil, fmt.Errorf("core: document frequency %d of item %d is implausible (%d postings, %d sessions)", c.DF[item], item, count, numSessions)
		}
		for k := lo; k < hi; k++ {
			sid := c.PostingData[k]
			if int(sid) >= numSessions {
				return nil, fmt.Errorf("core: posting list of item %d references unknown session %d", item, sid)
			}
			if k > lo && c.Times[c.PostingData[k-1]] < c.Times[sid] {
				return nil, fmt.Errorf("core: posting list of item %d is not in descending timestamp order", item)
			}
		}
	}
	for _, it := range c.SessionItemData {
		if int(it) >= numItems {
			return nil, fmt.Errorf("core: session items reference unknown item %d", it)
		}
	}

	idx := &Index{
		numSessions:        numSessions,
		numItems:           numItems,
		capacity:           capacity,
		times:              c.Times,
		postingOffsets:     c.PostingOffsets,
		postingData:        c.PostingData,
		postingRemap:       c.PostingRemap,
		sessionItemOffsets: c.SessionItemOffsets,
		sessionItemData:    c.SessionItemData,
		df:                 c.DF,
		idf:                c.IDF,
		arenaBytes:         arena.Bytes,
		mapped:             arena.Mapped,
		closeFn:            arena.Close,
	}
	if idx.idf == nil {
		idx.idf = make([]float64, numItems)
		idx.idfHeap = true
		idx.computeIDF()
	} else if err := idx.checkIDF(); err != nil {
		return nil, err
	}
	return idx, nil
}

// checkOffsets validates a CSR offsets array: starts at zero, monotone
// non-decreasing, and ends exactly at the data length.
func checkOffsets(offsets []uint32, dataLen int, kind string) error {
	if offsets[0] != 0 {
		return fmt.Errorf("core: %s offsets do not start at zero", kind)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("core: %s offsets decrease at %d", kind, i)
		}
	}
	if int(offsets[len(offsets)-1]) != dataLen {
		return fmt.Errorf("core: %s offsets end at %d, data has %d entries", kind, offsets[len(offsets)-1], dataLen)
	}
	return nil
}

// CSR returns the index's flat-arena view, for serialisation. The slices are
// shared and read-only; for a file-backed index they are valid only while
// the index is open.
func (idx *Index) CSR() CSR {
	return CSR{
		Times:              idx.times,
		PostingOffsets:     idx.postingOffsets,
		PostingData:        idx.postingData,
		SessionItemOffsets: idx.sessionItemOffsets,
		SessionItemData:    idx.sessionItemData,
		DF:                 idx.df,
		IDF:                idx.idf,
		PostingRemap:       idx.postingRemap,
	}
}

func (idx *Index) computeIDF() {
	for item, f := range idx.df {
		if f > 0 {
			idx.idf[item] = math.Log(float64(idx.numSessions) / float64(f))
		}
	}
}

// checkIDF cross-checks an externally supplied idf vector (a mapped v2
// section) against the document frequencies it is derived from, with a
// tolerance covering cross-platform math.Log rounding.
func (idx *Index) checkIDF() error {
	for item, f := range idx.df {
		want := 0.0
		if f > 0 {
			want = math.Log(float64(idx.numSessions) / float64(f))
		}
		got := idx.idf[item]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("core: idf of item %d is %v, want %v from df=%d", item, got, want, f)
		}
	}
	return nil
}

// NumSessions reports the number of indexed historical sessions |H|.
func (idx *Index) NumSessions() int { return idx.numSessions }

// NumItems reports the dense item-id space size.
func (idx *Index) NumItems() int { return idx.numItems }

// Capacity reports the posting-list truncation bound (0 = unbounded).
func (idx *Index) Capacity() int { return idx.capacity }

// Postings returns the posting list m_i for an item: the most recent
// sessions containing it, most recent first. The returned slice is shared
// and must not be modified. Unknown items yield nil.
func (idx *Index) Postings(item sessions.ItemID) []sessions.SessionID {
	if int(item) >= idx.numItems {
		return nil
	}
	row := uint32(item)
	if idx.postingRemap != nil {
		row = idx.postingRemap[item]
	}
	lo, hi := idx.postingOffsets[row], idx.postingOffsets[row+1]
	if lo == hi {
		return nil
	}
	return idx.postingData[lo:hi:hi]
}

// Time returns the timestamp t_h of a historical session.
func (idx *Index) Time(s sessions.SessionID) int64 { return idx.times[s] }

// Times returns the dense session timestamp array (shared, read-only; for a
// file-backed index it is valid only while the index is open).
func (idx *Index) Times() []int64 { return idx.times }

// SessionItems returns the distinct items of a historical session in first
// occurrence order (shared, read-only).
func (idx *Index) SessionItems(s sessions.SessionID) []sessions.ItemID {
	lo, hi := idx.sessionItemOffsets[s], idx.sessionItemOffsets[s+1]
	if lo == hi {
		return nil
	}
	return idx.sessionItemData[lo:hi:hi]
}

// DF returns the document frequency h_i: the number of historical sessions
// containing the item (before posting-list truncation).
func (idx *Index) DF(item sessions.ItemID) int {
	if int(item) >= len(idx.df) {
		return 0
	}
	return int(idx.df[item])
}

// IDF returns the precomputed weight log(|H|/h_i) (0 for unseen items).
func (idx *Index) IDF(item sessions.ItemID) float64 {
	if int(item) >= len(idx.idf) {
		return 0
	}
	return idx.idf[item]
}

// Mapped reports whether the index reads from an mmap(2) region instead of
// heap memory.
func (idx *Index) Mapped() bool { return idx.mapped }

// Remapped reports whether the posting rows are stored in a non-identity
// (e.g. popularity-ordered) physical layout.
func (idx *Index) Remapped() bool { return idx.postingRemap != nil }

// RemappedByPopularity returns a view of the index whose posting rows are
// physically reordered by descending document frequency (ties broken by
// ascending item id): the hottest items' posting lists become the first rows
// of the posting arena, so the bytes that frequent queries touch cluster on a
// few leading pages instead of being scattered across the whole arena. Every
// accessor keeps dataset item-id semantics — only the physical row order and
// the item→row remap change.
//
// The returned index shares the timestamp, session-item, df, and idf arrays
// with the receiver (it is valid only as long as the receiver stays open) but
// owns fresh posting arrays, so it never aliases a region the receiver's
// Close would unmap partially. An already-remapped index is rebuilt from its
// logical (per-item) posting order, so the result is canonical either way.
func (idx *Index) RemappedByPopularity() (*Index, error) {
	n := idx.numItems
	order := make([]sessions.ItemID, n)
	for i := range order {
		order[i] = sessions.ItemID(i)
	}
	slicesSortByDF(order, idx.df)

	remap := make([]uint32, n)
	postingOffsets := make([]uint32, n+1)
	postingData := make([]sessions.SessionID, len(idx.postingData))
	w := uint32(0)
	for row, item := range order {
		remap[item] = uint32(row)
		postingOffsets[row] = w
		w += uint32(copy(postingData[w:], idx.Postings(item)))
	}
	postingOffsets[n] = w

	c := CSR{
		Times:              idx.times,
		PostingOffsets:     postingOffsets,
		PostingData:        postingData[:w:w],
		SessionItemOffsets: idx.sessionItemOffsets,
		SessionItemData:    idx.sessionItemData,
		DF:                 idx.df,
		IDF:                idx.idf,
		PostingRemap:       remap,
	}
	return NewIndexFromCSR(c, idx.capacity, Arena{})
}

// slicesSortByDF sorts item ids by descending document frequency, ascending
// item id on ties — the deterministic popularity order of the posting remap.
func slicesSortByDF(order []sessions.ItemID, df []int32) {
	slices.SortFunc(order, func(a, b sessions.ItemID) int {
		if df[a] != df[b] {
			if df[a] > df[b] {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
}

// Close releases the index's backing arena — for a file-backed index it
// unmaps the region, after which every accessor result and shared slice is
// invalid. Closing a heap-backed index is a no-op. Close is idempotent and
// must only be called once no reader can touch the index again; the serving
// layer drains in-flight requests before closing a replaced generation.
func (idx *Index) Close() error {
	idx.closeOnce.Do(func() {
		idx.closed = true
		if idx.closeFn != nil {
			idx.closeErr = idx.closeFn()
		}
	})
	return idx.closeErr
}

// Closed reports whether Close has been called (for tests asserting the
// swap-drain protocol).
func (idx *Index) Closed() bool { return idx.closed }

// sliceHeaderBytes is the in-memory size of a Go slice header, counted once
// per retained array in the footprint estimates.
const sliceHeaderBytes = 24

// MemoryFootprint estimates the index's total in-memory size in bytes — the
// number the paper quotes as "around 13 gigabytes" for its production index.
// It is the sum of both MemoryBreakdown buckets.
func (idx *Index) MemoryFootprint() int64 {
	heap, mapped := idx.MemoryBreakdown()
	return heap + mapped
}

// MemoryBreakdown splits the index's footprint into heap-resident bytes
// (garbage-collected memory) and mmap-resident bytes (file-backed pages the
// kernel can reclaim under pressure). A heap-built index is all heap; a
// file-backed v2 index is almost all mmap, with only the struct — and a
// recomputed idf vector, when the file predates stored idf — on the heap.
func (idx *Index) MemoryBreakdown() (heapBytes, mmapBytes int64) {
	if idx.arenaBytes > 0 {
		if idx.mapped {
			mmapBytes = idx.arenaBytes
		} else {
			heapBytes = idx.arenaBytes
		}
		if idx.idfHeap {
			heapBytes += int64(len(idx.idf)) * 8
		}
		heapBytes += 8 * sliceHeaderBytes // slice headers + struct scalars
		return heapBytes, mmapBytes
	}
	heapBytes = int64(len(idx.times))*8 +
		int64(len(idx.postingOffsets))*4 +
		int64(len(idx.postingData))*4 +
		int64(len(idx.postingRemap))*4 +
		int64(len(idx.sessionItemOffsets))*4 +
		int64(len(idx.sessionItemData))*4 +
		int64(len(idx.df))*4 +
		int64(len(idx.idf))*8 +
		8*sliceHeaderBytes
	return heapBytes, 0
}
