package core

import "serenade/internal/sessions"

// This file implements the dense, epoch-stamped data structures behind the
// zero-allocation VMIS-kNN query kernel (see DESIGN.md, "Dense scoring
// kernel"). The index hands out dense integer session and item identifiers,
// so the per-query temporaries of Algorithm 2 need none of the hashing,
// bucket chasing, and incremental growth of Go's built-in maps:
//
//   - the candidate accumulator r (session -> similarity-in-progress) becomes
//     a fixed-size open-addressed probe table of 2·M slots — O(M), NOT
//     O(numSessions), since an index can hold 10⁸ sessions while M stays in
//     the hundreds and the table stays cache-resident;
//   - the item score accumulator becomes a flat []float64 over the dense
//     item-id space with a touched-list for sparse O(hits) reset;
//   - per-query clearing is an epoch-stamp bump instead of an O(size) wipe.

// probeSlot is one entry of the candidate probe table: the accumulator state
// of the map r of Algorithm 2 for one candidate session.
type probeSlot struct {
	key    sessions.SessionID
	stamp  uint32 // slot is live iff stamp == table epoch
	maxPos int32
	score  float64
}

// probeSlotBytes is the in-memory size of a probeSlot, for footprint
// accounting (4+4+4 bytes of fields padded to 8-byte alignment of score).
const probeSlotBytes = 24

// probeTable is a fixed-capacity open-addressed hash table from session id
// to accumulator state, using linear probing with backward-shift deletion.
// It holds at most maxLive entries in a power-of-two slot array at least
// twice that size, so probe chains stay short and there is always an empty
// slot to terminate scans. Clearing is O(1): bumping the epoch invalidates
// every slot's stamp at once (with a full stamp wipe only on the ~4-billion
// query epoch wraparound).
type probeTable struct {
	slots   []probeSlot
	mask    uint32
	shift   uint32 // 64 - log2(len(slots)), for the multiplicative hash
	epoch   uint32
	live    int
	maxLive int
}

// newProbeTable sizes the table for at most maxLive simultaneous entries:
// the next power of two ≥ 2·maxLive (minimum 4 slots).
func newProbeTable(maxLive int) *probeTable {
	size := 4
	shift := uint32(62)
	for size < 2*maxLive {
		size <<= 1
		shift--
	}
	return &probeTable{
		slots:   make([]probeSlot, size),
		mask:    uint32(size - 1),
		shift:   shift,
		epoch:   1,
		maxLive: maxLive,
	}
}

// home is the preferred slot of a key: a Fibonacci multiplicative hash
// folded into the table's power-of-two range.
func (t *probeTable) home(key sessions.SessionID) uint32 {
	return uint32((uint64(key) * 0x9E3779B97F4A7C15) >> t.shift)
}

// reset invalidates all entries in O(1) by starting a new epoch.
func (t *probeTable) reset() {
	t.epoch++
	if t.epoch == 0 {
		// Wrapped: stale stamps could collide with the restarted epoch
		// sequence, so wipe them once and skip the never-live value 0.
		for i := range t.slots {
			t.slots[i].stamp = 0
		}
		t.epoch = 1
	}
	t.live = 0
}

// len reports the number of live entries.
func (t *probeTable) len() int { return t.live }

// find returns the live slot holding key, or nil. The pointer is valid until
// the next insert or delete.
func (t *probeTable) find(key sessions.SessionID) *probeSlot {
	i := t.home(key)
	for {
		sl := &t.slots[i]
		if sl.stamp != t.epoch {
			return nil
		}
		if sl.key == key {
			return sl
		}
		i = (i + 1) & t.mask
	}
}

// insert adds an absent key with its initial accumulator state. The caller
// must ensure key is not present and the table holds fewer than maxLive
// entries (the M-bounded candidate loop guarantees both).
func (t *probeTable) insert(key sessions.SessionID, score float64, maxPos int32) {
	i := t.home(key)
	for t.slots[i].stamp == t.epoch {
		i = (i + 1) & t.mask
	}
	t.slots[i] = probeSlot{key: key, stamp: t.epoch, maxPos: maxPos, score: score}
	t.live++
}

// delete removes a key using backward-shift deletion, which preserves the
// linear-probing invariant without tombstones: entries after the vacated
// slot are shifted back unless that would move them before their home slot.
func (t *probeTable) delete(key sessions.SessionID) {
	i := t.home(key)
	for {
		sl := &t.slots[i]
		if sl.stamp != t.epoch {
			return // absent; cannot happen for the eviction call-site
		}
		if sl.key == key {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		j = (j + 1) & t.mask
		sl := &t.slots[j]
		if sl.stamp != t.epoch {
			break
		}
		// The entry at j may fill slot i only if its home does not lie in
		// the cyclic interval (i, j] — otherwise the move would place it
		// before its home and break lookups.
		h := t.home(sl.key)
		var movable bool
		if i <= j {
			movable = h <= i || h > j
		} else {
			movable = h <= i && h > j
		}
		if movable {
			t.slots[i] = *sl
			i = j
		}
	}
	t.slots[i].stamp = t.epoch - 1 // any value != epoch marks the slot empty
	t.live--
}

// footprint reports the table's in-memory size in bytes.
func (t *probeTable) footprint() int64 {
	return int64(len(t.slots)) * probeSlotBytes
}

// neighborBetter reports whether a ranks strictly before b in the descending
// neighbour order: higher similarity first, and the more recent session
// first on equal similarity — the same total order the reference path's
// bounded heap realises (Algorithm 2 lines 37-38).
func neighborBetter(a, b Neighbor) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Time > b.Time
}

// selectTopNeighbors partially partitions ns so its first k elements are the
// k best under neighborBetter, in arbitrary order (quickselect with
// median-of-three pivots). The kernel uses it instead of a bounded heap:
// selecting k of m candidates costs O(m + k log k) comparisons through a
// direct (inlinable) comparison instead of O(m log k) through a heap's
// indirect less function, and the profile shows the top-k stage — not the
// intersection loop — dominates once the accumulators are dense.
func selectTopNeighbors(ns []Neighbor, k int) {
	lo, hi := 0, len(ns)-1
	for lo < hi {
		p := partitionNeighbors(ns, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// partitionNeighbors partitions ns[lo:hi+1] around a median-of-three pivot
// and returns the pivot's final index: everything before it ranks better,
// everything after it ranks no better.
func partitionNeighbors(ns []Neighbor, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if neighborBetter(ns[mid], ns[lo]) {
		ns[lo], ns[mid] = ns[mid], ns[lo]
	}
	if neighborBetter(ns[hi], ns[mid]) {
		ns[mid], ns[hi] = ns[hi], ns[mid]
		if neighborBetter(ns[mid], ns[lo]) {
			ns[lo], ns[mid] = ns[mid], ns[lo]
		}
	}
	// ns[mid] now holds the median of the three; use it as the pivot.
	ns[mid], ns[hi] = ns[hi], ns[mid]
	pivot := ns[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if neighborBetter(ns[j], pivot) {
			ns[i], ns[j] = ns[j], ns[i]
			i++
		}
	}
	ns[i], ns[hi] = ns[hi], ns[i]
	return i
}

// scoredItemBetter reports whether a ranks strictly before b in the output
// order: higher score first, smaller item id first on ties (the
// deterministic order Recommend documents).
func scoredItemBetter(a, b ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Item < b.Item
}

// selectTopScoredItems is selectTopNeighbors for the output stage: it
// partially partitions out so its first n elements are the n best under
// scoredItemBetter. (Specialised rather than generic so the comparison
// inlines into the partition loop.)
func selectTopScoredItems(out []ScoredItem, n int) {
	lo, hi := 0, len(out)-1
	for lo < hi {
		p := partitionScoredItems(out, lo, hi)
		switch {
		case p == n-1:
			return
		case p < n-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partitionScoredItems(out []ScoredItem, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if scoredItemBetter(out[mid], out[lo]) {
		out[lo], out[mid] = out[mid], out[lo]
	}
	if scoredItemBetter(out[hi], out[mid]) {
		out[mid], out[hi] = out[hi], out[mid]
		if scoredItemBetter(out[mid], out[lo]) {
			out[lo], out[mid] = out[mid], out[lo]
		}
	}
	out[mid], out[hi] = out[hi], out[mid]
	pivot := out[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if scoredItemBetter(out[j], pivot) {
			out[i], out[j] = out[j], out[i]
			i++
		}
	}
	out[i], out[hi] = out[hi], out[i]
	return i
}

// itemAccumulator is the flat item-scoring accumulator: a dense score array
// over the item-id space plus the list of touched items, so a query resets
// only what it wrote (O(distinct scored items), not O(numItems)). Exactly
// one of the two score arrays is allocated, selected by
// Params.Float32Scores: the float32 array halves the accumulator's memory
// traffic (the dominant random-access structure of the scoring stage) at
// ~7 significant digits of score precision.
type itemAccumulator struct {
	scores   []float64
	scores32 []float32
	touched  []sessions.ItemID
}

func newItemAccumulator(numItems int, float32Scores bool) *itemAccumulator {
	if float32Scores {
		return &itemAccumulator{scores32: make([]float32, numItems)}
	}
	return &itemAccumulator{scores: make([]float64, numItems)}
}

// add accumulates a strictly positive contribution for an item (float64
// mode). Zero contributions must be filtered by the caller: a zero score is
// how the accumulator recognises a first touch.
func (a *itemAccumulator) add(item sessions.ItemID, v float64) {
	if a.scores[item] == 0 {
		a.touched = append(a.touched, item)
	}
	a.scores[item] += v
}

// add32 is add for the float32 accumulator. The contribution is computed in
// float64 and rounded once per add, so the only precision loss is the
// accumulator width itself.
func (a *itemAccumulator) add32(item sessions.ItemID, v float64) {
	if a.scores32[item] == 0 {
		a.touched = append(a.touched, item)
	}
	a.scores32[item] += float32(v)
}

// resetSparse zeroes exactly the entries written since the last reset.
func (a *itemAccumulator) resetSparse() {
	if a.scores32 != nil {
		for _, item := range a.touched {
			a.scores32[item] = 0
		}
	} else {
		for _, item := range a.touched {
			a.scores[item] = 0
		}
	}
	a.touched = a.touched[:0]
}

// footprint reports the accumulator's in-memory size in bytes.
func (a *itemAccumulator) footprint() int64 {
	return int64(len(a.scores))*8 + int64(len(a.scores32))*4 + int64(cap(a.touched))*4
}
