package core

import (
	"math/rand"
	"testing"

	"serenade/internal/sessions"
)

func TestProbeTableSizing(t *testing.T) {
	for _, tc := range []struct{ m, size int }{
		{1, 4}, {2, 4}, {3, 8}, {100, 256}, {500, 1024}, {1500, 4096},
	} {
		tab := newProbeTable(tc.m)
		if len(tab.slots) != tc.size {
			t.Errorf("newProbeTable(%d): %d slots, want %d", tc.m, len(tab.slots), tc.size)
		}
		if len(tab.slots)&(len(tab.slots)-1) != 0 {
			t.Errorf("newProbeTable(%d): size %d is not a power of two", tc.m, len(tab.slots))
		}
	}
}

func TestProbeTableInsertFindDelete(t *testing.T) {
	tab := newProbeTable(8)
	tab.reset()
	for i := 0; i < 8; i++ {
		tab.insert(sessions.SessionID(i*7), float64(i)+0.5, int32(i))
	}
	if tab.len() != 8 {
		t.Fatalf("len = %d, want 8", tab.len())
	}
	for i := 0; i < 8; i++ {
		sl := tab.find(sessions.SessionID(i * 7))
		if sl == nil {
			t.Fatalf("key %d not found", i*7)
		}
		if sl.score != float64(i)+0.5 || sl.maxPos != int32(i) {
			t.Errorf("key %d: got (%v,%d), want (%v,%d)", i*7, sl.score, sl.maxPos, float64(i)+0.5, i)
		}
	}
	if tab.find(999) != nil {
		t.Error("absent key found")
	}
	tab.delete(3 * 7)
	if tab.find(3*7) != nil {
		t.Error("deleted key still found")
	}
	if tab.len() != 7 {
		t.Errorf("len after delete = %d, want 7", tab.len())
	}
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		if tab.find(sessions.SessionID(i*7)) == nil {
			t.Errorf("key %d lost after unrelated delete", i*7)
		}
	}
}

func TestProbeTableReset(t *testing.T) {
	tab := newProbeTable(4)
	tab.reset()
	tab.insert(1, 1, 1)
	tab.insert(2, 2, 2)
	tab.reset()
	if tab.len() != 0 {
		t.Errorf("len after reset = %d, want 0", tab.len())
	}
	if tab.find(1) != nil || tab.find(2) != nil {
		t.Error("stale entries visible after reset")
	}
	tab.insert(1, 9, 9)
	if sl := tab.find(1); sl == nil || sl.score != 9 {
		t.Error("re-insert after reset failed")
	}
}

// TestProbeTableEpochWraparound forces the uint32 epoch to wrap and checks
// that stale stamps cannot masquerade as live entries afterwards.
func TestProbeTableEpochWraparound(t *testing.T) {
	tab := newProbeTable(4)
	tab.epoch = ^uint32(0) - 1 // two resets away from wrapping
	tab.reset()
	tab.insert(42, 1, 1)
	tab.reset() // wraps: stamps wiped, epoch restarts at 1
	if tab.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", tab.epoch)
	}
	if tab.find(42) != nil {
		t.Error("pre-wrap entry visible after wraparound reset")
	}
	tab.insert(7, 3, 3)
	if sl := tab.find(7); sl == nil || sl.score != 3 {
		t.Error("insert after wraparound failed")
	}
}

// TestProbeTableAgainstMap drives the table with a randomized insert /
// accumulate / delete workload mirroring the eviction-heavy candidate loop,
// checking every operation against a plain map oracle. This exercises the
// backward-shift deletion's cyclic-interval logic under collision-heavy
// keys (multiples of the table size hash near one another).
func TestProbeTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const maxLive = 16
	tab := newProbeTable(maxLive)
	oracle := map[sessions.SessionID]float64{}
	var live []sessions.SessionID

	for round := 0; round < 200; round++ {
		tab.reset()
		clear(oracle)
		live = live[:0]
		for op := 0; op < 300; op++ {
			key := sessions.SessionID(rng.Intn(64))
			if sl := tab.find(key); sl != nil {
				if _, ok := oracle[key]; !ok {
					t.Fatalf("round %d: table has %d, oracle does not", round, key)
				}
				sl.score += 1
				oracle[key] += 1
				continue
			}
			if _, ok := oracle[key]; ok {
				t.Fatalf("round %d: oracle has %d, table does not", round, key)
			}
			if tab.len() == maxLive {
				victim := live[rng.Intn(len(live))]
				tab.delete(victim)
				delete(oracle, victim)
				for i, k := range live {
					if k == victim {
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						break
					}
				}
			}
			tab.insert(key, 1, int32(op))
			oracle[key] = 1
			live = append(live, key)
		}
		if tab.len() != len(oracle) {
			t.Fatalf("round %d: len %d != oracle %d", round, tab.len(), len(oracle))
		}
		for key, want := range oracle {
			sl := tab.find(key)
			if sl == nil {
				t.Fatalf("round %d: key %d missing", round, key)
			}
			if sl.score != want {
				t.Fatalf("round %d: key %d score %v, want %v", round, key, sl.score, want)
			}
		}
	}
}

func TestItemAccumulatorSparseReset(t *testing.T) {
	acc := newItemAccumulator(10, false)
	acc.add(3, 1.5)
	acc.add(7, 2.0)
	acc.add(3, 0.5)
	if len(acc.touched) != 2 {
		t.Errorf("touched = %v, want exactly {3,7}", acc.touched)
	}
	if acc.scores[3] != 2.0 || acc.scores[7] != 2.0 {
		t.Errorf("scores = %v/%v, want 2/2", acc.scores[3], acc.scores[7])
	}
	acc.resetSparse()
	for i, s := range acc.scores {
		if s != 0 {
			t.Errorf("scores[%d] = %v after reset, want 0", i, s)
		}
	}
	if len(acc.touched) != 0 {
		t.Errorf("touched not cleared: %v", acc.touched)
	}
}

// TestRecommenderMemoryIndependentOfSessions pins the O(M + numItems) bound:
// two recommenders with the same parameters and item vocabulary must report
// the same footprint regardless of how many sessions their indexes hold.
func TestRecommenderMemoryIndependentOfSessions(t *testing.T) {
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(12))
	dsSmall := randomDataset(rngA, 100, 50)
	dsLarge := randomDataset(rngB, 4000, 50)
	idxSmall := mustIndex(t, dsSmall, 0)
	idxLarge := mustIndex(t, dsLarge, 0)
	if idxSmall.NumItems() != idxLarge.NumItems() {
		t.Skipf("vocabularies diverged (%d vs %d)", idxSmall.NumItems(), idxLarge.NumItems())
	}
	p := Params{M: 50, K: 20}
	a := mustRecommender(t, idxSmall, p)
	b := mustRecommender(t, idxLarge, p)
	fa, fb := a.MemoryFootprint(), b.MemoryFootprint()
	if fa <= 0 || fb <= 0 {
		t.Fatalf("footprints must be positive: %d, %d", fa, fb)
	}
	if fa != fb {
		t.Errorf("footprint varies with session count: %d (100 sessions) vs %d (4000 sessions)", fa, fb)
	}
}
