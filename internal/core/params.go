// Package core implements VMIS-kNN (Vector-Multiplication-Indexed-Session
// k-nearest-neighbours), the paper's primary contribution: an index-based
// adaptation of the VS-kNN session recommender that computes next-item
// recommendations in microseconds by jointly executing the item/session join
// and the two aggregations (recency sampling and similarity top-k) over a
// prebuilt inverted index, without materialising intermediate results.
package core

import "serenade/internal/sessions"

// DecayFunc weights an item by its 1-based insertion position pos in an
// evolving session of the given length (the function π of the paper).
type DecayFunc func(pos, length int) float64

// LinearDecay is the paper's default π: position divided by session length,
// so the most recent item has weight 1 and the oldest 1/length.
func LinearDecay(pos, length int) float64 {
	if length <= 0 {
		return 0
	}
	return float64(pos) / float64(length)
}

// QuadraticDecay emphasises recent items more strongly than LinearDecay.
// It is one of the alternative decay hyperparameters tuned in VS-kNN.
func QuadraticDecay(pos, length int) float64 {
	if length <= 0 {
		return 0
	}
	f := float64(pos) / float64(length)
	return f * f
}

// MatchWeightFunc weights a neighbour session by the insertion position of
// its most recent item shared with the evolving session (the function λ of
// the paper).
type MatchWeightFunc func(pos int) float64

// LinearMatchWeight is the paper's default λ: 1 − 0.1·pos for positions
// below 10 and zero otherwise (§2, toy example: λ(3) = 0.7).
func LinearMatchWeight(pos int) float64 {
	if pos < 10 {
		return 1 - 0.1*float64(pos)
	}
	return 0
}

// ConstantMatchWeight ignores the match position.
func ConstantMatchWeight(int) float64 { return 1 }

// Params are the VMIS-kNN hyperparameters.
type Params struct {
	// M is the recency sample size: how many of the most recent historical
	// sessions sharing an item with the evolving session are considered.
	M int
	// K is the number of nearest neighbour sessions used for scoring.
	K int
	// MaxSessionLength caps how many of the most recent evolving-session
	// items participate in the similarity computation (the paper caps this
	// so that query latency is bounded). Zero means DefaultMaxSessionLength.
	MaxSessionLength int
	// Decay is the position decay π; nil means LinearDecay.
	Decay DecayFunc
	// MatchWeight is the neighbour match weight λ; nil means
	// LinearMatchWeight.
	MatchWeight MatchWeightFunc
	// HeapArity is the branching factor of the recency and top-k heaps.
	// The paper uses octonary heaps (8) as a micro-optimisation; the
	// VMIS-kNN-no-opt baseline uses binary heaps (2). Zero means 8.
	HeapArity int
	// DisableEarlyStopping turns off the posting-list early-stop
	// optimisation; used only by the VMIS-kNN-no-opt baseline of §5.1.3.
	DisableEarlyStopping bool
	// Float32Scores switches the item-score accumulator from float64 to
	// float32, halving its footprint and memory traffic. Scores keep ~7
	// significant digits — outside the kernel's 1e-12 differential pinning
	// but far below any rank-relevant score gap on real data; batch and
	// single-query execution remain bit-identical to each other either way
	// because they apply contributions in the same order. Leave false for
	// the exact float64 path.
	Float32Scores bool
}

// DefaultMaxSessionLength bounds the number of evolving-session items
// considered. Positions at or beyond 10 receive a zero default match weight,
// so longer histories add latency without adding signal.
const DefaultMaxSessionLength = 9

// withDefaults normalises zero-valued fields.
func (p Params) withDefaults() Params {
	if p.MaxSessionLength <= 0 {
		p.MaxSessionLength = DefaultMaxSessionLength
	}
	if p.Decay == nil {
		p.Decay = LinearDecay
	}
	if p.MatchWeight == nil {
		p.MatchWeight = LinearMatchWeight
	}
	if p.HeapArity == 0 {
		p.HeapArity = 8
	}
	return p
}

// Validate reports whether the parameters are usable against the index.
func (p Params) Validate() error {
	if p.M < 1 {
		return errBadParam("M", p.M)
	}
	if p.K < 1 {
		return errBadParam("K", p.K)
	}
	if p.K > p.M {
		return errKExceedsM(p.K, p.M)
	}
	if p.HeapArity < 0 || p.HeapArity == 1 {
		return errBadParam("HeapArity", p.HeapArity)
	}
	return nil
}

// ScoredItem is one recommended item with its VMIS-kNN score.
type ScoredItem struct {
	Item  sessions.ItemID
	Score float64
}
