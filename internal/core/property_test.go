package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"serenade/internal/sessions"
)

// TestRecommendInvariantsProperty checks the output contract on random
// datasets and queries: at most n results, strictly positive scores,
// descending order with deterministic tie-breaks, no duplicate items, and
// never the full-idf-zero degenerate cases.
func TestRecommendInvariantsProperty(t *testing.T) {
	prop := func(seed int64, mSeed, kSeed, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 100+rng.Intn(200), 20+rng.Intn(40))
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		m := int(mSeed)%50 + 1
		k := int(kSeed)%m + 1
		n := int(nSeed)%30 + 1
		rec, err := NewRecommender(idx, Params{M: m, K: k})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := randomEvolving(rng, 60)
			out := rec.Recommend(q, n)
			if len(out) > n {
				return false
			}
			seen := map[sessions.ItemID]struct{}{}
			for i, s := range out {
				if s.Score <= 0 || math.IsNaN(s.Score) || math.IsInf(s.Score, 0) {
					return false
				}
				if _, dup := seen[s.Item]; dup {
					return false
				}
				seen[s.Item] = struct{}{}
				if i > 0 {
					prev := out[i-1]
					if s.Score > prev.Score {
						return false
					}
					if s.Score == prev.Score && s.Item < prev.Item {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNeighborInvariantsProperty: at most k neighbours, all with positive
// similarity, valid session ids and match positions inside the truncated
// window.
func TestNeighborInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 150, 30)
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		rec, err := NewRecommender(idx, Params{M: 20, K: 7})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := randomEvolving(rng, 40)
			ns := rec.NeighborSessions(q)
			if len(ns) > 7 {
				return false
			}
			window := len(q)
			if window > DefaultMaxSessionLength {
				window = DefaultMaxSessionLength
			}
			for i, nb := range ns {
				if nb.Score <= 0 || int(nb.ID) >= idx.NumSessions() {
					return false
				}
				if nb.MaxPos < 1 || nb.MaxPos > window {
					return false
				}
				if nb.Time != idx.Time(nb.ID) {
					return false
				}
				if i > 0 && nb.Score > ns[i-1].Score {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMonotoneMProperty: growing the recency sample can only widen the
// candidate set — every neighbour found with a smaller m must score at
// least as high with a larger m (its accumulated similarity cannot shrink).
func TestMonotoneMProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := randomDataset(rng, 250, 40)
	idx, err := BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := NewRecommender(idx, Params{M: 10, K: 10})
	large, _ := NewRecommender(idx, Params{M: 100, K: 100})
	for trial := 0; trial < 100; trial++ {
		q := randomEvolving(rng, 40)
		smallNs := append([]Neighbor(nil), small.NeighborSessions(q)...)
		largeNs := large.NeighborSessions(q)
		byID := map[sessions.SessionID]float64{}
		for _, nb := range largeNs {
			byID[nb.ID] = nb.Score
		}
		for _, nb := range smallNs {
			if ls, ok := byID[nb.ID]; ok && ls < nb.Score-1e-12 {
				t.Fatalf("session %d scored %v with m=10 but %v with m=100", nb.ID, nb.Score, ls)
			}
		}
	}
}
