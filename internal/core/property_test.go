package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"serenade/internal/sessions"
)

// TestRecommendInvariantsProperty checks the output contract on random
// datasets and queries: at most n results, strictly positive scores,
// descending order with deterministic tie-breaks, no duplicate items, and
// never the full-idf-zero degenerate cases.
func TestRecommendInvariantsProperty(t *testing.T) {
	prop := func(seed int64, mSeed, kSeed, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 100+rng.Intn(200), 20+rng.Intn(40))
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		m := int(mSeed)%50 + 1
		k := int(kSeed)%m + 1
		n := int(nSeed)%30 + 1
		rec, err := NewRecommender(idx, Params{M: m, K: k})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := randomEvolving(rng, 60)
			out := rec.Recommend(q, n)
			if len(out) > n {
				return false
			}
			seen := map[sessions.ItemID]struct{}{}
			for i, s := range out {
				if s.Score <= 0 || math.IsNaN(s.Score) || math.IsInf(s.Score, 0) {
					return false
				}
				if _, dup := seen[s.Item]; dup {
					return false
				}
				seen[s.Item] = struct{}{}
				if i > 0 {
					prev := out[i-1]
					if s.Score > prev.Score {
						return false
					}
					if s.Score == prev.Score && s.Item < prev.Item {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNeighborInvariantsProperty: at most k neighbours, all with positive
// similarity, valid session ids and match positions inside the truncated
// window.
func TestNeighborInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 150, 30)
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		rec, err := NewRecommender(idx, Params{M: 20, K: 7})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := randomEvolving(rng, 40)
			ns := rec.NeighborSessions(q)
			if len(ns) > 7 {
				return false
			}
			window := len(q)
			if window > DefaultMaxSessionLength {
				window = DefaultMaxSessionLength
			}
			for i, nb := range ns {
				if nb.Score <= 0 || int(nb.ID) >= idx.NumSessions() {
					return false
				}
				if nb.MaxPos < 1 || nb.MaxPos > window {
					return false
				}
				if nb.Time != idx.Time(nb.ID) {
					return false
				}
				if i > 0 && nb.Score > ns[i-1].Score {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// assertSameRecommendations fails unless the dense kernel and the map-based
// reference produced the same ranked output: identical items in identical
// (tie-break) order, scores within 1e-12.
func assertSameRecommendations(t *testing.T, q []sessions.ItemID, dense, ref []ScoredItem) {
	t.Helper()
	if len(dense) != len(ref) {
		t.Fatalf("query %v: dense kernel returned %d items, reference %d\ndense: %v\nref:   %v",
			q, len(dense), len(ref), dense, ref)
	}
	for i := range dense {
		if dense[i].Item != ref[i].Item {
			t.Fatalf("query %v: rank %d is item %d (dense) vs %d (reference)",
				q, i, dense[i].Item, ref[i].Item)
		}
		if math.Abs(dense[i].Score-ref[i].Score) > 1e-12 {
			t.Fatalf("query %v: item %d scored %v (dense) vs %v (reference)",
				q, dense[i].Item, dense[i].Score, ref[i].Score)
		}
	}
}

// assertSameNeighbors fails unless both implementations agreed on the
// neighbour list: ids, match positions, timestamps, and order identical,
// similarities within 1e-12.
func assertSameNeighbors(t *testing.T, q []sessions.ItemID, dense, ref []Neighbor) {
	t.Helper()
	if len(dense) != len(ref) {
		t.Fatalf("query %v: dense kernel found %d neighbours, reference %d\ndense: %v\nref:   %v",
			q, len(dense), len(ref), dense, ref)
	}
	for i := range dense {
		d, r := dense[i], ref[i]
		if d.ID != r.ID || d.MaxPos != r.MaxPos || d.Time != r.Time {
			t.Fatalf("query %v: neighbour %d is %+v (dense) vs %+v (reference)", q, i, d, r)
		}
		if math.Abs(d.Score-r.Score) > 1e-12 {
			t.Fatalf("query %v: session %d similarity %v (dense) vs %v (reference)",
				q, d.ID, d.Score, r.Score)
		}
	}
}

// TestDenseKernelMatchesReferenceProperty is the differential property test
// for the zero-allocation kernel: over randomized datasets, parameters and
// queries — with M small enough to force recency eviction, with and without
// early stopping, and with alternating output lengths n exercising the
// grow-and-reuse output heap — the dense kernel must return exactly what the
// retained map-based implementation returns. Timestamps are strictly
// increasing per dataset, so (score, time) ties cannot occur and the ranked
// output is fully deterministic.
func TestDenseKernelMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64, mSeed, kSeed, nSeed uint8, noEarlyStop bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 100+rng.Intn(300), 10+rng.Intn(40))
		idx, err := BuildIndex(ds, 0)
		if err != nil {
			return false
		}
		// Small M relative to the dataset keeps the recency heap full, so
		// the probe table's delete path (eviction) runs constantly.
		m := int(mSeed)%25 + 1
		k := int(kSeed)%m + 1
		n := int(nSeed)%30 + 1
		p := Params{M: m, K: k, DisableEarlyStopping: noEarlyStop}
		dense, err := NewRecommender(idx, p)
		if err != nil {
			return false
		}
		ref, err := NewReferenceRecommender(idx, p)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := randomEvolving(rng, 50)
			assertSameNeighbors(t,
				q,
				append([]Neighbor(nil), dense.NeighborSessions(q)...),
				ref.NeighborSessions(q))
			// Alternate n so the reused output heap shrinks and grows.
			trialN := n
			if trial%2 == 1 {
				trialN = n%7 + 1
			}
			assertSameRecommendations(t,
				q,
				append([]ScoredItem(nil), dense.Recommend(q, trialN)...),
				ref.Recommend(q, trialN))
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDenseKernelEvictionChurn pins the hardest kernel edge case directly:
// every historical session shares one hot item, M is tiny, and queries hit
// that item, so nearly every posting either evicts or early-stops. The
// kernel and reference must still agree, with early stopping on and off.
func TestDenseKernelEvictionChurn(t *testing.T) {
	const hot = 0
	var lists [][]sessions.ItemID
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 120; i++ {
		s := []sessions.ItemID{hot}
		for j := 0; j < 1+rng.Intn(4); j++ {
			s = append(s, sessions.ItemID(1+rng.Intn(30)))
		}
		lists = append(lists, s)
	}
	idx := mustIndex(t, buildDataset(t, lists), 0)
	for _, noEarlyStop := range []bool{false, true} {
		p := Params{M: 3, K: 3, DisableEarlyStopping: noEarlyStop}
		dense := mustRecommender(t, idx, p)
		ref, err := NewReferenceRecommender(idx, p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			q := []sessions.ItemID{sessions.ItemID(1 + rng.Intn(30)), hot}
			if trial%3 == 0 {
				q = append(q, sessions.ItemID(1+rng.Intn(30)))
			}
			assertSameNeighbors(t, q,
				append([]Neighbor(nil), dense.NeighborSessions(q)...),
				ref.NeighborSessions(q))
			assertSameRecommendations(t, q,
				append([]ScoredItem(nil), dense.Recommend(q, 10)...),
				ref.Recommend(q, 10))
		}
	}
}

// TestMonotoneMProperty: growing the recency sample can only widen the
// candidate set — every neighbour found with a smaller m must score at
// least as high with a larger m (its accumulated similarity cannot shrink).
func TestMonotoneMProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := randomDataset(rng, 250, 40)
	idx, err := BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := NewRecommender(idx, Params{M: 10, K: 10})
	large, _ := NewRecommender(idx, Params{M: 100, K: 100})
	for trial := 0; trial < 100; trial++ {
		q := randomEvolving(rng, 40)
		smallNs := append([]Neighbor(nil), small.NeighborSessions(q)...)
		largeNs := large.NeighborSessions(q)
		byID := map[sessions.SessionID]float64{}
		for _, nb := range largeNs {
			byID[nb.ID] = nb.Score
		}
		for _, nb := range smallNs {
			if ls, ok := byID[nb.ID]; ok && ls < nb.Score-1e-12 {
				t.Fatalf("session %d scored %v with m=10 but %v with m=100", nb.ID, nb.Score, ls)
			}
		}
	}
}
