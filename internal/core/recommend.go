package core

import (
	"slices"

	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

// Neighbor is one of the k historical sessions most similar to the evolving
// session.
type Neighbor struct {
	ID sessions.SessionID
	// Score is the decayed dot-product similarity r_n accumulated during
	// the item intersection loop.
	Score float64
	// MaxPos is the 1-based insertion position (within the truncated
	// evolving session) of the most recent item shared with this neighbour,
	// the argument of the match weight λ.
	MaxPos int
	// Time is the neighbour session's timestamp, used for tie-breaking.
	Time int64
}

type btEntry struct {
	id   sessions.SessionID
	time int64
}

// Recommender executes VMIS-kNN queries against an Index using the dense,
// epoch-stamped scoring kernel (see kernel.go): candidate accumulation runs
// in a fixed 2·M-slot probe table, item scoring in a flat array over the
// dense item-id space, and every per-query temporary is reused, so a
// steady-state query performs zero heap allocations. Per-Recommender memory
// is O(M + numItems) — independent of the number of indexed sessions.
//
// A Recommender reuses internal buffers across calls and is therefore NOT
// safe for concurrent use; create one per goroutine with Clone (the index
// itself is shared and immutable). The map-based original it replaced is
// retained as ReferenceRecommender for differential testing.
type Recommender struct {
	idx *Index
	p   Params

	tab    *probeTable       // candidate accumulator r of Algorithm 2
	seen   []sessions.ItemID // distinct evolving items (duplicate check)
	bt     *dheap.Heap[btEntry]
	nbrBuf []Neighbor
	acc    *itemAccumulator
	outBuf []ScoredItem
}

// NewRecommender validates the parameters and returns a query executor. Its
// kernel buffers are sized from the index (flat score array over the item-id
// space) and the parameters (2·M-slot probe table), so construct it — or
// Clone a prototype — per index generation.
func NewRecommender(idx *Index, p Params) (*Recommender, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if idx.capacity > 0 && p.M > idx.capacity {
		return nil, errMExceedsCapacity(p.M, idx.capacity)
	}
	p = p.withDefaults()
	r := &Recommender{
		idx:  idx,
		p:    p,
		tab:  newProbeTable(p.M),
		seen: make([]sessions.ItemID, 0, p.MaxSessionLength),
		acc:  newItemAccumulator(idx.numItems, p.Float32Scores),
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	return r, nil
}

// neighborLess orders neighbours weakest-first for the bounded top-k heap:
// lower similarity orders first; equal similarities break ties toward the
// older session (so the more recent session is retained), per Algorithm 2
// lines 37-38.
func neighborLess(a, b Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Time < b.Time
}

// Clone returns an independent Recommender sharing the same immutable index,
// for use from another goroutine. The clone gets fresh kernel buffers sized
// from the index, which is what the serving layer's per-generation pool
// relies on.
func (r *Recommender) Clone() *Recommender {
	c, err := NewRecommender(r.idx, r.p)
	if err != nil {
		// The parameters were validated when r was constructed.
		panic("core: Clone failed: " + err.Error())
	}
	return c
}

// Params returns the recommender's (defaulted) parameters.
func (r *Recommender) Params() Params { return r.p }

// Index returns the underlying index.
func (r *Recommender) Index() *Index { return r.idx }

// MemoryFootprint estimates the recommender's per-goroutine kernel buffer
// size in bytes — the Index.MemoryFootprint counterpart for query state. It
// is O(M + numItems) by construction: the probe table and heaps scale with
// M/K, the flat score array with the item vocabulary, and nothing scales
// with the number of indexed sessions.
func (r *Recommender) MemoryFootprint() int64 {
	var b int64
	b += r.tab.footprint()
	b += r.acc.footprint()
	b += int64(cap(r.seen)) * 4
	b += int64(r.p.M) * 16         // bt heap storage: btEntry{id,time}
	b += int64(cap(r.nbrBuf)) * 32 // neighbour collect/result buffer (≤ M)
	b += int64(cap(r.outBuf)) * 16 // output collect/result buffer: ScoredItem
	return b
}

// truncate returns the most recent MaxSessionLength items of the evolving
// session.
func (r *Recommender) truncate(evolving []sessions.ItemID) []sessions.ItemID {
	if len(evolving) > r.p.MaxSessionLength {
		return evolving[len(evolving)-r.p.MaxSessionLength:]
	}
	return evolving
}

// seenBefore reports whether item already occurred (at a more recent
// position) in this query's intersection loop. A linear scan over at most
// MaxSessionLength entries beats any hashed structure at this size and
// allocates nothing.
func (r *Recommender) seenBefore(item sessions.ItemID) bool {
	for _, s := range r.seen {
		if s == item {
			return true
		}
	}
	return false
}

// resetCandidates clears the per-query candidate state (probe table, seen
// list, recency heap) ahead of an intersection loop.
func (r *Recommender) resetCandidates() {
	r.tab.reset()
	r.seen = r.seen[:0]
	r.bt.Reset()
}

// consumePosting applies one posting-list entry (candidate session j with a
// current item weight pi at evolving position pos) to the candidate
// accumulator — the loop body of Algorithm 2's intersection loop. It returns
// false when the caller must stop walking this posting list (early
// stopping): postings are sorted by descending timestamp, so once a session
// is rejected for being older than every current candidate, every remaining
// session in the list would be rejected too. The batch kernel shares this
// method so a lane behaves bit-identically whether its postings are walked
// alone or interleaved with other lanes.
func (r *Recommender) consumePosting(j sessions.SessionID, pi float64, pos int) bool {
	if sl := r.tab.find(j); sl != nil {
		sl.score += pi
		return true
	}
	tj := r.idx.times[j]
	if r.tab.len() < r.p.M {
		r.tab.insert(j, pi, int32(pos))
		r.bt.Push(btEntry{id: j, time: tj})
		return true
	}
	oldest, _ := r.bt.Peek()
	if tj > oldest.time {
		// Evict the oldest candidate in favour of the more recent session
		// j. An evicted session can never re-enter: the recency heap's
		// minimum only grows.
		r.tab.delete(oldest.id)
		r.tab.insert(j, pi, int32(pos))
		r.bt.ReplaceRoot(btEntry{id: j, time: tj})
		return true
	}
	return r.p.DisableEarlyStopping
}

// NeighborSessions computes the k most similar historical sessions for the
// evolving session — the function neighbor_sessions_from_index of
// Algorithm 2. The returned slice is ordered most similar first and is
// valid until the next call on this Recommender.
func (r *Recommender) NeighborSessions(evolving []sessions.ItemID) []Neighbor {
	s := r.truncate(evolving)
	length := len(s)

	r.resetCandidates()

	// Item intersection loop: visit evolving-session items most recent
	// first so that the first candidate hit by a session records the most
	// recent shared item position, and so that duplicate items keep their
	// most recent position.
	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if r.seenBefore(item) {
			continue
		}
		r.seen = append(r.seen, item)
		postings := r.idx.Postings(item)
		if len(postings) == 0 {
			continue
		}
		pi := r.p.Decay(pos, length)

		for _, j := range postings {
			if !r.consumePosting(j, pi, pos) {
				break
			}
		}
	}

	return r.collectTopNeighbors()
}

// collectTopNeighbors runs the top-k similarity loop over a filled candidate
// table: one cache-friendly sweep over the probe table's 2·M slots stands in
// for iterating the temporary map r, then quickselect keeps the k best and a
// final sort orders them — the same total order the reference path's bounded
// heap produces, at a fraction of the comparisons (see selectTopNeighbors).
// The result aliases the reused neighbour buffer.
func (r *Recommender) collectTopNeighbors() []Neighbor {
	ns := r.nbrBuf[:0]
	for i := range r.tab.slots {
		sl := &r.tab.slots[i]
		if sl.stamp != r.tab.epoch {
			continue
		}
		ns = append(ns, Neighbor{
			ID:     sl.key,
			Score:  sl.score,
			MaxPos: int(sl.maxPos),
			Time:   r.idx.times[sl.key],
		})
	}
	r.nbrBuf = ns // retain grown storage for the next query
	if len(ns) > r.p.K {
		selectTopNeighbors(ns, r.p.K)
		ns = ns[:r.p.K]
	}
	slices.SortFunc(ns, func(a, b Neighbor) int {
		if neighborBetter(a, b) {
			return -1
		}
		if neighborBetter(b, a) {
			return 1
		}
		return 0
	})
	return ns
}

// Recommend computes the top-n next-item recommendations for the evolving
// session (most recent click last). The result is ordered by descending
// score with ties broken toward smaller item ids for determinism; it is
// valid until the next call on this Recommender.
func (r *Recommender) Recommend(evolving []sessions.ItemID, n int) []ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	return r.ScoreNeighbors(r.NeighborSessions(evolving), n)
}

// ScoreNeighbors runs the scoring half of Recommend against an
// already-selected neighbour set. It is split out so the serving layer can
// attribute index lookup (NeighborSessions) and item scoring separately in
// per-request traces; Recommend is exactly NeighborSessions followed by
// ScoreNeighbors. The same validity rules apply: the result aliases reused
// buffers and holds until the next call on this Recommender.
func (r *Recommender) ScoreNeighbors(neighbors []Neighbor, n int) []ScoredItem {
	if n <= 0 || len(neighbors) == 0 {
		return nil
	}

	// Item scoring (Algorithm 2 line 6-7, with the §3 simplifications):
	// d_i = Σ_n 1_n(i) · λ(maxPos_n) · r_n · log(|H|/h_i), accumulated in
	// the flat array. Zero contributions (idf 0) are skipped — they cannot
	// change a score, and the accumulator needs first touches to be
	// strictly positive. The float32 mode duplicates the two-line loop body
	// rather than branching per contribution: the accumulator store is the
	// hot instruction here.
	if r.p.Float32Scores {
		for _, nb := range neighbors {
			w := r.p.MatchWeight(nb.MaxPos) * nb.Score
			if w == 0 {
				continue
			}
			for _, item := range r.idx.SessionItems(nb.ID) {
				if v := w * r.idx.idf[item]; v != 0 {
					r.acc.add32(item, v)
				}
			}
		}
	} else {
		for _, nb := range neighbors {
			w := r.p.MatchWeight(nb.MaxPos) * nb.Score
			if w == 0 {
				continue
			}
			for _, item := range r.idx.SessionItems(nb.ID) {
				if v := w * r.idx.idf[item]; v != 0 {
					r.acc.add(item, v)
				}
			}
		}
	}

	// Output stage: collect the touched positive scores into the reused
	// buffer, quickselect the n best, and sort them. The buffer is shared
	// across calls regardless of n, so callers alternating output lengths
	// (e.g. A/B arms sharing a pool) never reallocate output state.
	out := r.outBuf[:0]
	if r.p.Float32Scores {
		for _, item := range r.acc.touched {
			if score := r.acc.scores32[item]; score > 0 {
				out = append(out, ScoredItem{Item: item, Score: float64(score)})
			}
		}
	} else {
		for _, item := range r.acc.touched {
			if score := r.acc.scores[item]; score > 0 {
				out = append(out, ScoredItem{Item: item, Score: score})
			}
		}
	}
	r.acc.resetSparse()
	r.outBuf = out // retain grown storage for the next query
	if len(out) == 0 {
		return nil
	}
	if len(out) > n {
		selectTopScoredItems(out, n)
		out = out[:n]
	}
	slices.SortFunc(out, func(a, b ScoredItem) int {
		if scoredItemBetter(a, b) {
			return -1
		}
		if scoredItemBetter(b, a) {
			return 1
		}
		return 0
	})
	return out
}

// scoredItemLess orders output candidates weakest-first: lower score first;
// equal scores order the larger item id first so that DrainDescending yields
// ascending item ids within a tie.
func scoredItemLess(a, b ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}
