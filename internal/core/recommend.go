package core

import (
	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

// Neighbor is one of the k historical sessions most similar to the evolving
// session.
type Neighbor struct {
	ID sessions.SessionID
	// Score is the decayed dot-product similarity r_n accumulated during
	// the item intersection loop.
	Score float64
	// MaxPos is the 1-based insertion position (within the truncated
	// evolving session) of the most recent item shared with this neighbour,
	// the argument of the match weight λ.
	MaxPos int
	// Time is the neighbour session's timestamp, used for tie-breaking.
	Time int64
}

// accum tracks the in-progress similarity for one candidate session in the
// temporary hashmap r of Algorithm 2.
type accum struct {
	score  float64
	maxPos int32
}

type btEntry struct {
	id   sessions.SessionID
	time int64
}

// Recommender executes VMIS-kNN queries against an Index. A Recommender
// reuses internal buffers across calls and is therefore NOT safe for
// concurrent use; create one per goroutine with Clone (the index itself is
// shared and immutable).
type Recommender struct {
	idx *Index
	p   Params

	r      map[sessions.SessionID]accum
	dup    map[sessions.ItemID]struct{}
	bt     *dheap.Heap[btEntry]
	topk   *dheap.Bounded[Neighbor]
	scores map[sessions.ItemID]float64
	outH   *dheap.Bounded[ScoredItem]
	outCap int
}

// NewRecommender validates the parameters and returns a query executor.
func NewRecommender(idx *Index, p Params) (*Recommender, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if idx.capacity > 0 && p.M > idx.capacity {
		return nil, errMExceedsCapacity(p.M, idx.capacity)
	}
	p = p.withDefaults()
	r := &Recommender{
		idx:    idx,
		p:      p,
		r:      make(map[sessions.SessionID]accum, p.M),
		dup:    make(map[sessions.ItemID]struct{}, p.MaxSessionLength),
		scores: make(map[sessions.ItemID]float64, 256),
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	r.topk = dheap.NewBounded(p.HeapArity, p.K, neighborLess)
	return r, nil
}

// neighborLess orders neighbours weakest-first for the bounded top-k heap:
// lower similarity orders first; equal similarities break ties toward the
// older session (so the more recent session is retained), per Algorithm 2
// lines 37-38.
func neighborLess(a, b Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Time < b.Time
}

// Clone returns an independent Recommender sharing the same immutable index,
// for use from another goroutine.
func (r *Recommender) Clone() *Recommender {
	c, err := NewRecommender(r.idx, r.p)
	if err != nil {
		// The parameters were validated when r was constructed.
		panic("core: Clone failed: " + err.Error())
	}
	return c
}

// Params returns the recommender's (defaulted) parameters.
func (r *Recommender) Params() Params { return r.p }

// Index returns the underlying index.
func (r *Recommender) Index() *Index { return r.idx }

// truncate returns the most recent MaxSessionLength items of the evolving
// session.
func (r *Recommender) truncate(evolving []sessions.ItemID) []sessions.ItemID {
	if len(evolving) > r.p.MaxSessionLength {
		return evolving[len(evolving)-r.p.MaxSessionLength:]
	}
	return evolving
}

// NeighborSessions computes the k most similar historical sessions for the
// evolving session — the function neighbor_sessions_from_index of
// Algorithm 2. The returned slice is ordered most similar first and is
// valid until the next call on this Recommender.
func (r *Recommender) NeighborSessions(evolving []sessions.ItemID) []Neighbor {
	s := r.truncate(evolving)
	length := len(s)

	clear(r.r)
	clear(r.dup)
	r.bt.Reset()
	r.topk.Reset()

	// Item intersection loop: visit evolving-session items most recent
	// first so that the first candidate hit by a session records the most
	// recent shared item position, and so that duplicate items keep their
	// most recent position.
	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if _, dup := r.dup[item]; dup {
			continue
		}
		r.dup[item] = struct{}{}
		postings := r.idx.Postings(item)
		if len(postings) == 0 {
			continue
		}
		pi := r.p.Decay(pos, length)

		for _, j := range postings {
			if acc, ok := r.r[j]; ok {
				acc.score += pi
				r.r[j] = acc
				continue
			}
			tj := r.idx.times[j]
			if len(r.r) < r.p.M {
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.Push(btEntry{id: j, time: tj})
				continue
			}
			oldest, _ := r.bt.Peek()
			if tj > oldest.time {
				// Evict the oldest candidate in favour of the more
				// recent session j.
				delete(r.r, oldest.id)
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.ReplaceRoot(btEntry{id: j, time: tj})
				continue
			}
			if !r.p.DisableEarlyStopping {
				// Early stopping: postings are sorted by descending
				// timestamp, so every remaining session in this list is
				// at least as old as j and would be rejected too.
				break
			}
		}
	}

	// Top-k similarity loop over the temporary similarity map r.
	for j, acc := range r.r {
		r.topk.Offer(Neighbor{
			ID:     j,
			Score:  acc.score,
			MaxPos: int(acc.maxPos),
			Time:   r.idx.times[j],
		})
	}
	return r.topk.DrainDescending()
}

// Recommend computes the top-n next-item recommendations for the evolving
// session (most recent click last). The result is ordered by descending
// score with ties broken toward smaller item ids for determinism; it is
// valid until the next call on this Recommender.
func (r *Recommender) Recommend(evolving []sessions.ItemID, n int) []ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	neighbors := r.NeighborSessions(evolving)
	if len(neighbors) == 0 {
		return nil
	}

	// Item scoring (Algorithm 2 line 6-7, with the §3 simplifications):
	// d_i = Σ_n 1_n(i) · λ(maxPos_n) · r_n · log(|H|/h_i).
	clear(r.scores)
	for _, nb := range neighbors {
		w := r.p.MatchWeight(nb.MaxPos) * nb.Score
		if w == 0 {
			continue
		}
		for _, item := range r.idx.SessionItems(nb.ID) {
			r.scores[item] += w * r.idx.idf[item]
		}
	}

	if r.outH == nil || r.outCap != n {
		r.outH = dheap.NewBounded(r.p.HeapArity, n, scoredItemLess)
		r.outCap = n
	} else {
		r.outH.Reset()
	}
	for item, score := range r.scores {
		if score > 0 {
			r.outH.Offer(ScoredItem{Item: item, Score: score})
		}
	}
	out := r.outH.DrainDescending()
	if len(out) == 0 {
		return nil
	}
	return out
}

// scoredItemLess orders output candidates weakest-first: lower score first;
// equal scores order the larger item id first so that DrainDescending yields
// ascending item ids within a tie.
func scoredItemLess(a, b ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}
