package core

import (
	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

// ReferenceRecommender is the original map-based implementation of the
// VMIS-kNN query path, retained verbatim as the differential-testing and
// benchmarking reference for the dense kernel in Recommender: the property
// tests prove both produce identical ranked output (including tie-breaks),
// and the microbenchmarks quantify the kernel's win over it. It is exported
// for tests and harnesses only — production paths should use Recommender.
//
// Like Recommender it reuses buffers across calls and is not safe for
// concurrent use.
type ReferenceRecommender struct {
	idx *Index
	p   Params

	r      map[sessions.SessionID]refAccum
	dup    map[sessions.ItemID]struct{}
	bt     *dheap.Heap[btEntry]
	topk   *dheap.Bounded[Neighbor]
	scores map[sessions.ItemID]float64
	outH   *dheap.Bounded[ScoredItem]
	outCap int
}

// refAccum tracks the in-progress similarity for one candidate session in
// the temporary hashmap r of Algorithm 2.
type refAccum struct {
	score  float64
	maxPos int32
}

// NewReferenceRecommender validates the parameters and returns the map-based
// reference query executor.
func NewReferenceRecommender(idx *Index, p Params) (*ReferenceRecommender, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if idx.capacity > 0 && p.M > idx.capacity {
		return nil, errMExceedsCapacity(p.M, idx.capacity)
	}
	p = p.withDefaults()
	r := &ReferenceRecommender{
		idx:    idx,
		p:      p,
		r:      make(map[sessions.SessionID]refAccum, p.M),
		dup:    make(map[sessions.ItemID]struct{}, p.MaxSessionLength),
		scores: make(map[sessions.ItemID]float64, 256),
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	r.topk = dheap.NewBounded(p.HeapArity, p.K, neighborLess)
	return r, nil
}

// NeighborSessions computes the k most similar historical sessions using
// per-query hashmaps — semantics identical to Recommender.NeighborSessions.
func (r *ReferenceRecommender) NeighborSessions(evolving []sessions.ItemID) []Neighbor {
	s := evolving
	if len(s) > r.p.MaxSessionLength {
		s = s[len(s)-r.p.MaxSessionLength:]
	}
	length := len(s)

	clear(r.r)
	clear(r.dup)
	r.bt.Reset()
	r.topk.Reset()

	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if _, dup := r.dup[item]; dup {
			continue
		}
		r.dup[item] = struct{}{}
		postings := r.idx.Postings(item)
		if len(postings) == 0 {
			continue
		}
		pi := r.p.Decay(pos, length)

		for _, j := range postings {
			if acc, ok := r.r[j]; ok {
				acc.score += pi
				r.r[j] = acc
				continue
			}
			tj := r.idx.times[j]
			if len(r.r) < r.p.M {
				r.r[j] = refAccum{score: pi, maxPos: int32(pos)}
				r.bt.Push(btEntry{id: j, time: tj})
				continue
			}
			oldest, _ := r.bt.Peek()
			if tj > oldest.time {
				delete(r.r, oldest.id)
				r.r[j] = refAccum{score: pi, maxPos: int32(pos)}
				r.bt.ReplaceRoot(btEntry{id: j, time: tj})
				continue
			}
			if !r.p.DisableEarlyStopping {
				break
			}
		}
	}

	for j, acc := range r.r {
		r.topk.Offer(Neighbor{
			ID:     j,
			Score:  acc.score,
			MaxPos: int(acc.maxPos),
			Time:   r.idx.times[j],
		})
	}
	return r.topk.DrainDescending()
}

// Recommend computes the top-n next-item recommendations using a hashmap
// score accumulator — semantics identical to Recommender.Recommend.
func (r *ReferenceRecommender) Recommend(evolving []sessions.ItemID, n int) []ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	neighbors := r.NeighborSessions(evolving)
	if len(neighbors) == 0 {
		return nil
	}

	clear(r.scores)
	for _, nb := range neighbors {
		w := r.p.MatchWeight(nb.MaxPos) * nb.Score
		if w == 0 {
			continue
		}
		for _, item := range r.idx.SessionItems(nb.ID) {
			r.scores[item] += w * r.idx.idf[item]
		}
	}

	if r.outH == nil {
		r.outH = dheap.NewBounded(r.p.HeapArity, n, scoredItemLess)
		r.outCap = n
	} else if r.outCap != n {
		// Callers alternating n must not thrash the heap: reuse its
		// storage, growing only when the new bound exceeds it.
		r.outH.ResetWithCap(n)
		r.outCap = n
	} else {
		r.outH.Reset()
	}
	for item, score := range r.scores {
		if score > 0 {
			r.outH.Offer(ScoredItem{Item: item, Score: score})
		}
	}
	out := r.outH.DrainDescending()
	if len(out) == 0 {
		return nil
	}
	return out
}
