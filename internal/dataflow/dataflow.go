// Package dataflow is a small in-process data-parallel batch engine.
//
// It stands in for the Apache Spark pipeline the paper uses for offline
// index generation (§4.2): data lives in partitioned collections, and the
// engine executes map / filter / flatMap / groupByKey / reduceByKey stages
// over the partitions with a bounded worker pool, including the hash
// shuffle that a groupByKey implies. This is the same relational plan shape
// the Spark job executes (group clicks by session, re-key by item, sort by
// recency, truncate), just on one machine.
package dataflow

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// Engine executes stages with a bounded number of workers.
type Engine struct {
	workers int
}

// NewEngine returns an engine running at most workers partition tasks
// concurrently. workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers reports the engine's concurrency.
func (e *Engine) Workers() int { return e.workers }

// Collection is an immutable partitioned dataset of T.
type Collection[T any] struct {
	parts [][]T
}

// FromSlice partitions xs into parts contiguous partitions.
func FromSlice[T any](xs []T, parts int) *Collection[T] {
	if parts < 1 {
		parts = 1
	}
	if parts > len(xs) && len(xs) > 0 {
		parts = len(xs)
	}
	c := &Collection[T]{parts: make([][]T, parts)}
	if len(xs) == 0 {
		return c
	}
	per := (len(xs) + parts - 1) / parts
	for i := 0; i < parts; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(xs) {
			lo = len(xs)
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		c.parts[i] = xs[lo:hi]
	}
	return c
}

// Partitions reports the number of partitions.
func (c *Collection[T]) Partitions() int { return len(c.parts) }

// Len reports the total number of elements.
func (c *Collection[T]) Len() int {
	n := 0
	for _, p := range c.parts {
		n += len(p)
	}
	return n
}

// Collect gathers all elements into one slice, partition by partition.
func (c *Collection[T]) Collect() []T {
	out := make([]T, 0, c.Len())
	for _, p := range c.parts {
		out = append(out, p...)
	}
	return out
}

// forEachPartition runs f over partition indices with bounded parallelism.
func forEachPartition(e *Engine, n int, f func(i int)) {
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map applies f to every element.
func Map[T, U any](e *Engine, c *Collection[T], f func(T) U) *Collection[U] {
	out := &Collection[U]{parts: make([][]U, len(c.parts))}
	forEachPartition(e, len(c.parts), func(i int) {
		in := c.parts[i]
		dst := make([]U, len(in))
		for j, x := range in {
			dst[j] = f(x)
		}
		out.parts[i] = dst
	})
	return out
}

// Filter retains elements for which keep reports true.
func Filter[T any](e *Engine, c *Collection[T], keep func(T) bool) *Collection[T] {
	out := &Collection[T]{parts: make([][]T, len(c.parts))}
	forEachPartition(e, len(c.parts), func(i int) {
		var dst []T
		for _, x := range c.parts[i] {
			if keep(x) {
				dst = append(dst, x)
			}
		}
		out.parts[i] = dst
	})
	return out
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](e *Engine, c *Collection[T], f func(T) []U) *Collection[U] {
	out := &Collection[U]{parts: make([][]U, len(c.parts))}
	forEachPartition(e, len(c.parts), func(i int) {
		var dst []U
		for _, x := range c.parts[i] {
			dst = append(dst, f(x)...)
		}
		out.parts[i] = dst
	})
	return out
}

// Pair is a keyed element for shuffles.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KeyBy turns a collection into a keyed collection.
func KeyBy[T any, K comparable](e *Engine, c *Collection[T], key func(T) K) *Collection[Pair[K, T]] {
	return Map(e, c, func(x T) Pair[K, T] { return Pair[K, T]{Key: key(x), Value: x} })
}

// hashKey hashes an arbitrary comparable key for the shuffle using its
// formatted representation; integer keys take a fast path.
func hashPartition[K comparable](k K, parts int, hasher func(K) uint64) int {
	return int(hasher(k) % uint64(parts))
}

// GroupByKey shuffles a keyed collection and groups the values per key.
// The hasher maps keys to shuffle buckets; use IntHasher or StringHasher.
// The output has outParts partitions (0 means: keep input partition count).
func GroupByKey[K comparable, V any](e *Engine, c *Collection[Pair[K, V]], outParts int, hasher func(K) uint64) *Collection[Pair[K, []V]] {
	if outParts <= 0 {
		outParts = len(c.parts)
		if outParts == 0 {
			outParts = 1
		}
	}
	// Map side: each input partition buckets its pairs per output partition.
	buckets := make([][]map[K][]V, len(c.parts)) // [inPart][outPart]
	forEachPartition(e, len(c.parts), func(i int) {
		local := make([]map[K][]V, outParts)
		for _, p := range c.parts[i] {
			b := hashPartition(p.Key, outParts, hasher)
			if local[b] == nil {
				local[b] = make(map[K][]V)
			}
			local[b][p.Key] = append(local[b][p.Key], p.Value)
		}
		buckets[i] = local
	})
	// Reduce side: each output partition merges its buckets from every
	// input partition, preserving input-partition order per key.
	out := &Collection[Pair[K, []V]]{parts: make([][]Pair[K, []V], outParts)}
	forEachPartition(e, outParts, func(o int) {
		merged := make(map[K][]V)
		for i := range buckets {
			if buckets[i] == nil || buckets[i][o] == nil {
				continue
			}
			for k, vs := range buckets[i][o] {
				merged[k] = append(merged[k], vs...)
			}
		}
		dst := make([]Pair[K, []V], 0, len(merged))
		for k, vs := range merged {
			dst = append(dst, Pair[K, []V]{Key: k, Value: vs})
		}
		out.parts[o] = dst
	})
	return out
}

// ReduceByKey shuffles a keyed collection and folds values per key with the
// associative, commutative reduce function, applying map-side combining
// before the shuffle (Spark's combiner optimisation).
func ReduceByKey[K comparable, V any](e *Engine, c *Collection[Pair[K, V]], outParts int, hasher func(K) uint64, reduce func(a, b V) V) *Collection[Pair[K, V]] {
	if outParts <= 0 {
		outParts = len(c.parts)
		if outParts == 0 {
			outParts = 1
		}
	}
	combined := make([][]map[K]V, len(c.parts))
	forEachPartition(e, len(c.parts), func(i int) {
		local := make([]map[K]V, outParts)
		for _, p := range c.parts[i] {
			b := hashPartition(p.Key, outParts, hasher)
			if local[b] == nil {
				local[b] = make(map[K]V)
			}
			if cur, ok := local[b][p.Key]; ok {
				local[b][p.Key] = reduce(cur, p.Value)
			} else {
				local[b][p.Key] = p.Value
			}
		}
		combined[i] = local
	})
	out := &Collection[Pair[K, V]]{parts: make([][]Pair[K, V], outParts)}
	forEachPartition(e, outParts, func(o int) {
		merged := make(map[K]V)
		for i := range combined {
			if combined[i] == nil || combined[i][o] == nil {
				continue
			}
			for k, v := range combined[i][o] {
				if cur, ok := merged[k]; ok {
					merged[k] = reduce(cur, v)
				} else {
					merged[k] = v
				}
			}
		}
		dst := make([]Pair[K, V], 0, len(merged))
		for k, v := range merged {
			dst = append(dst, Pair[K, V]{Key: k, Value: v})
		}
		out.parts[o] = dst
	})
	return out
}

// MapPartitions applies f to whole partitions, for stages that need
// partition-local state (e.g. sorting within a partition).
func MapPartitions[T, U any](e *Engine, c *Collection[T], f func([]T) []U) *Collection[U] {
	out := &Collection[U]{parts: make([][]U, len(c.parts))}
	forEachPartition(e, len(c.parts), func(i int) {
		out.parts[i] = f(c.parts[i])
	})
	return out
}

// IntHasher hashes integer-like keys.
func IntHasher[K ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](k K) uint64 {
	// Fibonacci hashing spreads sequential ids across buckets.
	return uint64(k) * 0x9E3779B97F4A7C15
}

// StringHasher hashes string keys with FNV-1a.
func StringHasher(k string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}
