package dataflow

import (
	"sort"
	"testing"
	"testing/quick"
)

func rangeInts(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestFromSlicePartitioning(t *testing.T) {
	c := FromSlice(rangeInts(10), 3)
	if c.Partitions() != 3 {
		t.Fatalf("Partitions = %d, want 3", c.Partitions())
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	got := c.Collect()
	for i, v := range got {
		if v != i {
			t.Fatalf("Collect[%d] = %d, want %d (order preserved)", i, v, i)
		}
	}
}

func TestFromSliceEdgeCases(t *testing.T) {
	if c := FromSlice([]int{}, 4); c.Len() != 0 {
		t.Error("empty slice should give empty collection")
	}
	if c := FromSlice(rangeInts(2), 10); c.Partitions() != 2 {
		t.Errorf("partitions capped at element count, got %d", c.Partitions())
	}
	if c := FromSlice(rangeInts(5), 0); c.Partitions() != 1 {
		t.Errorf("parts<1 should clamp to 1, got %d", c.Partitions())
	}
}

func TestMap(t *testing.T) {
	e := NewEngine(4)
	c := FromSlice(rangeInts(100), 7)
	doubled := Map(e, c, func(x int) int { return 2 * x })
	got := doubled.Collect()
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestFilter(t *testing.T) {
	e := NewEngine(4)
	c := FromSlice(rangeInts(100), 5)
	even := Filter(e, c, func(x int) bool { return x%2 == 0 })
	if even.Len() != 50 {
		t.Fatalf("Len = %d, want 50", even.Len())
	}
	for _, v := range even.Collect() {
		if v%2 != 0 {
			t.Fatalf("odd element %d survived filter", v)
		}
	}
}

func TestFlatMap(t *testing.T) {
	e := NewEngine(2)
	c := FromSlice([]int{1, 2, 3}, 2)
	out := FlatMap(e, c, func(x int) []int {
		xs := make([]int, x)
		for i := range xs {
			xs[i] = x
		}
		return xs
	})
	if out.Len() != 6 {
		t.Fatalf("Len = %d, want 6", out.Len())
	}
}

func TestGroupByKey(t *testing.T) {
	e := NewEngine(4)
	xs := rangeInts(1000)
	keyed := KeyBy(e, FromSlice(xs, 8), func(x int) int { return x % 10 })
	grouped := GroupByKey(e, keyed, 4, IntHasher[int])
	groups := grouped.Collect()
	if len(groups) != 10 {
		t.Fatalf("groups = %d, want 10", len(groups))
	}
	for _, g := range groups {
		if len(g.Value) != 100 {
			t.Fatalf("group %d size = %d, want 100", g.Key, len(g.Value))
		}
		// values arrive in input order per key within each partition,
		// and partitions are merged in order, so the whole group is sorted.
		if !sort.IntsAreSorted(g.Value) {
			t.Errorf("group %d not in input order: %v...", g.Key, g.Value[:5])
		}
		for _, v := range g.Value {
			if v%10 != g.Key {
				t.Fatalf("value %d in wrong group %d", v, g.Key)
			}
		}
	}
}

func TestGroupByKeyDefaultsOutParts(t *testing.T) {
	e := NewEngine(2)
	keyed := KeyBy(e, FromSlice(rangeInts(10), 3), func(x int) int { return x % 2 })
	grouped := GroupByKey(e, keyed, 0, IntHasher[int])
	if grouped.Partitions() != 3 {
		t.Errorf("default outParts = %d, want input partitions 3", grouped.Partitions())
	}
}

func TestGroupByKeyEmpty(t *testing.T) {
	e := NewEngine(2)
	keyed := FromSlice([]Pair[int, int]{}, 1)
	grouped := GroupByKey(e, keyed, 0, IntHasher[int])
	if grouped.Len() != 0 {
		t.Errorf("group of empty = %d elements", grouped.Len())
	}
}

func TestReduceByKey(t *testing.T) {
	e := NewEngine(4)
	xs := rangeInts(100)
	keyed := KeyBy(e, FromSlice(xs, 8), func(x int) int { return x % 5 })
	counts := ReduceByKey(e, Map(e, keyed, func(p Pair[int, int]) Pair[int, int] {
		return Pair[int, int]{Key: p.Key, Value: 1}
	}), 2, IntHasher[int], func(a, b int) int { return a + b })
	got := map[int]int{}
	for _, p := range counts.Collect() {
		got[p.Key] = p.Value
	}
	if len(got) != 5 {
		t.Fatalf("keys = %d, want 5", len(got))
	}
	for k, v := range got {
		if v != 20 {
			t.Errorf("count[%d] = %d, want 20", k, v)
		}
	}
}

func TestMapPartitions(t *testing.T) {
	e := NewEngine(3)
	c := FromSlice(rangeInts(9), 3)
	sums := MapPartitions(e, c, func(part []int) []int {
		s := 0
		for _, v := range part {
			s += v
		}
		return []int{s}
	})
	total := 0
	for _, v := range sums.Collect() {
		total += v
	}
	if total != 36 {
		t.Errorf("total = %d, want 36", total)
	}
}

func TestStringHasherSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for _, s := range []string{"a", "b", "c", "d"} {
		seen[StringHasher(s)] = true
	}
	if len(seen) < 3 {
		t.Error("string hasher collides excessively on tiny inputs")
	}
}

func TestNewEngineDefaults(t *testing.T) {
	if NewEngine(0).Workers() < 1 {
		t.Error("default engine must have at least one worker")
	}
	if NewEngine(3).Workers() != 3 {
		t.Error("explicit worker count not respected")
	}
}

// TestPropertyWordCountEquivalence: reduceByKey over any input matches a
// sequential fold, for any partitioning and worker count.
func TestPropertyWordCountEquivalence(t *testing.T) {
	prop := func(raw []uint8, parts, workers uint8) bool {
		e := NewEngine(int(workers%8) + 1)
		xs := make([]int, len(raw))
		want := map[int]int{}
		for i, v := range raw {
			xs[i] = int(v % 13)
			want[xs[i]]++
		}
		keyed := KeyBy(e, FromSlice(xs, int(parts%6)+1), func(x int) int { return x })
		ones := Map(e, keyed, func(p Pair[int, int]) Pair[int, int] {
			return Pair[int, int]{Key: p.Key, Value: 1}
		})
		counts := ReduceByKey(e, ones, int(parts%4)+1, IntHasher[int], func(a, b int) int { return a + b })
		got := map[int]int{}
		for _, p := range counts.Collect() {
			got[p.Key] = p.Value
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupPreservesMultiset: grouping preserves the value multiset.
func TestPropertyGroupPreservesMultiset(t *testing.T) {
	prop := func(raw []uint16, parts uint8) bool {
		e := NewEngine(4)
		pairs := make([]Pair[int, int], len(raw))
		want := map[int]int{}
		for i, v := range raw {
			pairs[i] = Pair[int, int]{Key: int(v % 7), Value: int(v)}
			want[int(v)]++
		}
		grouped := GroupByKey(e, FromSlice(pairs, int(parts%5)+1), int(parts%3)+1, IntHasher[int])
		got := map[int]int{}
		n := 0
		for _, g := range grouped.Collect() {
			for _, v := range g.Value {
				got[v]++
				n++
			}
		}
		if n != len(raw) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGroupByKey(b *testing.B) {
	e := NewEngine(0)
	pairs := make([]Pair[int, int], 100000)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % 1000, Value: i}
	}
	c := FromSlice(pairs, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupByKey(e, c, 8, IntHasher[int])
	}
}
