// Package dheap implements generic d-ary heaps.
//
// A d-ary heap is a complete d-ary tree stored in a slice where every node
// orders before its children. Compared to a binary heap, a wider heap (the
// paper uses d=8, an "octonary" heap) performs fewer levels of sifting on
// insertion at the cost of more comparisons on removal, which pays off for
// insertion-heavy workloads such as the recency heap b_t and the top-k heap
// N_s in VMIS-kNN.
package dheap

// Heap is a d-ary heap over elements of type E. The zero value is not usable;
// construct heaps with New. The heap is a min-heap with respect to the less
// function: the root (Peek) is the element that orders before all others.
// A max-heap is obtained by inverting less.
type Heap[E any] struct {
	d     int
	less  func(a, b E) bool
	items []E
}

// New returns an empty d-ary heap ordered by less. It panics if d < 2 or
// less is nil.
func New[E any](d int, less func(a, b E) bool) *Heap[E] {
	if d < 2 {
		panic("dheap: arity must be at least 2")
	}
	if less == nil {
		panic("dheap: nil less function")
	}
	return &Heap[E]{d: d, less: less}
}

// NewWithCapacity returns an empty heap with storage preallocated for n
// elements.
func NewWithCapacity[E any](d int, n int, less func(a, b E) bool) *Heap[E] {
	h := New(d, less)
	h.items = make([]E, 0, n)
	return h
}

// Len reports the number of elements in the heap.
func (h *Heap[E]) Len() int { return len(h.items) }

// Arity reports the heap's branching factor d.
func (h *Heap[E]) Arity() int { return h.d }

// Push inserts x into the heap in O(log_d n) time.
func (h *Heap[E]) Push(x E) {
	h.items = append(h.items, x)
	h.siftUp(len(h.items) - 1)
}

// Peek returns the root element without removing it. The second result is
// false if the heap is empty.
func (h *Heap[E]) Peek() (E, bool) {
	if len(h.items) == 0 {
		var zero E
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the root element. The second result is false if
// the heap is empty.
func (h *Heap[E]) Pop() (E, bool) {
	if len(h.items) == 0 {
		var zero E
		return zero, false
	}
	root := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero E
	h.items[last] = zero // release references for the garbage collector
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return root, true
}

// ReplaceRoot replaces the root element with x and restores heap order.
// It is equivalent to but cheaper than Pop followed by Push. It panics if
// the heap is empty.
func (h *Heap[E]) ReplaceRoot(x E) {
	if len(h.items) == 0 {
		panic("dheap: ReplaceRoot on empty heap")
	}
	h.items[0] = x
	h.siftDown(0)
}

// Reset removes all elements but keeps the allocated storage for reuse.
func (h *Heap[E]) Reset() {
	var zero E
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Drain removes and returns all elements in heap order (root first).
func (h *Heap[E]) Drain() []E {
	out := make([]E, 0, len(h.items))
	for {
		e, ok := h.Pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Items returns the underlying slice in heap layout (not sorted order).
// The caller must not modify element order; it is exposed for iteration.
func (h *Heap[E]) Items() []E { return h.items }

func (h *Heap[E]) siftUp(i int) {
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / h.d
		if !h.less(item, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = item
}

func (h *Heap[E]) siftDown(i int) {
	n := len(h.items)
	item := h.items[i]
	for {
		first := i*h.d + 1
		if first >= n {
			break
		}
		best := first
		last := first + h.d
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(h.items[c], h.items[best]) {
				best = c
			}
		}
		if !h.less(h.items[best], item) {
			break
		}
		h.items[i] = h.items[best]
		i = best
	}
	h.items[i] = item
}

// Bounded is a d-ary heap that retains at most Cap elements: when full,
// pushing an element that orders after the root replaces the root, and
// pushing one that orders before the root is a no-op. With a min-ordering
// less function it therefore keeps the Cap largest elements seen, which is
// exactly the top-k selection pattern of Algorithm 2 in the paper.
type Bounded[E any] struct {
	h   *Heap[E]
	cap int
}

// NewBounded returns a bounded heap with capacity cap and arity d, ordered
// by less (min-first). It panics if cap < 1.
func NewBounded[E any](d, cap int, less func(a, b E) bool) *Bounded[E] {
	if cap < 1 {
		panic("dheap: bounded heap capacity must be at least 1")
	}
	return &Bounded[E]{h: NewWithCapacity(d, cap, less), cap: cap}
}

// Len reports the number of retained elements.
func (b *Bounded[E]) Len() int { return b.h.Len() }

// Cap reports the retention capacity.
func (b *Bounded[E]) Cap() int { return b.cap }

// Offer considers x for retention. It reports whether x was kept (either
// inserted into spare capacity or replacing the current root).
func (b *Bounded[E]) Offer(x E) bool {
	if b.h.Len() < b.cap {
		b.h.Push(x)
		return true
	}
	root, _ := b.h.Peek()
	if b.h.less(root, x) {
		b.h.ReplaceRoot(x)
		return true
	}
	return false
}

// Peek returns the root (the weakest retained element) without removing it.
func (b *Bounded[E]) Peek() (E, bool) { return b.h.Peek() }

// Pop removes and returns the root.
func (b *Bounded[E]) Pop() (E, bool) { return b.h.Pop() }

// Reset removes all elements but keeps allocated storage.
func (b *Bounded[E]) Reset() { b.h.Reset() }

// ResetWithCap empties the heap and changes its retention capacity, growing
// the underlying storage only when the new capacity exceeds what is already
// allocated. Callers whose bound varies between uses (e.g. a recommendation
// list length chosen per request) reuse one heap instead of discarding it
// whenever the bound changes. It panics if cap < 1.
func (b *Bounded[E]) ResetWithCap(cap int) {
	if cap < 1 {
		panic("dheap: bounded heap capacity must be at least 1")
	}
	b.h.Reset()
	b.h.items = growSlice(b.h.items, cap)
	b.cap = cap
}

// growSlice returns s (length 0) with capacity at least n, reallocating only
// when needed.
func growSlice[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]E, 0, n)
}

// Items returns the retained elements in heap layout (not sorted).
func (b *Bounded[E]) Items() []E { return b.h.Items() }

// DrainDescending removes and returns all retained elements ordered from
// strongest to weakest (reverse heap order).
func (b *Bounded[E]) DrainDescending() []E {
	out := b.h.Drain()
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// AppendDescending drains the heap like DrainDescending but appends the
// elements to dst instead of allocating a fresh slice, so steady-state
// callers that reuse a buffer across queries perform no heap allocation.
func (b *Bounded[E]) AppendDescending(dst []E) []E {
	start := len(dst)
	for {
		e, ok := b.h.Pop()
		if !ok {
			break
		}
		dst = append(dst, e)
	}
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}
