package dheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestNewPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for arity 1")
		}
	}()
	New[int](1, intLess)
}

func TestNewPanicsOnNilLess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil less")
		}
	}()
	New[int](2, nil)
}

func TestEmptyHeap(t *testing.T) {
	h := New(2, intLess)
	if h.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", h.Len())
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
}

func TestPushPopSortsBinary(t *testing.T) { testPushPopSorts(t, 2) }
func TestPushPopSortsOctonary(t *testing.T) {
	testPushPopSorts(t, 8)
}
func TestPushPopSortsTernary(t *testing.T) { testPushPopSorts(t, 3) }

func testPushPopSorts(t *testing.T, d int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	h := New(d, intLess)
	const n = 1000
	want := make([]int, n)
	for i := range want {
		v := rng.Intn(500) // duplicates on purpose
		want[i] = v
		h.Push(v)
	}
	sort.Ints(want)
	for i, w := range want {
		got, ok := h.Pop()
		if !ok {
			t.Fatalf("heap exhausted at %d", i)
		}
		if got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len() = %d after draining, want 0", h.Len())
	}
}

func TestReplaceRoot(t *testing.T) {
	h := New(8, intLess)
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		h.Push(v)
	}
	h.ReplaceRoot(7)
	got := h.Drain()
	want := []int{2, 3, 5, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Drain() len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestReplaceRootEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, intLess).ReplaceRoot(1)
}

func TestReset(t *testing.T) {
	h := New(4, intLess)
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len() = %d after Reset, want 0", h.Len())
	}
	h.Push(3)
	h.Push(1)
	if v, _ := h.Peek(); v != 1 {
		t.Fatalf("Peek() = %d after reuse, want 1", v)
	}
}

func TestArity(t *testing.T) {
	if got := New(8, intLess).Arity(); got != 8 {
		t.Fatalf("Arity() = %d, want 8", got)
	}
}

// TestHeapPropertyQuick verifies via property testing that for any input
// sequence and any arity in {2,3,4,8}, popping yields a sorted permutation
// of the input.
func TestHeapPropertyQuick(t *testing.T) {
	prop := func(values []int16, aritySeed uint8) bool {
		d := []int{2, 3, 4, 8}[int(aritySeed)%4]
		h := New(d, intLess)
		want := make([]int, len(values))
		for i, v := range values {
			want[i] = int(v)
			h.Push(int(v))
		}
		sort.Ints(want)
		got := h.Drain()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHeapInvariantAfterMixedOps checks the structural heap invariant after
// an arbitrary interleaving of pushes and pops.
func TestHeapInvariantAfterMixedOps(t *testing.T) {
	prop := func(ops []int16) bool {
		h := New(8, intLess)
		for _, op := range ops {
			if op%3 == 0 && h.Len() > 0 {
				h.Pop()
			} else {
				h.Push(int(op))
			}
		}
		items := h.Items()
		for i := 1; i < len(items); i++ {
			parent := (i - 1) / 8
			if intLess(items[i], items[parent]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundedKeepsLargest(t *testing.T) {
	b := NewBounded(8, 3, intLess)
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		b.Offer(v)
	}
	got := b.DrainDescending()
	want := []int{9, 8, 7}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DrainDescending()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBoundedOfferReturnValue(t *testing.T) {
	b := NewBounded(2, 2, intLess)
	if !b.Offer(5) || !b.Offer(3) {
		t.Fatal("offers into spare capacity must be kept")
	}
	if b.Offer(1) {
		t.Error("offer weaker than root must be rejected when full")
	}
	if !b.Offer(10) {
		t.Error("offer stronger than root must be kept when full")
	}
	if b.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", b.Len())
	}
}

func TestBoundedCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cap 0")
		}
	}()
	NewBounded[int](2, 0, intLess)
}

func TestBoundedReset(t *testing.T) {
	b := NewBounded(2, 4, intLess)
	b.Offer(1)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len() = %d after Reset, want 0", b.Len())
	}
	if b.Cap() != 4 {
		t.Fatalf("Cap() = %d after Reset, want 4", b.Cap())
	}
}

// TestBoundedTopKProperty: for random input, the bounded heap retains
// exactly the k largest values.
func TestBoundedTopKProperty(t *testing.T) {
	prop := func(values []int16, kSeed uint8) bool {
		if len(values) == 0 {
			return true
		}
		k := int(kSeed)%8 + 1
		b := NewBounded(8, k, intLess)
		ints := make([]int, len(values))
		for i, v := range values {
			ints[i] = int(v)
			b.Offer(int(v))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ints)))
		if k > len(ints) {
			k = len(ints)
		}
		got := b.DrainDescending()
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPopBinary(b *testing.B)   { benchPushPop(b, 2) }
func BenchmarkPushPopOctonary(b *testing.B) { benchPushPop(b, 8) }

func benchPushPop(b *testing.B, d int) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 4096)
	for i := range vals {
		vals[i] = rng.Int()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewWithCapacity(d, len(vals), intLess)
		for _, v := range vals {
			h.Push(v)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

func TestBoundedResetWithCap(t *testing.T) {
	b := NewBounded(4, 3, func(a, b int) bool { return a < b })
	for i := 0; i < 10; i++ {
		b.Offer(i)
	}
	if b.Len() != 3 || b.Cap() != 3 {
		t.Fatalf("len/cap = %d/%d, want 3/3", b.Len(), b.Cap())
	}
	// Grow: previous contents dropped, new bound honoured.
	b.ResetWithCap(5)
	if b.Len() != 0 || b.Cap() != 5 {
		t.Fatalf("after grow: len/cap = %d/%d, want 0/5", b.Len(), b.Cap())
	}
	for i := 0; i < 10; i++ {
		b.Offer(i)
	}
	if got := b.DrainDescending(); len(got) != 5 || got[0] != 9 || got[4] != 5 {
		t.Errorf("after grow: drained %v, want [9 8 7 6 5]", got)
	}
	// Shrink: storage reused, bound honoured.
	b.ResetWithCap(2)
	if b.Cap() != 2 {
		t.Fatalf("after shrink: cap = %d, want 2", b.Cap())
	}
	for i := 0; i < 10; i++ {
		b.Offer(i)
	}
	if got := b.DrainDescending(); len(got) != 2 || got[0] != 9 || got[1] != 8 {
		t.Errorf("after shrink: drained %v, want [9 8]", got)
	}
	// Shrinking and re-growing within previously allocated storage must
	// not allocate.
	b.ResetWithCap(5)
	allocs := testing.AllocsPerRun(100, func() {
		b.ResetWithCap(2)
		b.Offer(1)
		b.ResetWithCap(5)
		b.Offer(1)
		b.Reset()
	})
	if allocs != 0 {
		t.Errorf("ResetWithCap within existing storage allocates %.1f times, want 0", allocs)
	}
}

func TestBoundedResetWithCapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ResetWithCap(0) did not panic")
		}
	}()
	NewBounded(2, 1, func(a, b int) bool { return a < b }).ResetWithCap(0)
}

func TestBoundedAppendDescending(t *testing.T) {
	b := NewBounded(3, 4, func(a, b int) bool { return a < b })
	for _, v := range []int{5, 1, 9, 7, 3, 8} {
		b.Offer(v)
	}
	buf := make([]int, 0, 8)
	got := b.AppendDescending(buf)
	want := []int{9, 8, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if b.Len() != 0 {
		t.Errorf("heap not empty after drain: %d", b.Len())
	}
	// Reusing the returned buffer must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range []int{5, 1, 9, 7, 3, 8} {
			b.Offer(v)
		}
		got = b.AppendDescending(got[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendDescending with a reused buffer allocates %.1f times, want 0", allocs)
	}
	// Appending after existing elements preserves the prefix.
	b.Offer(2)
	b.Offer(6)
	out := b.AppendDescending([]int{42})
	if len(out) != 3 || out[0] != 42 || out[1] != 6 || out[2] != 2 {
		t.Errorf("append after prefix = %v, want [42 6 2]", out)
	}
}
