package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"serenade/internal/abtest"
	"serenade/internal/core"
	"serenade/internal/legacy"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// ABTest reproduces §5.2.3 / Figure 3(c): a 21-day A/B test of
// serenade-hist (VMIS-kNN on the last two session items) and
// serenade-recent (last item only) against the legacy item-to-item CF, with
// the production hyperparameters m=500, k=500, slot size 21. See the
// abtest package documentation for the engagement simulation.
func ABTest(opts Options) (*abtest.Result, error) {
	// A dedicated dataset: two weeks of history to index, then a 21-day
	// test window — the duration of the paper's online test.
	cfg := synth.Config{
		Name: "abtest-sim", NumSessions: 24_000, NumItems: 6_000, Days: 35,
		Clusters: 120, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.08,
		LengthMu: 1.35, LengthSigma: 0.95, MaxLength: 200, Seed: 301,
	}
	if opts.Quick {
		cfg.NumSessions, cfg.NumItems, cfg.Clusters = 3_000, 800, 30
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sp := sessions.TemporalSplit(ds, 21)
	train, test := sessions.Renumber(sp.Train), sp.Test
	if len(test.Sessions) == 0 {
		return nil, fmt.Errorf("experiments: empty A/B test window")
	}

	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	params := core.Params{M: 500, K: 500}
	histRec, err := core.NewRecommender(idx, params)
	if err != nil {
		return nil, err
	}
	recentRec, err := core.NewRecommender(idx, params)
	if err != nil {
		return nil, err
	}
	legacyModel := legacy.Train(train, legacy.Config{})

	// The "often bought together" slot next to the one under test. We have
	// no purchase data, so its stand-in is a popularity-based complements
	// list that is (nearly) independent of the arm's output; the
	// cannibalisation between the slots then emerges purely from the
	// attention competition — the arm whose own slot is most engaging
	// drains the neighbouring slot, which is what §5.2.3 observed for
	// serenade-recent.
	slot2 := popularityComplements(train)

	arms := []abtest.Arm{
		{Name: "legacy", Recommend: legacyModel.Recommend},
		{Name: "serenade-hist", Recommend: lastN(histRec.Recommend, 2)},
		{Name: "serenade-recent", Recommend: lastN(recentRec.Recommend, 1)},
	}
	return abtest.Run(abtest.Config{
		Test:     test,
		Arms:     arms,
		Slot2:    slot2,
		SlotSize: 21,
		Seed:     opts.Seed + 17,
	})
}

// popularityComplements returns a RecommendFunc serving the most popular
// items (excluding the one currently viewed), the complements-slot stand-in.
func popularityComplements(train *sessions.Dataset) abtest.RecommendFunc {
	counts := make(map[sessions.ItemID]int)
	for _, c := range train.Clicks {
		counts[c.Item]++
	}
	ranked := make([]core.ScoredItem, 0, len(counts))
	for it, n := range counts {
		ranked = append(ranked, core.ScoredItem{Item: it, Score: float64(n)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Item < ranked[j].Item
	})
	return func(ev []sessions.ItemID, n int) []core.ScoredItem {
		var current sessions.ItemID
		if len(ev) > 0 {
			current = ev[len(ev)-1]
		}
		out := make([]core.ScoredItem, 0, n)
		for _, r := range ranked {
			if r.Item == current {
				continue
			}
			out = append(out, r)
			if len(out) == n {
				break
			}
		}
		return out
	}
}

// lastN wraps a recommender to predict from only the session's most recent
// n items — the serenade-hist / serenade-recent variants.
func lastN(rec abtest.RecommendFunc, n int) abtest.RecommendFunc {
	return func(ev []sessions.ItemID, size int) []core.ScoredItem {
		if len(ev) > n {
			ev = ev[len(ev)-n:]
		}
		return rec(ev, size)
	}
}

// PrintABTest renders the §5.2.3 outcome tables and the Figure 3(c)
// latency series.
func PrintABTest(w io.Writer, res *abtest.Result) {
	fmt.Fprintln(w, "§5.2.3: A/B test outcome (simulated engagement)")
	header := []string{"arm", "sessions", "impressions", "slot1 rate", "slot2 rate", "sitewide"}
	var cells [][]string
	for _, a := range res.Arms {
		cells = append(cells, []string{
			a.Name,
			fmt.Sprintf("%d", a.Sessions),
			fmt.Sprintf("%d", a.Impressions),
			fmt.Sprintf("%.4f", a.Slot1Rate),
			fmt.Sprintf("%.4f", a.Slot2Rate),
			fmt.Sprintf("%.4f", a.SitewideRate),
		})
	}
	printTable(w, header, cells)

	fmt.Fprintln(w)
	header = []string{"arm vs legacy", "slot1 lift", "slot2 lift", "sitewide lift", "p-value", "significant"}
	cells = nil
	for _, c := range res.Comparisons {
		cells = append(cells, []string{
			c.Arm,
			fmt.Sprintf("%+.2f%%", c.Slot1LiftPct),
			fmt.Sprintf("%+.2f%%", c.Slot2LiftPct),
			fmt.Sprintf("%+.2f%%", c.SitewideLiftPct),
			fmt.Sprintf("%.2g", c.PValue),
			fmt.Sprintf("%t", c.Significant),
		})
	}
	printTable(w, header, cells)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "cumulative significance (two-proportion z-test vs legacy):")
	for _, d := range res.Daily {
		if d.FirstSignificantDay > 0 {
			fmt.Fprintf(w, "  %-18s significant from day %d (final p = %.2g)\n",
				d.Arm, d.FirstSignificantDay, d.PValues[len(d.PValues)-1])
		} else {
			fmt.Fprintf(w, "  %-18s never significant (final p = %.2g)\n",
				d.Arm, d.PValues[len(d.PValues)-1])
		}
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 3(c): recommendation latency per simulated day")
	header = []string{"day", "requests", "p75", "p90", "p99.5"}
	cells = nil
	for i, p := range res.Latency.Points() {
		if p.Requests == 0 {
			continue
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", p.Requests),
			p.P75.Round(time.Microsecond).String(),
			p.P90.Round(time.Microsecond).String(),
			p.P995.Round(time.Microsecond).String(),
		})
	}
	printTable(w, header, cells)
}
