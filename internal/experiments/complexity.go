package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// ComplexityRow is one measurement of the §3 complexity validation.
type ComplexityRow struct {
	// Dimension names the swept variable: "history" (|H|), "session-length"
	// (|s|), or "sample" (m).
	Dimension string
	Value     int
	Median    time.Duration
	P90       time.Duration
}

// Complexity validates the §3 time-complexity claim experimentally: the
// per-query cost of VMIS-kNN is O(|s|·m·log m) — linear in the evolving
// session length and in the sample size m, and (theoretically) independent
// of the number of historical sessions |H| and items |I|. The runner sweeps
// each variable with the others held fixed.
func Complexity(opts Options) ([]ComplexityRow, error) {
	histories := []int{20_000, 40_000, 80_000, 160_000}
	lengths := []int{1, 2, 4, 6, 9}
	samples := []int{100, 250, 500, 1000, 2000}
	queriesPerPoint := 4000
	if opts.Quick {
		histories = []int{5_000, 10_000}
		lengths = []int{1, 4}
		samples = []int{100, 500}
		queriesPerPoint = 300
	}

	var rows []ComplexityRow
	rng := rand.New(rand.NewSource(71))

	// Sweep |H| with |s| and m fixed. Item count scales with the dataset,
	// as it does in the paper's dataset family.
	for _, h := range histories {
		cfg := synth.Config{
			Name: fmt.Sprintf("hist-%d", h), NumSessions: h, NumItems: h / 8,
			Days: 30, Clusters: h / 400, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.06,
			LengthMu: 1.3, LengthSigma: 0.9, MaxLength: 80, Seed: int64(h),
		}
		ds, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		idx, err := core.BuildIndex(ds, 0)
		if err != nil {
			return nil, err
		}
		rec, err := core.NewRecommender(idx, core.Params{M: 500, K: 100})
		if err != nil {
			return nil, err
		}
		times := timeFixedQueries(rec, rng, cfg.NumItems, 3, queriesPerPoint)
		rows = append(rows, ComplexityRow{
			Dimension: "history", Value: h,
			Median: durationPercentile(times, 0.5), P90: durationPercentile(times, 0.9),
		})
	}

	// A fixed mid-size dataset for the |s| and m sweeps.
	base := synth.Config{
		Name: "complexity-base", NumSessions: 40_000, NumItems: 5_000,
		Days: 30, Clusters: 100, ZipfS: 1.2, PStay: 0.85, RevisitProb: 0.06,
		LengthMu: 1.3, LengthSigma: 0.9, MaxLength: 80, Seed: 72,
	}
	if opts.Quick {
		base.NumSessions, base.NumItems, base.Clusters = 8_000, 1_000, 30
	}
	ds, err := synth.Generate(base)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		return nil, err
	}

	for _, l := range lengths {
		rec, err := core.NewRecommender(idx, core.Params{M: 500, K: 100})
		if err != nil {
			return nil, err
		}
		times := timeFixedQueries(rec, rng, base.NumItems, l, queriesPerPoint)
		rows = append(rows, ComplexityRow{
			Dimension: "session-length", Value: l,
			Median: durationPercentile(times, 0.5), P90: durationPercentile(times, 0.9),
		})
	}

	for _, m := range samples {
		rec, err := core.NewRecommender(idx, core.Params{M: m, K: 100})
		if err != nil {
			return nil, err
		}
		times := timeFixedQueries(rec, rng, base.NumItems, 3, queriesPerPoint)
		rows = append(rows, ComplexityRow{
			Dimension: "sample", Value: m,
			Median: durationPercentile(times, 0.5), P90: durationPercentile(times, 0.9),
		})
	}
	return rows, nil
}

// timeFixedQueries measures n queries of exactly the given session length.
func timeFixedQueries(rec *core.Recommender, rng *rand.Rand, vocab, length, n int) []time.Duration {
	queries := make([][]sessions.ItemID, n)
	for i := range queries {
		q := make([]sessions.ItemID, length)
		for j := range q {
			q[j] = sessions.ItemID(rng.Intn(vocab))
		}
		queries[i] = q
	}
	return timeQueries(func(q []sessions.ItemID) { rec.Recommend(q, 21) }, queries)
}

// PrintComplexity renders the three sweeps.
func PrintComplexity(w io.Writer, rows []ComplexityRow) {
	fmt.Fprintln(w, "§3 complexity validation: query time vs |H| (should be flat), |s| and m (should be ~linear)")
	header := []string{"dimension", "value", "median", "p90"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dimension, fmt.Sprintf("%d", r.Value),
			r.Median.Round(time.Microsecond).String(),
			r.P90.Round(time.Microsecond).String(),
		})
	}
	printTable(w, header, cells)
}
