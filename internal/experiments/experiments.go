package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"serenade/internal/core"
	"serenade/internal/metrics"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// Options tune how heavy the experiment runners are.
type Options struct {
	// Quick shrinks datasets and sweeps so that the full suite runs in
	// seconds (used by tests and the repository benchmarks). The full-size
	// runs back the numbers recorded in EXPERIMENTS.md.
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
}

// RecommendFunc is the minimal recommender contract the evaluation
// protocol needs.
type RecommendFunc func(evolving []sessions.ItemID, n int) []core.ScoredItem

// prepProfile generates a dataset profile (optionally shrunk for Quick
// runs) and splits off the last day as the held-out test set, the protocol
// of §5.1.
func prepProfile(name string, opts Options) (train, test *sessions.Dataset, err error) {
	cfg, err := synth.Profile(name)
	if err != nil {
		return nil, nil, err
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Quick {
		cfg.NumSessions /= 10
		if cfg.NumSessions < 500 {
			cfg.NumSessions = 500
		}
		cfg.NumItems /= 4
		if cfg.NumItems < 200 {
			cfg.NumItems = 200
		}
		if cfg.Clusters > cfg.NumItems/4 {
			cfg.Clusters = cfg.NumItems / 4
		}
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	sp := sessions.TemporalSplit(ds, 1)
	// The training sessions must be renumbered to dense time-ascending ids
	// for index construction.
	return sessions.Renumber(sp.Train), sp.Test, nil
}

// evaluate runs the session-rec evaluation protocol: for every prefix of
// every test session, ask for the top-k recommendations and score the true
// next item and the remaining items.
func evaluate(rec RecommendFunc, test *sessions.Dataset, k, maxSessions int) metrics.Report {
	acc := metrics.NewRankingAccumulator(k)
	n := len(test.Sessions)
	if maxSessions > 0 && n > maxSessions {
		n = maxSessions
	}
	for si := 0; si < n; si++ {
		s := &test.Sessions[si]
		for t := 0; t < s.Len()-1; t++ {
			recs := rec(s.Items[:t+1], k)
			items := make([]sessions.ItemID, len(recs))
			for i, r := range recs {
				items[i] = r.Item
			}
			acc.Add(items, s.Items[t+1], s.Items[t+1:])
		}
	}
	return acc.Report()
}

// evaluateWithCoverage additionally tracks catalogue coverage and
// popularity bias of the produced lists.
func evaluateWithCoverage(rec RecommendFunc, test *sessions.Dataset, k, maxSessions, catalogSize int, popularity map[sessions.ItemID]int) (metrics.Report, metrics.CoverageReport) {
	acc := metrics.NewRankingAccumulator(k)
	cov := metrics.NewCoverageAccumulator(catalogSize, popularity)
	n := len(test.Sessions)
	if maxSessions > 0 && n > maxSessions {
		n = maxSessions
	}
	for si := 0; si < n; si++ {
		s := &test.Sessions[si]
		for t := 0; t < s.Len()-1; t++ {
			recs := rec(s.Items[:t+1], k)
			items := make([]sessions.ItemID, len(recs))
			for i, r := range recs {
				items[i] = r.Item
			}
			acc.Add(items, s.Items[t+1], s.Items[t+1:])
			cov.Add(items)
		}
	}
	return acc.Report(), cov.Report()
}

// queryPrefixes expands test sessions into growing evolving-session
// prefixes, the query stream of the §5.2.1 comparison ("sequentially
// compute next-item recommendations for the growing evolving sessions").
func queryPrefixes(test *sessions.Dataset, maxSessions int) [][]sessions.ItemID {
	var out [][]sessions.ItemID
	n := len(test.Sessions)
	if maxSessions > 0 && n > maxSessions {
		n = maxSessions
	}
	for si := 0; si < n; si++ {
		s := &test.Sessions[si]
		for t := 1; t < s.Len(); t++ {
			out = append(out, s.Items[:t])
		}
	}
	return out
}

// timeQueries runs every query through fn and returns the per-query wall
// times.
func timeQueries(fn func([]sessions.ItemID), queries [][]sessions.ItemID) []time.Duration {
	times := make([]time.Duration, len(queries))
	for i, q := range queries {
		start := time.Now()
		fn(q)
		times[i] = time.Since(start)
	}
	return times
}

// durationPercentile returns the p-quantile of a duration sample.
func durationPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// printTable writes an aligned two-dimensional text table.
func printTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	printRow(sep)
	for _, r := range rows {
		printRow(r)
	}
}
