package experiments

import (
	"bytes"
	"math"
	"math/rand"

	"strings"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/loadgen"
	"serenade/internal/sessions"
)

var quick = Options{Quick: true, Seed: 99}

// uniqueTimeDataset builds sessions with strictly increasing timestamps so
// that all implementation design points have identical tie-breaking.
func uniqueTimeDataset(rng *rand.Rand, n, vocab int) *sessions.Dataset {
	var ss []sessions.Session
	tick := int64(1000)
	for i := 0; i < n; i++ {
		length := 2 + rng.Intn(6)
		items := make([]sessions.ItemID, length)
		times := make([]int64, length)
		for j := range items {
			items[j] = sessions.ItemID(rng.Intn(vocab))
			tick++
			times[j] = tick
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	return sessions.FromSessions("uniq", ss)
}

// TestImplementationsAgree is the correctness gate for the Figure 3(a)
// comparison: all five design points must return identical recommendations;
// they differ only in execution strategy.
func TestImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := uniqueTimeDataset(rng, 400, 60)
	p := core.Params{M: 30, K: 10}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	vmis, err := NewVMISCore(idx, p)
	if err != nil {
		t.Fatal(err)
	}
	impls := []Implementation{
		NewVSScan(ds, p),
		NewVMISBoxed(idx, p),
		NewVMISMaterialised(idx, p),
		NewVMISIndexed(idx, p),
		vmis,
	}
	for trial := 0; trial < 100; trial++ {
		length := 1 + rng.Intn(5)
		q := make([]sessions.ItemID, length)
		for i := range q {
			q[i] = sessions.ItemID(rng.Intn(60))
		}
		want := impls[0].Recommend(q, 21)
		for _, impl := range impls[1:] {
			got := impl.Recommend(q, 21)
			if !approxSameRecs(got, want, 1e-9) {
				t.Fatalf("%s disagrees with %s on %v:\n%v\nvs\n%v",
					impl.Name(), impls[0].Name(), q, got, want)
			}
		}
	}
}

// approxSameRecs compares two ranked lists allowing last-ULP differences
// from floating-point summation order: the lists must have the same length,
// and items in the same position must either match or carry scores within
// rel tolerance (adjacent near-ties may swap order across implementations).
func approxSameRecs(a, b []core.ScoredItem, rel float64) bool {
	if len(a) != len(b) {
		return false
	}
	scoreOf := func(list []core.ScoredItem) map[sessions.ItemID]float64 {
		m := make(map[sessions.ItemID]float64, len(list))
		for _, r := range list {
			m[r.Item] = r.Score
		}
		return m
	}
	sa, sb := scoreOf(a), scoreOf(b)
	for i := range a {
		if a[i].Item == b[i].Item {
			if !within(a[i].Score, b[i].Score, rel) {
				return false
			}
			continue
		}
		// A positional swap is acceptable only between near-tied scores,
		// and both items must appear in both lists with matching scores.
		if !within(a[i].Score, b[i].Score, rel) {
			return false
		}
		other, ok := sb[a[i].Item]
		if !ok || !within(a[i].Score, other, rel) {
			return false
		}
		if mine, ok := sa[b[i].Item]; !ok || !within(b[i].Score, mine, rel) {
			return false
		}
	}
	return true
}

func within(x, y, rel float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if ax := mathAbs(x); ax > scale {
		scale = ax
	}
	return d <= rel*scale
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestImplementationNames(t *testing.T) {
	ds := uniqueTimeDataset(rand.New(rand.NewSource(1)), 50, 20)
	idx, _ := core.BuildIndex(ds, 0)
	p := core.Params{M: 10, K: 5}
	vmis, _ := NewVMISCore(idx, p)
	names := map[string]bool{}
	for _, impl := range []Implementation{
		NewVSScan(ds, p), NewVMISBoxed(idx, p), NewVMISMaterialised(idx, p), NewVMISIndexed(idx, p), vmis,
	} {
		names[impl.Name()] = true
	}
	if len(names) != 5 {
		t.Errorf("implementation names not distinct: %v", names)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Clicks == 0 || r.Sessions == 0 || r.Items == 0 {
			t.Errorf("empty stats for %s", r.Name)
		}
		if r.P25 < 2 || r.P99 < r.P50 {
			t.Errorf("%s: implausible percentiles %d/%d/%d/%d", r.Name, r.P25, r.P50, r.P75, r.P99)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "retailrocket-sim") {
		t.Error("printed table missing dataset name")
	}
}

func TestQuality(t *testing.T) {
	rows, err := Quality(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (VMIS + 3 neural + legacy)", len(rows))
	}
	byName := map[string]QualityRow{}
	for _, r := range rows {
		byName[r.Model] = r
		if r.Report.N == 0 {
			t.Errorf("%s evaluated on zero events", r.Model)
		}
		if r.Report.MRR < 0 || r.Report.MRR > 1 {
			t.Errorf("%s MRR out of range: %v", r.Model, r.Report.MRR)
		}
	}
	if byName["VMIS-kNN"].Report.MRR == 0 {
		t.Error("VMIS-kNN scored zero MRR — no signal in the evaluation")
	}
	var buf bytes.Buffer
	PrintQuality(&buf, rows)
	if !strings.Contains(buf.String(), "VMIS-kNN") {
		t.Error("printed quality table incomplete")
	}
}

func TestGrid(t *testing.T) {
	cells, err := Grid("retailrocket-sim", quick)
	if err != nil {
		t.Fatal(err)
	}
	// quick: ks={50,100}, ms={50,500}; k<=m leaves (50,50),(50,500),(100,500).
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	for _, c := range cells {
		if c.K > c.M {
			t.Errorf("cell with k=%d > m=%d", c.K, c.M)
		}
		if c.MRR < 0 || c.MRR > 1 || c.Prec < 0 || c.Prec > 1 {
			t.Errorf("cell (%d,%d) metrics out of range: %+v", c.M, c.K, c)
		}
	}
	var buf bytes.Buffer
	PrintGrid(&buf, "retailrocket-sim", cells)
	if !strings.Contains(buf.String(), "MRR@20") || !strings.Contains(buf.String(), "Prec@20") {
		t.Error("printed grid missing metric sections")
	}
}

func TestImplComparison(t *testing.T) {
	rows, err := ImplComparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 impls on 1 quick dataset", len(rows))
	}
	for _, r := range rows {
		if r.Median <= 0 || r.P90 < r.Median {
			t.Errorf("%s/%s: implausible timings median=%v p90=%v", r.Dataset, r.Impl, r.Median, r.P90)
		}
	}
	var buf bytes.Buffer
	PrintImplComparison(&buf, rows)
	if !strings.Contains(buf.String(), "VMIS-kNN") {
		t.Error("printed comparison incomplete")
	}
}

func TestMicro(t *testing.T) {
	rows, err := Micro(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 m-values x 3 variants", len(rows))
	}
	var buf bytes.Buffer
	PrintMicro(&buf, rows)
	if !strings.Contains(buf.String(), "VMIS-kNN-no-opt") {
		t.Error("printed microbenchmark incomplete")
	}
}

func TestLoadTestQuick(t *testing.T) {
	res, err := LoadTest(LoadTestConfig{RPS: 300, Duration: 1200 * time.Millisecond, Replicas: 2}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if res.Errors > res.Sent/10 {
		t.Errorf("errors = %d of %d, want <10%%", res.Errors, res.Sent)
	}
	var buf bytes.Buffer
	PrintLoadTest(&buf, res)
	if !strings.Contains(buf.String(), "req/s") {
		t.Error("printed load test incomplete")
	}
}

func TestABTestQuick(t *testing.T) {
	res, err := ABTest(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d, want 3", len(res.Arms))
	}
	for _, c := range res.Comparisons {
		if c.Slot1LiftPct <= 0 {
			t.Errorf("%s slot1 lift = %.2f%%, want positive (VMIS-kNN must beat item-item CF)", c.Arm, c.Slot1LiftPct)
		}
	}
	var buf bytes.Buffer
	PrintABTest(&buf, res)
	if !strings.Contains(buf.String(), "serenade-hist") {
		t.Error("printed A/B table incomplete")
	}
}

func TestKVBenchQuick(t *testing.T) {
	res, err := KVBench(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadP99 <= 0 || res.WriteP99 <= 0 {
		t.Error("zero percentiles")
	}
	// The paper's contract: microsecond-scale local reads/writes.
	if res.ReadP99 > 2*time.Millisecond || res.WriteP99 > 2*time.Millisecond {
		t.Errorf("p99 latencies not microsecond-scale: read %v write %v", res.ReadP99, res.WriteP99)
	}
	var buf bytes.Buffer
	PrintKVBench(&buf, res)
	if !strings.Contains(buf.String(), "read p99") {
		t.Error("printed kv bench incomplete")
	}
}

func TestCoreScalingQuick(t *testing.T) {
	rows, err := CoreScaling([]int{100, 200}, 1200*time.Millisecond, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var buf bytes.Buffer
	PrintCoreScaling(&buf, rows)
	if !strings.Contains(buf.String(), "avg cores") {
		t.Error("printed scaling table incomplete")
	}
}

func TestExtensionsQuick(t *testing.T) {
	res, err := Extensions(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedBytes >= res.RawBytes {
		t.Errorf("compressed %d >= raw %d bytes", res.CompressedBytes, res.RawBytes)
	}
	if res.RawMedian <= 0 || res.CompMedian <= 0 || res.IncMedian <= 0 {
		t.Error("zero query timings")
	}
	if res.AppendsPerSec <= 0 || res.DeltaAtBenchmark == 0 {
		t.Error("incremental appends not measured")
	}
	var buf bytes.Buffer
	PrintExtensions(&buf, res)
	if !strings.Contains(buf.String(), "compressed") || !strings.Contains(buf.String(), "appends/s") {
		t.Error("printed extensions report incomplete")
	}
}

func TestComplexityQuick(t *testing.T) {
	rows, err := Complexity(quick)
	if err != nil {
		t.Fatal(err)
	}
	dims := map[string]int{}
	for _, r := range rows {
		dims[r.Dimension]++
		if r.Median <= 0 {
			t.Errorf("%s=%d: zero median", r.Dimension, r.Value)
		}
	}
	if dims["history"] != 2 || dims["session-length"] != 2 || dims["sample"] != 2 {
		t.Errorf("sweep shape wrong: %v", dims)
	}
	var buf bytes.Buffer
	PrintComplexity(&buf, rows)
	if !strings.Contains(buf.String(), "session-length") {
		t.Error("printed complexity table incomplete")
	}
}

func TestDurationPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2}
	if got := durationPercentile(ds, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := durationPercentile(nil, 0.5); got != 0 {
		t.Errorf("p50 of empty = %v, want 0", got)
	}
}

// TestQualityRunQuick is the end-to-end acceptance check for the online
// quality loop: replaying the labelled workload through quality-enabled
// replicas with simulated position-biased clicks must recover, via inverse
// propensity weighting, an online MRR estimate within tolerance of the
// offline MRR the baseline replay measured on the very same traffic — and
// the whole run must be deterministic under a fixed seed.
func TestQualityRunQuick(t *testing.T) {
	cfg := QualityRunConfig{
		Variants: []string{"a", "b"},
		Model:    loadgen.ClickModel{Seed: 17, VariantSkew: map[string]float64{"b": 0.7}},
		Rounds:   12,
	}
	res, err := QualityRun(cfg, quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil || res.Baseline.MRR <= 0 || res.Baseline.CondMRR <= 0 {
		t.Fatalf("degenerate baseline: %+v", res.Baseline)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Exposures != uint64(res.Steps*res.Rounds) {
			t.Errorf("%s: exposures = %d, want %d (labelled steps x rounds)", r.Variant, r.Exposures, res.Steps*res.Rounds)
		}
		if r.Clicks == 0 {
			t.Errorf("%s: no clicks attributed", r.Variant)
		}
		// The IPW estimator inverts the click model's own propensities, so
		// the skewed arm must land on the same offline MRR as the neutral
		// one — that invariance is the estimator's correctness check.
		if diff := math.Abs(r.OnlineMRR-r.OfflineMRR) / r.OfflineMRR; diff > 0.25 {
			t.Errorf("%s: online MRR %.4f vs offline %.4f (%.0f%% off, want ≤25%%)", r.Variant, r.OnlineMRR, r.OfflineMRR, diff*100)
		}
		// Healthy traffic against its own baseline must not read as drift.
		if r.Drift {
			t.Errorf("%s: healthy loop flagged drift (%s)", r.Variant, r.DriftReason)
		}
	}
	// The skew suppresses arm b's raw CTR even though its IPW MRR matches.
	if res.Rows[1].CTR >= res.Rows[0].CTR {
		t.Errorf("skewed arm CTR %.4f not below neutral %.4f", res.Rows[1].CTR, res.Rows[0].CTR)
	}

	// Determinism: an identical run reproduces the quality numbers exactly.
	res2, err := QualityRun(cfg, quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		a, b := res.Rows[i], res2.Rows[i]
		if a.Exposures != b.Exposures || a.Clicks != b.Clicks || a.OnlineMRR != b.OnlineMRR {
			t.Errorf("run not deterministic: %+v vs %+v", a, b)
		}
	}

	var buf bytes.Buffer
	PrintQualityRun(&buf, res)
	if !strings.Contains(buf.String(), "online MRR (IPW)") {
		t.Error("printed quality table incomplete")
	}
}

func TestQualityBaselineQuick(t *testing.T) {
	base, err := QualityBaseline("retailrocket-sim", quick)
	if err != nil {
		t.Fatal(err)
	}
	if base.K <= 0 || base.Events == 0 || base.MRR <= 0 || base.HitRate <= 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	if len(base.RankDist) != base.K {
		t.Errorf("rank dist has %d entries, want %d", len(base.RankDist), base.K)
	}
	var sum float64
	for _, p := range base.RankDist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank dist sums to %v, want 1", sum)
	}
	if base.CondMRR < base.MRR {
		t.Errorf("cond MRR %.4f below unconditional %.4f", base.CondMRR, base.MRR)
	}
	if base.Coverage <= 0 || base.Coverage > 1 {
		t.Errorf("coverage = %v", base.Coverage)
	}
}
