package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/compressed"
	"serenade/internal/core"
	"serenade/internal/incremental"
	"serenade/internal/sessions"
)

// ExtensionsResult quantifies the two future-work extensions (§7 of the
// paper): querying a compressed index in place, and maintaining the index
// incrementally instead of rebuilding daily.
type ExtensionsResult struct {
	// Compressed-index ablation.
	RawBytes        int64
	CompressedBytes int64
	RawMedian       time.Duration
	RawP90          time.Duration
	CompMedian      time.Duration
	CompP90         time.Duration

	// Incremental-maintenance ablation.
	AppendsPerSec    float64
	IncMedian        time.Duration
	IncP90           time.Duration
	CompactTime      time.Duration
	FullRebuildTime  time.Duration
	DeltaAtBenchmark int
}

// Extensions measures both extensions on the ecom-1m stand-in.
func Extensions(opts Options) (*ExtensionsResult, error) {
	train, test, err := prepProfile("ecom-1m-sim", opts)
	if err != nil {
		return nil, err
	}
	p := core.Params{M: 500, K: 100}
	maxSessions := 150
	if opts.Quick {
		maxSessions = 30
	}
	queries := queryPrefixes(test, maxSessions)
	res := &ExtensionsResult{}

	// --- Compressed index ---
	idx, err := core.BuildIndex(train, 0)
	if err != nil {
		return nil, err
	}
	comp := compressed.FromIndex(idx)
	res.RawBytes = idx.MemoryFootprint()
	res.CompressedBytes = comp.MemoryFootprint()

	rawRec, err := core.NewRecommender(idx, p)
	if err != nil {
		return nil, err
	}
	rawTimes := timeQueries(func(q []sessions.ItemID) { rawRec.Recommend(q, 21) }, queries)
	res.RawMedian = durationPercentile(rawTimes, 0.5)
	res.RawP90 = durationPercentile(rawTimes, 0.9)

	compRec, err := compressed.NewRecommender(comp, p)
	if err != nil {
		return nil, err
	}
	compTimes := timeQueries(func(q []sessions.ItemID) { compRec.Recommend(q, 21) }, queries)
	res.CompMedian = durationPercentile(compTimes, 0.5)
	res.CompP90 = durationPercentile(compTimes, 0.9)

	// --- Incremental maintenance ---
	inc, err := incremental.FromDataset(train, 0)
	if err != nil {
		return nil, err
	}
	appendCount := len(test.Sessions)
	last := train.Sessions[len(train.Sessions)-1].Time()
	start := time.Now()
	for i := range test.Sessions {
		s := &test.Sessions[i]
		if t := s.Time(); t > last {
			last = t
		}
		if _, err := inc.Append(s.Items, last); err != nil {
			return nil, err
		}
	}
	appendElapsed := time.Since(start)
	if appendElapsed > 0 {
		res.AppendsPerSec = float64(appendCount) / appendElapsed.Seconds()
	}
	res.DeltaAtBenchmark = inc.DeltaSessions()

	incRec, err := incremental.NewRecommender(inc, p)
	if err != nil {
		return nil, err
	}
	incTimes := timeQueries(func(q []sessions.ItemID) { incRec.Recommend(q, 21) }, queries)
	res.IncMedian = durationPercentile(incTimes, 0.5)
	res.IncP90 = durationPercentile(incTimes, 0.9)

	start = time.Now()
	if err := inc.Compact(); err != nil {
		return nil, err
	}
	res.CompactTime = time.Since(start)

	// Reference cost: a full daily rebuild over the same data.
	all := append(append([]sessions.Session{}, train.Sessions...), test.Sessions...)
	full := sessions.Renumber(sessions.FromSessions("full", all))
	start = time.Now()
	if _, err := core.BuildIndex(full, 0); err != nil {
		return nil, err
	}
	res.FullRebuildTime = time.Since(start)
	return res, nil
}

// PrintExtensions renders both ablations.
func PrintExtensions(w io.Writer, r *ExtensionsResult) {
	fmt.Fprintln(w, "Extension 1 (§7 future work): compressed query-time index")
	printTable(w, []string{"index", "bytes", "median", "p90"}, [][]string{
		{"raw", fmt.Sprintf("%d", r.RawBytes), r.RawMedian.Round(time.Microsecond).String(), r.RawP90.Round(time.Microsecond).String()},
		{"compressed", fmt.Sprintf("%d", r.CompressedBytes), r.CompMedian.Round(time.Microsecond).String(), r.CompP90.Round(time.Microsecond).String()},
	})
	fmt.Fprintf(w, "footprint ratio: %.2fx smaller\n\n", float64(r.RawBytes)/float64(r.CompressedBytes))

	fmt.Fprintln(w, "Extension 2 (§7 future work): incremental index maintenance")
	printTable(w, []string{"metric", "value"}, [][]string{
		{"appends/s", fmt.Sprintf("%.0f", r.AppendsPerSec)},
		{"delta sessions at query time", fmt.Sprintf("%d", r.DeltaAtBenchmark)},
		{"query median (base+delta)", r.IncMedian.Round(time.Microsecond).String()},
		{"query p90 (base+delta)", r.IncP90.Round(time.Microsecond).String()},
		{"compaction time", r.CompactTime.Round(time.Millisecond).String()},
		{"full rebuild time (reference)", r.FullRebuildTime.Round(time.Millisecond).String()},
	})
}
