package experiments

import (
	"fmt"
	"io"

	"serenade/internal/core"
)

// GridCell is one hyperparameter combination's quality (Figure 2).
type GridCell struct {
	M, K int
	MRR  float64
	Prec float64
}

// Grid reproduces the Figure 2 sensitivity study: an exhaustive sweep over
// the number of neighbours k and the recency sample size m, reporting
// MRR@20 and Prec@20 on the held-out last day of the named dataset profile.
// Combinations with k > m are skipped (neighbours are drawn from the
// sample).
func Grid(profile string, opts Options) ([]GridCell, error) {
	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	ks := []int{50, 100, 500, 1000, 1500}
	ms := []int{50, 100, 500, 1000, 5000}
	evalSessions := 400
	if opts.Quick {
		ks = []int{50, 100}
		ms = []int{50, 500}
		evalSessions = 40
	}

	maxM := ms[len(ms)-1]
	idx, err := core.BuildIndex(train, maxM)
	if err != nil {
		return nil, err
	}

	var cells []GridCell
	for _, m := range ms {
		for _, k := range ks {
			if k > m {
				continue
			}
			rec, err := core.NewRecommender(idx, core.Params{M: m, K: k})
			if err != nil {
				return nil, err
			}
			report := evaluate(rec.Recommend, test, 20, evalSessions)
			cells = append(cells, GridCell{M: m, K: k, MRR: report.MRR, Prec: report.Precision})
		}
	}
	return cells, nil
}

// PrintGrid renders the sweep as the two heat grids of Figure 2 (numeric
// rather than coloured).
func PrintGrid(w io.Writer, profile string, cells []GridCell) {
	ms := orderedKeys(cells, func(c GridCell) int { return c.M })
	ks := orderedKeys(cells, func(c GridCell) int { return c.K })
	lookup := map[[2]int]GridCell{}
	for _, c := range cells {
		lookup[[2]int{c.M, c.K}] = c
	}
	for _, metric := range []struct {
		name string
		get  func(GridCell) float64
	}{
		{"MRR@20", func(c GridCell) float64 { return c.MRR }},
		{"Prec@20", func(c GridCell) float64 { return c.Prec }},
	} {
		fmt.Fprintf(w, "Figure 2 (%s): %s over k (rows) x m (columns)\n", profile, metric.name)
		header := []string{"k \\ m"}
		for _, m := range ms {
			header = append(header, fmt.Sprintf("%d", m))
		}
		var rows [][]string
		for _, k := range ks {
			row := []string{fmt.Sprintf("%d", k)}
			for _, m := range ms {
				if c, ok := lookup[[2]int{m, k}]; ok {
					row = append(row, fmt.Sprintf("%.4f", metric.get(c)))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		printTable(w, header, rows)
		fmt.Fprintln(w)
	}
}

func orderedKeys(cells []GridCell, key func(GridCell) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		k := key(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
