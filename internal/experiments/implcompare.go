package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// ImplRow is one (dataset, implementation) latency measurement for the
// Figure 3(a) top comparison.
type ImplRow struct {
	Dataset string
	Impl    string
	Median  time.Duration
	P90     time.Duration
}

// implProfiles lists the dataset profiles used by the comparison, smallest
// first (the paper sweeps all six; the heavier profiles dominate runtime,
// so full runs use four).
func implProfiles(opts Options) []string {
	if opts.Quick {
		return []string{"retailrocket-sim"}
	}
	return []string{"retailrocket-sim", "rsc15-sim", "ecom-1m-sim", "ecom-60m-sim"}
}

// ImplComparison reproduces §5.2.1 / Figure 3(a) top: per-query prediction
// latency (median and p90) of the five implementation design points over
// growing evolving sessions, with m=500 (capped by dataset size) and k=100.
func ImplComparison(opts Options) ([]ImplRow, error) {
	var rows []ImplRow
	for _, profile := range implProfiles(opts) {
		train, test, err := prepProfile(profile, opts)
		if err != nil {
			return nil, err
		}
		p := core.Params{M: 500, K: 100}
		idx, err := core.BuildIndex(train, 0)
		if err != nil {
			return nil, err
		}
		vmis, err := NewVMISCore(idx, p)
		if err != nil {
			return nil, err
		}
		impls := []Implementation{
			NewVSScan(train, p),
			NewVMISIndexed(idx, p),
			NewVMISBoxed(idx, p),
			NewVMISMaterialised(idx, p),
			vmis,
		}
		maxSessions := 150
		if opts.Quick {
			maxSessions = 30
		}
		queries := queryPrefixes(test, maxSessions)
		for _, impl := range impls {
			times := timeQueries(func(q []sessions.ItemID) { impl.Recommend(q, 21) }, queries)
			rows = append(rows, ImplRow{
				Dataset: profile,
				Impl:    impl.Name(),
				Median:  durationPercentile(times, 0.5),
				P90:     durationPercentile(times, 0.9),
			})
		}
	}
	return rows, nil
}

// PrintImplComparison renders the Figure 3(a) top table.
func PrintImplComparison(w io.Writer, rows []ImplRow) {
	fmt.Fprintln(w, "Figure 3(a) top: per-session prediction time by implementation design point")
	header := []string{"dataset", "implementation", "median (µs)", "p90 (µs)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Impl,
			fmt.Sprintf("%.1f", micros(r.Median)),
			fmt.Sprintf("%.1f", micros(r.P90)),
		})
	}
	printTable(w, header, cells)
}
