// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5), printing the same rows/series the paper reports.
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for measured
// results.
package experiments

import (
	"container/heap"
	"sort"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/vsknn"
)

// Implementation is one design point of the Figure 3(a) (top) comparison.
// The paper benchmarks VMIS-kNN implementations in Python, Differential
// Dataflow, Java and SQL against the custom Rust implementation; embedding
// four foreign runtimes is impossible here, so each bar is reproduced as a
// Go implementation of the same *design decision* (see DESIGN.md §2).
type Implementation interface {
	Name() string
	Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem
}

// ---------------------------------------------------------------------------
// VS-Scan ≈ VS-Py: the two-phase reference implementation that materialises
// the full candidate set before scoring (pandas-style whole-relation
// operations).

type vsScan struct {
	b *vsknn.Baseline
	p core.Params
}

// NewVSScan wraps the VS-kNN baseline as an Implementation.
func NewVSScan(ds *sessions.Dataset, p core.Params) Implementation {
	return &vsScan{b: vsknn.New(ds), p: p}
}

func (v *vsScan) Name() string { return "VS-Scan" }
func (v *vsScan) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	return v.b.Recommend(evolving, n, v.p)
}

// ---------------------------------------------------------------------------
// VMIS-Boxed ≈ VMIS-Java: the VMIS-kNN algorithm executed with boxed
// (pointer-valued) accumulators, interface-typed heaps and per-query
// allocations — the cost profile of a JVM implementation whose memory
// management the programmer does not control.

type vmisBoxed struct {
	idx *core.Index
	p   core.Params
}

// NewVMISBoxed builds the boxed design point on a shared index.
func NewVMISBoxed(idx *core.Index, p core.Params) Implementation {
	p = normalizeParams(p)
	return &vmisBoxed{idx: idx, p: p}
}

func (v *vmisBoxed) Name() string { return "VMIS-Boxed" }

type boxedAccum struct {
	score  *float64 // boxed on purpose: models Java object headers/indirection
	maxPos *int
}

// boxedHeap is a container/heap min-heap over interface-typed entries,
// modelling a java.util.PriorityQueue of boxed pairs.
type boxedHeap []any

type boxedEntry struct {
	id   sessions.SessionID
	time int64
}

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	return h[i].(*boxedEntry).time < h[j].(*boxedEntry).time
}
func (h boxedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x any)   { *h = append(*h, x) }
func (h *boxedHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func (v *vmisBoxed) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	s := truncateEvolving(evolving, v.p.MaxSessionLength)
	length := len(s)

	r := make(map[sessions.SessionID]boxedAccum)
	dup := make(map[sessions.ItemID]bool)
	bt := &boxedHeap{}
	heap.Init(bt)

	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if dup[item] {
			continue
		}
		dup[item] = true
		postings := v.idx.Postings(item)
		pi := v.p.Decay(pos, length)
		for _, j := range postings {
			if acc, ok := r[j]; ok {
				*acc.score += pi
				continue
			}
			tj := v.idx.Time(j)
			if len(r) < v.p.M {
				score, maxPos := pi, pos
				r[j] = boxedAccum{score: &score, maxPos: &maxPos}
				heap.Push(bt, &boxedEntry{id: j, time: tj})
				continue
			}
			oldest := (*bt)[0].(*boxedEntry)
			if tj > oldest.time {
				delete(r, oldest.id)
				heap.Pop(bt)
				score, maxPos := pi, pos
				r[j] = boxedAccum{score: &score, maxPos: &maxPos}
				heap.Push(bt, &boxedEntry{id: j, time: tj})
				continue
			}
			break // early stopping is algorithmic, not a memory design point
		}
	}

	type nb struct {
		id     sessions.SessionID
		score  float64
		maxPos int
	}
	neighbors := make([]nb, 0, len(r))
	for id, acc := range r {
		neighbors = append(neighbors, nb{id: id, score: *acc.score, maxPos: *acc.maxPos})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].score != neighbors[j].score {
			return neighbors[i].score > neighbors[j].score
		}
		return v.idx.Time(neighbors[i].id) > v.idx.Time(neighbors[j].id)
	})
	if len(neighbors) > v.p.K {
		neighbors = neighbors[:v.p.K]
	}

	scores := make(map[sessions.ItemID]*float64)
	for _, nbr := range neighbors {
		w := v.p.MatchWeight(nbr.maxPos) * nbr.score
		if w == 0 {
			continue
		}
		for _, item := range v.idx.SessionItems(nbr.id) {
			if p, ok := scores[item]; ok {
				*p += w * v.idx.IDF(item)
			} else {
				val := w * v.idx.IDF(item)
				scores[item] = &val
			}
		}
	}
	return topNFromMapBoxed(scores, n)
}

func topNFromMapBoxed(scores map[sessions.ItemID]*float64, n int) []core.ScoredItem {
	out := make([]core.ScoredItem, 0, len(scores))
	for item, s := range scores {
		if *s > 0 {
			out = append(out, core.ScoredItem{Item: item, Score: *s})
		}
	}
	sortScored(out)
	if len(out) > n {
		out = out[:n]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ---------------------------------------------------------------------------
// VMIS-Materialised ≈ VMIS-SQL: executes the query plan a SQL engine derives
// from the nested subqueries — materialise the complete item/session join
// result, then aggregate it in separate passes.

type vmisMaterialised struct {
	idx *core.Index
	p   core.Params
}

// NewVMISMaterialised builds the materialising design point.
func NewVMISMaterialised(idx *core.Index, p core.Params) Implementation {
	return &vmisMaterialised{idx: idx, p: normalizeParams(p)}
}

func (v *vmisMaterialised) Name() string { return "VMIS-Materialised" }

func (v *vmisMaterialised) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	s := truncateEvolving(evolving, v.p.MaxSessionLength)
	length := len(s)

	// Pass 1: materialise the full join result (item match tuples).
	type match struct {
		session sessions.SessionID
		decay   float64
		pos     int
	}
	var joined []match
	dup := make(map[sessions.ItemID]bool)
	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if dup[item] {
			continue
		}
		dup[item] = true
		pi := v.p.Decay(pos, length)
		for _, j := range v.idx.Postings(item) {
			joined = append(joined, match{session: j, decay: pi, pos: pos})
		}
	}

	// Pass 2: GROUP BY session (sort-based, as an engine would).
	sort.Slice(joined, func(i, j int) bool { return joined[i].session < joined[j].session })
	type agg struct {
		session sessions.SessionID
		score   float64
		maxPos  int
		time    int64
	}
	var groups []agg
	for i := 0; i < len(joined); {
		j := i
		a := agg{session: joined[i].session, time: v.idx.Time(joined[i].session)}
		for ; j < len(joined) && joined[j].session == a.session; j++ {
			a.score += joined[j].decay
			if joined[j].pos > a.maxPos {
				a.maxPos = joined[j].pos
			}
		}
		groups = append(groups, a)
		i = j
	}

	// Pass 3: ORDER BY recency LIMIT m (the recency sample subquery).
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].time != groups[j].time {
			return groups[i].time > groups[j].time
		}
		return groups[i].session > groups[j].session
	})
	if len(groups) > v.p.M {
		groups = groups[:v.p.M]
	}

	// Pass 4: ORDER BY similarity LIMIT k.
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].score != groups[j].score {
			return groups[i].score > groups[j].score
		}
		return groups[i].time > groups[j].time
	})
	if len(groups) > v.p.K {
		groups = groups[:v.p.K]
	}

	// Pass 5: join neighbours back to their items and aggregate scores.
	scores := make(map[sessions.ItemID]float64)
	for _, g := range groups {
		w := v.p.MatchWeight(g.maxPos) * g.score
		if w == 0 {
			continue
		}
		for _, item := range v.idx.SessionItems(g.session) {
			scores[item] += w * v.idx.IDF(item)
		}
	}
	return topNFromMap(scores, n)
}

// ---------------------------------------------------------------------------
// VMIS-Indexed ≈ VMIS-Diff: incremental engines such as Differential
// Dataflow must index every intermediate collection to support updates; the
// design point pays that indexing cost on every query even though this
// workload never needs incremental updates.

type vmisIndexed struct {
	idx *core.Index
	p   core.Params
}

// NewVMISIndexed builds the everything-indexed design point.
func NewVMISIndexed(idx *core.Index, p core.Params) Implementation {
	return &vmisIndexed{idx: idx, p: normalizeParams(p)}
}

func (v *vmisIndexed) Name() string { return "VMIS-Indexed" }

func (v *vmisIndexed) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	s := truncateEvolving(evolving, v.p.MaxSessionLength)
	length := len(s)

	// Arrangement 1: the match collection, indexed by session.
	type key struct{ session sessions.SessionID }
	matches := make(map[key][]float64)
	maxPos := make(map[key]int)
	dup := make(map[sessions.ItemID]bool)
	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if dup[item] {
			continue
		}
		dup[item] = true
		pi := v.p.Decay(pos, length)
		for _, j := range v.idx.Postings(item) {
			k := key{j}
			matches[k] = append(matches[k], pi)
			if pos > maxPos[k] {
				maxPos[k] = pos
			}
		}
	}

	// Arrangement 2: reduced similarities, re-indexed by (time, session)
	// to support the recency sample as an ordered arrangement.
	type sim struct {
		session sessions.SessionID
		score   float64
		maxPos  int
		time    int64
	}
	sims := make([]sim, 0, len(matches))
	for k, decays := range matches {
		total := 0.0
		for _, d := range decays {
			total += d
		}
		sims = append(sims, sim{session: k.session, score: total, maxPos: maxPos[k], time: v.idx.Time(k.session)})
	}
	sort.Slice(sims, func(i, j int) bool {
		if sims[i].time != sims[j].time {
			return sims[i].time > sims[j].time
		}
		return sims[i].session > sims[j].session
	})
	if len(sims) > v.p.M {
		sims = sims[:v.p.M]
	}

	// Arrangement 3: top-k by similarity, again as a full sorted index.
	sort.Slice(sims, func(i, j int) bool {
		if sims[i].score != sims[j].score {
			return sims[i].score > sims[j].score
		}
		return sims[i].time > sims[j].time
	})
	if len(sims) > v.p.K {
		sims = sims[:v.p.K]
	}

	// Arrangement 4: item scores, indexed by item.
	scores := make(map[sessions.ItemID]float64)
	for _, g := range sims {
		w := v.p.MatchWeight(g.maxPos) * g.score
		if w == 0 {
			continue
		}
		for _, item := range v.idx.SessionItems(g.session) {
			scores[item] += w * v.idx.IDF(item)
		}
	}
	return topNFromMap(scores, n)
}

// ---------------------------------------------------------------------------
// VMIS-kNN: the paper's pipelined implementation (internal/core).

type vmisCore struct{ r *core.Recommender }

// NewVMISCore wraps the production implementation.
func NewVMISCore(idx *core.Index, p core.Params) (Implementation, error) {
	r, err := core.NewRecommender(idx, p)
	if err != nil {
		return nil, err
	}
	return &vmisCore{r: r}, nil
}

func (v *vmisCore) Name() string { return "VMIS-kNN" }
func (v *vmisCore) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	return v.r.Recommend(evolving, n)
}

// --- shared helpers ---

func normalizeParams(p core.Params) core.Params {
	if p.MaxSessionLength <= 0 {
		p.MaxSessionLength = core.DefaultMaxSessionLength
	}
	if p.Decay == nil {
		p.Decay = core.LinearDecay
	}
	if p.MatchWeight == nil {
		p.MatchWeight = core.LinearMatchWeight
	}
	return p
}

func truncateEvolving(evolving []sessions.ItemID, max int) []sessions.ItemID {
	if len(evolving) > max {
		return evolving[len(evolving)-max:]
	}
	return evolving
}

func topNFromMap(scores map[sessions.ItemID]float64, n int) []core.ScoredItem {
	out := make([]core.ScoredItem, 0, len(scores))
	for item, s := range scores {
		if s > 0 {
			out = append(out, core.ScoredItem{Item: item, Score: s})
		}
	}
	sortScored(out)
	if len(out) > n {
		out = out[:n]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func sortScored(out []core.ScoredItem) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
}
