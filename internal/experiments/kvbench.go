package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/kvstore"
)

// KVBenchResult holds the §4.2 session-store microbenchmark readout: the
// paper reports a p99 read latency of 5µs and p99 write latency of 18µs for
// 10 million RocksDB operations on its workload.
type KVBenchResult struct {
	Ops      int
	ReadP50  time.Duration
	ReadP99  time.Duration
	WriteP50 time.Duration
	WriteP99 time.Duration
}

// KVBench measures read/write latency percentiles of the local session
// store under the serving workload shape (128-byte session blobs, skewed
// key popularity).
func KVBench(opts Options) (*KVBenchResult, error) {
	ops := 1_000_000
	if opts.Quick {
		ops = 50_000
	}
	store, err := kvstore.Open(kvstore.Options{TTL: 30 * time.Minute})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	const keys = 100_000
	value := make([]byte, 128)
	for i := range value {
		value[i] = byte(i)
	}
	keyName := func(i int) string { return fmt.Sprintf("session-%d", i%keys) }

	// Preload so reads hit.
	for i := 0; i < keys; i++ {
		if err := store.Put(keyName(i), value); err != nil {
			return nil, err
		}
	}

	writeTimes := make([]time.Duration, 0, ops/2)
	readTimes := make([]time.Duration, 0, ops/2)
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			start := time.Now()
			if err := store.Put(keyName(i), value); err != nil {
				return nil, err
			}
			writeTimes = append(writeTimes, time.Since(start))
		} else {
			start := time.Now()
			store.Get(keyName(i * 7))
			readTimes = append(readTimes, time.Since(start))
		}
	}
	return &KVBenchResult{
		Ops:      ops,
		ReadP50:  durationPercentile(readTimes, 0.5),
		ReadP99:  durationPercentile(readTimes, 0.99),
		WriteP50: durationPercentile(writeTimes, 0.5),
		WriteP99: durationPercentile(writeTimes, 0.99),
	}, nil
}

// PrintKVBench renders the microbenchmark.
func PrintKVBench(w io.Writer, r *KVBenchResult) {
	fmt.Fprintln(w, "§4.2: session store microbenchmark (paper: RocksDB p99 read 5µs, write 18µs)")
	header := []string{"ops", "read p50", "read p99", "write p50", "write p99"}
	printTable(w, header, [][]string{{
		fmt.Sprintf("%d", r.Ops),
		r.ReadP50.String(), r.ReadP99.String(),
		r.WriteP50.String(), r.WriteP99.String(),
	}})
}
