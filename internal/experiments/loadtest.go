package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"serenade/internal/cluster"
	"serenade/internal/core"
	"serenade/internal/loadgen"
	"serenade/internal/serving"
)

// LoadTestConfig parameterises the Figure 3(b) load test.
type LoadTestConfig struct {
	// RPS is the target request rate (the paper sustains >1000).
	RPS int
	// Duration is the test length per rate.
	Duration time.Duration
	// Replicas is the number of stateful serving pods (the paper uses 2).
	Replicas int
	// BatchWindow enables request batching on the replicas (0 = off).
	BatchWindow time.Duration
	// BatchMax bounds a gathered batch (0 = serving default).
	BatchMax int
	// CacheSize enables the single-flight result cache (entries; 0 = off).
	CacheSize int
	// CacheTTL overrides the cache entry lifetime (0 = serving default).
	CacheTTL time.Duration
	// Burst replays each session under this many distinct session keys,
	// interleaved — the duplicate-heavy traffic the cache absorbs (<= 1
	// replays each session once).
	Burst int
}

// ReplicaStats is one replica's serving counters after a load test.
type ReplicaStats struct {
	Name string
	serving.Stats
}

// LoadTestResult bundles the load generator's time series with the
// per-replica serving breakdown (requests, errors, per-stage latency) the
// paper's Grafana dashboards show per pod.
type LoadTestResult struct {
	*loadgen.Result
	Replicas []ReplicaStats
}

// LoadTest reproduces §5.2.2 / Figure 3(b): replay historical traffic at a
// target rate against a pool of stateful replicas behind sticky routing and
// record per-second request counts, latency percentiles and core usage.
func LoadTest(cfg LoadTestConfig, opts Options) (*LoadTestResult, error) {
	if cfg.RPS <= 0 {
		cfg.RPS = 1000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	profile := "ecom-60m-sim"
	if opts.Quick {
		profile = "retailrocket-sim"
	}
	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	pool, err := cluster.NewPool(idx, serving.Config{
		Params:          core.Params{M: 500, K: 100},
		BatchWindow:     cfg.BatchWindow,
		BatchMax:        cfg.BatchMax,
		ResultCacheSize: cfg.CacheSize,
		ResultCacheTTL:  cfg.CacheTTL,
	}, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	workload := loadgen.BurstWorkload(test, 0, cfg.Burst)
	if len(workload) == 0 {
		return nil, fmt.Errorf("experiments: empty replay workload")
	}
	res, err := loadgen.Run(loadgen.Config{
		TargetRPS: cfg.RPS,
		Duration:  cfg.Duration,
	}, func(i uint64) error {
		_, err := pool.Recommend(workload[i%uint64(len(workload))])
		return err
	})
	if err != nil {
		return nil, err
	}
	out := &LoadTestResult{Result: res}
	for name, st := range pool.Stats() {
		out.Replicas = append(out.Replicas, ReplicaStats{Name: name, Stats: st})
	}
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].Name < out.Replicas[j].Name })
	return out, nil
}

// PrintLoadTest renders the per-bucket series, the overall percentiles, and
// the per-replica stage breakdown.
func PrintLoadTest(w io.Writer, res *LoadTestResult) {
	fmt.Fprintln(w, "Figure 3(b): load test (requests/s, latency percentiles, core usage)")
	header := []string{"t (s)", "req/s", "p75", "p90", "p99.5", "cores"}
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", p.Offset.Seconds()),
			fmt.Sprintf("%d", p.Requests),
			p.P75.Round(time.Microsecond).String(),
			p.P90.Round(time.Microsecond).String(),
			p.P995.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", p.Cores),
		})
	}
	printTable(w, header, cells)
	fmt.Fprintf(w, "overall: sent=%d errors=%d achieved=%.0f req/s  %s\n",
		res.Sent, res.Errors, res.AchievedRPS, res.Total.Summary())

	if len(res.Replicas) == 0 {
		return
	}
	// Stage sets may differ between replicas (a stage with zero samples is
	// omitted from Stats), so build the union of stage names for the header
	// and index each replica's stages by name.
	var stageNames []string
	seen := map[string]bool{}
	for _, rep := range res.Replicas {
		for _, sg := range rep.Stages {
			if !seen[sg.Stage] {
				seen[sg.Stage] = true
				stageNames = append(stageNames, sg.Stage)
			}
		}
	}
	fmt.Fprintln(w, "\nper-replica stage breakdown (p90)")
	rheader := append([]string{"replica", "requests", "errors", "p90"}, stageNames...)
	var rcells [][]string
	for _, rep := range res.Replicas {
		byName := map[string]serving.StageStats{}
		for _, sg := range rep.Stages {
			byName[sg.Stage] = sg
		}
		row := []string{
			rep.Name,
			fmt.Sprintf("%d", rep.Requests),
			fmt.Sprintf("%d", rep.Errors),
			rep.P90Latency.Round(time.Microsecond).String(),
		}
		for _, name := range stageNames {
			if sg, ok := byName[name]; ok {
				row = append(row, sg.P90Latency.Round(time.Microsecond).String())
			} else {
				row = append(row, "-")
			}
		}
		rcells = append(rcells, row)
	}
	printTable(w, rheader, rcells)

	// Batching / result-cache accounting, when either feature was on.
	active := false
	for _, rep := range res.Replicas {
		if rep.CacheHits+rep.CacheMisses+rep.CacheCoalesced+rep.Batches > 0 {
			active = true
			break
		}
	}
	if !active {
		return
	}
	fmt.Fprintln(w, "\nper-replica batching and result cache")
	cheader := []string{"replica", "hits", "misses", "coalesced", "hit ratio", "batches", "batched", "avg batch"}
	var ccells [][]string
	for _, rep := range res.Replicas {
		lookups := rep.CacheHits + rep.CacheMisses + rep.CacheCoalesced
		ratio := "-"
		if lookups > 0 {
			ratio = fmt.Sprintf("%.1f%%", 100*float64(rep.CacheHits+rep.CacheCoalesced)/float64(lookups))
		}
		avgBatch := "-"
		if rep.Batches > 0 {
			avgBatch = fmt.Sprintf("%.1f", float64(rep.BatchedRequests)/float64(rep.Batches))
		}
		ccells = append(ccells, []string{
			rep.Name,
			fmt.Sprintf("%d", rep.CacheHits),
			fmt.Sprintf("%d", rep.CacheMisses),
			fmt.Sprintf("%d", rep.CacheCoalesced),
			ratio,
			fmt.Sprintf("%d", rep.Batches),
			fmt.Sprintf("%d", rep.BatchedRequests),
			avgBatch,
		})
	}
	printTable(w, cheader, ccells)
}

// CoreScalingRow is one rate's core usage (§5.2.3 / §7 cost discussion).
type CoreScalingRow struct {
	RPS         int
	AchievedRPS float64
	Cores       float64
	P90         time.Duration
}

// CoreScaling sweeps request rates and reports average core usage,
// reproducing the "well-behaved linear scaling (with a gentle slope) of the
// core usage with the number of requests per second" observation.
func CoreScaling(rates []int, perRate time.Duration, opts Options) ([]CoreScalingRow, error) {
	if len(rates) == 0 {
		rates = []int{100, 200, 400, 600}
	}
	if perRate <= 0 {
		perRate = 5 * time.Second
	}
	train, test, err := prepProfile("retailrocket-sim", opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	pool, err := cluster.NewPool(idx, serving.Config{Params: core.Params{M: 500, K: 100}}, 2)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	workload := loadgen.Workload(test, 0)

	var rows []CoreScalingRow
	for _, rps := range rates {
		res, err := loadgen.Run(loadgen.Config{TargetRPS: rps, Duration: perRate}, func(i uint64) error {
			_, err := pool.Recommend(workload[i%uint64(len(workload))])
			return err
		})
		if err != nil {
			return nil, err
		}
		avgCores := 0.0
		if len(res.Points) > 0 {
			for _, p := range res.Points {
				avgCores += p.Cores
			}
			avgCores /= float64(len(res.Points))
		}
		rows = append(rows, CoreScalingRow{
			RPS:         rps,
			AchievedRPS: res.AchievedRPS,
			Cores:       avgCores,
			P90:         res.Total.Percentile(90),
		})
	}
	return rows, nil
}

// PrintCoreScaling renders the sweep.
func PrintCoreScaling(w io.Writer, rows []CoreScalingRow) {
	fmt.Fprintln(w, "§5.2.3/§7: core usage vs request rate")
	header := []string{"target req/s", "achieved", "avg cores", "p90 latency"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.RPS),
			fmt.Sprintf("%.0f", r.AchievedRPS),
			fmt.Sprintf("%.2f", r.Cores),
			r.P90.Round(time.Microsecond).String(),
		})
	}
	printTable(w, header, cells)
}
