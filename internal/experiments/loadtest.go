package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"serenade/internal/cluster"
	"serenade/internal/core"
	"serenade/internal/loadgen"
	"serenade/internal/obs"
	"serenade/internal/obs/slo"
	"serenade/internal/serving"
)

// LoadTestConfig parameterises the Figure 3(b) load test.
type LoadTestConfig struct {
	// RPS is the target request rate (the paper sustains >1000).
	RPS int
	// Duration is the test length per rate.
	Duration time.Duration
	// Replicas is the number of stateful serving pods (the paper uses 2).
	Replicas int
	// BatchWindow enables request batching on the replicas (0 = off).
	BatchWindow time.Duration
	// BatchMax bounds a gathered batch (0 = serving default).
	BatchMax int
	// CacheSize enables the single-flight result cache (entries; 0 = off).
	CacheSize int
	// CacheTTL overrides the cache entry lifetime (0 = serving default).
	CacheTTL time.Duration
	// Burst replays each session under this many distinct session keys,
	// interleaved — the duplicate-heavy traffic the cache absorbs (<= 1
	// replays each session once).
	Burst int
	// SLOLatencyP99 sets the replicas' latency objective: requests slower
	// than this burn error budget (0 = objective disabled).
	SLOLatencyP99 time.Duration
	// SLOErrorBudget is the fraction of requests allowed to fail
	// (0 = error-rate objective disabled).
	SLOErrorBudget float64
}

// ReplicaStats is one replica's serving counters after a load test.
type ReplicaStats struct {
	Name string
	serving.Stats
}

// ReplicaSLO is one replica's post-test SLO burn picture paired with its
// overload telemetry snapshot.
type ReplicaSLO struct {
	Name   string
	State  slo.EndpointState
	Health obs.HealthSignal
}

// LoadTestResult bundles the load generator's time series with the
// per-replica serving breakdown (requests, errors, per-stage latency) the
// paper's Grafana dashboards show per pod.
type LoadTestResult struct {
	*loadgen.Result
	Replicas []ReplicaStats
	// SLO holds the burn state per replica; empty unless an objective was
	// configured (SLOLatencyP99 or SLOErrorBudget).
	SLO []ReplicaSLO
}

// LoadTest reproduces §5.2.2 / Figure 3(b): replay historical traffic at a
// target rate against a pool of stateful replicas behind sticky routing and
// record per-second request counts, latency percentiles and core usage.
func LoadTest(cfg LoadTestConfig, opts Options) (*LoadTestResult, error) {
	if cfg.RPS <= 0 {
		cfg.RPS = 1000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	profile := "ecom-60m-sim"
	if opts.Quick {
		profile = "retailrocket-sim"
	}
	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	pool, err := cluster.NewPool(idx, serving.Config{
		Params:              core.Params{M: 500, K: 100},
		BatchWindow:         cfg.BatchWindow,
		BatchMax:            cfg.BatchMax,
		ResultCacheSize:     cfg.CacheSize,
		ResultCacheTTL:      cfg.CacheTTL,
		SLOLatencyThreshold: cfg.SLOLatencyP99,
		SLOErrorBudget:      cfg.SLOErrorBudget,
	}, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	workload := loadgen.BurstWorkload(test, 0, cfg.Burst)
	if len(workload) == 0 {
		return nil, fmt.Errorf("experiments: empty replay workload")
	}
	res, err := loadgen.Run(loadgen.Config{
		TargetRPS: cfg.RPS,
		Duration:  cfg.Duration,
	}, func(i uint64) error {
		_, err := pool.Recommend(workload[i%uint64(len(workload))])
		return err
	})
	if err != nil {
		return nil, err
	}
	out := &LoadTestResult{Result: res}
	for name, st := range pool.Stats() {
		out.Replicas = append(out.Replicas, ReplicaStats{Name: name, Stats: st})
	}
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].Name < out.Replicas[j].Name })
	if cfg.SLOLatencyP99 > 0 || cfg.SLOErrorBudget > 0 {
		out.SLO = snapshotSLO(pool)
	}
	return out, nil
}

// snapshotSLO pairs each replica's SLO endpoint state with its overload
// telemetry, sorted by name.
func snapshotSLO(pool *cluster.Pool) []ReplicaSLO {
	health := pool.Health()
	var out []ReplicaSLO
	for _, name := range pool.Replicas() {
		srv, ok := pool.Replica(name)
		if !ok {
			continue
		}
		st, ok := srv.SLO().Endpoint("recommend")
		if !ok {
			continue
		}
		out = append(out, ReplicaSLO{Name: name, State: st, Health: health[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PrintLoadTest renders the per-bucket series, the overall percentiles, and
// the per-replica stage breakdown.
func PrintLoadTest(w io.Writer, res *LoadTestResult) {
	fmt.Fprintln(w, "Figure 3(b): load test (requests/s, latency percentiles, core usage)")
	header := []string{"t (s)", "req/s", "p75", "p90", "p99.5", "cores"}
	var cells [][]string
	for _, p := range res.Points {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", p.Offset.Seconds()),
			fmt.Sprintf("%d", p.Requests),
			p.P75.Round(time.Microsecond).String(),
			p.P90.Round(time.Microsecond).String(),
			p.P995.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", p.Cores),
		})
	}
	printTable(w, header, cells)
	fmt.Fprintf(w, "overall: sent=%d errors=%d achieved=%.0f req/s  %s\n",
		res.Sent, res.Errors, res.AchievedRPS, res.Total.Summary())
	// The GC line reads against the edge's allocation budget: allocs/req is
	// process-wide (generator bookkeeping included), so watch the trend, not
	// the absolute — a pooling regression moves it by whole allocations.
	fmt.Fprintf(w, "gc: pause=%s cycles=%d allocs/req=%.1f alloc-bytes/req=%.0f\n",
		res.GCPause.Round(time.Microsecond), res.GCCycles, res.AllocsPerRequest, res.AllocBytesPerReq)

	if len(res.Replicas) == 0 {
		return
	}
	// Stage sets may differ between replicas (a stage with zero samples is
	// omitted from Stats), so build the union of stage names for the header
	// and index each replica's stages by name.
	var stageNames []string
	seen := map[string]bool{}
	for _, rep := range res.Replicas {
		for _, sg := range rep.Stages {
			if !seen[sg.Stage] {
				seen[sg.Stage] = true
				stageNames = append(stageNames, sg.Stage)
			}
		}
	}
	fmt.Fprintln(w, "\nper-replica stage breakdown (p90)")
	rheader := append([]string{"replica", "requests", "errors", "p90"}, stageNames...)
	var rcells [][]string
	for _, rep := range res.Replicas {
		byName := map[string]serving.StageStats{}
		for _, sg := range rep.Stages {
			byName[sg.Stage] = sg
		}
		row := []string{
			rep.Name,
			fmt.Sprintf("%d", rep.Requests),
			fmt.Sprintf("%d", rep.Errors),
			rep.P90Latency.Round(time.Microsecond).String(),
		}
		for _, name := range stageNames {
			if sg, ok := byName[name]; ok {
				row = append(row, sg.P90Latency.Round(time.Microsecond).String())
			} else {
				row = append(row, "-")
			}
		}
		rcells = append(rcells, row)
	}
	printTable(w, rheader, rcells)
	printBurnTable(w, res.SLO)

	// Batching / result-cache accounting, when either feature was on.
	active := false
	for _, rep := range res.Replicas {
		if rep.CacheHits+rep.CacheMisses+rep.CacheCoalesced+rep.Batches > 0 {
			active = true
			break
		}
	}
	if !active {
		return
	}
	fmt.Fprintln(w, "\nper-replica batching and result cache")
	cheader := []string{"replica", "hits", "misses", "coalesced", "hit ratio", "batches", "batched", "avg batch"}
	var ccells [][]string
	for _, rep := range res.Replicas {
		lookups := rep.CacheHits + rep.CacheMisses + rep.CacheCoalesced
		ratio := "-"
		if lookups > 0 {
			ratio = fmt.Sprintf("%.1f%%", 100*float64(rep.CacheHits+rep.CacheCoalesced)/float64(lookups))
		}
		avgBatch := "-"
		if rep.Batches > 0 {
			avgBatch = fmt.Sprintf("%.1f", float64(rep.BatchedRequests)/float64(rep.Batches))
		}
		ccells = append(ccells, []string{
			rep.Name,
			fmt.Sprintf("%d", rep.CacheHits),
			fmt.Sprintf("%d", rep.CacheMisses),
			fmt.Sprintf("%d", rep.CacheCoalesced),
			ratio,
			fmt.Sprintf("%d", rep.Batches),
			fmt.Sprintf("%d", rep.BatchedRequests),
			avgBatch,
		})
	}
	printTable(w, cheader, ccells)
}

// printBurnTable renders each replica's burn rate against the load it
// absorbed — the "is this rate sustainable against the objective" view.
func printBurnTable(w io.Writer, rows []ReplicaSLO) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nSLO burn rate vs load (objective: %s)\n", rows[0].State.Objective)
	header := []string{"replica", "requests", "burn 1m", "burn 5m", "burn 1h", "fast", "slow", "budget left", "queue", "inflight"}
	var cells [][]string
	for _, rep := range rows {
		row := []string{rep.Name}
		if len(rep.State.Windows) > 0 {
			row = append(row, fmt.Sprintf("%d", rep.State.Windows[0].Total))
		} else {
			row = append(row, "-")
		}
		for _, win := range rep.State.Windows {
			row = append(row, fmt.Sprintf("%.2f", max(win.LatencyBurnRate, win.ErrorBurnRate)))
		}
		for len(row) < 5 {
			row = append(row, "-")
		}
		row = append(row,
			fmt.Sprintf("%v", rep.State.FastBurn),
			fmt.Sprintf("%v", rep.State.SlowBurn),
			fmt.Sprintf("%.0f%%", 100*rep.State.BudgetRemaining),
			fmt.Sprintf("%d", rep.Health.BatchQueueDepth),
			fmt.Sprintf("%d", rep.Health.InFlight),
		)
		cells = append(cells, row)
	}
	printTable(w, header, cells)
}

// CoreScalingRow is one rate's core usage (§5.2.3 / §7 cost discussion).
type CoreScalingRow struct {
	RPS         int
	AchievedRPS float64
	Cores       float64
	P90         time.Duration
}

// CoreScaling sweeps request rates and reports average core usage,
// reproducing the "well-behaved linear scaling (with a gentle slope) of the
// core usage with the number of requests per second" observation.
func CoreScaling(rates []int, perRate time.Duration, opts Options) ([]CoreScalingRow, error) {
	if len(rates) == 0 {
		rates = []int{100, 200, 400, 600}
	}
	if perRate <= 0 {
		perRate = 5 * time.Second
	}
	train, test, err := prepProfile("retailrocket-sim", opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	pool, err := cluster.NewPool(idx, serving.Config{Params: core.Params{M: 500, K: 100}}, 2)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	workload := loadgen.Workload(test, 0)

	var rows []CoreScalingRow
	for _, rps := range rates {
		res, err := loadgen.Run(loadgen.Config{TargetRPS: rps, Duration: perRate}, func(i uint64) error {
			_, err := pool.Recommend(workload[i%uint64(len(workload))])
			return err
		})
		if err != nil {
			return nil, err
		}
		avgCores := 0.0
		if len(res.Points) > 0 {
			for _, p := range res.Points {
				avgCores += p.Cores
			}
			avgCores /= float64(len(res.Points))
		}
		rows = append(rows, CoreScalingRow{
			RPS:         rps,
			AchievedRPS: res.AchievedRPS,
			Cores:       avgCores,
			P90:         res.Total.Percentile(90),
		})
	}
	return rows, nil
}

// SLOSweepRow is one target rate's burn picture: a point on the
// burn-rate-vs-RPS trajectory that locates the knee where the deployment
// stops meeting its objective. The JSON tags shape the BENCH_slo.json
// artifact (via the benchjson BENCHJSON passthrough).
type SLOSweepRow struct {
	RPS             int     `json:"rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	P995Micros      float64 `json:"p995_us"`
	Errors          uint64  `json:"errors"`
	BurnRate        float64 `json:"burn_rate"`
	FastBurn        bool    `json:"fast_burn"`
	SlowBurn        bool    `json:"slow_burn"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// SLOSweep drives the replay workload at increasing target rates and records
// the worst replica burn at each: the trajectory an operator reads to find
// the highest sustainable rate under the objective. Each rate gets a fresh
// pool so one rate's burn windows cannot contaminate the next measurement.
func SLOSweep(rates []int, perRate time.Duration, cfg LoadTestConfig, opts Options) ([]SLOSweepRow, error) {
	if len(rates) == 0 {
		rates = []int{200, 400, 800, 1600}
	}
	if perRate <= 0 {
		perRate = 5 * time.Second
	}
	if cfg.SLOLatencyP99 <= 0 {
		cfg.SLOLatencyP99 = 5 * time.Millisecond
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	profile := "ecom-60m-sim"
	if opts.Quick {
		profile = "retailrocket-sim"
	}
	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	workload := loadgen.BurstWorkload(test, 0, cfg.Burst)
	if len(workload) == 0 {
		return nil, fmt.Errorf("experiments: empty replay workload")
	}

	var rows []SLOSweepRow
	for _, rps := range rates {
		pool, err := cluster.NewPool(idx, serving.Config{
			Params:              core.Params{M: 500, K: 100},
			BatchWindow:         cfg.BatchWindow,
			BatchMax:            cfg.BatchMax,
			ResultCacheSize:     cfg.CacheSize,
			ResultCacheTTL:      cfg.CacheTTL,
			SLOLatencyThreshold: cfg.SLOLatencyP99,
			SLOErrorBudget:      cfg.SLOErrorBudget,
		}, cfg.Replicas)
		if err != nil {
			return nil, err
		}
		res, err := loadgen.Run(loadgen.Config{TargetRPS: rps, Duration: perRate}, func(i uint64) error {
			_, err := pool.Recommend(workload[i%uint64(len(workload))])
			return err
		})
		if err != nil {
			pool.Close()
			return nil, err
		}
		row := SLOSweepRow{
			RPS:             rps,
			AchievedRPS:     res.AchievedRPS,
			P995Micros:      float64(res.Total.Percentile(99.5)) / float64(time.Microsecond),
			Errors:          res.Errors,
			BudgetRemaining: 1,
		}
		for _, rep := range snapshotSLO(pool) {
			row.BurnRate = max(row.BurnRate, rep.Health.BurnRate)
			row.FastBurn = row.FastBurn || rep.State.FastBurn
			row.SlowBurn = row.SlowBurn || rep.State.SlowBurn
			row.BudgetRemaining = min(row.BudgetRemaining, rep.State.BudgetRemaining)
		}
		rows = append(rows, row)
		pool.Close()
	}
	return rows, nil
}

// PrintSLOSweep renders the burn-rate-vs-RPS trajectory.
func PrintSLOSweep(w io.Writer, rows []SLOSweepRow) {
	fmt.Fprintln(w, "SLO burn rate vs request rate (worst replica per rate)")
	header := []string{"target req/s", "achieved", "p99.5", "errors", "burn rate", "fast", "slow", "budget left"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.RPS),
			fmt.Sprintf("%.0f", r.AchievedRPS),
			(time.Duration(r.P995Micros) * time.Microsecond).String(),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%.2f", r.BurnRate),
			fmt.Sprintf("%v", r.FastBurn),
			fmt.Sprintf("%v", r.SlowBurn),
			fmt.Sprintf("%.0f%%", 100*r.BudgetRemaining),
		})
	}
	printTable(w, header, cells)
}

// PrintCoreScaling renders the sweep.
func PrintCoreScaling(w io.Writer, rows []CoreScalingRow) {
	fmt.Fprintln(w, "§5.2.3/§7: core usage vs request rate")
	header := []string{"target req/s", "achieved", "avg cores", "p90 latency"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.RPS),
			fmt.Sprintf("%.0f", r.AchievedRPS),
			fmt.Sprintf("%.2f", r.Cores),
			r.P90.Round(time.Microsecond).String(),
		})
	}
	printTable(w, header, cells)
}
