package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/vsknn"
)

// MicroRow is one (m, variant) timing of the Figure 3(a) bottom
// microbenchmark.
type MicroRow struct {
	M       int
	Variant string
	Median  time.Duration
	P90     time.Duration
}

// Micro reproduces §5.1.3 / Figure 3(a) bottom: computing the k=100 closest
// sessions on ecom-1m with VS-kNN (hashmap two-phase baseline),
// VMIS-kNN-no-opt (binary heaps, no early stopping) and VMIS-kNN, for
// m ∈ {100, 250, 500, 1000}.
func Micro(opts Options) ([]MicroRow, error) {
	train, test, err := prepProfile("ecom-1m-sim", opts)
	if err != nil {
		return nil, err
	}
	ms := []int{100, 250, 500, 1000}
	maxSessions := 120
	if opts.Quick {
		ms = []int{100, 500}
		maxSessions = 25
	}
	queries := queryPrefixes(test, maxSessions)

	idx, err := core.BuildIndex(train, 0)
	if err != nil {
		return nil, err
	}
	baseline := vsknn.New(train)

	var rows []MicroRow
	const k = 100
	for _, m := range ms {
		p := core.Params{M: m, K: k}

		vsTimes := timeQueries(func(q []sessions.ItemID) { baseline.NeighborSessions(q, p) }, queries)
		rows = append(rows, MicroRow{M: m, Variant: "VS-kNN",
			Median: durationPercentile(vsTimes, 0.5), P90: durationPercentile(vsTimes, 0.9)})

		noopt, err := core.NewRecommender(idx, core.Params{M: m, K: k, HeapArity: 2, DisableEarlyStopping: true})
		if err != nil {
			return nil, err
		}
		nooptTimes := timeQueries(func(q []sessions.ItemID) { noopt.NeighborSessions(q) }, queries)
		rows = append(rows, MicroRow{M: m, Variant: "VMIS-kNN-no-opt",
			Median: durationPercentile(nooptTimes, 0.5), P90: durationPercentile(nooptTimes, 0.9)})

		opt, err := core.NewRecommender(idx, p)
		if err != nil {
			return nil, err
		}
		optTimes := timeQueries(func(q []sessions.ItemID) { opt.NeighborSessions(q) }, queries)
		rows = append(rows, MicroRow{M: m, Variant: "VMIS-kNN",
			Median: durationPercentile(optTimes, 0.5), P90: durationPercentile(optTimes, 0.9)})
	}
	return rows, nil
}

// PrintMicro renders the microbenchmark table.
func PrintMicro(w io.Writer, rows []MicroRow) {
	fmt.Fprintln(w, "Figure 3(a) bottom: k-closest-sessions time, VS-kNN vs VMIS variants (k=100)")
	header := []string{"m", "variant", "median (µs)", "p90 (µs)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.M), r.Variant,
			fmt.Sprintf("%.1f", micros(r.Median)),
			fmt.Sprintf("%.1f", micros(r.P90)),
		})
	}
	printTable(w, header, cells)
}
