package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/core"
	"serenade/internal/legacy"
	"serenade/internal/metrics"
	"serenade/internal/neural"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// QualityRow is one model's offline prediction quality (§5.1.1).
type QualityRow struct {
	Model     string
	Report    metrics.Report
	Coverage  metrics.CoverageReport
	TrainTime time.Duration
	EvalTime  time.Duration
}

// Quality reproduces the §5.1.1 sanity-check: VMIS-kNN against the three
// neural baselines (GRU4Rec, NARM, STAMP) and the legacy item-item CF, all
// trained on the same historical sessions and evaluated on the next day
// with MAP@20, Prec@20, R@20 and MRR@20.
func Quality(opts Options) ([]QualityRow, error) {
	// The dataset is sized into the regime the paper evaluates in: a large,
	// sparse item vocabulary relative to the training budget. This is where
	// nearest-neighbour methods shine — a capacity-bounded neural model
	// cannot memorise item-frequency information for thousands of items
	// from a few epochs (§5.1.1 cites exactly this as the suspected cause),
	// while VMIS-kNN exploits it directly through its index.
	cfg := synth.Config{
		Name: "quality-sim", NumSessions: 8000, NumItems: 4000, Days: 15,
		Clusters: 100, ZipfS: 1.15, PStay: 0.85, RevisitProb: 0.06,
		LengthMu: 1.3, LengthSigma: 0.85, MaxLength: 40, Seed: 101,
	}
	epochs := 3
	evalSessions := 0 // all
	if opts.Quick {
		cfg.NumSessions, cfg.NumItems, cfg.Clusters = 1200, 300, 15
		epochs = 1
		evalSessions = 60
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	ds, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sp := sessions.TemporalSplit(ds, 1)
	train := sessions.Renumber(sp.Train)
	test := sp.Test
	if len(test.Sessions) == 0 {
		return nil, fmt.Errorf("experiments: empty test split")
	}

	const k = 20
	popularity := make(map[sessions.ItemID]int)
	for _, c := range train.Clicks {
		popularity[c.Item]++
	}
	var rows []QualityRow

	// VMIS-kNN.
	{
		start := time.Now()
		idx, err := core.BuildIndex(train, 0)
		if err != nil {
			return nil, err
		}
		rec, err := core.NewRecommender(idx, core.Params{M: 500, K: 100})
		if err != nil {
			return nil, err
		}
		trainTime := time.Since(start)
		start = time.Now()
		report, cov := evaluateWithCoverage(rec.Recommend, test, k, evalSessions, train.NumItems, popularity)
		rows = append(rows, QualityRow{Model: "VMIS-kNN", Report: report, Coverage: cov, TrainTime: trainTime, EvalTime: time.Since(start)})
	}

	// Neural baselines.
	neuralCfg := neural.Config{NumItems: train.NumItems, EmbedDim: 24, HiddenDim: 24, Seed: 7, MaxLen: 15}
	if opts.Quick {
		neuralCfg.EmbedDim, neuralCfg.HiddenDim = 12, 12
	}
	for _, m := range []neural.Model{
		neural.NewGRU4Rec(neuralCfg),
		neural.NewNARM(neuralCfg),
		neural.NewSTAMP(neuralCfg),
	} {
		start := time.Now()
		neural.Fit(m, train, epochs, 13)
		trainTime := time.Since(start)
		start = time.Now()
		report, cov := evaluateWithCoverage(func(ev []sessions.ItemID, n int) []core.ScoredItem {
			return neural.Recommend(m, ev, n)
		}, test, k, evalSessions, train.NumItems, popularity)
		rows = append(rows, QualityRow{Model: m.Name(), Report: report, Coverage: cov, TrainTime: trainTime, EvalTime: time.Since(start)})
	}

	// Legacy item-item CF (the production system Serenade replaced).
	{
		start := time.Now()
		m := legacy.Train(train, legacy.Config{})
		trainTime := time.Since(start)
		start = time.Now()
		report, cov := evaluateWithCoverage(m.Recommend, test, k, evalSessions, train.NumItems, popularity)
		rows = append(rows, QualityRow{Model: "item-item CF (legacy)", Report: report, Coverage: cov, TrainTime: trainTime, EvalTime: time.Since(start)})
	}
	return rows, nil
}

// PrintQuality renders the §5.1.1 comparison.
func PrintQuality(w io.Writer, rows []QualityRow) {
	header := []string{"model", "MAP@20", "Prec@20", "R@20", "MRR@20", "HR@20", "cov@20", "train", "eval"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Model,
			fmt.Sprintf("%.4f", r.Report.MAP),
			fmt.Sprintf("%.4f", r.Report.Precision),
			fmt.Sprintf("%.4f", r.Report.Recall),
			fmt.Sprintf("%.4f", r.Report.MRR),
			fmt.Sprintf("%.4f", r.Report.HitRate),
			fmt.Sprintf("%.3f", r.Coverage.Coverage),
			r.TrainTime.Round(time.Millisecond).String(),
			r.EvalTime.Round(time.Millisecond).String(),
		})
	}
	fmt.Fprintln(w, "§5.1.1: prediction quality, VMIS-kNN vs neural baselines (top 20)")
	printTable(w, header, cells)
}
