package experiments

import (
	"fmt"
	"io"
	"time"

	"serenade/internal/core"
	"serenade/internal/loadgen"
	"serenade/internal/obs/quality"
	"serenade/internal/rank"
	"serenade/internal/serving"
	"serenade/internal/sessions"
)

// QualityRunConfig drives the online quality loop: one quality-enabled
// serving replica per variant, fed the labelled test workload through a
// seeded position-biased click model, with the attributed feedback compared
// against the offline baseline the same evaluation protocol produces.
type QualityRunConfig struct {
	// Variants are the A/B arms to simulate; empty means {"a", "b"}.
	Variants []string
	// Model is the click model; its VariantSkew simulates arms of
	// different engagement. A zero model uses the defaults.
	Model loadgen.ClickModel
	// Rounds replays the workload this many times under distinct session
	// keys; more rounds tighten the inverse-propensity MRR estimate.
	// 0 means 1.
	Rounds int
	// MaxSteps caps the labelled steps per round (0 = all).
	MaxSteps int
}

// QualityRunRow is one variant's online-vs-offline comparison, the unit of
// the BENCH_quality.json artifact.
type QualityRunRow struct {
	Variant   string  `json:"variant"`
	Exposures uint64  `json:"exposures"`
	Clicks    uint64  `json:"clicks"`
	CTR       float64 `json:"ctr"`
	// OnlineMRR is the inverse-propensity-weighted estimate recovered from
	// attributed click ranks; with enough exposures it converges to
	// OfflineMRR, which is the loop's tolerance check.
	OnlineMRR  float64 `json:"online_mrr"`
	OfflineMRR float64 `json:"offline_mrr"`
	DeltaPct   float64 `json:"delta_pct"`
	// CondMRR is the propensity-free per-click estimate the drift detector
	// compares against the baseline's CondMRR.
	CondMRR     float64 `json:"cond_mrr"`
	RankTV      float64 `json:"rank_tv"`
	Drift       bool    `json:"drift"`
	DriftReason string  `json:"drift_reason,omitempty"`
}

// QualityRunResult is the full harness output.
type QualityRunResult struct {
	Profile  string            `json:"profile"`
	Steps    int               `json:"steps"`
	Rounds   int               `json:"rounds"`
	Baseline *quality.Baseline `json:"baseline"`
	Rows     []QualityRunRow   `json:"rows"`
}

// qualityServingConfig is the serving configuration both the offline
// baseline replay and the online variants run, so the two sides of the
// comparison see the identical pipeline (kNN plus popularity padding).
func qualityServingConfig() serving.Config {
	return serving.Config{Params: core.Params{M: 500, K: 100}}
}

// trainPopularity counts training clicks per item, the popularity-bias
// reference both sides share.
func trainPopularity(train *sessions.Dataset) map[sessions.ItemID]float64 {
	pop := make(map[sessions.ItemID]float64, train.NumItems)
	for _, c := range train.Clicks {
		pop[c.Item]++
	}
	return pop
}

// offlineBaseline replays the labelled steps through a plain serving replica
// and summarises offline quality — MRR, hit rate, conditional MRR, hit-rank
// distribution, coverage, popularity bias, top-score median — as the drift
// reference. This is the exact protocol of evaluate() but routed through
// serving.Server, so the baseline reflects the production pipeline rather
// than the bare recommender.
func offlineBaseline(idx *core.Index, steps []loadgen.ClickStep, profile string, pop map[sessions.ItemID]float64, catalogSize int) (*quality.Baseline, error) {
	srv, err := serving.NewServer(idx, qualityServingConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	k := serving.DefaultRecommendations
	hist := rank.NewHistogram(k)
	seen := make(map[sessions.ItemID]struct{})
	var events, hits int
	var rrSum, popSum float64
	var popN int
	var topScores []float64
	for _, st := range steps {
		if !st.NextValid {
			continue
		}
		resp, err := srv.Recommend(st.Request)
		if err != nil {
			return nil, err
		}
		if len(resp.Items) > 0 {
			topScores = append(topScores, resp.Items[0].Score)
			for _, it := range resp.Items {
				seen[it.Item] = struct{}{}
				popSum += pop[it.Item]
				popN++
			}
		}
		events++
		if r := st.RankOfNext(resp.Items); r > 0 {
			hits++
			hist.Add(r)
			rrSum += rank.Reciprocal(r)
		}
	}
	if events == 0 {
		return nil, fmt.Errorf("experiments: no labelled steps in quality workload")
	}
	base := &quality.Baseline{
		Profile:     profile,
		K:           k,
		MRR:         rrSum / float64(events),
		HitRate:     float64(hits) / float64(events),
		RankDist:    hist.Dist(),
		Coverage:    rank.Coverage(len(seen), catalogSize),
		TopScoreP50: rank.Quantile(topScores, 0.50),
		Events:      events,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	if hits > 0 {
		base.CondMRR = rrSum / float64(hits)
	}
	if popN > 0 {
		base.MeanPopularity = popSum / float64(popN)
	}
	return base, nil
}

// QualityBaseline evaluates a dataset profile offline and returns the drift
// baseline; serenade-eval -quality-baseline writes it to disk for the
// serving fleet to load.
func QualityBaseline(profile string, opts Options) (*quality.Baseline, error) {
	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	return offlineBaseline(idx, loadgen.ClickWorkload(test, 0), profile, trainPopularity(train), train.NumItems)
}

// QualityRun closes the loop end to end: compute the offline baseline, then
// replay the same labelled workload against one quality-enabled replica per
// variant with simulated position-biased clicks, and report per-variant
// online gauges next to the offline reference.
func QualityRun(cfg QualityRunConfig, opts Options) (*QualityRunResult, error) {
	profile := "ecom-60m-sim"
	if opts.Quick {
		profile = "retailrocket-sim"
	}
	if len(cfg.Variants) == 0 {
		cfg.Variants = []string{"a", "b"}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.Model.Seed == 0 {
		cfg.Model.Seed = opts.Seed
	}

	train, test, err := prepProfile(profile, opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.BuildIndex(train, 500)
	if err != nil {
		return nil, err
	}
	pop := trainPopularity(train)
	steps := loadgen.ClickWorkload(test, cfg.MaxSteps)

	base, err := offlineBaseline(idx, steps, profile, pop, train.NumItems)
	if err != nil {
		return nil, err
	}

	res := &QualityRunResult{Profile: profile, Rounds: cfg.Rounds, Baseline: base}
	for _, st := range steps {
		if st.NextValid {
			res.Steps++
		}
	}

	for _, variant := range cfg.Variants {
		row, err := runVariant(idx, steps, variant, cfg, base, pop, train.NumItems)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runVariant replays the workload against one quality-enabled replica,
// rolling the click model on the rank of the true next item and POSTing the
// resulting feedback through the same Track path the frontend uses.
func runVariant(idx *core.Index, steps []loadgen.ClickStep, variant string, cfg QualityRunConfig, base *quality.Baseline, pop map[sessions.ItemID]float64, catalogSize int) (QualityRunRow, error) {
	scfg := qualityServingConfig()
	scfg.Quality = &quality.Options{
		Variant:     variant,
		Baseline:    base,
		K:           base.K,
		CatalogSize: catalogSize,
		Popularity:  func(it sessions.ItemID) float64 { return pop[it] },
	}
	srv, err := serving.NewServer(idx, scfg)
	if err != nil {
		return QualityRunRow{}, err
	}
	defer srv.Close()

	for round := 0; round < cfg.Rounds; round++ {
		suffix := "/r" + itoaU(uint64(round))
		for _, st := range steps {
			// Unlabelled final clicks can never be evaluated (offline skips
			// them too), so they produce no exposure: the online and offline
			// denominators stay identical.
			if !st.NextValid {
				continue
			}
			req := st.Request
			req.SessionKey += suffix
			resp, err := srv.Recommend(req)
			if err != nil {
				return QualityRunRow{}, err
			}
			r := st.RankOfNext(resp.Items)
			if r > 0 && cfg.Model.Clicks(req.SessionKey, st.Step, variant, r) {
				srv.Track(serving.TrackRequest{RecommendationID: resp.RecommendationID, Item: st.Next})
			}
		}
	}

	snap := srv.Quality().Snapshot()
	row := QualityRunRow{Variant: variant, OfflineMRR: base.MRR}
	rankClicks := make([]uint64, base.K)
	var rrSum float64
	for _, ln := range snap.Lines {
		row.Exposures += ln.Cumulative.Exposures
		row.Clicks += ln.Cumulative.Clicks
		for i, c := range ln.RankClicks {
			if i < len(rankClicks) {
				rankClicks[i] += c
			}
		}
		// The horizon window still holds the whole replay, so its per-click
		// reciprocal-rank mass aggregates across lines.
		hw := ln.Windows[len(ln.Windows)-1]
		rrSum += hw.CondMRR * float64(hw.Clicks)
	}
	if row.Exposures > 0 {
		row.CTR = float64(row.Clicks) / float64(row.Exposures)
	}
	if row.Clicks > 0 {
		row.CondMRR = rrSum / float64(row.Clicks)
	}
	row.OnlineMRR = cfg.Model.UnbiasedMRR(rankClicks, row.Exposures, variant)
	if row.OfflineMRR > 0 {
		row.DeltaPct = (row.OnlineMRR - row.OfflineMRR) / row.OfflineMRR * 100
	}
	drift := srv.Quality().Drift()
	row.RankTV = drift.RankTV
	row.Drift = drift.Drifting
	row.DriftReason = drift.Reason
	return row, nil
}

// PrintQualityRun renders the online-vs-offline MRR table.
func PrintQualityRun(w io.Writer, res *QualityRunResult) {
	fmt.Fprintf(w, "online quality loop: %s, %d labelled steps x %d rounds (offline MRR@%d %.4f, hit %.4f, cond %.4f)\n",
		res.Profile, res.Steps, res.Rounds, res.Baseline.K, res.Baseline.MRR, res.Baseline.HitRate, res.Baseline.CondMRR)
	header := []string{"variant", "exposures", "clicks", "CTR", "online MRR (IPW)", "offline MRR", "delta", "cond MRR", "rank TV", "drift"}
	var cells [][]string
	for _, r := range res.Rows {
		driftCol := "-"
		if r.Drift {
			driftCol = r.DriftReason
		}
		cells = append(cells, []string{
			r.Variant,
			fmt.Sprintf("%d", r.Exposures),
			fmt.Sprintf("%d", r.Clicks),
			fmt.Sprintf("%.4f", r.CTR),
			fmt.Sprintf("%.4f", r.OnlineMRR),
			fmt.Sprintf("%.4f", r.OfflineMRR),
			fmt.Sprintf("%+.1f%%", r.DeltaPct),
			fmt.Sprintf("%.4f", r.CondMRR),
			fmt.Sprintf("%.3f", r.RankTV),
			driftCol,
		})
	}
	printTable(w, header, cells)
}

// itoaU is a dependency-free uint formatter for session-key suffixes.
func itoaU(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
