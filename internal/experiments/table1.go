package experiments

import (
	"fmt"
	"io"
	"strconv"

	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// Table1 regenerates the dataset-statistics table (Table 1 of the paper)
// for the synthetic stand-in profiles: click/session/item counts, day span
// and the clicks-per-session percentiles.
func Table1(opts Options) ([]sessions.Stats, error) {
	var rows []sessions.Stats
	for _, name := range synth.Profiles() {
		cfg, err := synth.Profile(name)
		if err != nil {
			return nil, err
		}
		if opts.Quick {
			cfg.NumSessions /= 20
			if cfg.NumSessions < 200 {
				cfg.NumSessions = 200
			}
		}
		ds, err := synth.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", name, err)
		}
		rows = append(rows, sessions.ComputeStats(ds))
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's layout.
func PrintTable1(w io.Writer, rows []sessions.Stats) {
	header := []string{"dataset", "clicks", "sessions", "items", "days", "p25", "p50", "p75", "p99"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			strconv.Itoa(r.Clicks), strconv.Itoa(r.Sessions), strconv.Itoa(r.Items), strconv.Itoa(r.Days),
			strconv.Itoa(r.P25), strconv.Itoa(r.P50), strconv.Itoa(r.P75), strconv.Itoa(r.P99),
		})
	}
	fmt.Fprintln(w, "Table 1: dataset statistics (synthetic stand-ins)")
	printTable(w, header, cells)
}
