// Package failpoint provides named fault-injection points for crash and
// error testing. Production code threads Inject calls through sequences
// whose intermediate states matter (the kvstore's WAL append → sync →
// memtable publish → snapshot → rename → trim chain); tests arm individual
// points to return errors, simulate a kill, or block until released.
//
// The package is a no-op unless a point is armed: the disarmed fast path is
// a single atomic load, cheap enough to leave in hot paths permanently.
package failpoint

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrKilled is the conventional error a hook returns to simulate a process
// kill at the injection point. Code that sees it must return immediately
// without performing any further side effects, leaving on-disk state exactly
// as a crash at that instant would.
var ErrKilled = errors.New("failpoint: killed")

var (
	// armed counts enabled points; zero short-circuits Inject before any
	// map access so the disarmed cost is one atomic load.
	armed atomic.Int32

	mu    sync.Mutex
	hooks = map[string]func() error{}
)

// Inject runs the hook armed at name, if any. A non-nil return means the
// caller must abandon the operation at this point.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := hooks[name]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// Enable arms name with a hook. Re-enabling an armed point replaces its
// hook.
func Enable(name string, fn func() error) {
	if fn == nil {
		panic("failpoint: nil hook")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; !ok {
		armed.Add(1)
	}
	hooks[name] = fn
}

// Disable disarms name. Disabling an unarmed point is a no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := hooks[name]; ok {
		delete(hooks, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every point; tests defer it for cleanup.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	for name := range hooks {
		delete(hooks, name)
		armed.Add(-1)
	}
}

// After returns a hook that succeeds until its nth invocation (1-based) and
// returns err from then on — "run the workload up to the kill point".
func After(n int, err error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) >= int64(n) {
			return err
		}
		return nil
	}
}

// Fail returns a hook that always returns err.
func Fail(err error) func() error {
	return func() error { return err }
}
