package failpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedIsNoop(t *testing.T) {
	if err := Inject("never-armed"); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	defer DisableAll()
	boom := errors.New("boom")
	Enable("p", Fail(boom))
	if err := Inject("p"); !errors.Is(err, boom) {
		t.Fatalf("armed Inject = %v, want boom", err)
	}
	// Other points stay disarmed.
	if err := Inject("q"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	Disable("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("disabled Inject = %v", err)
	}
	// Double disable is a no-op and must not corrupt the armed count.
	Disable("p")
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after balanced enable/disable", armed.Load())
	}
}

func TestAfter(t *testing.T) {
	defer DisableAll()
	Enable("p", After(3, ErrKilled))
	for i := 1; i <= 2; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("hit %d = %v, want nil", i, err)
		}
	}
	for i := 3; i <= 4; i++ {
		if err := Inject("p"); !errors.Is(err, ErrKilled) {
			t.Fatalf("hit %d = %v, want ErrKilled", i, err)
		}
	}
}

func TestReenableReplacesHook(t *testing.T) {
	defer DisableAll()
	first := errors.New("first")
	second := errors.New("second")
	Enable("p", Fail(first))
	Enable("p", Fail(second))
	if err := Inject("p"); !errors.Is(err, second) {
		t.Fatalf("Inject = %v, want second", err)
	}
	if armed.Load() != 1 {
		t.Fatalf("re-enable double-counted: armed = %d", armed.Load())
	}
}

func TestConcurrentInject(t *testing.T) {
	defer DisableAll()
	Enable("p", After(1000, ErrKilled))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Inject("p")
				Inject("unarmed")
			}
		}()
	}
	wg.Wait()
}
