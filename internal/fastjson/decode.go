package fastjson

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// maxNestingDepth caps how deep SkipValue will descend into arrays/objects.
// encoding/json enforces the same limit (10000) in its scanner; matching it
// keeps the accept/reject sets aligned on hostile deeply-nested inputs.
const maxNestingDepth = 10000

// ErrTooDeep mirrors encoding/json's "exceeded max depth" scanner error.
var ErrTooDeep = errors.New("fastjson: exceeded max depth")

// A SyntaxError reports malformed JSON with the byte offset where scanning
// failed, like encoding/json's SyntaxError.
type SyntaxError struct {
	msg    string
	Offset int64
}

func (e *SyntaxError) Error() string { return e.msg }

// Dec is an iterative pull decoder over a complete JSON document held in
// memory. It allocates only when a string value actually contains escape
// sequences (and then into a reusable scratch buffer); unescaped strings are
// returned as zero-copy subslices of the input.
//
// Dec is not safe for concurrent use; pool it alongside the request scratch.
type Dec struct {
	buf []byte
	pos int
	// scratch backs the most recent escaped string value; see ReadString.
	scratch []byte
}

// Init points the decoder at data and resets position. The decoder retains
// data until the next Init; callers own the buffer and must not mutate it
// while decoding.
func (d *Dec) Init(data []byte) {
	d.buf = data
	d.pos = 0
}

// Pos returns the current byte offset, for error reporting.
func (d *Dec) Pos() int { return d.pos }

func (d *Dec) syntaxf(format string, args ...any) error {
	return &SyntaxError{msg: "fastjson: " + fmt.Sprintf(format, args...), Offset: int64(d.pos)}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// SkipSpace advances past JSON whitespace.
func (d *Dec) SkipSpace() {
	for d.pos < len(d.buf) && isSpace(d.buf[d.pos]) {
		d.pos++
	}
}

// Peek returns the next non-space byte without consuming it, or 0 at EOF.
func (d *Dec) Peek() byte {
	d.SkipSpace()
	if d.pos >= len(d.buf) {
		return 0
	}
	return d.buf[d.pos]
}

// Expect consumes the next non-space byte, which must be c.
func (d *Dec) Expect(c byte) error {
	d.SkipSpace()
	if d.pos >= len(d.buf) {
		return d.syntaxf("unexpected end of JSON input")
	}
	if d.buf[d.pos] != c {
		return d.syntaxf("invalid character %q looking for %q", d.buf[d.pos], c)
	}
	d.pos++
	return nil
}

// TryConsume consumes the next non-space byte if it equals c.
func (d *Dec) TryConsume(c byte) bool {
	if d.Peek() == c {
		d.pos++
		return true
	}
	return false
}

// TryNull consumes a null literal if present and reports whether it did.
// Decoding null into a field is a no-op in encoding/json, so codecs call
// this before every field read.
func (d *Dec) TryNull() bool {
	d.SkipSpace()
	if d.pos+4 <= len(d.buf) && string(d.buf[d.pos:d.pos+4]) == "null" {
		d.pos += 4
		return true
	}
	return false
}

// AtEOF reports whether only whitespace remains. A json.Decoder stops after
// the first value and ignores trailing bytes, so codecs do NOT require EOF;
// this exists for tests and strict callers.
func (d *Dec) AtEOF() bool {
	d.SkipSpace()
	return d.pos >= len(d.buf)
}

// ReadString reads a JSON string value. The returned slice aliases the input
// buffer when the string has no escapes, and the decoder's scratch buffer
// otherwise — either way it is only valid until the next ReadString or Init.
func (d *Dec) ReadString() ([]byte, error) {
	if err := d.Expect('"'); err != nil {
		return nil, err
	}
	start := d.pos
	// Fast path: scan for the closing quote; bail to the slow path at the
	// first escape or invalid UTF-8 byte (which encoding/json's unquote
	// rewrites to U+FFFD). Raw control characters are invalid in JSON.
	for i := d.pos; i < len(d.buf); {
		c := d.buf[i]
		if c == '"' {
			d.pos = i + 1
			return d.buf[start:i], nil
		}
		if c == '\\' {
			return d.readStringSlow(start)
		}
		if c < 0x20 {
			d.pos = i
			return nil, d.syntaxf("invalid character %q in string literal", c)
		}
		if c < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRune(d.buf[i:])
		if r == utf8.RuneError && size == 1 {
			return d.readStringSlow(start)
		}
		i += size
	}
	d.pos = len(d.buf)
	return nil, d.syntaxf("unexpected end of JSON input")
}

// readStringSlow unescapes into scratch, mirroring encoding/json's
// unquoteBytes: \uXXXX with UTF-16 surrogate-pair combining, unpaired
// surrogates repaired to U+FFFD, and invalid UTF-8 bytes rewritten to
// U+FFFD (unquote re-validates UTF-8 as it copies).
func (d *Dec) readStringSlow(start int) ([]byte, error) {
	d.scratch = d.scratch[:0]
	i := start
	for i < len(d.buf) {
		c := d.buf[i]
		switch {
		case c == '"':
			d.pos = i + 1
			return d.scratch, nil
		case c == '\\':
			i++
			if i >= len(d.buf) {
				d.pos = i
				return nil, d.syntaxf("unexpected end of JSON input")
			}
			switch d.buf[i] {
			case '"':
				d.scratch = append(d.scratch, '"')
				i++
			case '\\':
				d.scratch = append(d.scratch, '\\')
				i++
			case '/':
				d.scratch = append(d.scratch, '/')
				i++
			case 'b':
				d.scratch = append(d.scratch, '\b')
				i++
			case 'f':
				d.scratch = append(d.scratch, '\f')
				i++
			case 'n':
				d.scratch = append(d.scratch, '\n')
				i++
			case 'r':
				d.scratch = append(d.scratch, '\r')
				i++
			case 't':
				d.scratch = append(d.scratch, '\t')
				i++
			case 'u':
				i++
				r, ok := readHex4(d.buf, i)
				if !ok {
					d.pos = i
					return nil, d.syntaxf("invalid character in \\u hexadecimal escape")
				}
				i += 4
				if utf16.IsSurrogate(r) {
					// Try to combine with a following \uXXXX low surrogate.
					if i+6 <= len(d.buf) && d.buf[i] == '\\' && d.buf[i+1] == 'u' {
						if r2, ok2 := readHex4(d.buf, i+2); ok2 {
							if dec := utf16.DecodeRune(r, r2); dec != unicode.ReplacementChar {
								i += 6
								d.scratch = utf8.AppendRune(d.scratch, dec)
								continue
							}
						}
					}
					r = unicode.ReplacementChar
				}
				d.scratch = utf8.AppendRune(d.scratch, r)
			default:
				d.pos = i
				return nil, d.syntaxf("invalid character %q in string escape code", d.buf[i])
			}
		case c < 0x20:
			d.pos = i
			return nil, d.syntaxf("invalid character %q in string literal", c)
		case c < utf8.RuneSelf:
			d.scratch = append(d.scratch, c)
			i++
		default:
			r, size := utf8.DecodeRune(d.buf[i:])
			if r == utf8.RuneError && size == 1 {
				d.scratch = utf8.AppendRune(d.scratch, unicode.ReplacementChar)
				i++
				continue
			}
			d.scratch = append(d.scratch, d.buf[i:i+size]...)
			i += size
		}
	}
	d.pos = len(d.buf)
	return nil, d.syntaxf("unexpected end of JSON input")
}

func readHex4(b []byte, i int) (rune, bool) {
	if i+4 > len(b) {
		return 0, false
	}
	var r rune
	for _, c := range b[i : i+4] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return 0, false
		}
		r = r*16 + rune(c)
	}
	return r, true
}

// scanNumber consumes one JSON number token (RFC 8259 grammar) and returns
// the token bytes plus whether it is a plain integer (no fraction or
// exponent; a leading '-' is allowed and visible in tok). Matching the token
// grammar first means inputs like "01" or "1." are rejected exactly where
// encoding/json rejects them.
func (d *Dec) scanNumber() (tok []byte, intOnly bool, err error) {
	d.SkipSpace()
	start := d.pos
	i := d.pos
	n := len(d.buf)
	intOnly = true
	if i < n && d.buf[i] == '-' {
		i++
	}
	switch {
	case i < n && d.buf[i] == '0':
		i++
	case i < n && d.buf[i] >= '1' && d.buf[i] <= '9':
		i++
		for i < n && d.buf[i] >= '0' && d.buf[i] <= '9' {
			i++
		}
	default:
		d.pos = i
		if i >= n {
			return nil, false, d.syntaxf("unexpected end of JSON input")
		}
		return nil, false, d.syntaxf("invalid character %q looking for number", d.buf[i])
	}
	if i < n && d.buf[i] == '.' {
		intOnly = false
		i++
		if i >= n || d.buf[i] < '0' || d.buf[i] > '9' {
			d.pos = i
			return nil, false, d.syntaxf("invalid number literal")
		}
		for i < n && d.buf[i] >= '0' && d.buf[i] <= '9' {
			i++
		}
	}
	if i < n && (d.buf[i] == 'e' || d.buf[i] == 'E') {
		intOnly = false
		i++
		if i < n && (d.buf[i] == '+' || d.buf[i] == '-') {
			i++
		}
		if i >= n || d.buf[i] < '0' || d.buf[i] > '9' {
			d.pos = i
			return nil, false, d.syntaxf("invalid number literal")
		}
		for i < n && d.buf[i] >= '0' && d.buf[i] <= '9' {
			i++
		}
	}
	d.pos = i
	return d.buf[start:i], intOnly, nil
}

// ReadUint reads a JSON number into a uint64. Like encoding/json unmarshaling
// into a uint field, any valid JSON number token that is not a plain
// non-negative integer ("-1", "1.5", "1e2", "1.0") is an error.
func (d *Dec) ReadUint() (uint64, error) {
	tok, intOnly, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if !intOnly || tok[0] == '-' {
		return 0, d.syntaxf("number %s is not a valid unsigned integer", tok)
	}
	var v uint64
	for _, c := range tok {
		digit := uint64(c - '0')
		if v > (math.MaxUint64-digit)/10 {
			return 0, d.syntaxf("number %s overflows uint64", tok)
		}
		v = v*10 + digit
	}
	return v, nil
}

// ReadInt reads a JSON number into an int64, rejecting fractions, exponents
// and overflow like encoding/json unmarshaling into an int field.
func (d *Dec) ReadInt() (int64, error) {
	tok, intOnly, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if !intOnly {
		return 0, d.syntaxf("number %s is not a valid integer", tok)
	}
	v, err := strconv.ParseInt(bytesToString(tok), 10, 64)
	if err != nil {
		return 0, d.syntaxf("number %s overflows int64", tok)
	}
	return v, nil
}

// ReadFloat reads any JSON number as a float64.
func (d *Dec) ReadFloat() (float64, error) {
	tok, _, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(bytesToString(tok), 64)
	if err != nil {
		return 0, d.syntaxf("invalid number %s", tok)
	}
	return v, nil
}

// ReadBool reads true or false.
func (d *Dec) ReadBool() (bool, error) {
	d.SkipSpace()
	if d.pos+4 <= len(d.buf) && string(d.buf[d.pos:d.pos+4]) == "true" {
		d.pos += 4
		return true, nil
	}
	if d.pos+5 <= len(d.buf) && string(d.buf[d.pos:d.pos+5]) == "false" {
		d.pos += 5
		return false, nil
	}
	if d.pos >= len(d.buf) {
		return false, d.syntaxf("unexpected end of JSON input")
	}
	return false, d.syntaxf("invalid character %q looking for boolean", d.buf[d.pos])
}

// SkipValue consumes one complete JSON value of any kind, validating its
// syntax. Used to skip unknown fields on lenient decodes. Recursive descent
// with the same depth cap as encoding/json's scanner; frames are small, so
// the capped recursion stays well under Go's stack limit.
func (d *Dec) SkipValue() error {
	return d.skipValue(0)
}

func (d *Dec) skipValue(depth int) error {
	d.SkipSpace()
	if d.pos >= len(d.buf) {
		return d.syntaxf("unexpected end of JSON input")
	}
	switch c := d.buf[d.pos]; c {
	case '{':
		if depth+1 > maxNestingDepth {
			return ErrTooDeep
		}
		d.pos++
		if d.TryConsume('}') {
			return nil
		}
		for {
			if _, err := d.ReadString(); err != nil {
				return err
			}
			if err := d.Expect(':'); err != nil {
				return err
			}
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			d.SkipSpace()
			if d.pos >= len(d.buf) {
				return d.syntaxf("unexpected end of JSON input")
			}
			switch d.buf[d.pos] {
			case ',':
				d.pos++
			case '}':
				d.pos++
				return nil
			default:
				return d.syntaxf("invalid character %q after object value", d.buf[d.pos])
			}
		}
	case '[':
		if depth+1 > maxNestingDepth {
			return ErrTooDeep
		}
		d.pos++
		if d.TryConsume(']') {
			return nil
		}
		for {
			if err := d.skipValue(depth + 1); err != nil {
				return err
			}
			d.SkipSpace()
			if d.pos >= len(d.buf) {
				return d.syntaxf("unexpected end of JSON input")
			}
			switch d.buf[d.pos] {
			case ',':
				d.pos++
			case ']':
				d.pos++
				return nil
			default:
				return d.syntaxf("invalid character %q after array element", d.buf[d.pos])
			}
		}
	case '"':
		_, err := d.ReadString()
		return err
	case 't', 'f':
		_, err := d.ReadBool()
		return err
	case 'n':
		if !d.TryNull() {
			return d.syntaxf("invalid character %q looking for value", c)
		}
		return nil
	default:
		_, _, err := d.scanNumber()
		return err
	}
}
