// Package fastjson is the hand-rolled JSON codec under Serenade's HTTP edge.
//
// encoding/json costs the hot path a reflection walk, per-call encoder and
// decoder state, and an output allocation per request — at >10k req/s the
// serialisation layer, not the kernel, drives GC pauses (the kernel has been
// 0 allocs/op since PR 1). This package provides the primitives the serving
// and client codecs are built from: append-based encoding into caller-owned
// buffers and an iterative scanner-based decoder with no reflection.
//
// Compatibility contract: for every value encoding/json can marshal without
// error, the Append* functions produce byte-identical output (including HTML
// escaping and invalid-UTF-8 replacement); the decoder accepts exactly the
// inputs a json.Decoder accepts and yields the same values (including null
// no-ops, case-folded key matching and surrogate-pair repair). The contract
// is enforced by differential tests here and by FuzzFastJSON over the wire
// schemas in internal/serving. The one carve-out: NaN and infinities, which
// encoding/json rejects with UnsupportedValueError and the serving layer
// never produces (kernel scores are finite sums of finite weights).
package fastjson

import (
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// smallsString is the paired-digit table shared by the integer encoders:
// two decimal digits per index, "00" through "99".
const smallsString = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

// itemIDCacheSize bounds the precomputed decimal table for hot item ids.
// Popularity-remapped indexes (PR 5) place the hottest items at the smallest
// ids, so the ids that dominate response encoding all hit this table.
const itemIDCacheSize = 1 << 12

// itemIDCache holds the decimal form of ids 0..itemIDCacheSize-1, all slices
// of one shared backing array so the table costs one allocation.
var itemIDCache [itemIDCacheSize][]byte

func init() {
	var backing []byte
	starts := make([]int, itemIDCacheSize+1)
	for i := 0; i < itemIDCacheSize; i++ {
		starts[i] = len(backing)
		backing = strconv.AppendUint(backing, uint64(i), 10)
	}
	starts[itemIDCacheSize] = len(backing)
	for i := 0; i < itemIDCacheSize; i++ {
		itemIDCache[i] = backing[starts[i]:starts[i+1]:starts[i+1]]
	}
}

// AppendItemID appends the decimal form of a (32-bit) item id, serving hot
// ids from the precomputed table.
func AppendItemID(dst []byte, id uint32) []byte {
	if id < itemIDCacheSize {
		return append(dst, itemIDCache[id]...)
	}
	return AppendUint(dst, uint64(id))
}

// AppendUint appends the decimal form of v using the paired-digit table.
func AppendUint(dst []byte, v uint64) []byte {
	var buf [20]byte
	i := len(buf)
	for v >= 100 {
		is := v % 100 * 2
		v /= 100
		i -= 2
		buf[i] = smallsString[is]
		buf[i+1] = smallsString[is+1]
	}
	// v < 100
	is := v * 2
	i--
	buf[i] = smallsString[is+1]
	if v >= 10 {
		i--
		buf[i] = smallsString[is]
	}
	return append(dst, buf[i:]...)
}

// AppendInt appends the decimal form of v.
func AppendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return AppendUint(dst, uint64(-v))
	}
	return AppendUint(dst, uint64(v))
}

// AppendFloat appends v exactly as encoding/json encodes a float64: shortest
// representation, 'f' form within [1e-6, 1e21), 'e' form outside it with the
// exponent's leading zero trimmed. NaN and infinities — which encoding/json
// refuses to encode at all — are outside the compatibility contract and are
// encoded as 0 so a corrupted score can never emit invalid JSON.
func AppendFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, matching encoding/json.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// htmlSafeSet reports ASCII bytes that can appear literally inside a JSON
// string with encoding/json's default HTML escaping: everything printable
// except `"`, `\`, `<`, `>`, `&`.
var htmlSafeSet = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		htmlSafeSet[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		htmlSafeSet[c] = false
	}
}

// AppendString appends s as a quoted JSON string, byte-identical to
// encoding/json's default (HTML-escaping) encoder: `"` `\` and the HTML
// characters escaped, control characters as \b \f \n \r \t or \u00XX,
// U+2028/U+2029 escaped, and invalid UTF-8 replaced with the literal
// \ufffd escape text.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// This encodes bytes < 0x20 except the cases above, and the
				// HTML characters <, > and &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JSONP; encoding/json
		// escapes them unconditionally, so the contract requires it here.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendBool appends true or false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}
