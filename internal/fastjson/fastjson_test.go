package fastjson

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// stringCases covers every escaping class in the compatibility contract.
var stringCases = []string{
	"",
	"plain ascii",
	"session-42",
	`quote " and backslash \`,
	"html <b>&amp;</b> escaping",
	"control \x00 \x01 \x1f chars",
	"short escapes \b \f \n \r \t",
	"utf8 héllo wörld ★ 日本語",
	"emoji \U0001F600 pair",
	"invalid \xff utf8",
	"truncated \xe2\x80 seq",
	"lone continuation \x80 byte",
	"line sep   and para sep  ",
	"mixed \xffé <>&\"\\\x02ok",
	strings.Repeat("long ascii run ", 100),
}

func TestAppendStringDifferential(t *testing.T) {
	for _, s := range stringCases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendFloatDifferential(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 0.1, 123.456,
		1e-6, 9.999e-7, 1e-7, 1e-9, 2.5e-10,
		1e20, 9.999e20, 1e21, 1.5e21, 1e22,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		-math.MaxFloat64, -math.SmallestNonzeroFloat64,
		0.265511, 3.141592653589793, 1e100, 1e-100,
		float64(1 << 53), float64(1<<53) + 2,
	}
	for _, v := range cases {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", v, err)
		}
		got := AppendFloat(nil, v)
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", v, got, want)
		}
	}
	// Carve-out: values encoding/json refuses to encode at all.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := AppendFloat(nil, v); string(got) != "0" {
			t.Errorf("AppendFloat(%v) = %s, want 0", v, got)
		}
	}
}

func TestAppendUintAndItemID(t *testing.T) {
	cases := []uint64{0, 1, 9, 10, 99, 100, 999, 4095, 4096, 4097, 65535,
		1<<32 - 1, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		want := strconv.FormatUint(v, 10)
		if got := AppendUint(nil, v); string(got) != want {
			t.Errorf("AppendUint(%d) = %s, want %s", v, got, want)
		}
		if v <= math.MaxUint32 {
			if got := AppendItemID(nil, uint32(v)); string(got) != want {
				t.Errorf("AppendItemID(%d) = %s, want %s", v, got, want)
			}
		}
	}
	for id := uint32(0); id < itemIDCacheSize; id++ {
		if string(itemIDCache[id]) != strconv.FormatUint(uint64(id), 10) {
			t.Fatalf("itemIDCache[%d] = %s", id, itemIDCache[id])
		}
	}
}

func TestAppendInt(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64 + 1} {
		want := strconv.FormatInt(v, 10)
		if got := AppendInt(nil, v); string(got) != want {
			t.Errorf("AppendInt(%d) = %s, want %s", v, got, want)
		}
	}
}

func TestAppendBool(t *testing.T) {
	if got := AppendBool(nil, true); string(got) != "true" {
		t.Fatalf("got %s", got)
	}
	if got := AppendBool(nil, false); string(got) != "false" {
		t.Fatalf("got %s", got)
	}
}

// TestReadStringDifferential round-trips every encoder case and a battery of
// hand-written escape forms through both decoders.
func TestReadStringDifferential(t *testing.T) {
	inputs := make([]string, 0, len(stringCases)+16)
	for _, s := range stringCases {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, string(b))
	}
	inputs = append(inputs,
		"\"\\u0041ll\"",           // simple hex escape
		"\"\\ud83d\\ude00\"",      // surrogate pair
		"\"\\uD83D\\uDE00\"",      // upper-case surrogate pair
		"\"\\ud800\"",              // unpaired high surrogate
		"\"\\udc00\"",              // unpaired low surrogate
		"\"\\ud800x\"",             // high surrogate then ordinary char
		"\"\\ud800\\ud800\"",      // two high surrogates
		"\"\\ud800\\u0041\"",      // high surrogate then non-surrogate escape
		`"\/slash\/"`,                 // solidus escape
		"\"\\u2028\\u2029\"",      // escaped separators
		"\"\\u0000\"",              // escaped NUL
		"\"pre \\n mid \xff post\"",   // escape plus invalid utf8 raw byte
		`"tab\there"`,                 // short escape mid-string
		"\"\\ufffd\"",              // escaped replacement char
	)
	var d Dec
	for _, in := range inputs {
		var want string
		wantErr := json.Unmarshal([]byte(in), &want)

		d.Init([]byte(in))
		got, gotErr := d.ReadString()

		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("ReadString(%q): err = %v, encoding/json err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && string(got) != want {
			t.Errorf("ReadString(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadStringRejects(t *testing.T) {
	bad := []string{``, `"`, `"abc`, `"\`, `"\q"`, `"\u12"`, `"\u12zz"`, "\"raw\nnewline\"", "\"ctl\x01\"", `123`}
	var d Dec
	for _, in := range bad {
		var s string
		if err := json.Unmarshal([]byte(in), &s); err == nil {
			t.Fatalf("case %q unexpectedly valid for encoding/json", in)
		}
		d.Init([]byte(in))
		if _, err := d.ReadString(); err == nil {
			t.Errorf("ReadString(%q) succeeded, want error", in)
		}
	}
}

// TestReadUintDifferential checks value and accept/reject parity with
// unmarshaling into a uint64 field.
func TestReadUintDifferential(t *testing.T) {
	inputs := []string{
		"0", "1", "42", "4095", "4096", "65536", "18446744073709551615",
		"18446744073709551616", // overflow
		"-1", "1.0", "1.5", "1e2", "0.5", "01", "1.", "1e", "+1", "", "--1",
		"  7 ", "\t12\n",
	}
	var d Dec
	for _, in := range inputs {
		var want uint64
		wantErr := json.Unmarshal([]byte(in), &want)

		d.Init([]byte(in))
		got, gotErr := d.ReadUint()
		// json.Unmarshal additionally requires the whole input be consumed;
		// the primitive follows Decoder.Decode (stop after one value), so
		// fold the trailing-data check in here for parity.
		ok := gotErr == nil && d.AtEOF()

		if (wantErr == nil) != ok {
			t.Errorf("ReadUint(%q): err = %v, encoding/json err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("ReadUint(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestReadFloatDifferential(t *testing.T) {
	inputs := []string{
		"0", "-0", "1", "-1", "0.5", "1e2", "1E2", "1e+2", "1e-2", "123.456",
		"1e308", "1e309", "5e-324", "1e-400", "2.5e-10",
		"01", "1.", ".5", "1e", "nan", "inf", "--1", "",
	}
	var d Dec
	for _, in := range inputs {
		var want float64
		wantErr := json.Unmarshal([]byte(in), &want)

		d.Init([]byte(in))
		got, gotErr := d.ReadFloat()
		ok := gotErr == nil && d.AtEOF()

		if (wantErr == nil) != ok {
			t.Errorf("ReadFloat(%q): err = %v, encoding/json err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("ReadFloat(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestReadBool(t *testing.T) {
	var d Dec
	d.Init([]byte(" true"))
	if v, err := d.ReadBool(); err != nil || !v {
		t.Fatalf("got %v, %v", v, err)
	}
	d.Init([]byte("false"))
	if v, err := d.ReadBool(); err != nil || v {
		t.Fatalf("got %v, %v", v, err)
	}
	for _, in := range []string{"", "tru", "False", "null", "1"} {
		d.Init([]byte(in))
		if _, err := d.ReadBool(); err == nil {
			t.Errorf("ReadBool(%q) succeeded", in)
		}
	}
}

// TestSkipValueDifferential checks that SkipValue accepts exactly the
// documents json.Valid accepts (when asked to consume the whole input).
func TestSkipValueDifferential(t *testing.T) {
	inputs := []string{
		`{}`, `[]`, `null`, `true`, `false`, `0`, `-1.5e3`, `"s"`,
		`{"a":1,"b":[1,2,{"c":null}],"d":"x"}`,
		`[[[[[]]]]]`,
		`[1,2,3]`, `[1,]`, `[,1]`, `{,}`, `{"a"}`, `{"a":}`, `{"a":1,}`,
		`{"a" 1}`, `[1 2]`, `["a":1]`, `tru`, `nul`, `{`, `[`, `"`,
		`{"k":"v"} `, `  [0]  `,
	}
	var d Dec
	for _, in := range inputs {
		want := json.Valid([]byte(in))
		d.Init([]byte(in))
		err := d.SkipValue()
		ok := err == nil && d.AtEOF()
		if ok != want {
			t.Errorf("SkipValue(%q): ok = %v (err=%v), json.Valid = %v", in, ok, err, want)
		}
	}
}

func TestSkipValueDepthCap(t *testing.T) {
	deep := strings.Repeat("[", maxNestingDepth+1) + strings.Repeat("]", maxNestingDepth+1)
	var d Dec
	d.Init([]byte(deep))
	if err := d.SkipValue(); err != ErrTooDeep {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
	okDepth := strings.Repeat("[", 100) + strings.Repeat("]", 100)
	d.Init([]byte(okDepth))
	if err := d.SkipValue(); err != nil {
		t.Fatalf("err = %v", err)
	}
}

// TestSkipValueStopsAfterValue verifies Decoder-style positioning: the scan
// stops right after the first value so object loops can continue.
func TestSkipValueStopsAfterValue(t *testing.T) {
	var d Dec
	d.Init([]byte(`{"skip":[1,2]},"next"`))
	if err := d.SkipValue(); err != nil {
		t.Fatal(err)
	}
	if got := d.Peek(); got != ',' {
		t.Fatalf("Peek after skip = %q, want ','", got)
	}
}

func TestDecoderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated under -race")
	}
	var d Dec
	in := []byte(`{"session_id":"bench-1","item_id":123,"consent":true}`)
	// Warm scratch once.
	d.Init(in)
	_ = d.SkipValue()
	allocs := testing.AllocsPerRun(200, func() {
		d.Init(in)
		if err := d.SkipValue(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SkipValue allocs = %v, want 0", allocs)
	}

	dst := make([]byte, 0, 256)
	allocs = testing.AllocsPerRun(200, func() {
		dst = dst[:0]
		dst = AppendString(dst, "session-42")
		dst = AppendItemID(dst, 123)
		dst = AppendFloat(dst, 0.265511)
		dst = AppendUint(dst, 1<<40)
		dst = AppendBool(dst, true)
	})
	if allocs != 0 {
		t.Fatalf("encode allocs = %v, want 0", allocs)
	}
}
