package fastjson

import (
	"encoding/json"
	"testing"
)

// FuzzScannerValid differentially checks the scanner against the standard
// library's validator: SkipValue consuming an entire input without error
// must agree with json.Valid, in both directions. The schema-level
// differential fuzz (internal/serving's FuzzFastJSON) covers the typed
// decode paths; this target covers the raw syntax scanner those decoders
// lean on for unknown fields.
func FuzzScannerValid(f *testing.F) {
	f.Add([]byte(`{"a":[1,2.5e-3,true,null,"xAy"],"b":{}}`))
	f.Add([]byte(`  [ -0.5 , "😀" , false ]  `))
	f.Add([]byte(`"lone \ud800 surrogate"`))
	f.Add([]byte("\"raw \xff bytes\""))
	f.Add([]byte(`1e309`))
	f.Add([]byte(`00`))
	f.Add([]byte(`{"k":1,}`))
	f.Add([]byte(`[[[[[[[[]]]]]]]]`))
	f.Add([]byte(`{}garbage`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Dec
		d.Init(data)
		err := d.SkipValue()
		got := err == nil && d.AtEOF()
		if want := json.Valid(data); got != want {
			t.Fatalf("scanner validity divergence on %q: fastjson %v (err %v), json.Valid %v",
				data, got, err, want)
		}
	})
}
