package fastjson

import "unsafe"

// bytesToString returns a string view over b without copying. The caller
// must not mutate b while the string is live; used only for transient
// strconv parses inside the decoder.
func bytesToString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}
