package incremental

import "fmt"

func errMExceedsCapacity(m, capacity int) error {
	return fmt.Errorf("incremental: M (%d) exceeds the index posting-list capacity (%d)", m, capacity)
}
