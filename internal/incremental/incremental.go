// Package incremental maintains the VMIS-kNN index online, the second
// future-work direction in the paper's conclusion ("whether we can
// incrementally maintain the index"), replacing the daily full rebuild with
// appends of finished sessions.
//
// The design is log-structured: an immutable base index (the last full
// build) plus an in-memory delta holding every session appended since.
// Because session recency is the only ordering the algorithm needs, and all
// delta sessions are newer than all base sessions, a query can traverse
// "delta newest-first, then base posting list" and observe exactly the
// posting order of a fresh rebuild — the equivalence is property-tested.
// Eviction of sessions older than a horizon (the paper's 180-day window) is
// recorded immediately but applied at the next Compact, which folds the
// delta into a new base, like tombstones in an LSM tree.
package incremental

import (
	"fmt"
	"sync"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Index is an incrementally maintained session-similarity index. All
// methods are safe for concurrent use; queries proceed under a read lock
// and appends under a write lock.
type Index struct {
	capacity int

	mu          sync.RWMutex
	base        *core.Index
	deltaTimes  []int64
	deltaItems  [][]sessions.ItemID
	deltaPost   map[sessions.ItemID][]sessions.SessionID // ascending time
	deltaDF     map[sessions.ItemID]int
	evictBefore int64
	lastTime    int64
}

// FromDataset builds the initial base index from historical sessions
// (renumbered internally). capacity bounds base posting lists and must be
// at least the largest query-time M; capacity <= 0 keeps complete lists.
func FromDataset(ds *sessions.Dataset, capacity int) (*Index, error) {
	base, err := core.BuildIndex(sessions.Renumber(ds), capacity)
	if err != nil {
		return nil, err
	}
	return New(base, capacity), nil
}

// New wraps an existing base index.
func New(base *core.Index, capacity int) *Index {
	x := &Index{
		capacity:  capacity,
		base:      base,
		deltaPost: make(map[sessions.ItemID][]sessions.SessionID),
		deltaDF:   make(map[sessions.ItemID]int),
	}
	if n := base.NumSessions(); n > 0 {
		x.lastTime = base.Time(sessions.SessionID(n - 1))
	}
	return x
}

// Append adds one finished session with timestamp t. Sessions must arrive
// in non-decreasing time order (the stream of completed sessions is
// naturally ordered). It returns the session's id.
func (x *Index) Append(items []sessions.ItemID, t int64) (sessions.SessionID, error) {
	if len(items) == 0 {
		return 0, fmt.Errorf("incremental: empty session")
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if t < x.lastTime {
		return 0, fmt.Errorf("incremental: session time %d precedes the newest indexed session (%d)", t, x.lastTime)
	}
	x.lastTime = t

	id := sessions.SessionID(x.base.NumSessions() + len(x.deltaTimes))
	seen := make(map[sessions.ItemID]struct{}, len(items))
	unique := make([]sessions.ItemID, 0, len(items))
	for _, it := range items {
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		unique = append(unique, it)
		x.deltaPost[it] = append(x.deltaPost[it], id)
		x.deltaDF[it]++
	}
	x.deltaTimes = append(x.deltaTimes, t)
	x.deltaItems = append(x.deltaItems, unique)
	return id, nil
}

// EvictBefore marks sessions older than t for removal at the next Compact
// (the 180-day retention window). It never rewinds an existing horizon.
func (x *Index) EvictBefore(t int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if t > x.evictBefore {
		x.evictBefore = t
	}
}

// NumSessions reports |H|: base plus delta sessions (pending evictions
// still count until Compact applies them).
func (x *Index) NumSessions() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.base.NumSessions() + len(x.deltaTimes)
}

// DeltaSessions reports how many sessions await compaction.
func (x *Index) DeltaSessions() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.deltaTimes)
}

// Compact folds the delta into a fresh base index, applying the eviction
// horizon — the equivalent of the paper's daily rebuild, but fed from the
// in-memory state instead of a full batch job.
func (x *Index) Compact() error {
	x.mu.Lock()
	defer x.mu.Unlock()

	var live []sessions.Session
	appendSession := func(items []sessions.ItemID, t int64) {
		times := make([]int64, len(items))
		for i := range times {
			times[i] = t
		}
		live = append(live, sessions.Session{
			ID:    sessions.SessionID(len(live)),
			Items: items,
			Times: times,
		})
	}
	for s := 0; s < x.base.NumSessions(); s++ {
		sid := sessions.SessionID(s)
		if x.base.Time(sid) < x.evictBefore {
			continue
		}
		appendSession(x.base.SessionItems(sid), x.base.Time(sid))
	}
	for i, t := range x.deltaTimes {
		if t < x.evictBefore {
			continue
		}
		appendSession(x.deltaItems[i], t)
	}

	base, err := core.BuildIndex(sessions.FromSessions("compacted", live), x.capacity)
	if err != nil {
		return fmt.Errorf("incremental: compacting: %w", err)
	}
	x.base = base
	x.deltaTimes = nil
	x.deltaItems = nil
	x.deltaPost = make(map[sessions.ItemID][]sessions.SessionID)
	x.deltaDF = make(map[sessions.ItemID]int)
	return nil
}

// --- read-side helpers used by the Recommender (callers hold x.mu.RLock) ---

func (x *Index) timeOf(sid sessions.SessionID) int64 {
	if n := x.base.NumSessions(); int(sid) >= n {
		return x.deltaTimes[int(sid)-n]
	}
	return x.base.Time(sid)
}

func (x *Index) itemsOf(sid sessions.SessionID) []sessions.ItemID {
	if n := x.base.NumSessions(); int(sid) >= n {
		return x.deltaItems[int(sid)-n]
	}
	return x.base.SessionItems(sid)
}

func (x *Index) idf(item sessions.ItemID) float64 {
	df := x.base.DF(item) + x.deltaDF[item]
	if df == 0 {
		return 0
	}
	total := x.base.NumSessions() + len(x.deltaTimes)
	return logf(float64(total) / float64(df))
}
