package incremental

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// sessionStream produces random sessions with strictly increasing times.
type sessionStream struct {
	rng  *rand.Rand
	tick int64
	all  []sessions.Session
}

func newStream(seed int64) *sessionStream {
	return &sessionStream{rng: rand.New(rand.NewSource(seed)), tick: 1000}
}

func (st *sessionStream) next(vocab int) ([]sessions.ItemID, int64) {
	length := 2 + st.rng.Intn(5)
	items := make([]sessions.ItemID, length)
	times := make([]int64, length)
	for i := range items {
		items[i] = sessions.ItemID(st.rng.Intn(vocab))
		st.tick++
		times[i] = st.tick
	}
	st.all = append(st.all, sessions.Session{
		ID: sessions.SessionID(len(st.all)), Items: items, Times: times,
	})
	return items, times[len(times)-1]
}

func (st *sessionStream) dataset() *sessions.Dataset {
	copied := make([]sessions.Session, len(st.all))
	copy(copied, st.all)
	return sessions.FromSessions("stream", copied)
}

// freshRecommender rebuilds an index from scratch over the given sessions.
func freshRecommender(t *testing.T, ds *sessions.Dataset, p core.Params) *core.Recommender {
	t.Helper()
	idx, err := core.BuildIndex(sessions.Renumber(ds), 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.NewRecommender(idx, p)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func queries(rng *rand.Rand, vocab, n int) [][]sessions.ItemID {
	out := make([][]sessions.ItemID, n)
	for i := range out {
		q := make([]sessions.ItemID, 1+rng.Intn(4))
		for j := range q {
			q[j] = sessions.ItemID(rng.Intn(vocab))
		}
		out[i] = q
	}
	return out
}

// TestAppendMatchesRebuild: after every batch of appends, the incremental
// index answers exactly like a from-scratch rebuild over all sessions.
func TestAppendMatchesRebuild(t *testing.T) {
	const vocab = 40
	st := newStream(1)
	for i := 0; i < 100; i++ {
		st.next(vocab)
	}
	x, err := FromDataset(st.dataset(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{M: 25, K: 10}
	inc, err := NewRecommender(x, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for batch := 0; batch < 5; batch++ {
		for i := 0; i < 30; i++ {
			items, tm := st.next(vocab)
			if _, err := x.Append(items, tm); err != nil {
				t.Fatal(err)
			}
		}
		fresh := freshRecommender(t, st.dataset(), p)
		for _, q := range queries(rng, vocab, 40) {
			a := inc.Recommend(q, 21)
			b := fresh.Recommend(q, 21)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("batch %d: incremental disagrees with rebuild on %v:\n%v\nvs\n%v", batch, q, a, b)
			}
		}
	}
	if x.DeltaSessions() != 150 {
		t.Errorf("delta sessions = %d, want 150", x.DeltaSessions())
	}
}

// TestCompactPreservesAnswers: compaction must not change any result.
func TestCompactPreservesAnswers(t *testing.T) {
	const vocab = 30
	st := newStream(3)
	for i := 0; i < 80; i++ {
		st.next(vocab)
	}
	x, err := FromDataset(st.dataset(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		items, tm := st.next(vocab)
		x.Append(items, tm)
	}
	p := core.Params{M: 20, K: 10}
	inc, _ := NewRecommender(x, p)

	rng := rand.New(rand.NewSource(4))
	qs := queries(rng, vocab, 50)
	before := make([][]core.ScoredItem, len(qs))
	for i, q := range qs {
		before[i] = append([]core.ScoredItem(nil), inc.Recommend(q, 21)...)
	}
	if err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	if x.DeltaSessions() != 0 {
		t.Errorf("delta not cleared by compaction: %d", x.DeltaSessions())
	}
	for i, q := range qs {
		after := inc.Recommend(q, 21)
		if !reflect.DeepEqual(before[i], after) {
			t.Fatalf("compaction changed the answer for %v:\n%v\nvs\n%v", q, before[i], after)
		}
	}
}

// TestEvictionMatchesRebuildFromLive: EvictBefore + Compact equals a fresh
// build over only the retained sessions.
func TestEvictionMatchesRebuildFromLive(t *testing.T) {
	const vocab = 30
	st := newStream(5)
	for i := 0; i < 120; i++ {
		st.next(vocab)
	}
	x, err := FromDataset(st.dataset(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Evict the oldest ~half by time horizon.
	horizon := st.all[60].Time()
	x.EvictBefore(horizon)
	if err := x.Compact(); err != nil {
		t.Fatal(err)
	}

	var live []sessions.Session
	for _, s := range st.all {
		if s.Time() >= horizon {
			live = append(live, s)
		}
	}
	p := core.Params{M: 20, K: 10}
	fresh := freshRecommender(t, sessions.FromSessions("live", live), p)
	inc, _ := NewRecommender(x, p)

	if got, want := x.NumSessions(), len(live); got != want {
		t.Fatalf("sessions after eviction = %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(6))
	for _, q := range queries(rng, vocab, 60) {
		// Rebuild uses full per-click times; compaction collapses a
		// session's times to its session timestamp — Session.Time() and
		// therefore all index structures are identical.
		a := inc.Recommend(q, 21)
		b := fresh.Recommend(q, 21)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("post-eviction disagreement on %v:\n%v\nvs\n%v", q, a, b)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	st := newStream(7)
	for i := 0; i < 10; i++ {
		st.next(10)
	}
	x, err := FromDataset(st.dataset(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Append(nil, 99999); err == nil {
		t.Error("empty session accepted")
	}
	if _, err := x.Append([]sessions.ItemID{1}, 1); err == nil {
		t.Error("out-of-order timestamp accepted")
	}
	// Equal timestamp is fine (same-second sessions).
	last := st.all[len(st.all)-1].Time()
	if _, err := x.Append([]sessions.ItemID{1}, last); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestEvictBeforeNeverRewinds(t *testing.T) {
	st := newStream(8)
	for i := 0; i < 10; i++ {
		st.next(10)
	}
	x, _ := FromDataset(st.dataset(), 0)
	x.EvictBefore(500)
	x.EvictBefore(100) // must not rewind
	if x.evictBefore != 500 {
		t.Errorf("horizon rewound to %d", x.evictBefore)
	}
}

func TestNewRecommenderValidation(t *testing.T) {
	st := newStream(9)
	for i := 0; i < 10; i++ {
		st.next(10)
	}
	x, err := FromDataset(st.dataset(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecommender(x, core.Params{M: 50, K: 10}); err == nil {
		t.Error("M beyond capacity accepted")
	}
}

// TestConcurrentAppendQueryCompact exercises the locking under the race
// detector: appends, queries and compactions interleave freely.
func TestConcurrentAppendQueryCompact(t *testing.T) {
	const vocab = 25
	st := newStream(10)
	for i := 0; i < 50; i++ {
		st.next(vocab)
	}
	x, err := FromDataset(st.dataset(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{M: 20, K: 10}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: appends sessions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := st.all[len(st.all)-1].Time()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 500; i++ {
			tick++
			items := []sessions.ItemID{
				sessions.ItemID(rng.Intn(vocab)),
				sessions.ItemID(rng.Intn(vocab)),
			}
			if _, err := x.Append(items, tick); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
		close(stop)
	}()
	// Compactor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := x.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rec, err := NewRecommender(x, p)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					q := []sessions.ItemID{sessions.ItemID(rng.Intn(vocab))}
					rec.Recommend(q, 10)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if x.NumSessions() < 550 {
		t.Errorf("sessions = %d, want >= 550", x.NumSessions())
	}
}

func BenchmarkAppend(b *testing.B) {
	st := newStream(12)
	for i := 0; i < 100; i++ {
		st.next(100)
	}
	ds := st.dataset()
	x, err := FromDataset(ds, 0)
	if err != nil {
		b.Fatal(err)
	}
	tick := st.all[len(st.all)-1].Time()
	items := []sessions.ItemID{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick++
		if _, err := x.Append(items, tick); err != nil {
			b.Fatal(err)
		}
	}
}
