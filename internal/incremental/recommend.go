package incremental

import (
	"math"

	"serenade/internal/core"
	"serenade/internal/dheap"
	"serenade/internal/sessions"
)

func logf(x float64) float64 { return math.Log(x) }

// Recommender executes VMIS-kNN over the incrementally maintained index.
// Each query runs under the index's read lock, so appends and compactions
// interleave safely with queries. A Recommender reuses buffers and is not
// safe for concurrent use itself; create one per goroutine with Clone.
type Recommender struct {
	x *Index
	p core.Params

	r      map[sessions.SessionID]accum
	dup    map[sessions.ItemID]struct{}
	bt     *dheap.Heap[btEntry]
	topk   *dheap.Bounded[core.Neighbor]
	scores map[sessions.ItemID]float64
	outH   *dheap.Bounded[core.ScoredItem]
	outCap int
}

type accum struct {
	score  float64
	maxPos int32
}

type btEntry struct {
	id   sessions.SessionID
	time int64
}

// NewRecommender validates parameters against the index capacity.
func NewRecommender(x *Index, p core.Params) (*Recommender, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if x.capacity > 0 && p.M > x.capacity {
		return nil, errMExceedsCapacity(p.M, x.capacity)
	}
	p = withDefaults(p)
	r := &Recommender{
		x:      x,
		p:      p,
		r:      make(map[sessions.SessionID]accum, p.M),
		dup:    make(map[sessions.ItemID]struct{}, p.MaxSessionLength),
		scores: make(map[sessions.ItemID]float64, 256),
	}
	r.bt = dheap.NewWithCapacity(p.HeapArity, p.M, func(a, b btEntry) bool { return a.time < b.time })
	r.topk = dheap.NewBounded(p.HeapArity, p.K, neighborLess)
	return r, nil
}

func withDefaults(p core.Params) core.Params {
	if p.MaxSessionLength <= 0 {
		p.MaxSessionLength = core.DefaultMaxSessionLength
	}
	if p.Decay == nil {
		p.Decay = core.LinearDecay
	}
	if p.MatchWeight == nil {
		p.MatchWeight = core.LinearMatchWeight
	}
	if p.HeapArity == 0 {
		p.HeapArity = 8
	}
	return p
}

func neighborLess(a, b core.Neighbor) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Time < b.Time
}

// Clone returns an independent Recommender over the same index.
func (r *Recommender) Clone() *Recommender {
	c, err := NewRecommender(r.x, r.p)
	if err != nil {
		panic("incremental: Clone failed: " + err.Error())
	}
	return c
}

// NeighborSessions computes the k most similar historical sessions,
// spanning both the base index and the delta.
func (r *Recommender) NeighborSessions(evolving []sessions.ItemID) []core.Neighbor {
	r.x.mu.RLock()
	defer r.x.mu.RUnlock()
	return r.neighborSessionsLocked(evolving)
}

func (r *Recommender) neighborSessionsLocked(evolving []sessions.ItemID) []core.Neighbor {
	s := evolving
	if len(s) > r.p.MaxSessionLength {
		s = s[len(s)-r.p.MaxSessionLength:]
	}
	length := len(s)

	clear(r.r)
	clear(r.dup)
	r.bt.Reset()
	r.topk.Reset()

	for pos := length; pos >= 1; pos-- {
		item := s[pos-1]
		if _, dup := r.dup[item]; dup {
			continue
		}
		r.dup[item] = struct{}{}
		pi := r.p.Decay(pos, length)

		// process consumes one candidate session; it reports whether the
		// posting traversal should continue (false = early stop: every
		// remaining session is at least as old).
		process := func(j sessions.SessionID) bool {
			if acc, ok := r.r[j]; ok {
				acc.score += pi
				r.r[j] = acc
				return true
			}
			tj := r.x.timeOf(j)
			if len(r.r) < r.p.M {
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.Push(btEntry{id: j, time: tj})
				return true
			}
			oldest, _ := r.bt.Peek()
			if tj > oldest.time {
				delete(r.r, oldest.id)
				r.r[j] = accum{score: pi, maxPos: int32(pos)}
				r.bt.ReplaceRoot(btEntry{id: j, time: tj})
				return true
			}
			return r.p.DisableEarlyStopping
		}

		// Delta sessions are all newer than base sessions, and the delta
		// posting list ascends in time — so "delta reversed, then base"
		// is exactly the descending-recency posting order of a rebuild.
		delta := r.x.deltaPost[item]
		stopped := false
		for di := len(delta) - 1; di >= 0; di-- {
			if !process(delta[di]) {
				stopped = true
				break
			}
		}
		if stopped {
			continue
		}
		for _, j := range r.x.base.Postings(item) {
			if !process(j) {
				break
			}
		}
	}

	for j, acc := range r.r {
		r.topk.Offer(core.Neighbor{
			ID:     j,
			Score:  acc.score,
			MaxPos: int(acc.maxPos),
			Time:   r.x.timeOf(j),
		})
	}
	return r.topk.DrainDescending()
}

// Recommend computes the top-n next-item recommendations.
func (r *Recommender) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if n <= 0 || len(evolving) == 0 {
		return nil
	}
	r.x.mu.RLock()
	defer r.x.mu.RUnlock()
	neighbors := r.neighborSessionsLocked(evolving)
	if len(neighbors) == 0 {
		return nil
	}
	clear(r.scores)
	for _, nb := range neighbors {
		w := r.p.MatchWeight(nb.MaxPos) * nb.Score
		if w == 0 {
			continue
		}
		for _, item := range r.x.itemsOf(nb.ID) {
			r.scores[item] += w * r.x.idf(item)
		}
	}
	if r.outH == nil {
		r.outH = dheap.NewBounded(r.p.HeapArity, n, scoredItemLess)
		r.outCap = n
	} else if r.outCap != n {
		// Callers alternating n must not thrash the heap: reuse its
		// storage, growing only when the new bound exceeds it.
		r.outH.ResetWithCap(n)
		r.outCap = n
	} else {
		r.outH.Reset()
	}
	for item, score := range r.scores {
		if score > 0 {
			r.outH.Offer(core.ScoredItem{Item: item, Score: score})
		}
	}
	out := r.outH.DrainDescending()
	if len(out) == 0 {
		return nil
	}
	return out
}

func scoredItemLess(a, b core.ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}
