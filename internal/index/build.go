// Package index implements Serenade's offline index generation and the
// compressed on-disk index format.
//
// The paper builds the session similarity index once per day with a
// data-parallel Spark job over the last 180 days of click data and ships it
// to the serving machines as compressed Avro files (§4.2). Here the same
// relational plan — key each session's distinct items, group by item,
// sort each item's sessions by recency, truncate to the sample capacity —
// runs on the internal/dataflow engine, and the result is serialised in a
// compact delta-encoded, flate-compressed binary format with a checksum.
package index

import (
	"fmt"
	"sort"

	"serenade/internal/core"
	"serenade/internal/dataflow"
	"serenade/internal/sessions"
)

// Build constructs the VMIS-kNN index from a renumbered dataset using the
// data-parallel engine. It produces bit-identical output to core.BuildIndex
// (which is the simple sequential builder); the parallel build is the
// production path because daily index generation dominates offline cost.
func Build(e *dataflow.Engine, ds *sessions.Dataset, capacity int) (*core.Index, error) {
	n := len(ds.Sessions)
	for i := range ds.Sessions {
		if ds.Sessions[i].ID != sessions.SessionID(i) {
			return nil, fmt.Errorf("index: session ids must be dense, got %d at position %d", ds.Sessions[i].ID, i)
		}
		if i > 0 && ds.Sessions[i].Time() < ds.Sessions[i-1].Time() {
			return nil, fmt.Errorf("index: session %d is older than its predecessor", i)
		}
	}

	parts := e.Workers() * 4
	col := dataflow.FromSlice(ds.Sessions, parts)

	// Stage 1: per-session distinct items, keyed by session position.
	type sessionView struct {
		id    sessions.SessionID
		time  int64
		items []sessions.ItemID
	}
	views := dataflow.Map(e, col, func(s sessions.Session) sessionView {
		seen := make(map[sessions.ItemID]struct{}, len(s.Items))
		unique := make([]sessions.ItemID, 0, len(s.Items))
		for _, it := range s.Items {
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			unique = append(unique, it)
		}
		return sessionView{id: s.ID, time: s.Time(), items: unique}
	})

	// Stage 2: shuffle (item -> session) pairs and group by item.
	pairs := dataflow.FlatMap(e, views, func(v sessionView) []dataflow.Pair[sessions.ItemID, sessions.SessionID] {
		out := make([]dataflow.Pair[sessions.ItemID, sessions.SessionID], len(v.items))
		for i, it := range v.items {
			out[i] = dataflow.Pair[sessions.ItemID, sessions.SessionID]{Key: it, Value: v.id}
		}
		return out
	})
	grouped := dataflow.GroupByKey(e, pairs, parts, dataflow.IntHasher[sessions.ItemID])

	// Stage 3: per item, order sessions most recent first (descending id ==
	// descending time for renumbered data), record the full document
	// frequency, truncate to capacity.
	type postingList struct {
		item     sessions.ItemID
		df       int32
		sessions []sessions.SessionID
	}
	lists := dataflow.Map(e, grouped, func(g dataflow.Pair[sessions.ItemID, []sessions.SessionID]) postingList {
		ids := g.Value
		sort.Slice(ids, func(a, b int) bool { return ids[a] > ids[b] })
		df := int32(len(ids))
		if capacity > 0 && len(ids) > capacity {
			ids = ids[:capacity:capacity]
		}
		return postingList{item: g.Key, df: df, sessions: ids}
	})

	// Assemble the dense structures.
	times := make([]int64, n)
	sessionItems := make([][]sessions.ItemID, n)
	for _, v := range views.Collect() {
		times[v.id] = v.time
		sessionItems[v.id] = v.items
	}
	postings := make([][]sessions.SessionID, ds.NumItems)
	df := make([]int32, ds.NumItems)
	for _, pl := range lists.Collect() {
		postings[pl.item] = pl.sessions
		df[pl.item] = pl.df
	}
	return core.NewIndexFromParts(times, postings, sessionItems, df, capacity)
}
