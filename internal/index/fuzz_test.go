package index

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// FuzzLoad: the index loader must never panic or over-allocate on
// arbitrary bytes — it faces whatever the distributed filesystem hands it.
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file and a few mutations.
	ds, err := synth.Generate(synth.Config{
		Name: "fuzz", NumSessions: 30, NumItems: 20, Days: 3,
		Clusters: 4, ZipfS: 1.3, PStay: 0.8, RevisitProb: 0.05,
		LengthMu: 1.0, LengthSigma: 0.5, MaxLength: 10, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SRNIDX01garbage"))
	f.Add([]byte{})

	// v2 seeds: a valid section-table file, truncations that cut the header,
	// the table, and a payload, a flipped payload byte, and a hostile table
	// entry — the fuzzer mutates from here into overlap/bounds corner cases.
	var buf2 bytes.Buffer
	if err := SaveV2(&buf2, idx); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	tableEnd := int(v2TableEnd(v2NumSections))
	f.Add(valid2)
	f.Add(valid2[:v2HeaderSize-1])
	f.Add(valid2[:tableEnd/2])
	f.Add(valid2[:len(valid2)-3])
	flipped := append([]byte(nil), valid2...)
	flipped[tableEnd+1] ^= 0x40
	f.Add(flipped)
	hostile := append([]byte(nil), valid2...)
	binary.LittleEndian.PutUint64(hostile[v2HeaderSize+2*v2SectionSize+16:], 1<<60) // huge byteLen
	f.Add(hostile)
	f.Add([]byte("SRNIDX02garbage"))

	// v2 remap seeds: the eight-section layout (popularity remap present), a
	// hostile out-of-range remap row with an honest CRC, a file whose header
	// claims eight sections over a seven-entry table, and a duplicate section
	// id — the absent-section case is valid2 above.
	remapped, err := idx.RemappedByPopularity()
	if err != nil {
		f.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := SaveV2(&buf3, remapped); err != nil {
		f.Fatal(err)
	}
	valid3 := buf3.Bytes()
	f.Add(valid3)
	f.Add(valid3[:v2TableEnd(v2MaxSections)-4])
	badRow := append([]byte(nil), valid3...)
	le := binary.LittleEndian
	remapEntry := badRow[v2HeaderSize+(secPostRemap-1)*v2SectionSize:]
	off := le.Uint64(remapEntry[8:16])
	n := le.Uint64(remapEntry[16:24])
	le.PutUint32(badRow[off:], uint32(remapped.NumItems()))
	le.PutUint32(remapEntry[4:8], crc32.ChecksumIEEE(badRow[off:off+n]))
	f.Add(badRow)
	claims8 := append([]byte(nil), valid2...)
	le.PutUint32(claims8[32:36], v2MaxSections)
	f.Add(claims8)
	dupID := append([]byte(nil), valid3...)
	le.PutUint32(dupID[v2HeaderSize+(secPostRemap-1)*v2SectionSize:], secIDF)
	f.Add(dupID)

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads cleanly must be structurally sound enough to
		// query without panicking.
		rec, err := core.NewRecommender(loaded, core.Params{M: 5, K: 2})
		if err != nil {
			return
		}
		for item := 0; item < loaded.NumItems() && item < 8; item++ {
			rec.Recommend([]sessions.ItemID{sessions.ItemID(item)}, 5)
		}
	})
}
