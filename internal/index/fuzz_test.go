package index

import (
	"bytes"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// FuzzLoad: the index loader must never panic or over-allocate on
// arbitrary bytes — it faces whatever the distributed filesystem hands it.
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file and a few mutations.
	ds, err := synth.Generate(synth.Config{
		Name: "fuzz", NumSessions: 30, NumItems: 20, Days: 3,
		Clusters: 4, ZipfS: 1.3, PStay: 0.8, RevisitProb: 0.05,
		LengthMu: 1.0, LengthSigma: 0.5, MaxLength: 10, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SRNIDX01garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads cleanly must be structurally sound enough to
		// query without panicking.
		rec, err := core.NewRecommender(loaded, core.Params{M: 5, K: 2})
		if err != nil {
			return
		}
		for item := 0; item < loaded.NumItems() && item < 8; item++ {
			rec.Recommend([]sessions.ItemID{sessions.ItemID(item)}, 5)
		}
	})
}
