package index

import (
	"bytes"
	"encoding/binary"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// FuzzLoad: the index loader must never panic or over-allocate on
// arbitrary bytes — it faces whatever the distributed filesystem hands it.
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file and a few mutations.
	ds, err := synth.Generate(synth.Config{
		Name: "fuzz", NumSessions: 30, NumItems: 20, Days: 3,
		Clusters: 4, ZipfS: 1.3, PStay: 0.8, RevisitProb: 0.05,
		LengthMu: 1.0, LengthSigma: 0.5, MaxLength: 10, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SRNIDX01garbage"))
	f.Add([]byte{})

	// v2 seeds: a valid section-table file, truncations that cut the header,
	// the table, and a payload, a flipped payload byte, and a hostile table
	// entry — the fuzzer mutates from here into overlap/bounds corner cases.
	var buf2 bytes.Buffer
	if err := SaveV2(&buf2, idx); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	f.Add(valid2)
	f.Add(valid2[:v2HeaderSize-1])
	f.Add(valid2[:v2TableEnd/2])
	f.Add(valid2[:len(valid2)-3])
	flipped := append([]byte(nil), valid2...)
	flipped[v2TableEnd+1] ^= 0x40
	f.Add(flipped)
	hostile := append([]byte(nil), valid2...)
	binary.LittleEndian.PutUint64(hostile[v2HeaderSize+2*v2SectionSize+16:], 1<<60) // huge byteLen
	f.Add(hostile)
	f.Add([]byte("SRNIDX02garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads cleanly must be structurally sound enough to
		// query without panicking.
		rec, err := core.NewRecommender(loaded, core.Params{M: 5, K: 2})
		if err != nil {
			return
		}
		for item := 0; item < loaded.NumItems() && item < 8; item++ {
			rec.Recommend([]sessions.ItemID{sessions.ItemID(item)}, 5)
		}
	})
}
