package index

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"serenade/internal/core"
	"serenade/internal/dataflow"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

func smallDataset(t *testing.T, seed int64) *sessions.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.Small(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// indexesEqual compares the observable state of two indexes.
func indexesEqual(t *testing.T, a, b *core.Index) {
	t.Helper()
	if a.NumSessions() != b.NumSessions() || a.NumItems() != b.NumItems() || a.Capacity() != b.Capacity() {
		t.Fatalf("shape differs: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumSessions(), a.NumItems(), a.Capacity(),
			b.NumSessions(), b.NumItems(), b.Capacity())
	}
	if !reflect.DeepEqual(a.Times(), b.Times()) {
		t.Fatal("timestamps differ")
	}
	for s := 0; s < a.NumSessions(); s++ {
		ai := a.SessionItems(sessions.SessionID(s))
		bi := b.SessionItems(sessions.SessionID(s))
		if !reflect.DeepEqual(ai, bi) {
			t.Fatalf("session %d items differ: %v vs %v", s, ai, bi)
		}
	}
	for i := 0; i < a.NumItems(); i++ {
		item := sessions.ItemID(i)
		if a.DF(item) != b.DF(item) {
			t.Fatalf("df(%d) differs: %d vs %d", i, a.DF(item), b.DF(item))
		}
		ap, bp := a.Postings(item), b.Postings(item)
		if len(ap) == 0 && len(bp) == 0 {
			continue
		}
		if !reflect.DeepEqual(ap, bp) {
			t.Fatalf("postings(%d) differ: %v vs %v", i, ap, bp)
		}
		if a.IDF(item) != b.IDF(item) {
			t.Fatalf("idf(%d) differs", i)
		}
	}
}

// TestParallelBuildMatchesSequential: the dataflow build must be
// bit-identical to core.BuildIndex, for several capacities and worker
// counts.
func TestParallelBuildMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 21)
	for _, capacity := range []int{0, 3, 100} {
		seq, err := core.BuildIndex(ds, capacity)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			par, err := Build(dataflow.NewEngine(workers), ds, capacity)
			if err != nil {
				t.Fatal(err)
			}
			indexesEqual(t, seq, par)
		}
	}
}

func TestParallelBuildEmptyDataset(t *testing.T) {
	empty := sessions.FromSessions("empty", nil)
	idx, err := Build(dataflow.NewEngine(4), empty, 100)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumSessions() != 0 {
		t.Errorf("sessions = %d, want 0", idx.NumSessions())
	}
	// The empty index must round-trip through the on-disk format.
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSessions() != 0 || back.NumItems() != 0 {
		t.Error("empty index changed across serialisation")
	}
}

func TestBuildRejectsBadDatasets(t *testing.T) {
	e := dataflow.NewEngine(2)
	sparse := sessions.FromSessions("bad", []sessions.Session{
		{ID: 3, Items: []sessions.ItemID{1}, Times: []int64{10}},
	})
	if _, err := Build(e, sparse, 0); err == nil {
		t.Error("non-dense ids accepted")
	}
	unordered := sessions.FromSessions("bad2", []sessions.Session{
		{ID: 0, Items: []sessions.ItemID{1}, Times: []int64{100}},
		{ID: 1, Items: []sessions.ItemID{2}, Times: []int64{50}},
	})
	if _, err := Build(e, unordered, 0); err == nil {
		t.Error("time-unordered sessions accepted")
	}
}

func TestSerdeRoundTrip(t *testing.T) {
	ds := smallDataset(t, 5)
	idx, err := core.BuildIndex(ds, 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, idx, back)
}

func TestSerdeRoundTripQueriesAgree(t *testing.T) {
	ds := smallDataset(t, 6)
	idx, _ := core.BuildIndex(ds, 0)
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{M: 100, K: 30}
	ra, _ := core.NewRecommender(idx, p)
	rb, _ := core.NewRecommender(back, p)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		q := []sessions.ItemID{sessions.ItemID(rng.Intn(500)), sessions.ItemID(rng.Intn(500))}
		a := ra.Recommend(q, 21)
		b := rb.Recommend(q, 21)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("loaded index disagrees on %v", q)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := smallDataset(t, 8)
	idx, _ := core.BuildIndex(ds, 0)
	path := filepath.Join(t.TempDir(), "index.srn")
	if err := SaveFile(path, idx); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, idx, back)
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "no.srn")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("NOTANIDX plus some payload")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	ds := smallDataset(t, 9)
	idx, _ := core.BuildIndex(ds, 0)
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, len(data) / 2, len(data) - 2} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	ds := smallDataset(t, 10)
	idx, _ := core.BuildIndex(ds, 0)
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(11))
	flipped := 0
	for trial := 0; trial < 40; trial++ {
		data := append([]byte(nil), pristine...)
		pos := 8 + rng.Intn(len(data)-8) // keep the magic intact
		data[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := Load(bytes.NewReader(data)); err == nil {
			// A flip inside the flate stream may decompress to the same
			// plaintext only if it is in padding; with a CRC trailer a
			// clean load of corrupted payload is a real failure.
			t.Errorf("bit flip at %d loaded cleanly", pos)
		} else {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("no corruption was exercised")
	}
}

// TestV1ForgedCountsDoNotOverAllocate: a 30-byte file whose header claims
// 2^31 sessions must fail without allocating anything like 2^31 elements —
// the loader's arrays may only grow with bytes actually decoded. (Found by
// FuzzLoad: the pre-fix loader eagerly allocated gigabytes from the claim.)
func TestV1ForgedCountsDoNotOverAllocate(t *testing.T) {
	var payload bytes.Buffer
	fw, err := flate.NewWriter(&payload, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	var varint [binary.MaxVarintLen64]byte
	for _, v := range []uint64{1<<31 - 1, 1<<31 - 1, 0} { // numSessions, numItems, capacity
		n := binary.PutUvarint(varint[:], v)
		fw.Write(varint[:n])
	}
	fw.Close()
	data := append([]byte("SRNIDX01"), payload.Bytes()...)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<22 {
		t.Errorf("forged header drove %d bytes of allocation, want well under 4MB", grew)
	}
}

func TestCompressionShrinks(t *testing.T) {
	ds := smallDataset(t, 12)
	idx, _ := core.BuildIndex(ds, 0)
	var buf bytes.Buffer
	if err := Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) >= idx.MemoryFootprint() {
		t.Errorf("serialised size %d not smaller than in-memory footprint %d", buf.Len(), idx.MemoryFootprint())
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	ds, err := synth.Generate(synth.Small(1))
	if err != nil {
		b.Fatal(err)
	}
	e := dataflow.NewEngine(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(e, ds, 500); err != nil {
			b.Fatal(err)
		}
	}
}
