//go:build linux || darwin

package index

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map index files read-only;
// LoadFile falls back to a one-arena heap read elsewhere.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping outlives the file
// descriptor; release it with munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
