package index

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Two on-disk formats coexist:
//
// v1 ("SRNIDX01"): an 8-byte magic header followed by a flate stream. The
// uncompressed stream is varint-encoded: counts, delta-encoded session
// timestamps, per-session item lists, and per-item posting lists stored as a
// head value plus descending deltas (posting lists are sorted by descending
// session id, so deltas are non-negative and small). A CRC-32 of the
// uncompressed payload terminates the stream. This stands in for the
// compressed Avro container the paper ships from the Spark job to the
// serving pods. Loading necessarily decodes every varint, but the decoder
// streams straight into the CSR arena, so allocations stay O(1) in the
// posting count.
//
// v2 ("SRNIDX02", see serde_v2.go): a section-table header over raw
// 8-byte-aligned little-endian arrays with per-section CRC-32s, laid out so
// LoadFile can mmap(2) the file and reinterpret the sections in place —
// daily index rollover becomes O(page-in) instead of O(decode+allocate).

var magic = [8]byte{'S', 'R', 'N', 'I', 'D', 'X', '0', '1'}

// Format names accepted by SaveFileFormat and the indexer's -format flag.
const (
	FormatV1 = "v1"
	FormatV2 = "v2"
)

// ErrCorrupt is returned when an index file fails checksum or structural
// validation.
var ErrCorrupt = errors.New("index: corrupt index file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Save serialises the index to w in format v1.
func Save(w io.Writer, idx *core.Index) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		return err
	}
	cw := &crcWriter{w: fw}
	bw := bufio.NewWriterSize(cw, 1<<16)

	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	numSessions := idx.NumSessions()
	numItems := idx.NumItems()
	if err := putUvarint(uint64(numSessions)); err != nil {
		return err
	}
	if err := putUvarint(uint64(numItems)); err != nil {
		return err
	}
	if err := putUvarint(uint64(idx.Capacity())); err != nil {
		return err
	}

	// Timestamps ascend; delta-encode.
	prev := int64(0)
	for _, t := range idx.Times() {
		if err := putUvarint(uint64(t - prev)); err != nil {
			return err
		}
		prev = t
	}

	// Per-session distinct item lists.
	for s := 0; s < numSessions; s++ {
		items := idx.SessionItems(sessions.SessionID(s))
		if err := putUvarint(uint64(len(items))); err != nil {
			return err
		}
		for _, it := range items {
			if err := putUvarint(uint64(it)); err != nil {
				return err
			}
		}
	}

	// Per-item document frequency and posting list (head + descending
	// deltas).
	for i := 0; i < numItems; i++ {
		item := sessions.ItemID(i)
		if err := putUvarint(uint64(idx.DF(item))); err != nil {
			return err
		}
		postings := idx.Postings(item)
		if err := putUvarint(uint64(len(postings))); err != nil {
			return err
		}
		prev := uint64(0)
		for k, sid := range postings {
			if k == 0 {
				if err := putUvarint(uint64(sid)); err != nil {
					return err
				}
			} else if err := putUvarint(prev - uint64(sid)); err != nil {
				return err
			}
			prev = uint64(sid)
		}
	}

	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: CRC of everything written so far, excluded from the CRC
	// itself.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if _, err := fw.Write(trailer[:]); err != nil {
		return err
	}
	return fw.Close()
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
	// one reusable byte for Update: a literal []byte{b} would escape and
	// cost one heap allocation per byte decoded.
	one [1]byte
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.one[0] = b
		c.crc = crc32.Update(c.crc, crc32.IEEETable, c.one[:])
	}
	return b, err
}

// Load deserialises an index written by Save (v1) or SaveV2 (v2),
// dispatching on the magic header and validating checksums and structural
// invariants. For file-backed zero-copy loading of v2 indexes use LoadFile.
func Load(r io.Reader) (*core.Index, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	switch head {
	case magic:
		return loadV1(r)
	case magicV2:
		return loadV2Stream(r)
	}
	return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
}

// loadV1 decodes a v1 stream (after its magic) straight into the CSR arena:
// the variable-length collections append to two flat data arrays while the
// offset arrays record the boundaries, so the decode performs O(1)
// allocations in the posting count instead of one per list.
func loadV1(r io.Reader) (*core.Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(flate.NewReader(r), 1<<16)}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(cr) }

	numSessions64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	numItems64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	capacity64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	const limit = 1 << 31
	if numSessions64 > limit || numItems64 > limit || capacity64 > limit {
		return nil, fmt.Errorf("%w: implausible header", ErrCorrupt)
	}
	numSessions, numItems, capacity := int(numSessions64), int(numItems64), int(capacity64)

	// Claimed counts are only trusted after their elements actually decode:
	// every array below grows by append (with a bounded capacity hint), so a
	// forged header cannot drive a huge allocation — memory tracks bytes
	// actually read. (A claimed 2^31 sessions would otherwise pre-allocate
	// gigabytes from a 30-byte file; the loader fuzzer found exactly that.)
	hint := func(n int) int { return min(n, 1<<16) }

	times := make([]int64, 0, hint(numSessions))
	prev := int64(0)
	for i := 0; i < numSessions; i++ {
		d, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: timestamps: %v", ErrCorrupt, err)
		}
		prev += int64(d)
		times = append(times, prev)
	}

	// Per-session item lists into the session-item arena.
	sessionItemOffsets := append(make([]uint32, 0, hint(numSessions+1)), 0)
	var sessionItemData []sessions.ItemID
	for s := 0; s < numSessions; s++ {
		count, err := readUvarint()
		if err != nil || count > limit {
			return nil, fmt.Errorf("%w: session items: %v", ErrCorrupt, err)
		}
		for j := uint64(0); j < count; j++ {
			v, err := readUvarint()
			if err != nil || v >= numItems64 {
				return nil, fmt.Errorf("%w: session item id: %v", ErrCorrupt, err)
			}
			sessionItemData = append(sessionItemData, sessions.ItemID(v))
		}
		total := uint64(sessionItemOffsets[s]) + count
		if total > math.MaxUint32 {
			return nil, fmt.Errorf("%w: session-item arena overflow", ErrCorrupt)
		}
		sessionItemOffsets = append(sessionItemOffsets, uint32(total))
	}

	// Per-item document frequency and posting list into the posting arena.
	postingOffsets := append(make([]uint32, 0, hint(numItems+1)), 0)
	var postingData []sessions.SessionID
	df := make([]int32, 0, hint(numItems))
	for i := 0; i < numItems; i++ {
		f, err := readUvarint()
		if err != nil || f > limit {
			return nil, fmt.Errorf("%w: document frequency: %v", ErrCorrupt, err)
		}
		df = append(df, int32(f))
		count, err := readUvarint()
		if err != nil || count > limit {
			return nil, fmt.Errorf("%w: posting length: %v", ErrCorrupt, err)
		}
		cur := uint64(0)
		for k := uint64(0); k < count; k++ {
			v, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("%w: posting id: %v", ErrCorrupt, err)
			}
			if k == 0 {
				cur = v
			} else {
				if v > cur {
					return nil, fmt.Errorf("%w: posting delta underflow", ErrCorrupt)
				}
				cur -= v
			}
			if cur >= numSessions64 {
				return nil, fmt.Errorf("%w: posting references unknown session", ErrCorrupt)
			}
			postingData = append(postingData, sessions.SessionID(cur))
		}
		total := uint64(postingOffsets[i]) + count
		if total > math.MaxUint32 {
			return nil, fmt.Errorf("%w: posting arena overflow", ErrCorrupt)
		}
		postingOffsets = append(postingOffsets, uint32(total))
	}

	// Verify the trailer: the CRC accumulated so far, compared against the
	// stored value (which must not itself be folded into the running CRC).
	want := cr.crc
	var trailer [4]byte
	for i := range trailer {
		b, err := cr.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing checksum trailer", ErrCorrupt)
		}
		trailer[i] = b
	}
	if binary.LittleEndian.Uint32(trailer[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	// The flate stream must terminate cleanly right after the trailer;
	// anything else means the file was truncated or has trailing garbage.
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: stream does not end after checksum (%v)", ErrCorrupt, err)
	}

	idx, err := core.NewIndexFromCSR(core.CSR{
		Times:              times,
		PostingOffsets:     postingOffsets,
		PostingData:        postingData,
		SessionItemOffsets: sessionItemOffsets,
		SessionItemData:    sessionItemData,
		DF:                 df,
	}, capacity, core.Arena{})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return idx, nil
}

// SaveFile writes the index to path atomically (via a temporary file) in the
// default format, v2.
func SaveFile(path string, idx *core.Index) error {
	return SaveFileFormat(path, idx, FormatV2)
}

// SaveFileFormat writes the index to path atomically in the requested
// on-disk format ("v1" or "v2").
func SaveFileFormat(path string, idx *core.Index, format string) (err error) {
	var save func(io.Writer, *core.Index) error
	switch format {
	case FormatV1:
		save = Save
	case FormatV2, "":
		save = SaveV2
	default:
		return fmt.Errorf("index: unknown format %q (want %q or %q)", format, FormatV1, FormatV2)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err = save(f, idx); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an index written by SaveFile. v2 files on little-endian
// unix hosts are mmap(2)ed and reinterpreted in place — zero copies, O(1)
// allocations — and the returned index holds the mapping until Close;
// elsewhere, and for v1 files, the file is decoded into a heap-resident
// arena and Close is a no-op.
func LoadFile(path string) (*core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // a successful mmap survives the descriptor's close

	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if head == magic {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return Load(f)
	}
	if head != magicV2 {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()

	if mmapSupported && hostLittleEndian && size == int64(int(size)) {
		if data, merr := mmapFile(f, size); merr == nil {
			idx, perr := parseV2(data, core.Arena{
				Bytes:  size,
				Mapped: true,
				Close:  func() error { return munmapFile(data) },
			})
			if perr != nil {
				munmapFile(data)
				return nil, perr
			}
			return idx, nil
		}
		// mmap can fail on exotic filesystems; fall through to the copying
		// path rather than refusing to serve.
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return loadV2Into(f, size)
}
