package index

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// On-disk layout: an 8-byte magic header followed by a flate stream. The
// uncompressed stream is varint-encoded: counts, delta-encoded session
// timestamps, per-session item lists, and per-item posting lists stored as a
// head value plus descending deltas (posting lists are sorted by descending
// session id, so deltas are non-negative and small). A CRC-32 of the
// uncompressed payload terminates the stream. This stands in for the
// compressed Avro container the paper ships from the Spark job to the
// serving pods.

var magic = [8]byte{'S', 'R', 'N', 'I', 'D', 'X', '0', '1'}

// ErrCorrupt is returned when an index file fails checksum or structural
// validation.
var ErrCorrupt = errors.New("index: corrupt index file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Save serialises the index to w.
func Save(w io.Writer, idx *core.Index) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		return err
	}
	cw := &crcWriter{w: fw}
	bw := bufio.NewWriterSize(cw, 1<<16)

	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}

	numSessions := idx.NumSessions()
	numItems := idx.NumItems()
	if err := putUvarint(uint64(numSessions)); err != nil {
		return err
	}
	if err := putUvarint(uint64(numItems)); err != nil {
		return err
	}
	if err := putUvarint(uint64(idx.Capacity())); err != nil {
		return err
	}

	// Timestamps ascend; delta-encode.
	prev := int64(0)
	for _, t := range idx.Times() {
		if err := putUvarint(uint64(t - prev)); err != nil {
			return err
		}
		prev = t
	}

	// Per-session distinct item lists.
	for s := 0; s < numSessions; s++ {
		items := idx.SessionItems(sessions.SessionID(s))
		if err := putUvarint(uint64(len(items))); err != nil {
			return err
		}
		for _, it := range items {
			if err := putUvarint(uint64(it)); err != nil {
				return err
			}
		}
	}

	// Per-item document frequency and posting list (head + descending
	// deltas).
	for i := 0; i < numItems; i++ {
		item := sessions.ItemID(i)
		if err := putUvarint(uint64(idx.DF(item))); err != nil {
			return err
		}
		postings := idx.Postings(item)
		if err := putUvarint(uint64(len(postings))); err != nil {
			return err
		}
		prev := uint64(0)
		for k, sid := range postings {
			if k == 0 {
				if err := putUvarint(uint64(sid)); err != nil {
					return err
				}
			} else if err := putUvarint(prev - uint64(sid)); err != nil {
				return err
			}
			prev = uint64(sid)
		}
	}

	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: CRC of everything written so far, excluded from the CRC
	// itself.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if _, err := fw.Write(trailer[:]); err != nil {
		return err
	}
	return fw.Close()
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// Load deserialises an index written by Save, validating the checksum and
// the structural invariants.
func Load(r io.Reader) (*core.Index, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if head != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	cr := &crcReader{r: bufio.NewReaderSize(flate.NewReader(r), 1<<16)}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(cr) }

	numSessions64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	numItems64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	capacity64, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	const limit = 1 << 31
	if numSessions64 > limit || numItems64 > limit || capacity64 > limit {
		return nil, fmt.Errorf("%w: implausible header", ErrCorrupt)
	}
	numSessions, numItems, capacity := int(numSessions64), int(numItems64), int(capacity64)

	times := make([]int64, numSessions)
	prev := int64(0)
	for i := range times {
		d, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: timestamps: %v", ErrCorrupt, err)
		}
		prev += int64(d)
		times[i] = prev
	}

	sessionItems := make([][]sessions.ItemID, numSessions)
	for s := range sessionItems {
		count, err := readUvarint()
		if err != nil || count > limit {
			return nil, fmt.Errorf("%w: session items: %v", ErrCorrupt, err)
		}
		items := make([]sessions.ItemID, count)
		for j := range items {
			v, err := readUvarint()
			if err != nil || v >= numItems64 {
				return nil, fmt.Errorf("%w: session item id: %v", ErrCorrupt, err)
			}
			items[j] = sessions.ItemID(v)
		}
		sessionItems[s] = items
	}

	postings := make([][]sessions.SessionID, numItems)
	df := make([]int32, numItems)
	for i := range postings {
		f, err := readUvarint()
		if err != nil || f > limit {
			return nil, fmt.Errorf("%w: document frequency: %v", ErrCorrupt, err)
		}
		df[i] = int32(f)
		count, err := readUvarint()
		if err != nil || count > limit {
			return nil, fmt.Errorf("%w: posting length: %v", ErrCorrupt, err)
		}
		if count == 0 {
			continue
		}
		list := make([]sessions.SessionID, count)
		cur := uint64(0)
		for k := range list {
			v, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("%w: posting id: %v", ErrCorrupt, err)
			}
			if k == 0 {
				cur = v
			} else {
				if v > cur {
					return nil, fmt.Errorf("%w: posting delta underflow", ErrCorrupt)
				}
				cur -= v
			}
			if cur >= numSessions64 {
				return nil, fmt.Errorf("%w: posting references unknown session", ErrCorrupt)
			}
			list[k] = sessions.SessionID(cur)
		}
		postings[i] = list
	}

	// Verify the trailer: the CRC accumulated so far, compared against the
	// stored value (which must not itself be folded into the running CRC).
	want := cr.crc
	var trailer [4]byte
	for i := range trailer {
		b, err := cr.r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing checksum trailer", ErrCorrupt)
		}
		trailer[i] = b
	}
	if binary.LittleEndian.Uint32(trailer[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	// The flate stream must terminate cleanly right after the trailer;
	// anything else means the file was truncated or has trailing garbage.
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: stream does not end after checksum (%v)", ErrCorrupt, err)
	}

	idx, err := core.NewIndexFromParts(times, postings, sessionItems, df, capacity)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return idx, nil
}

// SaveFile writes the index to path atomically (via a temporary file).
func SaveFile(path string, idx *core.Index) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if err = Save(f, idx); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads an index written by SaveFile.
func LoadFile(path string) (*core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
