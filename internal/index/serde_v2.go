package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// On-disk format v2 ("SRNIDX02"): the CSR arena, verbatim.
//
//	[0:8)    magic "SRNIDX02"
//	[8:16)   uint64 numSessions          (little-endian, like all fields)
//	[16:24)  uint64 numItems
//	[24:32)  uint64 capacity
//	[32:36)  uint32 section count (7 or 8)
//	[36:40)  uint32 reserved (0)
//	[40:E)   section table: count × {uint32 id, uint32 crc32, uint64 offset,
//	         uint64 byteLen}, ids 1..count in order, offsets absolute and
//	         8-byte aligned, sections non-overlapping and in offset order
//	[E:)     section payloads: raw little-endian arrays, 8-byte aligned
//
// Sections, in id order: session timestamps (int64), posting offsets
// (uint32, numItems+1), posting data (uint32 session ids), session-item
// offsets (uint32, numSessions+1), session-item data (uint32 item ids),
// document frequencies (int32), idf weights (float64), and — only when the
// index stores a non-identity posting layout — the posting remap (uint32
// item→row, numItems entries). Files written before the remap existed carry
// seven sections and load with the identity layout, so the section count is
// the format's forward-compatible degree of freedom. Each section's CRC-32
// (IEEE) covers exactly its payload bytes.
//
// The payload arrays are the in-memory representation, so a loader on a
// little-endian host may map the file and alias the sections directly —
// no decode step, no per-list allocation, and the kernel pages the index
// in on demand. Big-endian hosts (and io.Reader loads) fall back to
// reading into a single aligned arena.

var magicV2 = [8]byte{'S', 'R', 'N', 'I', 'D', 'X', '0', '2'}

const (
	v2HeaderSize   = 40
	v2SectionSize  = 24
	v2NumSections  = 7 // sections every v2 file carries
	v2MaxSections  = 8 // + the optional posting remap
	v2CountLimit   = 1 << 31
	secTimes       = 1
	secPostOffsets = 2
	secPostData    = 3
	secItemOffsets = 4
	secItemData    = 5
	secDF          = 6
	secIDF         = 7
	secPostRemap   = 8
)

// v2TableEnd reports where a file's section payloads begin.
func v2TableEnd(numSections int) uint64 {
	return v2HeaderSize + uint64(numSections)*v2SectionSize
}

// hostLittleEndian gates the zero-copy reinterpretation of mapped sections;
// big-endian hosts decode copies instead.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// v2Layout computes the section payloads and their file offsets for an
// index about to be written: seven sections, plus the posting remap when the
// index stores a non-identity layout.
type v2Layout struct {
	payloads [][]byte
	offsets  []uint64
	total    uint64
}

func buildV2Layout(idx *core.Index) v2Layout {
	c := idx.CSR()
	var l v2Layout
	l.payloads = [][]byte{
		int64LEBytes(c.Times),
		uint32LEBytes(c.PostingOffsets),
		sessionIDLEBytes(c.PostingData),
		uint32LEBytes(c.SessionItemOffsets),
		itemIDLEBytes(c.SessionItemData),
		int32LEBytes(c.DF),
		float64LEBytes(c.IDF),
	}
	if c.PostingRemap != nil {
		l.payloads = append(l.payloads, uint32LEBytes(c.PostingRemap))
	}
	off := v2TableEnd(len(l.payloads))
	l.offsets = make([]uint64, len(l.payloads))
	for i, p := range l.payloads {
		l.offsets[i] = off
		off = align8(off + uint64(len(p)))
	}
	l.total = off
	return l
}

// SaveV2 serialises the index to w in format v2.
func SaveV2(w io.Writer, idx *core.Index) error {
	l := buildV2Layout(idx)

	bw := bufio.NewWriterSize(w, 1<<16)
	header := make([]byte, v2TableEnd(len(l.payloads)))
	copy(header[0:8], magicV2[:])
	le := binary.LittleEndian
	le.PutUint64(header[8:16], uint64(idx.NumSessions()))
	le.PutUint64(header[16:24], uint64(idx.NumItems()))
	le.PutUint64(header[24:32], uint64(idx.Capacity()))
	le.PutUint32(header[32:36], uint32(len(l.payloads)))
	for i, p := range l.payloads {
		entry := header[v2HeaderSize+i*v2SectionSize:]
		le.PutUint32(entry[0:4], uint32(i+1))
		le.PutUint32(entry[4:8], crc32.ChecksumIEEE(p))
		le.PutUint64(entry[8:16], l.offsets[i])
		le.PutUint64(entry[16:24], uint64(len(p)))
	}
	if _, err := bw.Write(header[:]); err != nil {
		return err
	}
	var pad [8]byte
	for i, p := range l.payloads {
		if _, err := bw.Write(p); err != nil {
			return err
		}
		end := l.offsets[i] + uint64(len(p))
		if n := align8(end) - end; n > 0 {
			if _, err := bw.Write(pad[:n]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// loadV2Stream reads a v2 stream (after its magic) from an io.Reader: the
// remainder is copied into one 8-byte-aligned heap arena and the sections
// are reinterpreted in place, so allocations stay O(1) in the index size.
func loadV2Stream(r io.Reader) (*core.Index, error) {
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading v2 payload: %v", ErrCorrupt, err)
	}
	buf := alignedBuffer(int64(8 + len(rest)))
	copy(buf, magicV2[:])
	copy(buf[8:], rest)
	return parseV2(buf, core.Arena{Bytes: int64(len(buf))})
}

// loadV2Into reads a v2 file of known size into one aligned heap arena — the
// fallback when mmap is unavailable or failed.
func loadV2Into(r io.Reader, size int64) (*core.Index, error) {
	if size < v2HeaderSize || size != int64(int(size)) {
		return nil, fmt.Errorf("%w: implausible v2 file size %d", ErrCorrupt, size)
	}
	buf := alignedBuffer(size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: reading v2 file: %v", ErrCorrupt, err)
	}
	return parseV2(buf, core.Arena{Bytes: size})
}

// alignedBuffer allocates an n-byte buffer whose base address is 8-byte
// aligned, so fixed-width sections can be reinterpreted in place. (A plain
// []byte allocation may be placed by the tiny allocator without alignment.)
func alignedBuffer(n int64) []byte {
	if n <= 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// parseV2 validates a complete v2 image (header, section table, per-section
// CRCs, structural invariants) and assembles the index over it. On
// little-endian hosts the index aliases buf — zero copies, zero per-posting
// allocations — and owns the arena described by arena; big-endian hosts
// decode heap copies and release the arena via its Close immediately. Every
// failure is reported as ErrCorrupt without closing the arena (the caller
// unmaps on error).
func parseV2(buf []byte, arena core.Arena) (*core.Index, error) {
	if len(buf) < v2HeaderSize {
		return nil, fmt.Errorf("%w: truncated v2 header", ErrCorrupt)
	}
	if [8]byte(buf[0:8]) != magicV2 {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	le := binary.LittleEndian
	numSessions64 := le.Uint64(buf[8:16])
	numItems64 := le.Uint64(buf[16:24])
	capacity64 := le.Uint64(buf[24:32])
	if numSessions64 > v2CountLimit || numItems64 > v2CountLimit || capacity64 > v2CountLimit {
		return nil, fmt.Errorf("%w: implausible header", ErrCorrupt)
	}
	numSections := int(le.Uint32(buf[32:36]))
	if numSections != v2NumSections && numSections != v2MaxSections {
		return nil, fmt.Errorf("%w: section count %d, want %d or %d", ErrCorrupt, numSections, v2NumSections, v2MaxSections)
	}
	if uint64(len(buf)) < v2TableEnd(numSections) {
		return nil, fmt.Errorf("%w: truncated v2 section table", ErrCorrupt)
	}

	// Expected byte lengths of the fixed-size sections; 0 marks the two
	// variable-length data sections (their lengths are cross-checked against
	// the offset arrays by core.NewIndexFromCSR).
	expect := [v2MaxSections]uint64{
		numSessions64 * 8,
		(numItems64 + 1) * 4,
		0,
		(numSessions64 + 1) * 4,
		0,
		numItems64 * 4,
		numItems64 * 8,
		numItems64 * 4, // posting remap (when present)
	}
	elemSize := [v2MaxSections]uint64{8, 4, 4, 4, 4, 4, 8, 4}

	var payloads [v2MaxSections][]byte
	prevEnd := v2TableEnd(numSections)
	for i := 0; i < numSections; i++ {
		entry := buf[v2HeaderSize+i*v2SectionSize:]
		id := le.Uint32(entry[0:4])
		crc := le.Uint32(entry[4:8])
		offset := le.Uint64(entry[8:16])
		byteLen := le.Uint64(entry[16:24])
		if id != uint32(i+1) {
			return nil, fmt.Errorf("%w: section %d has id %d", ErrCorrupt, i, id)
		}
		if offset%8 != 0 {
			return nil, fmt.Errorf("%w: section %d misaligned at offset %d", ErrCorrupt, id, offset)
		}
		if offset < prevEnd {
			return nil, fmt.Errorf("%w: section %d overlaps its predecessor", ErrCorrupt, id)
		}
		if offset > uint64(len(buf)) || byteLen > uint64(len(buf))-offset {
			return nil, fmt.Errorf("%w: section %d extends past end of file", ErrCorrupt, id)
		}
		if expect[i] != 0 && byteLen != expect[i] {
			return nil, fmt.Errorf("%w: section %d has %d bytes, want %d", ErrCorrupt, id, byteLen, expect[i])
		}
		if byteLen%elemSize[i] != 0 {
			return nil, fmt.Errorf("%w: section %d length %d not a multiple of %d", ErrCorrupt, id, byteLen, elemSize[i])
		}
		p := buf[offset : offset+byteLen]
		if crc32.ChecksumIEEE(p) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
		}
		payloads[i] = p
		prevEnd = offset + byteLen
	}

	c := core.CSR{
		Times:              int64Section(payloads[secTimes-1]),
		PostingOffsets:     uint32Section(payloads[secPostOffsets-1]),
		PostingData:        sessionIDSection(payloads[secPostData-1]),
		SessionItemOffsets: uint32Section(payloads[secItemOffsets-1]),
		SessionItemData:    itemIDSection(payloads[secItemData-1]),
		DF:                 int32Section(payloads[secDF-1]),
		IDF:                float64Section(payloads[secIDF-1]),
	}
	if numSections >= secPostRemap {
		c.PostingRemap = uint32Section(payloads[secPostRemap-1])
	}
	releaseNow := func() error { return nil }
	if !hostLittleEndian {
		// The sections above are heap copies: the index must not retain the
		// arena, which is released as soon as construction succeeds.
		if arena.Close != nil {
			releaseNow = arena.Close
		}
		arena = core.Arena{}
	}
	idx, err := core.NewIndexFromCSR(c, int(capacity64), arena)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if cerr := releaseNow(); cerr != nil {
		return nil, cerr
	}
	return idx, nil
}

// --- typed-slice ↔ little-endian-bytes conversions ---
//
// On little-endian hosts these are zero-copy reinterpretations (the caller
// guarantees 8-byte alignment of the byte slices); on big-endian hosts they
// encode/decode through explicit copies. All the element types are
// fixed-width with no padding, so the views are exact.

func int64Section(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func float64Section(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func uint32Section(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func int32Section(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func sessionIDSection(b []byte) []sessions.SessionID {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*sessions.SessionID)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]sessions.SessionID, len(b)/4)
	for i := range out {
		out[i] = sessions.SessionID(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func itemIDSection(b []byte) []sessions.ItemID {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*sessions.ItemID)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]sessions.ItemID, len(b)/4)
	for i := range out {
		out[i] = sessions.ItemID(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func int64LEBytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func float64LEBytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func uint32LEBytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func int32LEBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func sessionIDLEBytes(s []sessions.SessionID) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func itemIDLEBytes(s []sessions.ItemID) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}
