package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
	"serenade/internal/synth"
)

// saveV2Bytes serialises idx in format v2 and returns the raw file image.
func saveV2Bytes(t testing.TB, idx *core.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveV2(&buf, idx); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTemp materialises data as a file for LoadFile (the mmap path).
func writeTemp(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.srn")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestV2RoundTripReader(t *testing.T) {
	ds := smallDataset(t, 14)
	idx, err := core.BuildIndex(ds, 50)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(saveV2Bytes(t, idx)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Mapped() {
		t.Error("reader-loaded index claims to be mapped")
	}
	indexesEqual(t, idx, back)
}

func TestV2RoundTripFileMmap(t *testing.T) {
	ds := smallDataset(t, 15)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.srn")
	if err := SaveFileFormat(path, idx, FormatV2); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if want := mmapSupported && hostLittleEndian; back.Mapped() != want {
		t.Errorf("Mapped() = %v, want %v on this platform", back.Mapped(), want)
	}
	indexesEqual(t, idx, back)
	heap, mm := back.MemoryBreakdown()
	if back.Mapped() {
		if mm == 0 {
			t.Error("mapped index reports zero mmap-resident bytes")
		}
		if heap >= mm {
			t.Errorf("mapped index heap bytes %d should be far below mmap bytes %d", heap, mm)
		}
	} else if mm != 0 {
		t.Errorf("unmapped index reports %d mmap bytes", mm)
	}
	if err := back.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if !back.Closed() {
		t.Error("Closed() false after Close")
	}
}

// TestV1V2RoundTripEquivalence: the same index shipped through both on-disk
// formats must load to identical observable state — the compatibility
// guarantee that lets a fleet mix old and new index files during rollout.
func TestV1V2RoundTripEquivalence(t *testing.T) {
	ds := smallDataset(t, 16)
	idx, err := core.BuildIndex(ds, 80)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "v1.srn")
	if err := SaveFileFormat(v1Path, idx, FormatV1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := LoadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.Mapped() {
		t.Error("v1 load must not be mapped")
	}
	indexesEqual(t, idx, fromV1)

	// Re-export the v1-loaded index as v2 and load that: still identical.
	v2Path := filepath.Join(dir, "v2.srn")
	if err := SaveFileFormat(v2Path, fromV1, FormatV2); err != nil {
		t.Fatal(err)
	}
	fromV2, err := LoadFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer fromV2.Close()
	indexesEqual(t, idx, fromV2)
	indexesEqual(t, fromV1, fromV2)
}

func TestV2EmptyIndex(t *testing.T) {
	empty := sessions.FromSessions("empty", nil)
	idx, err := core.BuildIndex(empty, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(writeTemp(t, saveV2Bytes(t, idx)))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.NumSessions() != 0 || back.NumItems() != 0 {
		t.Error("empty index changed across v2 serialisation")
	}
}

// TestV2QueriesMatchReference: an mmap-loaded v2 index must answer queries
// bit-identically to the freshly built index, checked against the map-based
// reference recommender — the differential property test for the zero-copy
// path.
func TestV2QueriesMatchReference(t *testing.T) {
	ds := smallDataset(t, 17)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(writeTemp(t, saveV2Bytes(t, idx)))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	p := core.Params{M: 100, K: 30}
	rm, err := core.NewRecommender(loaded, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewReferenceRecommender(idx, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 100; trial++ {
		q := make([]sessions.ItemID, 1+rng.Intn(6))
		for i := range q {
			q[i] = sessions.ItemID(rng.Intn(500))
		}
		got := rm.Recommend(q, 21)
		want := ref.Recommend(q, 21)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mmap-loaded recommender disagrees with reference on %v:\n got %v\nwant %v", q, got, want)
		}
	}
}

// v2Sections parses the section table of a pristine v2 image so corruption
// tests can aim at precise byte ranges (7 or 8 entries, per the header).
func v2Sections(t *testing.T, data []byte) []struct{ offset, byteLen uint64 } {
	t.Helper()
	le := binary.LittleEndian
	secs := make([]struct{ offset, byteLen uint64 }, le.Uint32(data[32:36]))
	for i := range secs {
		entry := data[v2HeaderSize+i*v2SectionSize:]
		secs[i].offset = le.Uint64(entry[8:16])
		secs[i].byteLen = le.Uint64(entry[16:24])
	}
	return secs
}

// loadBoth runs the corrupt image through both decode paths — the io.Reader
// stream parser and the file-backed (mmap on this platform) parser — and
// requires each to fail with ErrCorrupt without panicking.
func loadBoth(t *testing.T, data []byte, label string) {
	t.Helper()
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("%s: Load err = %v, want ErrCorrupt", label, err)
	}
	if idx, err := LoadFile(writeTemp(t, data)); !errors.Is(err, ErrCorrupt) {
		if idx != nil {
			idx.Close()
		}
		t.Errorf("%s: LoadFile err = %v, want ErrCorrupt", label, err)
	}
}

// TestV2BitFlipEverySection: a single flipped bit inside any of the seven
// payload sections must be caught by that section's CRC.
func TestV2BitFlipEverySection(t *testing.T) {
	ds := smallDataset(t, 19)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	pristine := saveV2Bytes(t, idx)
	secs := v2Sections(t, pristine)
	rng := rand.New(rand.NewSource(20))
	for i, sec := range secs {
		if sec.byteLen == 0 {
			continue
		}
		data := append([]byte(nil), pristine...)
		pos := sec.offset + uint64(rng.Int63n(int64(sec.byteLen)))
		data[pos] ^= 1 << uint(rng.Intn(8))
		loadBoth(t, data, fmt.Sprintf("section %d flip at %d", i+1, pos))
	}
}

func TestV2TruncationRejected(t *testing.T) {
	ds := smallDataset(t, 21)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	pristine := saveV2Bytes(t, idx)
	tableEnd := int(v2TableEnd(v2NumSections))
	for _, cut := range []int{9, v2HeaderSize - 1, tableEnd - 4, tableEnd + 8, len(pristine) / 2, len(pristine) - 1} {
		loadBoth(t, pristine[:cut], fmt.Sprintf("truncated to %d", cut))
	}
}

// TestV2SectionTableAttacks hand-crafts hostile section tables: overlapping
// sections, offsets or lengths past the end of the file, misaligned offsets,
// wrong ids, and absurd header counts. All must be rejected cleanly — and a
// huge claimed byteLen must fail the bounds check, never drive an
// allocation.
func TestV2SectionTableAttacks(t *testing.T) {
	ds := smallDataset(t, 22)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	pristine := saveV2Bytes(t, idx)
	le := binary.LittleEndian

	patch := func(label string, mutate func(data []byte)) {
		data := append([]byte(nil), pristine...)
		mutate(data)
		loadBoth(t, data, label)
	}
	entry := func(data []byte, i int) []byte {
		return data[v2HeaderSize+i*v2SectionSize : v2HeaderSize+(i+1)*v2SectionSize]
	}

	patch("section 3 overlaps section 2", func(d []byte) {
		e2 := entry(d, 1)
		le.PutUint64(entry(d, 2)[8:16], le.Uint64(e2[8:16])) // same offset as predecessor
	})
	patch("offset past end of file", func(d []byte) {
		le.PutUint64(entry(d, 4)[8:16], uint64(len(d))+8)
	})
	patch("byteLen past end of file", func(d []byte) {
		le.PutUint64(entry(d, 2)[16:24], uint64(len(d)))
	})
	patch("huge byteLen must not allocate", func(d []byte) {
		le.PutUint64(entry(d, 2)[16:24], 1<<60)
	})
	patch("offset+byteLen wraps uint64", func(d []byte) {
		le.PutUint64(entry(d, 2)[8:16], ^uint64(0)&^7) // aligned, near max
		le.PutUint64(entry(d, 2)[16:24], 16)
	})
	patch("misaligned section offset", func(d []byte) {
		e := entry(d, 2)
		le.PutUint64(e[8:16], le.Uint64(e[8:16])+4)
	})
	patch("wrong section id", func(d []byte) {
		le.PutUint32(entry(d, 3)[0:4], 9)
	})
	patch("wrong section count", func(d []byte) {
		le.PutUint32(d[32:36], 6)
	})
	patch("implausible session count", func(d []byte) {
		le.PutUint64(d[8:16], 1<<40)
	})
	patch("fixed section resized", func(d []byte) {
		e := entry(d, 5) // df: must be numItems*4 bytes
		le.PutUint64(e[16:24], le.Uint64(e[16:24])-4)
	})
	patch("stale crc after honest resize", func(d []byte) {
		// Shrink the posting-data section AND fix its CRC: the offset arrays
		// now point past the section, which NewIndexFromCSR must reject.
		e := entry(d, 2)
		off, n := le.Uint64(e[8:16]), le.Uint64(e[16:24])
		if n < 8 {
			t.Skip("posting data too small")
		}
		le.PutUint64(e[16:24], n-8)
		le.PutUint32(e[4:8], crc32.ChecksumIEEE(d[off:off+n-8]))
	})
}

// TestV2RemapRoundTrip: a popularity-remapped index serialises with the
// optional eighth section and loads back — through both the mmap and the
// stream path — with the remap intact and identical observable state to the
// original identity-layout index.
func TestV2RemapRoundTrip(t *testing.T) {
	ds := smallDataset(t, 23)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := idx.RemappedByPopularity()
	if err != nil {
		t.Fatal(err)
	}
	data := saveV2Bytes(t, remapped)
	if got := binary.LittleEndian.Uint32(data[32:36]); got != v2MaxSections {
		t.Fatalf("remapped index wrote %d sections, want %d", got, v2MaxSections)
	}

	fromFile, err := LoadFile(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer fromFile.Close()
	if !fromFile.Remapped() {
		t.Error("file-loaded index lost its posting remap")
	}
	indexesEqual(t, idx, fromFile)

	fromStream, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !fromStream.Remapped() {
		t.Error("stream-loaded index lost its posting remap")
	}
	indexesEqual(t, idx, fromStream)
}

// TestV2WithoutRemapLoadsIdentity pins backward compatibility: a plain
// seven-section v2 file (everything written before the remap existed) still
// loads, with the identity posting layout.
func TestV2WithoutRemapLoadsIdentity(t *testing.T) {
	ds := smallDataset(t, 24)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := saveV2Bytes(t, idx)
	if got := binary.LittleEndian.Uint32(data[32:36]); got != v2NumSections {
		t.Fatalf("identity-layout index wrote %d sections, want %d", got, v2NumSections)
	}
	back, err := LoadFile(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Remapped() {
		t.Error("seven-section file loaded with a remap")
	}
	indexesEqual(t, idx, back)
}

// TestV2RemapSectionAttacks aims hostile mutations at the remap section:
// out-of-range rows and duplicate rows (with honestly recomputed CRCs, so the
// permutation check itself must catch them), a wrong section id, a truncated
// eighth table entry, and an absurd section count.
func TestV2RemapSectionAttacks(t *testing.T) {
	ds := smallDataset(t, 25)
	idx, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	remapped, err := idx.RemappedByPopularity()
	if err != nil {
		t.Fatal(err)
	}
	pristine := saveV2Bytes(t, remapped)
	le := binary.LittleEndian
	secs := v2Sections(t, pristine)
	remapSec := secs[secPostRemap-1]
	if remapSec.byteLen < 8 {
		t.Fatal("remap section implausibly small")
	}

	patchPayload := func(label string, mutate func(payload []byte)) {
		data := append([]byte(nil), pristine...)
		payload := data[remapSec.offset : remapSec.offset+remapSec.byteLen]
		mutate(payload)
		entry := data[v2HeaderSize+(secPostRemap-1)*v2SectionSize:]
		le.PutUint32(entry[4:8], crc32.ChecksumIEEE(payload))
		loadBoth(t, data, label)
	}
	patchPayload("remap row out of range", func(p []byte) {
		le.PutUint32(p, uint32(remapped.NumItems()))
	})
	patchPayload("remap row duplicated", func(p []byte) {
		le.PutUint32(p, le.Uint32(p[4:8]))
	})

	data := append([]byte(nil), pristine...)
	le.PutUint32(data[v2HeaderSize+(secPostRemap-1)*v2SectionSize:], 9)
	loadBoth(t, data, "remap section wrong id")

	data = append([]byte(nil), pristine...)
	le.PutUint32(data[32:36], 9)
	loadBoth(t, data, "section count 9")

	loadBoth(t, pristine[:v2TableEnd(v2MaxSections)-4], "table truncated before remap entry")
}

// TestLoadFileV2Allocs pins the headline property of the v2 loader: the
// number of heap allocations is a small constant, independent of how many
// sessions and postings the file holds. A 25× larger index must not cost a
// single extra allocation class.
func TestLoadFileV2Allocs(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("zero-copy load not available on this platform")
	}
	build := func(numSessions int) string {
		cfg := synth.Small(33)
		cfg.NumSessions = numSessions
		ds, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := core.BuildIndex(ds, 0)
		if err != nil {
			t.Fatal(err)
		}
		return writeTemp(t, saveV2Bytes(t, idx))
	}
	measure := func(path string) float64 {
		return testing.AllocsPerRun(10, func() {
			idx, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			idx.Close()
		})
	}
	small := measure(build(200))
	large := measure(build(5000))
	if large > small+2 {
		t.Errorf("v2 load allocations scale with index size: %.0f allocs for 200 sessions, %.0f for 5000", small, large)
	}
	// ~2 dozen covers the file handle, stat, mmap bookkeeping, index struct
	// and slice headers; per-posting allocation would be tens of thousands.
	if large > 40 {
		t.Errorf("v2 load performs %.0f allocations, want O(1) (≤40)", large)
	}
}

// --- load benchmarks (EXPERIMENTS.md E13) ---

func benchIndexFiles(b *testing.B) (v1Path, v2Path string) {
	b.Helper()
	cfg := synth.Small(44)
	cfg.NumSessions = 20_000
	cfg.NumItems = 5_000
	ds, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.BuildIndex(ds, 500)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	v1Path = filepath.Join(dir, "v1.srn")
	v2Path = filepath.Join(dir, "v2.srn")
	if err := SaveFileFormat(v1Path, idx, FormatV1); err != nil {
		b.Fatal(err)
	}
	if err := SaveFileFormat(v2Path, idx, FormatV2); err != nil {
		b.Fatal(err)
	}
	return v1Path, v2Path
}

func BenchmarkLoadFileV1(b *testing.B) {
	v1Path, _ := benchIndexFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := LoadFile(v1Path)
		if err != nil {
			b.Fatal(err)
		}
		idx.Close()
	}
}

func BenchmarkLoadFileV2Mmap(b *testing.B) {
	_, v2Path := benchIndexFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := LoadFile(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		idx.Close()
	}
}
