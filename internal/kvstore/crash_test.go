package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"serenade/internal/failpoint"
)

// killHit picks the failpoint hit on which the simulated kill fires. The
// write-path points fire once per Put/Delete, so killing on a later hit
// lets earlier operations be acknowledged first (including past the
// mid-workload Compact); the compaction points fire once, inside Compact.
func killHit(point string) int {
	switch point {
	case FailWALAppend, FailWALAppendPartial, FailWALSync, FailMemtablePublish:
		return 14
	}
	return 1
}

// TestKillAtEveryPoint is the crash harness for the durability contract:
// for each failpoint in the commit/compact sequence it runs a workload with
// -wal-sync=always up to a kill at that point, reopens the store, and
// checks the recovered state against the acknowledged-write oracle. Every
// acknowledged Put/Delete must be recovered exactly; the single in-flight
// operation at the kill may be either applied or absent (it was never
// acknowledged); nothing else may appear.
func TestKillAtEveryPoint(t *testing.T) {
	for _, point := range CrashPoints {
		t.Run(point, func(t *testing.T) {
			defer failpoint.DisableAll()
			dir := t.TempDir()
			s, err := Open(Options{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close() // fd hygiene only; the "crash" is the abandon below

			failpoint.Enable(point, failpoint.After(killHit(point), failpoint.ErrKilled))

			oracle := map[string][]byte{} // acked state; deleted keys removed
			touched := map[string]bool{}  // every key any op ever targeted
			var inflightKey string
			var inflightVal []byte // nil = the in-flight op was a delete
			var inflightDel bool
			killed := false

			for i := 0; i < 20 && !killed; i++ {
				if i == 10 {
					if err := s.Compact(); err != nil {
						if !errors.Is(err, failpoint.ErrKilled) {
							t.Fatalf("compact: %v", err)
						}
						killed = true
						break
					}
				}
				key := fmt.Sprintf("k%d", i%6)
				touched[key] = true
				if i%5 == 4 {
					err = s.Delete(key)
					if errors.Is(err, failpoint.ErrKilled) {
						inflightKey, inflightDel = key, true
						killed = true
						break
					}
					if err != nil {
						t.Fatalf("delete %s: %v", key, err)
					}
					delete(oracle, key)
					continue
				}
				val := []byte(fmt.Sprintf("v%02d", i))
				err = s.Put(key, val)
				if errors.Is(err, failpoint.ErrKilled) {
					inflightKey, inflightVal = key, val
					killed = true
					break
				}
				if err != nil {
					t.Fatalf("put %s: %v", key, err)
				}
				oracle[key] = val
			}
			if !killed {
				t.Fatalf("failpoint %s never fired", point)
			}
			failpoint.DisableAll()
			// Crash: abandon s without Close and recover from disk.

			s2, err := Open(Options{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatalf("recovery after kill at %s: %v", point, err)
			}
			defer s2.Close()

			for key := range touched {
				got, ok := s2.Get(key)
				want, acked := oracle[key]
				if key == inflightKey {
					// Unacknowledged in-flight op: pre-kill acked state or
					// the in-flight effect are both legal, nothing else.
					ackedOK := ok == acked && (!ok || bytes.Equal(got, want))
					var inflightOK bool
					if inflightDel {
						inflightOK = !ok
					} else {
						inflightOK = ok && bytes.Equal(got, inflightVal)
					}
					if !ackedOK && !inflightOK {
						t.Errorf("key %s = %q,%v; want acked %q,%v or in-flight effect", key, got, ok, want, acked)
					}
					continue
				}
				if acked && (!ok || !bytes.Equal(got, want)) {
					t.Errorf("acknowledged write lost: %s = %q,%v, want %q", key, got, ok, want)
				}
				if !acked && ok {
					t.Errorf("phantom key %s = %q after recovery", key, got)
				}
			}
			if s2.Len() > len(touched) {
				t.Errorf("recovered %d entries from a %d-key workload", s2.Len(), len(touched))
			}
		})
	}
}

// TestCompactLostUpdateReproducer pins the Compact lost-update window shut:
// a Put parked between its WAL append and memtable publish must exclude
// Compact entirely. On the pre-fix code, Compact ran inside that window,
// snapshotted a memtable without the entry and truncated its WAL record —
// the acknowledged write vanished on the next recovery.
func TestCompactLostUpdateReproducer(t *testing.T) {
	defer failpoint.DisableAll()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}

	inWindow := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	failpoint.Enable(FailMemtablePublish, func() error {
		once.Do(func() {
			close(inWindow)
			<-release
		})
		return nil
	})

	putDone := make(chan error, 1)
	go func() { putDone <- s.Put("clicked", []byte("item-42")) }()
	<-inWindow // the Put now sits in the append→publish window

	compactDone := make(chan error, 1)
	go func() { compactDone <- s.Compact() }()
	select {
	case err := <-compactDone:
		t.Fatalf("Compact completed inside the commit window (err=%v): lost-update race is open", err)
	case <-time.After(100 * time.Millisecond):
		// Compact is blocked on the commit lock, as required.
	}

	close(release)
	if err := <-putDone; err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}
	s.Close() // crash-equivalent here: the snapshot+WAL already cover the put

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Get("clicked"); !bytes.Equal(v, []byte("item-42")) {
		t.Fatalf("acknowledged write lost across compaction: %q", v)
	}
}

// TestCompactFailureKeepsStoreWritable: every Compact error path must leave
// the old WAL handle open and the store fully writable (the pre-fix code
// closed the WAL before the swap, so a rename or reopen failure bricked all
// subsequent writes).
func TestCompactFailureKeepsStoreWritable(t *testing.T) {
	errInjected := errors.New("injected compact failure")
	for _, point := range []string{
		FailCompactSnapshotWrite,
		FailCompactSnapshotSync,
		FailCompactSnapshotRename,
		FailCompactWALSwapRename,
	} {
		t.Run(point, func(t *testing.T) {
			defer failpoint.DisableAll()
			dir := t.TempDir()
			s, err := Open(Options{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			s.Put("pre", []byte("1"))

			failpoint.Enable(point, failpoint.Fail(errInjected))
			if err := s.Compact(); !errors.Is(err, errInjected) {
				t.Fatalf("Compact = %v, want injected failure", err)
			}
			failpoint.DisableAll()

			// The store must still accept and persist writes.
			if err := s.Put("post", []byte("2")); err != nil {
				t.Fatalf("write after failed compact: %v", err)
			}
			// And a later Compact must succeed cleanly.
			if err := s.Compact(); err != nil {
				t.Fatalf("compact after failed compact: %v", err)
			}
			s.Close()

			s2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			for k, want := range map[string]string{"pre": "1", "post": "2"} {
				if v, _ := s2.Get(k); !bytes.Equal(v, []byte(want)) {
					t.Errorf("%s = %q, want %q", k, v, want)
				}
			}
		})
	}
}

// TestConcurrentWritesSweepCompactFlusher exercises the full concurrency
// surface — Put/Get/Delete under the shared commit lock, Sweep, repeated
// Compacts and the group-commit flusher — and then verifies every
// acknowledged final value after a clean close and recovery. Run under
// -race via `make race`.
func TestConcurrentWritesSweepCompactFlusher(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const opsPerWriter = 300
	finals := make([]map[string][]byte, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			final := map[string][]byte{}
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%13)
				if i%7 == 6 {
					if err := s.Delete(key); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					delete(final, key)
					continue
				}
				val := []byte(fmt.Sprintf("w%d-v%d", w, i))
				if err := s.Put(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				final[key] = val
				if i%11 == 0 {
					s.Get(key)
				}
			}
			finals[w] = final
		}(w)
	}
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
				s.Sweep()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	bg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w, final := range finals {
		if final == nil {
			continue // writer goroutine already reported its failure
		}
		for k, want := range final {
			if got, ok := s2.Get(k); !ok || !bytes.Equal(got, want) {
				t.Errorf("writer %d: %s = %q,%v, want %q", w, k, got, ok, want)
			}
		}
		for i := 0; i < 13; i++ {
			k := fmt.Sprintf("w%d-k%d", w, i)
			if _, acked := final[k]; acked {
				continue
			}
			if _, ok := s2.Get(k); ok {
				t.Errorf("deleted key %s resurrected", k)
			}
		}
	}
}
