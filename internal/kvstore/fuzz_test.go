package kvstore

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecovery: recovery must never panic on arbitrary WAL bytes — a
// crash can leave anything on disk.
func FuzzWALRecovery(f *testing.F) {
	// Seed with a real WAL.
	dir, err := os.MkdirTemp("", "kvfuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	s.Put("key-one", []byte("value-one"))
	s.Put("key-two", []byte("value-two"))
	s.Delete("key-one")
	s.Close()
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(walBytes)
	f.Add(walBytes[:len(walBytes)/2])
	f.Add([]byte{})
	f.Add([]byte{opPut, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := Open(Options{Dir: fdir})
		if err != nil {
			return
		}
		// A recovered store must be operational.
		if err := store.Put("probe", []byte("x")); err != nil {
			t.Fatalf("recovered store rejects writes: %v", err)
		}
		if _, ok := store.Get("probe"); !ok {
			t.Fatal("recovered store lost a fresh write")
		}
		store.Close()
	})
}

// FuzzSnapshotRecovery: arbitrary snapshot bytes must never fail or panic
// Open — the whole-file CRC rejects anything torn or bit-rotted and
// recovery falls back to replaying the WAL, whose records must survive
// regardless of the snapshot's fate.
func FuzzSnapshotRecovery(f *testing.F) {
	dir, err := os.MkdirTemp("", "kvsnapseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	s.Put("key-one", []byte("value-one"))
	s.Put("key-two", []byte("value-two"))
	if err := s.Compact(); err != nil {
		f.Fatal(err)
	}
	s.Close()
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snapBytes)
	f.Add(snapBytes[:len(snapBytes)/2])
	f.Add([]byte{})
	mutated := append([]byte(nil), snapBytes...)
	mutated[len(mutated)/2] ^= 0x01
	f.Add(mutated)

	walRecord := encodeRecord(opPut, "wal-key", []byte("wal-value"), 42)

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, snapshotName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(fdir, walName), walRecord, 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := Open(Options{Dir: fdir})
		if err != nil {
			t.Fatalf("snapshot bytes failed Open instead of falling back: %v", err)
		}
		if v, ok := store.Get("wal-key"); !ok || string(v) != "wal-value" {
			t.Fatalf("WAL record lost under snapshot corruption: %q, %v", v, ok)
		}
		if err := store.Put("probe", []byte("x")); err != nil {
			t.Fatalf("recovered store rejects writes: %v", err)
		}
		store.Close()
	})
}
