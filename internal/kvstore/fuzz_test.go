package kvstore

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecovery: recovery must never panic on arbitrary WAL bytes — a
// crash can leave anything on disk.
func FuzzWALRecovery(f *testing.F) {
	// Seed with a real WAL.
	dir, err := os.MkdirTemp("", "kvfuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	s.Put("key-one", []byte("value-one"))
	s.Put("key-two", []byte("value-two"))
	s.Delete("key-one")
	s.Close()
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(walBytes)
	f.Add(walBytes[:len(walBytes)/2])
	f.Add([]byte{})
	f.Add([]byte{opPut, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		store, err := Open(Options{Dir: fdir})
		if err != nil {
			return
		}
		// A recovered store must be operational.
		if err := store.Put("probe", []byte("x")); err != nil {
			t.Fatalf("recovered store rejects writes: %v", err)
		}
		if _, ok := store.Get("probe"); !ok {
			t.Fatal("recovered store lost a fresh write")
		}
		store.Close()
	})
}
