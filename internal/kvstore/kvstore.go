// Package kvstore implements an embedded key-value store with per-entry
// time-to-live, used by the serving layer to colocate evolving user sessions
// with recommendation requests on the serving machine.
//
// It stands in for the RocksDB instance the paper deploys on each Serenade
// pod (§4.2) and reproduces the contract the paper relies on: machine-local
// reads and writes in microseconds, durability via a write-ahead log, and
// automatic removal of session data after a configurable period of
// inactivity (30 minutes in production). The store is a sharded in-memory
// hash table with an append-only WAL and snapshot compaction; it is not an
// LSM tree because the paper's workload (small values, hot working set,
// aggressive TTL) never accumulates data beyond memory.
//
// Durability contract: a Put or Delete that returns nil is recoverable after
// a crash, subject to the WAL sync policy — immediately with SyncAlways,
// within one group-commit interval with SyncInterval, and only as far as the
// OS page cache with SyncNever. The commit protocol (WAL append + memtable
// publish under a shared commit lock, Compact's cut and WAL trim under the
// exclusive side) guarantees that no acknowledged write can fall between a
// snapshot and the trimmed WAL. Every step of the append → sync → publish →
// snapshot → rename → trim sequence carries a named failpoint
// (internal/failpoint) so the kill-at-every-point crash test can prove the
// contract at each intermediate state.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/maphash"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/failpoint"
)

// SyncPolicy selects when WAL appends are fsynced to disk.
type SyncPolicy string

const (
	// SyncAlways fsyncs inside every Put/Delete before it returns: an
	// acknowledged write survives any crash. Highest latency.
	SyncAlways SyncPolicy = "always"
	// SyncInterval group-commits: a background flusher fsyncs all appends
	// since the last flush every Options.SyncInterval. A crash can lose at
	// most one interval of acknowledged writes. The default.
	SyncInterval SyncPolicy = "interval"
	// SyncNever leaves durability to the OS page cache: writes survive a
	// process crash but not a machine crash.
	SyncNever SyncPolicy = "never"
)

// DefaultSyncInterval is the group-commit flush period when
// Options.SyncInterval is zero.
const DefaultSyncInterval = 5 * time.Millisecond

// ParseSyncPolicy validates a policy string (e.g. from a -wal-sync flag).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncNever:
		return SyncPolicy(s), nil
	case "":
		return SyncInterval, nil
	}
	return "", fmt.Errorf("kvstore: unknown sync policy %q (want always, interval or never)", s)
}

// Failpoint names, in commit-sequence order. Each marks the instant before
// the named effect happens; a hook returning failpoint.ErrKilled simulates a
// crash with all earlier effects on disk and none of the later ones.
const (
	// FailWALAppend fires before the record is written to the WAL.
	FailWALAppend = "kvstore/wal-append"
	// FailWALAppendPartial writes only half the record first — the torn
	// tail a real crash mid-write leaves behind.
	FailWALAppendPartial = "kvstore/wal-append-partial"
	// FailWALSync fires after the append, before the SyncAlways fsync.
	FailWALSync = "kvstore/wal-sync"
	// FailMemtablePublish fires after the (synced) append, before the entry
	// becomes visible in the memtable.
	FailMemtablePublish = "kvstore/memtable-publish"
	// FailCompactSnapshotWrite fires mid-serialization of the temp
	// snapshot, leaving a partial temp file.
	FailCompactSnapshotWrite = "kvstore/compact-snapshot-write"
	// FailCompactSnapshotSync fires after the temp snapshot is fully
	// written, before its fsync.
	FailCompactSnapshotSync = "kvstore/compact-snapshot-sync"
	// FailCompactSnapshotRename fires before the temp snapshot is renamed
	// over the live one.
	FailCompactSnapshotRename = "kvstore/compact-snapshot-rename"
	// FailCompactWALTrim fires after the snapshot is installed, before the
	// WAL trim starts: recovery sees the new snapshot plus the full WAL.
	FailCompactWALTrim = "kvstore/compact-wal-trim"
	// FailCompactWALSwapRename fires after the trimmed WAL is written and
	// synced, before it is renamed over the live WAL.
	FailCompactWALSwapRename = "kvstore/compact-wal-swap-rename"
	// FailCompactWALInstall fires after the trim rename, before the store
	// swaps its file handle. Kill-only: arming it with a plain error would
	// leave the handle pointing at the unlinked old WAL.
	FailCompactWALInstall = "kvstore/compact-wal-install"
)

// CrashPoints lists every failpoint in the commit/compact sequence, in
// order, for kill-at-every-point harnesses.
var CrashPoints = []string{
	FailWALAppend,
	FailWALAppendPartial,
	FailWALSync,
	FailMemtablePublish,
	FailCompactSnapshotWrite,
	FailCompactSnapshotSync,
	FailCompactSnapshotRename,
	FailCompactWALTrim,
	FailCompactWALSwapRename,
	FailCompactWALInstall,
}

// Options configures a Store.
type Options struct {
	// Dir is the durability directory for the WAL and snapshots. If empty,
	// the store is memory-only (used in tests and for ephemeral caches).
	Dir string
	// Shards is the number of lock shards; it must be a power of two.
	// Defaults to 16.
	Shards int
	// TTL is the sliding inactivity window after which entries expire.
	// Zero disables expiry.
	TTL time.Duration
	// Sync is the WAL durability policy; empty means SyncInterval.
	Sync SyncPolicy
	// SyncInterval is the group-commit flush period for SyncInterval; zero
	// means DefaultSyncInterval.
	SyncInterval time.Duration
	// Now supplies the clock; defaults to time.Now. Tests inject a fake.
	Now func() time.Time
}

type entry struct {
	value      []byte
	lastAccess int64 // unix nanoseconds
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// kvPair is one memtable entry captured for snapshot serialization.
type kvPair struct {
	key string
	e   entry
}

// Store is a TTL key-value store, safe for concurrent use.
type Store struct {
	opts   Options
	shards []*shard
	seed   maphash.Seed

	ops opCounters

	// commitMu makes the WAL-append + memtable-publish pair atomic with
	// respect to Compact: writers hold the shared side across both steps;
	// Compact's cut and WAL trim hold the exclusive side. Without it a
	// Compact landing between the two steps would snapshot a memtable
	// missing the entry and trim the WAL record away — losing an
	// acknowledged write on the next recovery. Lock order: commitMu before
	// walMu before shard locks.
	commitMu sync.RWMutex

	// compactMu serializes whole Compact calls (their temp files collide).
	compactMu sync.Mutex

	// snapshotting is true while Compact serializes its memtable cut off the
	// write path. The cut shares value backing with live entries, so Put's
	// in-place buffer reuse is suspended (fresh allocations only) for the
	// duration. Set before the cut's commitMu release, so commitMu ordering
	// makes it visible to every Put that can run concurrently with
	// serialization.
	snapshotting atomic.Bool

	// walMu protects the WAL handle and its append/sync bookkeeping.
	walMu   sync.Mutex
	wal     *os.File
	walSize int64 // append offset; the compaction cut is taken from it
	dirty   int   // records appended since the last successful fsync
	closed  bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// opCounters tracks store operations for the serving metrics endpoint.
type opCounters struct {
	gets              atomic.Uint64
	hits              atomic.Uint64
	puts              atomic.Uint64
	deletes           atomic.Uint64
	evictions         atomic.Uint64
	walBytes          atomic.Uint64
	fsyncs            atomic.Uint64
	fsyncNanos        atomic.Uint64
	fsyncBatchRecords atomic.Uint64
	unknownWALOps     atomic.Uint64
	snapshotFallbacks atomic.Uint64
}

// Metrics is a snapshot of the store's operation counters. Evictions count
// entries dropped for TTL expiry, whether during Sweep or lazily on read —
// the session-loss signal a Serenade operator watches next to request rate.
type Metrics struct {
	Gets      uint64
	Hits      uint64
	Puts      uint64
	Deletes   uint64
	Evictions uint64
	WALBytes  uint64
	// Fsyncs counts WAL fsync calls; FsyncNanos is their total duration and
	// FsyncBatchRecords the appends they made durable, so fsync latency and
	// group-commit batch size fall out as ratios.
	Fsyncs            uint64
	FsyncNanos        uint64
	FsyncBatchRecords uint64
	// UnknownWALOps counts WAL records with a valid checksum but an
	// unrecognized opcode; replay stops conservatively at the first one.
	UnknownWALOps uint64
	// SnapshotFallbacks counts recoveries that rejected a corrupt snapshot
	// and fell back to WAL-only replay.
	SnapshotFallbacks uint64
}

// Metrics returns the operation counters accumulated since Open.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Gets:              s.ops.gets.Load(),
		Hits:              s.ops.hits.Load(),
		Puts:              s.ops.puts.Load(),
		Deletes:           s.ops.deletes.Load(),
		Evictions:         s.ops.evictions.Load(),
		WALBytes:          s.ops.walBytes.Load(),
		Fsyncs:            s.ops.fsyncs.Load(),
		FsyncNanos:        s.ops.fsyncNanos.Load(),
		FsyncBatchRecords: s.ops.fsyncBatchRecords.Load(),
		UnknownWALOps:     s.ops.unknownWALOps.Load(),
		SnapshotFallbacks: s.ops.snapshotFallbacks.Load(),
	}
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"

	opPut    = byte(1)
	opDelete = byte(2)

	snapshotMagic = uint32(0x53524e44) // "SRND"
)

// Open creates or recovers a store. When Options.Dir is non-empty, a prior
// snapshot and WAL found there are replayed.
func Open(opts Options) (*Store, error) {
	if opts.Shards == 0 {
		opts.Shards = 16
	}
	if opts.Shards&(opts.Shards-1) != 0 || opts.Shards < 0 {
		return nil, fmt.Errorf("kvstore: shard count %d is not a power of two", opts.Shards)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	policy, err := ParseSyncPolicy(string(opts.Sync))
	if err != nil {
		return nil, err
	}
	opts.Sync = policy
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	s := &Store{opts: opts, seed: maphash.MakeSeed()}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{m: make(map[string]entry)}
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: creating dir: %w", err)
	}
	// Temp files are crash debris from an interrupted Compact; both sides
	// of their renames are covered by snapshot+WAL, so they are dead weight.
	os.Remove(filepath.Join(opts.Dir, snapshotName+".tmp"))
	os.Remove(filepath.Join(opts.Dir, walName+".tmp"))
	if err := s.recover(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(opts.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening WAL: %w", err)
	}
	fi, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("kvstore: sizing WAL: %w", err)
	}
	s.wal = wal
	s.walSize = fi.Size()
	if opts.Sync == SyncInterval {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// flusher is the group-commit loop: every SyncInterval it fsyncs whatever
// appends accumulated since the last flush, amortizing one fsync over the
// whole batch.
func (s *Store) flusher() {
	defer close(s.flushDone)
	ticker := time.NewTicker(s.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.walMu.Lock()
			if !s.closed && s.wal != nil {
				_ = s.syncLocked() // failed flushes retry next tick; dirty stays set
			}
			s.walMu.Unlock()
		case <-s.flushStop:
			return
		}
	}
}

// syncLocked fsyncs the WAL and records fsync latency and batch size.
// Callers hold walMu.
func (s *Store) syncLocked() error {
	if s.dirty == 0 {
		return nil
	}
	batch := s.dirty
	start := time.Now()
	err := s.wal.Sync()
	s.ops.fsyncs.Add(1)
	s.ops.fsyncNanos.Add(uint64(time.Since(start)))
	if err != nil {
		return fmt.Errorf("kvstore: syncing WAL: %w", err)
	}
	s.ops.fsyncBatchRecords.Add(uint64(batch))
	s.dirty = 0
	return nil
}

func (s *Store) shardFor(key string) *shard {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(key)
	return s.shards[h.Sum64()&uint64(len(s.shards)-1)]
}

// Put stores value under key, resetting its TTL. With SyncAlways a nil
// return means the write is on disk; with SyncInterval it becomes durable
// within one group-commit interval.
func (s *Store) Put(key string, value []byte) error {
	now := s.opts.Now().UnixNano()
	s.commitMu.RLock()
	defer s.commitMu.RUnlock()
	if err := s.appendWAL(opPut, key, value, now); err != nil {
		return err
	}
	if err := failpoint.Inject(FailMemtablePublish); err != nil {
		return err
	}
	s.ops.puts.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	var v []byte
	// Rewriting a key reuses the previous value's buffer when it fits — the
	// session-update hot path rewrites the same key every request. Readers
	// copy under the shard lock, so no alias escapes; during a snapshot
	// serialization the cut shares this backing, so reuse is suspended.
	if old, ok := sh.m[key]; ok && cap(old.value) >= len(value) && !s.snapshotting.Load() {
		v = old.value[:len(value)]
	} else {
		v = make([]byte, len(value))
	}
	copy(v, value)
	sh.m[key] = entry{value: v, lastAccess: now}
	sh.mu.Unlock()
	return nil
}

// Get returns the value stored under key. A successful read refreshes the
// entry's TTL ("30 minutes of inactivity" is a sliding window). The second
// result reports whether the key was present and unexpired.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetAppend(key, nil)
}

// GetAppend is Get for pooled callers: the value is appended to dst (which
// may be a reused buffer) and the extended slice returned, so a steady-state
// reader allocates nothing once its buffer has grown to size. The copy
// happens under the shard lock — it must, now that Put may recycle a value's
// backing in place.
func (s *Store) GetAppend(key string, dst []byte) ([]byte, bool) {
	now := s.opts.Now()
	s.ops.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return dst, false
	}
	if s.expired(e, now) {
		delete(sh.m, key)
		sh.mu.Unlock()
		s.ops.evictions.Add(1)
		return dst, false
	}
	e.lastAccess = now.UnixNano()
	sh.m[key] = e
	dst = append(dst, e.value...)
	sh.mu.Unlock()
	s.ops.hits.Add(1)
	return dst, true
}

// Delete removes key. Deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	now := s.opts.Now().UnixNano()
	s.commitMu.RLock()
	defer s.commitMu.RUnlock()
	if err := s.appendWAL(opDelete, key, nil, now); err != nil {
		return err
	}
	if err := failpoint.Inject(FailMemtablePublish); err != nil {
		return err
	}
	s.ops.deletes.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

func (s *Store) expired(e entry, now time.Time) bool {
	if s.opts.TTL <= 0 {
		return false
	}
	return now.UnixNano()-e.lastAccess > int64(s.opts.TTL)
}

// Len reports the number of stored entries, including not-yet-swept expired
// ones.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep removes all expired entries and reports how many were removed.
// Serving machines run this periodically, mirroring RocksDB's TTL
// compaction.
func (s *Store) Sweep() int {
	now := s.opts.Now()
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, e := range sh.m {
			if s.expired(e, now) {
				delete(sh.m, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	s.ops.evictions.Add(uint64(removed))
	return removed
}

// appendWAL writes one record and, under SyncAlways, fsyncs it. Callers
// hold the shared side of commitMu.
func (s *Store) appendWAL(op byte, key string, value []byte, now int64) error {
	if s.opts.Dir == "" {
		return nil
	}
	rec := encodeRecord(op, key, value, now)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := failpoint.Inject(FailWALAppend); err != nil {
		return err
	}
	if err := failpoint.Inject(FailWALAppendPartial); err != nil {
		s.wal.Write(rec[:len(rec)/2]) // the torn tail a mid-write crash leaves
		return err
	}
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("kvstore: appending WAL: %w", err)
	}
	s.walSize += int64(len(rec))
	s.dirty++
	s.ops.walBytes.Add(uint64(len(rec)))
	if s.opts.Sync == SyncAlways {
		if err := failpoint.Inject(FailWALSync); err != nil {
			return err
		}
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// encodeRecord lays out: op(1) | ts(8) | klen(4) | vlen(4) | key | value | crc(4).
// The CRC covers everything before it.
func encodeRecord(op byte, key string, value []byte, now int64) []byte {
	n := 1 + 8 + 4 + 4 + len(key) + len(value) + 4
	rec := make([]byte, n)
	rec[0] = op
	binary.LittleEndian.PutUint64(rec[1:], uint64(now))
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[13:], uint32(len(value)))
	copy(rec[17:], key)
	copy(rec[17+len(key):], value)
	crc := crc32.ChecksumIEEE(rec[:n-4])
	binary.LittleEndian.PutUint32(rec[n-4:], crc)
	return rec
}

// recover loads the snapshot (if any) and replays the WAL. A torn or corrupt
// WAL tail (the expected crash artifact) truncates replay at the first bad
// record rather than failing recovery; the same applies to a record with an
// unknown opcode (written by a future version), counted in Metrics. The
// unreplayable tail is then physically truncated so that post-recovery
// appends land at an offset future recoveries can reach.
func (s *Store) recover() error {
	if err := s.loadSnapshot(); err != nil {
		return err
	}
	path := filepath.Join(s.opts.Dir, walName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: opening WAL for recovery: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("kvstore: reading WAL: %w", err)
	}
	off := 0
replay:
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 17 {
			break // torn header
		}
		klen := int(binary.LittleEndian.Uint32(rest[9:]))
		vlen := int(binary.LittleEndian.Uint32(rest[13:]))
		total := 17 + klen + vlen + 4
		if klen < 0 || vlen < 0 || len(rest) < total {
			break // torn record
		}
		crcWant := binary.LittleEndian.Uint32(rest[total-4:])
		if crc32.ChecksumIEEE(rest[:total-4]) != crcWant {
			break // corrupt record: stop replay here
		}
		op := rest[0]
		ts := int64(binary.LittleEndian.Uint64(rest[1:]))
		key := string(rest[17 : 17+klen])
		switch op {
		case opPut:
			v := make([]byte, vlen)
			copy(v, rest[17+klen:17+klen+vlen])
			sh := s.shardFor(key)
			sh.m[key] = entry{value: v, lastAccess: ts}
		case opDelete:
			sh := s.shardFor(key)
			delete(sh.m, key)
		default:
			// Unknown op with a valid CRC: written by a future version.
			// Stop replay conservatively, keeping the recovered prefix.
			s.ops.unknownWALOps.Add(1)
			break replay
		}
		off += total
	}
	if off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("kvstore: truncating WAL tail: %w", err)
		}
	}
	return nil
}

// loadSnapshot reads the snapshot if present. A snapshot that fails
// validation (bad magic, checksum mismatch from bit rot or a torn write,
// malformed structure) is rejected and recovery falls back to WAL-only
// replay rather than refusing to start; the event is counted in Metrics.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.opts.Dir, snapshotName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: reading snapshot: %w", err)
	}
	entries, ok := parseSnapshot(data)
	if !ok {
		s.ops.snapshotFallbacks.Add(1)
		return nil
	}
	for _, it := range entries {
		sh := s.shardFor(it.key)
		sh.m[it.key] = it.e
	}
	return nil
}

// parseSnapshot validates and decodes a snapshot image into a staging slice
// — nothing is installed unless the whole file checks out, so a corrupt
// snapshot can never half-populate the memtable.
func parseSnapshot(data []byte) ([]kvPair, bool) {
	if len(data) < 12 {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data) != snapshotMagic {
		return nil, false
	}
	crcWant := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != crcWant {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	body := data[:len(data)-4]
	off := 8
	entries := make([]kvPair, 0, count)
	for i := 0; i < count; i++ {
		if len(body)-off < 16 {
			return nil, false
		}
		ts := int64(binary.LittleEndian.Uint64(body[off:]))
		klen := int(binary.LittleEndian.Uint32(body[off+8:]))
		vlen := int(binary.LittleEndian.Uint32(body[off+12:]))
		off += 16
		if klen < 0 || vlen < 0 || len(body)-off < klen+vlen {
			return nil, false
		}
		key := string(body[off : off+klen])
		v := make([]byte, vlen)
		copy(v, body[off+klen:off+klen+vlen])
		off += klen + vlen
		entries = append(entries, kvPair{key: key, e: entry{value: v, lastAccess: ts}})
	}
	if off != len(body) {
		return nil, false // trailing garbage under a forged checksum
	}
	return entries, true
}

// Compact writes a snapshot of the live (unexpired) entries and trims the
// WAL to the records appended after the snapshot's cut. Writers are blocked
// only while the cut is taken and while the trimmed WAL is swapped in — the
// snapshot serialization itself runs off the write path. Every error path
// leaves the store writable against its existing WAL.
func (s *Store) Compact() error {
	if s.opts.Dir == "" {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Phase 1 — the cut: under the exclusive commit lock, no Put/Delete is
	// between its WAL append and memtable publish, so the memtable copy
	// covers exactly the WAL prefix [0, cut).
	s.commitMu.Lock()
	s.walMu.Lock()
	if s.closed {
		s.walMu.Unlock()
		s.commitMu.Unlock()
		return ErrClosed
	}
	cut := s.walSize
	s.walMu.Unlock()
	now := s.opts.Now()
	var live []kvPair
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.m {
			if !s.expired(e, now) {
				live = append(live, kvPair{key: k, e: e})
			}
		}
		sh.mu.RUnlock()
	}
	// The cut shares value backing with the memtable. Suspend Put's in-place
	// buffer reuse until serialization is done; setting the flag before the
	// exclusive commit lock drops makes it visible to every Put that can
	// overlap Phase 2.
	s.snapshotting.Store(true)
	defer s.snapshotting.Store(false)
	s.commitMu.Unlock()

	// Phase 2 — serialize and install the snapshot off the write path. Put
	// stores fresh copies while snapshotting is set, so the captured slice
	// is a consistent image.
	tmp := filepath.Join(s.opts.Dir, snapshotName+".tmp")
	if err := writeSnapshotFile(tmp, live); err != nil {
		return err
	}
	if err := failpoint.Inject(FailCompactSnapshotRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotName)); err != nil {
		return fmt.Errorf("kvstore: installing snapshot: %w", err)
	}
	if err := failpoint.Inject(FailCompactWALTrim); err != nil {
		return err
	}

	// A crash anywhere before trimWAL completes leaves the full WAL next to
	// the new snapshot; replaying records the snapshot already covers is
	// idempotent (the last operation per key wins), so recovery stays exact.
	return s.trimWAL(cut)
}

// writeSnapshotFile serializes entries to path with a whole-file CRC32
// trailer and fsyncs it. Layout: magic(4) | count(4) | entries | crc(4),
// each entry ts(8) | klen(4) | vlen(4) | key | value; the CRC covers
// everything before it.
func writeSnapshotFile(path string, live []kvPair) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kvstore: creating snapshot: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(f)
	w := io.MultiWriter(bw, crc)
	header := make([]byte, 8)
	binary.LittleEndian.PutUint32(header, snapshotMagic)
	binary.LittleEndian.PutUint32(header[4:], uint32(len(live)))
	if _, err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := failpoint.Inject(FailCompactSnapshotWrite); err != nil {
		bw.Flush() // leave the partial temp file a crash would
		f.Close()
		return err
	}
	buf := make([]byte, 16)
	for _, item := range live {
		binary.LittleEndian.PutUint64(buf, uint64(item.e.lastAccess))
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(item.key)))
		binary.LittleEndian.PutUint32(buf[12:], uint32(len(item.e.value)))
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return err
		}
		if _, err := io.WriteString(w, item.key); err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(item.e.value); err != nil {
			f.Close()
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := failpoint.Inject(FailCompactSnapshotSync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// trimWAL replaces the WAL with its suffix past cut (the records the
// just-installed snapshot does not cover). The old WAL handle is kept open
// and untouched until the swap has fully succeeded, so any failure leaves
// the store writable with its complete WAL.
func (s *Store) trimWAL(cut int64) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	walPath := filepath.Join(s.opts.Dir, walName)
	tmpPath := walPath + ".tmp"
	// The handle is opened before the rename so it tracks the inode across
	// it — no window where the store could be left without a writable WAL.
	h, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: creating trimmed WAL: %w", err)
	}
	err = func() error {
		src, err := os.Open(walPath)
		if err != nil {
			return err
		}
		defer src.Close()
		want := s.walSize - cut
		n, err := io.Copy(h, io.NewSectionReader(src, cut, want))
		if err != nil {
			return err
		}
		if n != want {
			return fmt.Errorf("WAL suffix short read: %d of %d bytes", n, want)
		}
		return h.Sync()
	}()
	if err == nil {
		err = failpoint.Inject(FailCompactWALSwapRename)
	}
	if err == nil {
		err = os.Rename(tmpPath, walPath)
	}
	if err != nil {
		h.Close()
		return fmt.Errorf("kvstore: trimming WAL: %w", err)
	}
	if err := failpoint.Inject(FailCompactWALInstall); err != nil {
		return err
	}
	old := s.wal
	s.wal = h
	s.walSize -= cut
	s.dirty = 0 // the whole suffix was just fsynced
	old.Close() // best-effort: its records are covered by snapshot + new WAL
	return nil
}

// Close stops the group-commit flusher, performs a final sync (unless the
// policy is SyncNever) and releases the WAL. Further writes return
// ErrClosed; reads continue to work against the in-memory state.
func (s *Store) Close() error {
	s.commitMu.Lock()
	s.walMu.Lock()
	if s.closed {
		s.walMu.Unlock()
		s.commitMu.Unlock()
		return nil
	}
	s.closed = true
	s.walMu.Unlock()
	s.commitMu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	if s.opts.Sync != SyncNever {
		_ = s.syncLocked()
	}
	return s.wal.Close()
}
