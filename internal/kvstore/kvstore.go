// Package kvstore implements an embedded key-value store with per-entry
// time-to-live, used by the serving layer to colocate evolving user sessions
// with recommendation requests on the serving machine.
//
// It stands in for the RocksDB instance the paper deploys on each Serenade
// pod (§4.2) and reproduces the contract the paper relies on: machine-local
// reads and writes in microseconds, durability via a write-ahead log, and
// automatic removal of session data after a configurable period of
// inactivity (30 minutes in production). The store is a sharded in-memory
// hash table with an append-only WAL and snapshot compaction; it is not an
// LSM tree because the paper's workload (small values, hot working set,
// aggressive TTL) never accumulates data beyond memory.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/maphash"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Store.
type Options struct {
	// Dir is the durability directory for the WAL and snapshots. If empty,
	// the store is memory-only (used in tests and for ephemeral caches).
	Dir string
	// Shards is the number of lock shards; it must be a power of two.
	// Defaults to 16.
	Shards int
	// TTL is the sliding inactivity window after which entries expire.
	// Zero disables expiry.
	TTL time.Duration
	// Now supplies the clock; defaults to time.Now. Tests inject a fake.
	Now func() time.Time
}

type entry struct {
	value      []byte
	lastAccess int64 // unix nanoseconds
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// Store is a TTL key-value store, safe for concurrent use.
type Store struct {
	opts   Options
	shards []*shard
	seed   maphash.Seed

	ops opCounters

	walMu  sync.Mutex
	wal    *os.File
	closed bool
}

// opCounters tracks store operations for the serving metrics endpoint.
type opCounters struct {
	gets      atomic.Uint64
	hits      atomic.Uint64
	puts      atomic.Uint64
	deletes   atomic.Uint64
	evictions atomic.Uint64
	walBytes  atomic.Uint64
}

// Metrics is a snapshot of the store's operation counters. Evictions count
// entries dropped for TTL expiry, whether during Sweep or lazily on read —
// the session-loss signal a Serenade operator watches next to request rate.
type Metrics struct {
	Gets      uint64
	Hits      uint64
	Puts      uint64
	Deletes   uint64
	Evictions uint64
	WALBytes  uint64
}

// Metrics returns the operation counters accumulated since Open.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Gets:      s.ops.gets.Load(),
		Hits:      s.ops.hits.Load(),
		Puts:      s.ops.puts.Load(),
		Deletes:   s.ops.deletes.Load(),
		Evictions: s.ops.evictions.Load(),
		WALBytes:  s.ops.walBytes.Load(),
	}
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"

	opPut    = byte(1)
	opDelete = byte(2)

	snapshotMagic = uint32(0x53524e44) // "SRND"
)

// Open creates or recovers a store. When Options.Dir is non-empty, a prior
// snapshot and WAL found there are replayed.
func Open(opts Options) (*Store, error) {
	if opts.Shards == 0 {
		opts.Shards = 16
	}
	if opts.Shards&(opts.Shards-1) != 0 || opts.Shards < 0 {
		return nil, fmt.Errorf("kvstore: shard count %d is not a power of two", opts.Shards)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Store{opts: opts, seed: maphash.MakeSeed()}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{m: make(map[string]entry)}
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: creating dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(opts.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening WAL: %w", err)
	}
	s.wal = wal
	return s, nil
}

func (s *Store) shardFor(key string) *shard {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(key)
	return s.shards[h.Sum64()&uint64(len(s.shards)-1)]
}

// Put stores value under key, resetting its TTL.
func (s *Store) Put(key string, value []byte) error {
	now := s.opts.Now().UnixNano()
	if err := s.appendWAL(opPut, key, value, now); err != nil {
		return err
	}
	s.ops.puts.Add(1)
	sh := s.shardFor(key)
	v := make([]byte, len(value))
	copy(v, value)
	sh.mu.Lock()
	sh.m[key] = entry{value: v, lastAccess: now}
	sh.mu.Unlock()
	return nil
}

// Get returns the value stored under key. A successful read refreshes the
// entry's TTL ("30 minutes of inactivity" is a sliding window). The second
// result reports whether the key was present and unexpired.
func (s *Store) Get(key string) ([]byte, bool) {
	now := s.opts.Now()
	s.ops.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	if s.expired(e, now) {
		delete(sh.m, key)
		sh.mu.Unlock()
		s.ops.evictions.Add(1)
		return nil, false
	}
	e.lastAccess = now.UnixNano()
	sh.m[key] = e
	sh.mu.Unlock()
	s.ops.hits.Add(1)
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Delete removes key. Deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	now := s.opts.Now().UnixNano()
	if err := s.appendWAL(opDelete, key, nil, now); err != nil {
		return err
	}
	s.ops.deletes.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

func (s *Store) expired(e entry, now time.Time) bool {
	if s.opts.TTL <= 0 {
		return false
	}
	return now.UnixNano()-e.lastAccess > int64(s.opts.TTL)
}

// Len reports the number of stored entries, including not-yet-swept expired
// ones.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep removes all expired entries and reports how many were removed.
// Serving machines run this periodically, mirroring RocksDB's TTL
// compaction.
func (s *Store) Sweep() int {
	now := s.opts.Now()
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, e := range sh.m {
			if s.expired(e, now) {
				delete(sh.m, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	s.ops.evictions.Add(uint64(removed))
	return removed
}

func (s *Store) appendWAL(op byte, key string, value []byte, now int64) error {
	if s.opts.Dir == "" {
		return nil
	}
	rec := encodeRecord(op, key, value, now)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	_, err := s.wal.Write(rec)
	if err != nil {
		return fmt.Errorf("kvstore: appending WAL: %w", err)
	}
	s.ops.walBytes.Add(uint64(len(rec)))
	return nil
}

// encodeRecord lays out: op(1) | ts(8) | klen(4) | vlen(4) | key | value | crc(4).
// The CRC covers everything before it.
func encodeRecord(op byte, key string, value []byte, now int64) []byte {
	n := 1 + 8 + 4 + 4 + len(key) + len(value) + 4
	rec := make([]byte, n)
	rec[0] = op
	binary.LittleEndian.PutUint64(rec[1:], uint64(now))
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[13:], uint32(len(value)))
	copy(rec[17:], key)
	copy(rec[17+len(key):], value)
	crc := crc32.ChecksumIEEE(rec[:n-4])
	binary.LittleEndian.PutUint32(rec[n-4:], crc)
	return rec
}

// recover loads the snapshot (if any) and replays the WAL. A torn or corrupt
// WAL tail (the expected crash artifact) truncates replay at the first bad
// record rather than failing recovery.
func (s *Store) recover() error {
	if err := s.loadSnapshot(); err != nil {
		return err
	}
	path := filepath.Join(s.opts.Dir, walName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: opening WAL for recovery: %w", err)
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("kvstore: reading WAL: %w", err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 17 {
			break // torn header
		}
		klen := int(binary.LittleEndian.Uint32(rest[9:]))
		vlen := int(binary.LittleEndian.Uint32(rest[13:]))
		total := 17 + klen + vlen + 4
		if klen < 0 || vlen < 0 || len(rest) < total {
			break // torn record
		}
		crcWant := binary.LittleEndian.Uint32(rest[total-4:])
		if crc32.ChecksumIEEE(rest[:total-4]) != crcWant {
			break // corrupt record: stop replay here
		}
		op := rest[0]
		ts := int64(binary.LittleEndian.Uint64(rest[1:]))
		key := string(rest[17 : 17+klen])
		switch op {
		case opPut:
			v := make([]byte, vlen)
			copy(v, rest[17+klen:17+klen+vlen])
			sh := s.shardFor(key)
			sh.m[key] = entry{value: v, lastAccess: ts}
		case opDelete:
			sh := s.shardFor(key)
			delete(sh.m, key)
		default:
			// Unknown op with a valid CRC: written by a future version.
			// Stop replay conservatively.
			off += total
			return fmt.Errorf("kvstore: unknown WAL op %d", op)
		}
		off += total
	}
	return nil
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.opts.Dir, snapshotName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: reading snapshot: %w", err)
	}
	if len(data) < 8 {
		return errors.New("kvstore: snapshot too short")
	}
	if binary.LittleEndian.Uint32(data) != snapshotMagic {
		return errors.New("kvstore: snapshot has bad magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	off := 8
	for i := 0; i < count; i++ {
		if len(data)-off < 16 {
			return errors.New("kvstore: snapshot truncated")
		}
		ts := int64(binary.LittleEndian.Uint64(data[off:]))
		klen := int(binary.LittleEndian.Uint32(data[off+8:]))
		vlen := int(binary.LittleEndian.Uint32(data[off+12:]))
		off += 16
		if len(data)-off < klen+vlen {
			return errors.New("kvstore: snapshot truncated")
		}
		key := string(data[off : off+klen])
		v := make([]byte, vlen)
		copy(v, data[off+klen:off+klen+vlen])
		off += klen + vlen
		sh := s.shardFor(key)
		sh.m[key] = entry{value: v, lastAccess: ts}
	}
	return nil
}

// Compact writes a snapshot of the live (unexpired) entries and truncates
// the WAL. It blocks writers for the duration; the paper's workload compacts
// during daily index rollover when traffic is low.
func (s *Store) Compact() error {
	if s.opts.Dir == "" {
		return nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	now := s.opts.Now()

	type kv struct {
		key string
		e   entry
	}
	var live []kv
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.m {
			if !s.expired(e, now) {
				live = append(live, kv{k, e})
			}
		}
		sh.mu.RUnlock()
	}

	tmp := filepath.Join(s.opts.Dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: creating snapshot: %w", err)
	}
	header := make([]byte, 8)
	binary.LittleEndian.PutUint32(header, snapshotMagic)
	binary.LittleEndian.PutUint32(header[4:], uint32(len(live)))
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 16)
	for _, item := range live {
		binary.LittleEndian.PutUint64(buf, uint64(item.e.lastAccess))
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(item.key)))
		binary.LittleEndian.PutUint32(buf[12:], uint32(len(item.e.value)))
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write([]byte(item.key)); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(item.e.value); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotName)); err != nil {
		return fmt.Errorf("kvstore: installing snapshot: %w", err)
	}
	// Truncate the WAL now that the snapshot covers its contents.
	if err := s.wal.Close(); err != nil {
		return err
	}
	wal, err := os.OpenFile(filepath.Join(s.opts.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: reopening WAL: %w", err)
	}
	s.wal = wal
	return nil
}

// Close releases the WAL. Further writes return ErrClosed; reads continue to
// work against the in-memory state.
func (s *Store) Close() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
