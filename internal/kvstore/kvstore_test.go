package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a controllable clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_600_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openMem(t *testing.T, ttl time.Duration, clock *fakeClock) *Store {
	t.Helper()
	opts := Options{TTL: ttl}
	if clock != nil {
		opts.Now = clock.Now
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openMem(t, 0, nil)
	if _, ok := s.Get("missing"); ok {
		t.Error("Get of missing key reported ok")
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q,%v want v1,true", v, ok)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get after overwrite = %q, want v2", v)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("Get after delete reported ok")
	}
	if err := s.Delete("k"); err != nil {
		t.Errorf("double delete errored: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := openMem(t, 0, nil)
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	again, _ := s.Get("k")
	if !bytes.Equal(again, []byte("abc")) {
		t.Error("mutating a returned value corrupted the store")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := openMem(t, 0, nil)
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if !bytes.Equal(v, []byte("abc")) {
		t.Error("mutating the caller's buffer corrupted the store")
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	s := openMem(t, 30*time.Minute, clock)
	s.Put("session", []byte("state"))
	clock.Advance(29 * time.Minute)
	if _, ok := s.Get("session"); !ok {
		t.Fatal("entry expired before TTL")
	}
	// The Get above refreshed the sliding window.
	clock.Advance(29 * time.Minute)
	if _, ok := s.Get("session"); !ok {
		t.Fatal("sliding TTL was not refreshed by Get")
	}
	clock.Advance(31 * time.Minute)
	if _, ok := s.Get("session"); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestSweep(t *testing.T) {
	clock := newFakeClock()
	s := openMem(t, 30*time.Minute, clock)
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("old%d", i), []byte("x"))
	}
	clock.Advance(31 * time.Minute)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("new%d", i), []byte("y"))
	}
	if removed := s.Sweep(); removed != 10 {
		t.Errorf("Sweep removed %d, want 10", removed)
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d after sweep, want 5", s.Len())
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	clock := newFakeClock()
	s := openMem(t, 0, clock)
	s.Put("k", []byte("v"))
	clock.Advance(1000 * time.Hour)
	if _, ok := s.Get("k"); !ok {
		t.Error("entry with zero TTL expired")
	}
	if s.Sweep() != 0 {
		t.Error("Sweep removed entries with zero TTL")
	}
}

func TestOpenBadShards(t *testing.T) {
	if _, err := Open(Options{Shards: 3}); err == nil {
		t.Error("expected error for non-power-of-two shards")
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k0")
	s.Put("k1", []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("k0"); ok {
		t.Error("deleted key resurrected by recovery")
	}
	if v, _ := s2.Get("k1"); !bytes.Equal(v, []byte("updated")) {
		t.Errorf("k1 = %q, want updated", v)
	}
	if v, _ := s2.Get("k50"); !bytes.Equal(v, []byte("v50")) {
		t.Errorf("k50 = %q, want v50", v)
	}
	if s2.Len() != 99 {
		t.Errorf("Len = %d after recovery, want 99", s2.Len())
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery must tolerate torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get("a"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := s2.Get("b"); ok {
		t.Error("torn record replayed")
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	walPath := filepath.Join(dir, walName)
	data, _ := os.ReadFile(walPath)
	// Flip a byte inside the first record's value region.
	data[18] ^= 0xFF
	os.WriteFile(walPath, data, 0o644)

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery must tolerate corruption: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Errorf("replay continued past corrupt record: Len=%d", s2.Len())
	}
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := Open(Options{Dir: dir, TTL: 30 * time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("stale", []byte("old"))
	clock.Advance(time.Hour)
	s.Put("fresh", []byte("new"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// WAL must now be empty.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("WAL not truncated after compaction: %v bytes", fi.Size())
	}
	s.Put("after", []byte("compaction"))
	s.Close()

	s2, err := Open(Options{Dir: dir, TTL: 30 * time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("stale"); ok {
		t.Error("expired entry survived compaction")
	}
	if v, _ := s2.Get("fresh"); !bytes.Equal(v, []byte("new")) {
		t.Errorf("fresh = %q, want new", v)
	}
	if v, _ := s2.Get("after"); !bytes.Equal(v, []byte("compaction")) {
		t.Errorf("after = %q, want compaction", v)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, snapshotName), []byte("garbagexxxxxconclusively-not-a-snapshot"), 0o644)
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corrupt snapshot must fall back to WAL-only recovery, got %v", err)
	}
	defer s.Close()
	if got := s.Metrics().SnapshotFallbacks; got != 1 {
		t.Errorf("SnapshotFallbacks = %d, want 1", got)
	}
}

// TestSnapshotCorruptionFallsBack: any truncation or bit flip in the
// snapshot is rejected by the whole-file CRC and recovery proceeds from the
// WAL alone — the compacted prefix is lost, but the store starts and every
// post-compaction write survives.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		t.Helper()
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		s.Put("compacted", bytes.Repeat([]byte("v"), 100))
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		s.Put("after", []byte("wal-only"))
		s.Close()
		data, err := os.ReadFile(filepath.Join(dir, snapshotName))
		if err != nil {
			t.Fatal(err)
		}
		return dir, data
	}

	check := func(t *testing.T, dir string, corrupted []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, snapshotName), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("corrupt snapshot failed Open: %v", err)
		}
		defer s.Close()
		if got := s.Metrics().SnapshotFallbacks; got != 1 {
			t.Errorf("SnapshotFallbacks = %d, want 1", got)
		}
		if _, ok := s.Get("compacted"); ok {
			t.Error("entry from the rejected snapshot survived")
		}
		if v, _ := s.Get("after"); !bytes.Equal(v, []byte("wal-only")) {
			t.Errorf("WAL entry lost in fallback: %q", v)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		dir, data := build(t)
		check(t, dir, data[:len(data)-10])
	})
	t.Run("bitflip-body", func(t *testing.T) {
		dir, data := build(t)
		data[len(data)/2] ^= 0x40
		check(t, dir, data)
	})
	t.Run("bitflip-crc", func(t *testing.T) {
		dir, data := build(t)
		data[len(data)-1] ^= 0x01
		check(t, dir, data)
	})
}

func TestSnapshotIntactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Metrics().SnapshotFallbacks; got != 0 {
		t.Errorf("valid snapshot counted as fallback: %d", got)
	}
	if s2.Len() != 2 {
		t.Errorf("Len = %d after snapshot recovery, want 2", s2.Len())
	}
}

// TestWALUnknownOpKeepsPrefix: a valid-CRC record with an unrecognized
// opcode stops replay at that offset, keeps the recovered prefix, counts the
// event, and keeps the store writable.
func TestWALUnknownOpKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir})
	s.Put("before", []byte("kept"))
	s.Close()

	// Append a future-version record (op 99) with a valid CRC, then a
	// normal record after it that replay must not reach.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(encodeRecord(99, "future", []byte("op"), 1))
	f.Write(encodeRecord(opPut, "unreachable", []byte("x"), 2))
	f.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("unknown WAL op must not fail Open: %v", err)
	}
	defer s2.Close()
	if v, _ := s2.Get("before"); !bytes.Equal(v, []byte("kept")) {
		t.Errorf("prefix lost: before = %q", v)
	}
	if _, ok := s2.Get("unreachable"); ok {
		t.Error("replay continued past the unknown op")
	}
	if got := s2.Metrics().UnknownWALOps; got != 1 {
		t.Errorf("UnknownWALOps = %d, want 1", got)
	}
	// The unreplayable tail was truncated, so new writes land at a
	// reachable offset for the next recovery.
	if err := s2.Put("new", []byte("write")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, _ := s3.Get("new"); !bytes.Equal(v, []byte("write")) {
		t.Errorf("post-truncation write unreachable: %q", v)
	}
}

func TestSyncAlwaysFsyncsEveryWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Fsyncs != 5 {
		t.Errorf("Fsyncs = %d, want 5", m.Fsyncs)
	}
	if m.FsyncBatchRecords != 5 {
		t.Errorf("FsyncBatchRecords = %d, want 5", m.FsyncBatchRecords)
	}
}

func TestSyncIntervalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m := s.Metrics(); m.FsyncBatchRecords == 20 {
			if m.Fsyncs == 0 {
				t.Fatal("batch records counted without an fsync")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flusher never covered all appends: %+v", s.Metrics())
}

func TestSyncPolicyValidation(t *testing.T) {
	if _, err := Open(Options{Sync: "sometimes"}); err == nil {
		t.Error("bogus sync policy accepted")
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever, ""} {
		s, err := Open(Options{Sync: p})
		if err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
			continue
		}
		s.Close()
	}
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir})
	s.Put("k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close errored: %v", err)
	}
	if err := s.Put("k2", []byte("v")); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v, want ErrClosed", err)
	}
	// reads still work
	if _, ok := s.Get("k"); !ok {
		t.Error("read after close failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := openMem(t, 0, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d-%d", w, i%50)
				s.Put(key, []byte{byte(i)})
				s.Get(key)
				if i%10 == 0 {
					s.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPropertyModelEquivalence compares the store against a plain map model
// under a random operation sequence (memory-only, no TTL).
func TestPropertyModelEquivalence(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint16
	}
	prop := func(ops []op) bool {
		s, err := Open(Options{})
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			switch o.Kind % 3 {
			case 0:
				v := []byte(fmt.Sprintf("v%d", o.Value))
				s.Put(key, v)
				model[key] = v
			case 1:
				s.Delete(key)
				delete(model, key)
			case 2:
				got, ok := s.Get(key)
				want, wantOK := model[key]
				if ok != wantOK || (ok && !bytes.Equal(got, want)) {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWALRecoveryEquivalence: after any sequence of puts/deletes,
// reopening from the WAL reproduces the same state.
func TestPropertyWALRecoveryEquivalence(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Value uint16
	}
	prop := func(ops []op) bool {
		dir, err := os.MkdirTemp("", "kvprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%8)
			if o.Kind%2 == 0 {
				v := []byte(fmt.Sprintf("v%d", o.Value))
				s.Put(key, v)
				model[key] = v
			} else {
				s.Delete(key)
				delete(model, key)
			}
		}
		s.Close()
		s2, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := s2.Get(k)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// BenchmarkSec42ReadWrite reproduces the §4.2 microbenchmark shape: reads
// and writes must complete in microseconds.
func BenchmarkGet(b *testing.B) {
	s, _ := Open(Options{TTL: 30 * time.Minute})
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("session-%d", i), bytes.Repeat([]byte("x"), 128))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("session-%d", i%10000))
	}
}

func BenchmarkPut(b *testing.B) {
	s, _ := Open(Options{TTL: 30 * time.Minute})
	val := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("session-%d", i%10000), val)
	}
}
