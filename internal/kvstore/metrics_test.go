package kvstore

import (
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	clock := newFakeClock()
	s := openMem(t, 30*time.Minute, clock)

	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("phantom key")
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}

	m := s.Metrics()
	if m.Puts != 2 || m.Gets != 2 || m.Hits != 1 || m.Deletes != 1 || m.Evictions != 0 {
		t.Fatalf("counters after ops: %+v", m)
	}

	// Lazy eviction on an expired read counts, as does Sweep.
	clock.Advance(31 * time.Minute)
	if _, ok := s.Get("a"); ok {
		t.Fatal("a should have expired")
	}
	if err := s.Put("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(31 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	m = s.Metrics()
	if m.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (one lazy, one swept): %+v", m.Evictions, m)
	}
}

func TestMetricsWALBytes(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	s, err := Open(Options{Dir: dir, TTL: time.Hour, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if m := s.Metrics(); m.WALBytes != 0 {
		t.Fatalf("fresh store WALBytes = %d", m.WALBytes)
	}
	if err := s.Put("key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	// op(1)+ts(8)+klen(4)+vlen(4)+key(3)+value(5)+crc(4) = 29 bytes.
	if m := s.Metrics(); m.WALBytes != 29 {
		t.Fatalf("WALBytes = %d, want 29", m.WALBytes)
	}
}
