package kvstore

import (
	"bytes"
	"testing"
)

// storedBacking returns the address of the first byte of the value stored
// under key, for asserting whether a rewrite reused the old buffer.
func storedBacking(t *testing.T, s *Store, key string) *byte {
	t.Helper()
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if !ok || len(e.value) == 0 {
		t.Fatalf("no stored value under %q", key)
	}
	return &e.value[0]
}

func TestGetAppendReusesDst(t *testing.T) {
	s := openMem(t, 0, nil)
	if err := s.Put("k", []byte("hello")); err != nil {
		t.Fatal(err)
	}

	// A dst with enough capacity is extended in place: same backing array,
	// no allocation on the steady-state read path.
	dst := make([]byte, 0, 32)
	got, ok := s.GetAppend("k", dst)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("GetAppend = %q,%v want hello,true", got, ok)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("GetAppend reallocated although dst had capacity")
	}

	// Existing content in dst is preserved — GetAppend appends, like the
	// standard library's append-style APIs.
	prefixed, ok := s.GetAppend("k", []byte("pre-"))
	if !ok || !bytes.Equal(prefixed, []byte("pre-hello")) {
		t.Fatalf("GetAppend with prefix = %q,%v", prefixed, ok)
	}

	// A miss returns dst unchanged and ok=false.
	miss, ok := s.GetAppend("absent", dst)
	if ok || len(miss) != 0 {
		t.Fatalf("GetAppend miss = %q,%v want empty,false", miss, ok)
	}
}

// TestGetAppendCopies pins the aliasing contract: the returned bytes are a
// copy, never a window into the memtable — required now that Put may rewrite
// a value's backing in place.
func TestGetAppendCopies(t *testing.T) {
	s := openMem(t, 0, nil)
	s.Put("k", []byte("abc"))
	v, _ := s.GetAppend("k", nil)
	v[0] = 'X'
	if again, _ := s.Get("k"); !bytes.Equal(again, []byte("abc")) {
		t.Error("mutating a GetAppend result corrupted the store")
	}
	s.Put("k", []byte("zzz"))
	if !bytes.Equal(v, []byte("Xbc")) {
		t.Error("a Put rewrote bytes previously returned by GetAppend")
	}
}

func TestPutReusesValueBuffer(t *testing.T) {
	s := openMem(t, 0, nil)
	if err := s.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	before := storedBacking(t, s, "k")

	// Rewriting with a value that fits reuses the old backing — the session
	// hot path rewrites the same key every request at near-constant size.
	if err := s.Put("k", []byte("abcde")); err != nil {
		t.Fatal(err)
	}
	if after := storedBacking(t, s, "k"); after != before {
		t.Error("Put allocated a fresh buffer although the old one fit")
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, []byte("abcde")) {
		t.Fatalf("Get after in-place rewrite = %q", v)
	}

	// A larger value cannot fit and must get fresh backing.
	grown := bytes.Repeat([]byte("x"), 64)
	if err := s.Put("k", grown); err != nil {
		t.Fatal(err)
	}
	if after := storedBacking(t, s, "k"); after == before {
		t.Error("Put reused a buffer smaller than the new value")
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, grown) {
		t.Fatalf("Get after growing rewrite = %q", v)
	}
}

// TestPutSnapshotSuspendsReuse verifies the Compact interlock: while the
// snapshotting flag is up, a fitting rewrite must NOT recycle the old
// backing, because the compaction cut aliases it.
func TestPutSnapshotSuspendsReuse(t *testing.T) {
	s := openMem(t, 0, nil)
	if err := s.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	before := storedBacking(t, s, "k")

	s.snapshotting.Store(true)
	defer s.snapshotting.Store(false)
	if err := s.Put("k", []byte("abcde")); err != nil {
		t.Fatal(err)
	}
	if after := storedBacking(t, s, "k"); after == before {
		t.Error("Put reused a value buffer during snapshot serialization")
	}
	if v, _ := s.Get("k"); !bytes.Equal(v, []byte("abcde")) {
		t.Fatalf("Get = %q", v)
	}
}
