// Package legacy implements the control arm of the paper's A/B test: a
// variant of classic item-to-item collaborative filtering (Sarwar et al.,
// WWW 2001), the recommender Serenade replaced at bol.com. It recommends
// items that co-occur in historical sessions with the item currently viewed
// ("other customers also viewed"), using cosine-normalised cooccurrence
// counts, ignoring the rest of the evolving session.
package legacy

import (
	"math"
	"sort"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Model holds the precomputed item-item neighbourhoods.
type Model struct {
	neighbors map[sessions.ItemID][]core.ScoredItem
}

// Config shapes training.
type Config struct {
	// MaxNeighbors caps the stored neighbourhood per item; 0 means 100.
	MaxNeighbors int
	// MaxSessionLength skips the tail of very long sessions during
	// cooccurrence counting (cost is quadratic in session length);
	// 0 means 50.
	MaxSessionLength int
}

type pairKey struct{ a, b sessions.ItemID }

// Train computes cosine-normalised cooccurrence neighbourhoods from
// historical sessions.
func Train(ds *sessions.Dataset, cfg Config) *Model {
	if cfg.MaxNeighbors <= 0 {
		cfg.MaxNeighbors = 100
	}
	if cfg.MaxSessionLength <= 0 {
		cfg.MaxSessionLength = 50
	}

	itemCount := make(map[sessions.ItemID]int)
	pairCount := make(map[pairKey]int)
	for i := range ds.Sessions {
		items := ds.Sessions[i].Items
		if len(items) > cfg.MaxSessionLength {
			items = items[:cfg.MaxSessionLength]
		}
		seen := make(map[sessions.ItemID]struct{}, len(items))
		unique := make([]sessions.ItemID, 0, len(items))
		for _, it := range items {
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			unique = append(unique, it)
		}
		for _, it := range unique {
			itemCount[it]++
		}
		for x := 0; x < len(unique); x++ {
			for y := x + 1; y < len(unique); y++ {
				a, b := unique[x], unique[y]
				if a > b {
					a, b = b, a
				}
				pairCount[pairKey{a, b}]++
			}
		}
	}

	neighbors := make(map[sessions.ItemID][]core.ScoredItem, len(itemCount))
	for pk, c := range pairCount {
		sim := float64(c) / math.Sqrt(float64(itemCount[pk.a])*float64(itemCount[pk.b]))
		neighbors[pk.a] = append(neighbors[pk.a], core.ScoredItem{Item: pk.b, Score: sim})
		neighbors[pk.b] = append(neighbors[pk.b], core.ScoredItem{Item: pk.a, Score: sim})
	}
	for it, list := range neighbors {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Score != list[j].Score {
				return list[i].Score > list[j].Score
			}
			return list[i].Item < list[j].Item
		})
		if len(list) > cfg.MaxNeighbors {
			list = list[:cfg.MaxNeighbors:cfg.MaxNeighbors]
		}
		neighbors[it] = list
	}
	return &Model{neighbors: neighbors}
}

// Recommend returns the top-n neighbours of the most recent item of the
// evolving session. Like the production legacy system, it is stateless with
// respect to the rest of the session.
func (m *Model) Recommend(evolving []sessions.ItemID, n int) []core.ScoredItem {
	if len(evolving) == 0 || n <= 0 {
		return nil
	}
	current := evolving[len(evolving)-1]
	list := m.neighbors[current]
	if len(list) > n {
		list = list[:n]
	}
	out := make([]core.ScoredItem, len(list))
	copy(out, list)
	return out
}

// Neighbors exposes an item's full stored neighbourhood (read-only), for
// inspection and tests.
func (m *Model) Neighbors(item sessions.ItemID) []core.ScoredItem {
	return m.neighbors[item]
}
