package legacy

import (
	"math"
	"testing"

	"serenade/internal/sessions"
)

func dataset(lists ...[]sessions.ItemID) *sessions.Dataset {
	var ss []sessions.Session
	for i, items := range lists {
		times := make([]int64, len(items))
		for j := range times {
			times[j] = int64(100*i + j)
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: items, Times: times})
	}
	return sessions.FromSessions("legacy-test", ss)
}

func TestCooccurrenceSimilarity(t *testing.T) {
	// Items 1 and 2 co-occur in 2 of the sessions; item counts: 1 -> 3,
	// 2 -> 2, so sim(1,2) = 2 / sqrt(3·2).
	m := Train(dataset(
		[]sessions.ItemID{1, 2},
		[]sessions.ItemID{1, 2},
		[]sessions.ItemID{1, 3},
	), Config{})
	recs := m.Recommend([]sessions.ItemID{1}, 10)
	if len(recs) != 2 {
		t.Fatalf("recommendations = %v, want items 2 and 3", recs)
	}
	if recs[0].Item != 2 {
		t.Errorf("top item = %d, want 2", recs[0].Item)
	}
	want := 2.0 / math.Sqrt(3*2)
	if math.Abs(recs[0].Score-want) > 1e-12 {
		t.Errorf("sim(1,2) = %v, want %v", recs[0].Score, want)
	}
	// Symmetry.
	back := m.Recommend([]sessions.ItemID{2}, 10)
	if back[0].Item != 1 || math.Abs(back[0].Score-want) > 1e-12 {
		t.Errorf("sim(2,1) = %+v, want symmetric %v", back[0], want)
	}
}

func TestUsesOnlyMostRecentItem(t *testing.T) {
	m := Train(dataset(
		[]sessions.ItemID{1, 2},
		[]sessions.ItemID{3, 4},
	), Config{})
	recs := m.Recommend([]sessions.ItemID{1, 3}, 10)
	for _, r := range recs {
		if r.Item == 2 {
			t.Error("legacy model must ignore items before the most recent one")
		}
	}
	if len(recs) != 1 || recs[0].Item != 4 {
		t.Errorf("recs = %v, want just item 4", recs)
	}
}

func TestDuplicatesWithinSessionCountOnce(t *testing.T) {
	m := Train(dataset([]sessions.ItemID{1, 1, 2}, []sessions.ItemID{1, 3}), Config{})
	recs := m.Recommend([]sessions.ItemID{1}, 10)
	// sim(1,2) = 1/sqrt(2*1); duplicates must not inflate counts.
	for _, r := range recs {
		if r.Item == 2 {
			want := 1.0 / math.Sqrt(2*1)
			if math.Abs(r.Score-want) > 1e-12 {
				t.Errorf("sim(1,2) = %v, want %v", r.Score, want)
			}
		}
	}
}

func TestMaxNeighborsCap(t *testing.T) {
	lists := [][]sessions.ItemID{}
	for i := 1; i <= 10; i++ {
		lists = append(lists, []sessions.ItemID{0, sessions.ItemID(i)})
	}
	m := Train(dataset(lists...), Config{MaxNeighbors: 3})
	if got := len(m.Neighbors(0)); got != 3 {
		t.Errorf("neighbors stored = %d, want cap 3", got)
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	m := Train(dataset([]sessions.ItemID{1, 2}), Config{})
	if m.Recommend(nil, 5) != nil {
		t.Error("empty session must return nil")
	}
	if m.Recommend([]sessions.ItemID{1}, 0) != nil {
		t.Error("n=0 must return nil")
	}
	if got := m.Recommend([]sessions.ItemID{99}, 5); len(got) != 0 {
		t.Errorf("unknown item returned %v", got)
	}
}

func TestRecommendCopiesResult(t *testing.T) {
	m := Train(dataset([]sessions.ItemID{1, 2}, []sessions.ItemID{1, 3}), Config{})
	a := m.Recommend([]sessions.ItemID{1}, 5)
	a[0].Score = -1
	b := m.Recommend([]sessions.ItemID{1}, 5)
	if b[0].Score == -1 {
		t.Error("mutating a result corrupted the model")
	}
}
