package loadgen

import (
	"hash/fnv"
	"math"

	"serenade/internal/core"
	"serenade/internal/rank"
	"serenade/internal/serving"
	"serenade/internal/sessions"
)

// ClickModel is a seeded behavioural click model over recommendation lists:
// when the item the user actually clicked next appears in the returned list,
// they click the recommendation slot with a probability that decays with the
// item's rank position (position bias), optionally skewed per variant to
// simulate arms of different engagement.
//
// The model is deterministic under a fixed seed: the click draw for a given
// (session, step, variant) is a hash of those identities, not a shared PRNG
// stream, so replaying the workload concurrently — or in a different order —
// produces the same clicks. That determinism is what lets a loadtest run be
// committed as a BENCH artifact and compared across PRs.
//
// Because the model knows its own propensities, the harness can invert them:
// UnbiasedMRR reweights the attributed click-through counts by 1/p(rank)
// (inverse propensity weighting) to recover the MRR@k the offline evaluator
// measures, which is the online-vs-offline tolerance check.
type ClickModel struct {
	// Seed fixes the deterministic click draws.
	Seed int64
	// Base is the click probability at rank 1 when the next item leads the
	// list; 0 means DefaultClickBase.
	Base float64
	// PosDecay is the multiplicative decay per rank position: the rank-r
	// propensity is Base * PosDecay^(r-1). 0 means DefaultPosDecay.
	PosDecay float64
	// VariantSkew multiplies every propensity for a named variant (an
	// engagement uplift or degradation per arm); unlisted variants use 1.
	VariantSkew map[string]float64
}

// Default click-model parameters, matching the A/B simulator's engagement
// shape (abtest.EngagementModel HitBoost/RankDecay).
const (
	DefaultClickBase = 0.35
	DefaultPosDecay  = 0.85
)

// withDefaults fills zero fields.
func (m ClickModel) withDefaults() ClickModel {
	if m.Base <= 0 {
		m.Base = DefaultClickBase
	}
	if m.PosDecay <= 0 {
		m.PosDecay = DefaultPosDecay
	}
	return m
}

// skew resolves the variant multiplier.
func (m ClickModel) skew(variant string) float64 {
	if s, ok := m.VariantSkew[variant]; ok && s > 0 {
		return s
	}
	return 1
}

// Propensity is the click probability for the next item at 1-based rank r
// under a variant; 0 for r <= 0 (the item was not in the list — the model
// never clicks items the user was not going to visit anyway).
func (m ClickModel) Propensity(r int, variant string) float64 {
	if r <= 0 {
		return 0
	}
	mm := m.withDefaults()
	p := mm.Base * math.Pow(mm.PosDecay, float64(r-1)) * mm.skew(variant)
	if p > 1 {
		p = 1
	}
	return p
}

// Clicks decides whether the simulated user clicks the recommendation at
// 1-based rank r, shown for (sessionKey, step) under a variant. The draw is
// a pure function of the model seed and those identities.
func (m ClickModel) Clicks(sessionKey string, step int, variant string, r int) bool {
	p := m.Propensity(r, variant)
	if p <= 0 {
		return false
	}
	return draw(m.Seed, sessionKey, step, variant) < p
}

// draw hashes (seed, session, step, variant) into [0, 1).
func draw(seed int64, sessionKey string, step int, variant string) float64 {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(&buf, uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(sessionKey))
	putUint64(&buf, uint64(step))
	h.Write(buf[:])
	h.Write([]byte(variant))
	// 53 bits of hash → uniform float64 in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// UnbiasedMRR recovers an estimate of the offline MRR@k from attributed
// click counts by rank: each rank-r click is reweighted by (1/r)/p(r), the
// reciprocal-rank contribution divided by the propensity with which the
// model surfaces it, then averaged over exposures (inverse propensity
// weighting). With enough exposures this converges to the offline MRR@k the
// evaluator measures on the same traffic, which is the online-vs-offline
// tolerance check of the quality loop.
func (m ClickModel) UnbiasedMRR(rankClicks []uint64, exposures uint64, variant string) float64 {
	if exposures == 0 {
		return 0
	}
	var sum float64
	for i, c := range rankClicks {
		if c == 0 {
			continue
		}
		r := i + 1
		p := m.Propensity(r, variant)
		if p <= 0 {
			continue
		}
		sum += float64(c) * rank.Reciprocal(r) / p
	}
	return sum / float64(exposures)
}

// ClickStep is one replayed click with its ground-truth next item, the unit
// the quality harness drives: issue the request, look up the next item's
// rank in the response, roll the click model, and POST the feedback.
type ClickStep struct {
	Request serving.Request
	// Next is the item the user actually visited next (the relevance label);
	// NextValid is false on the session's final click, which has no label
	// and therefore can never produce a simulated click.
	Next      sessions.ItemID
	NextValid bool
	// Step is the click's position within its session, part of the
	// deterministic draw identity.
	Step int
}

// ClickWorkload is Workload with ground-truth labels attached: each click of
// each test session becomes one step whose Next is the session's following
// item. limit > 0 caps the number of steps.
func ClickWorkload(ds *sessions.Dataset, limit int) []ClickStep {
	var steps []ClickStep
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		for t, item := range s.Items {
			st := ClickStep{
				Request: serving.Request{
					SessionKey: sessionKeyFor(s.ID),
					Item:       item,
					Consent:    true,
				},
				Step: t,
			}
			if t+1 < len(s.Items) {
				st.Next = s.Items[t+1]
				st.NextValid = true
			}
			steps = append(steps, st)
			if limit > 0 && len(steps) >= limit {
				return steps
			}
		}
	}
	return steps
}

// RankOfNext reports the 1-based rank of the ground-truth next item in a
// response list (0 when absent or unlabelled) — shared rank math with the
// offline evaluator via internal/rank.
func (st ClickStep) RankOfNext(items []core.ScoredItem) int {
	if !st.NextValid {
		return 0
	}
	return rank.RankOfScored(items, st.Next, 0)
}

func sessionKeyFor(id sessions.SessionID) string {
	return "replay-" + itoa64(uint64(id))
}

func itoa64(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
