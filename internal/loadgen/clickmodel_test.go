package loadgen

import (
	"math"
	"testing"

	"serenade/internal/core"
	"serenade/internal/synth"
)

func TestPropensityShape(t *testing.T) {
	m := ClickModel{Seed: 1}
	if p := m.Propensity(0, "a"); p != 0 {
		t.Fatalf("Propensity(0) = %v, want 0", p)
	}
	if p := m.Propensity(1, "a"); p != DefaultClickBase {
		t.Fatalf("Propensity(1) = %v, want %v", p, DefaultClickBase)
	}
	// Monotonically decaying with rank.
	for r := 2; r <= 20; r++ {
		if m.Propensity(r, "a") >= m.Propensity(r-1, "a") {
			t.Fatalf("propensity not decaying at rank %d", r)
		}
	}
	// Variant skew multiplies; unknown variants are neutral.
	skewed := ClickModel{Seed: 1, VariantSkew: map[string]float64{"b": 0.5}}
	if p := skewed.Propensity(1, "b"); math.Abs(p-DefaultClickBase*0.5) > 1e-12 {
		t.Fatalf("skewed propensity = %v", p)
	}
	if p := skewed.Propensity(1, "other"); p != DefaultClickBase {
		t.Fatalf("unskewed propensity = %v", p)
	}
	// Propensities cap at 1.
	hot := ClickModel{Seed: 1, Base: 0.9, VariantSkew: map[string]float64{"b": 5}}
	if p := hot.Propensity(1, "b"); p != 1 {
		t.Fatalf("capped propensity = %v, want 1", p)
	}
}

// TestClickDeterminism is the -click-model seed guarantee: the same seed
// produces identical click decisions regardless of evaluation order, and a
// different seed produces a different stream.
func TestClickDeterminism(t *testing.T) {
	m1 := ClickModel{Seed: 42}
	m2 := ClickModel{Seed: 42}
	m3 := ClickModel{Seed: 43}
	same, diff := 0, 0
	for step := 0; step < 500; step++ {
		a := m1.Clicks("sess", step, "a", 1)
		if b := m2.Clicks("sess", step, "a", 1); a != b {
			t.Fatalf("same seed disagreed at step %d", step)
		}
		if a == m3.Clicks("sess", step, "a", 1) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical click streams")
	}
	// The draw is identity-hashed, not a shared stream: evaluating out of
	// order changes nothing.
	if m1.Clicks("sess", 7, "a", 1) != m2.Clicks("sess", 7, "a", 1) {
		t.Fatal("out-of-order evaluation changed the draw")
	}
}

// TestClickRateConverges: across many draws the empirical click rate at a
// fixed rank approaches the configured propensity.
func TestClickRateConverges(t *testing.T) {
	m := ClickModel{Seed: 7}
	const n = 20000
	clicks := 0
	for i := 0; i < n; i++ {
		if m.Clicks("s", i, "a", 1) {
			clicks++
		}
	}
	got := float64(clicks) / n
	if math.Abs(got-DefaultClickBase) > 0.02 {
		t.Fatalf("empirical rate %v, want ~%v", got, DefaultClickBase)
	}
}

// TestUnbiasedMRRRecovers: simulate position-biased clicks on a known rank
// distribution and check the IPW estimator recovers the true MRR within
// tolerance — the core of the online-vs-offline comparison.
func TestUnbiasedMRRRecovers(t *testing.T) {
	m := ClickModel{Seed: 11}
	// Ground truth: the next item always lands at rank (i%4)+1, so true
	// MRR = (1 + 1/2 + 1/3 + 1/4) / 4.
	trueMRR := (1.0 + 0.5 + 1.0/3 + 0.25) / 4
	const n = 40000
	rankClicks := make([]uint64, 8)
	for i := 0; i < n; i++ {
		r := i%4 + 1
		if m.Clicks("s", i, "a", r) {
			rankClicks[r-1]++
		}
	}
	got := m.UnbiasedMRR(rankClicks, n, "a")
	if math.Abs(got-trueMRR)/trueMRR > 0.05 {
		t.Fatalf("IPW MRR = %v, true %v (>5%% off)", got, trueMRR)
	}
	// Zero exposures never divide by zero.
	if v := m.UnbiasedMRR(rankClicks, 0, "a"); v != 0 {
		t.Fatalf("UnbiasedMRR with 0 exposures = %v", v)
	}
}

func TestClickWorkloadLabels(t *testing.T) {
	ds, err := synth.Generate(synth.Small(9))
	if err != nil {
		t.Fatal(err)
	}
	steps := ClickWorkload(ds, 0)
	if len(steps) == 0 {
		t.Fatal("empty click workload")
	}
	// Each labelled step's Next is the session's following item; the final
	// click of each session is unlabelled.
	bySession := map[string][]ClickStep{}
	for _, st := range steps {
		bySession[st.Request.SessionKey] = append(bySession[st.Request.SessionKey], st)
	}
	for key, ss := range bySession {
		for i, st := range ss {
			if st.Step != i {
				t.Fatalf("%s: step %d numbered %d", key, i, st.Step)
			}
			last := i == len(ss)-1
			if last && st.NextValid {
				t.Fatalf("%s: final click has a label", key)
			}
			if !last {
				if !st.NextValid || st.Next != ss[i+1].Request.Item {
					t.Fatalf("%s: step %d label %v/%v, want next item %v",
						key, i, st.Next, st.NextValid, ss[i+1].Request.Item)
				}
			}
		}
	}
	// The cap truncates.
	if got := ClickWorkload(ds, 5); len(got) != 5 {
		t.Fatalf("capped workload = %d steps, want 5", len(got))
	}
	// RankOfNext finds the labelled item in a scored list.
	st := ClickStep{Next: 3, NextValid: true}
	list := []core.ScoredItem{{Item: 5}, {Item: 3}, {Item: 9}}
	if r := st.RankOfNext(list); r != 2 {
		t.Fatalf("RankOfNext = %d, want 2", r)
	}
	if r := (ClickStep{}).RankOfNext(list); r != 0 {
		t.Fatalf("unlabelled RankOfNext = %d, want 0", r)
	}
}
