package loadgen

import (
	"os"
	"strconv"
	"strings"
	"time"
)

// cpuSampler reads the process's cumulative CPU time from /proc/self/stat.
// On systems without procfs it degrades to reporting no samples; the load
// test then simply omits the core-usage curve.
type cpuSampler struct {
	path string
	// ticksPerSecond is the kernel clock tick rate (USER_HZ); 100 on
	// effectively all Linux systems.
	ticksPerSecond float64
}

func newCPUSampler() *cpuSampler {
	return &cpuSampler{path: "/proc/self/stat", ticksPerSecond: 100}
}

// processCPUTime returns the cumulative user+system CPU time of the process.
func (c *cpuSampler) processCPUTime() (time.Duration, bool) {
	data, err := os.ReadFile(c.path)
	if err != nil {
		return 0, false
	}
	return parseProcStatCPU(string(data), c.ticksPerSecond)
}

// parseProcStatCPU extracts utime+stime (fields 14 and 15, 1-based) from a
// /proc/<pid>/stat line. The command field (2) may contain spaces and
// parentheses, so parsing starts after the final ')'.
func parseProcStatCPU(stat string, ticksPerSecond float64) (time.Duration, bool) {
	close := strings.LastIndexByte(stat, ')')
	if close < 0 || close+2 > len(stat) {
		return 0, false
	}
	fields := strings.Fields(stat[close+1:])
	// fields[0] is state (field 3); utime is field 14 -> index 11.
	if len(fields) < 13 {
		return 0, false
	}
	utime, err1 := strconv.ParseUint(fields[11], 10, 64)
	stime, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	seconds := float64(utime+stime) / ticksPerSecond
	return time.Duration(seconds * float64(time.Second)), true
}
