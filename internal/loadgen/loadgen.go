// Package loadgen generates request load against a recommendation service
// and records the measurements plotted in Figure 3(b) of the paper:
// requests per second, response-latency percentiles (p75/p90/p99.5) per time
// bucket, and core usage.
//
// The generator is open-loop: requests are dispatched on a fixed schedule
// derived from the target rate regardless of how fast responses return, the
// discipline that exposes queueing delay (a closed loop would throttle
// itself and hide latency degradation).
package loadgen

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/metrics"
	"serenade/internal/serving"
	"serenade/internal/sessions"
)

// Config parameterises a load test.
type Config struct {
	// TargetRPS is the intended request rate.
	TargetRPS int
	// Duration is the test length.
	Duration time.Duration
	// Workers is the number of concurrent request executors; 0 selects
	// enough for the target rate assuming ~1ms service time.
	Workers int
	// Bucket is the time-series resolution; 0 means one second.
	Bucket time.Duration
}

// BucketPoint is one time bucket of load-test output.
type BucketPoint struct {
	Offset   time.Duration
	Requests uint64
	// Errors counts failed requests in the bucket, including dispatches
	// dropped because the workers were saturated — the per-bucket error
	// series an SLO burn-rate trajectory is read against.
	Errors uint64
	P75    time.Duration
	P90    time.Duration
	P995   time.Duration
	// Cores is the average number of CPU cores busy during the bucket
	// (process-wide), the "core usage" curve of Figure 3(b).
	Cores float64
}

// bucketCounter is a mutex-protected per-bucket event counter aligned with
// the latency series buckets.
type bucketCounter struct {
	bucket time.Duration
	mu     sync.Mutex
	counts []uint64
}

func (c *bucketCounter) inc(offset time.Duration) {
	if offset < 0 {
		offset = 0
	}
	idx := int(offset / c.bucket)
	c.mu.Lock()
	for len(c.counts) <= idx {
		c.counts = append(c.counts, 0)
	}
	c.counts[idx]++
	c.mu.Unlock()
}

func (c *bucketCounter) at(i int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.counts) {
		return 0
	}
	return c.counts[i]
}

// Result summarises a load test.
type Result struct {
	Points      []BucketPoint
	Total       *metrics.Histogram
	Sent        uint64
	Errors      uint64
	AchievedRPS float64
	Elapsed     time.Duration

	// GC telemetry over the run (process-wide MemStats deltas). The
	// allocation count includes the generator's own bookkeeping, so the
	// absolute number overstates the server cost slightly; its movement
	// between runs is the signal — an edge that re-grows per-request
	// garbage shows up here before the latency percentiles react.
	AllocsPerRequest float64
	AllocBytesPerReq float64
	GCPause          time.Duration
	GCCycles         uint32
}

// Run drives do at the configured rate. do receives a monotonically
// increasing request number.
func Run(cfg Config, do func(i uint64) error) (*Result, error) {
	if cfg.TargetRPS <= 0 {
		return nil, fmt.Errorf("loadgen: TargetRPS must be positive, got %d", cfg.TargetRPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.TargetRPS/500 + 4
	}

	series := metrics.NewSeries(cfg.Bucket)
	errSeries := &bucketCounter{bucket: cfg.Bucket}
	var sent, errs atomic.Uint64
	queue := make(chan uint64, cfg.TargetRPS) // one second of headroom
	var wg sync.WaitGroup
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				began := time.Now()
				err := do(i)
				elapsed := time.Since(began)
				series.Record(began.Sub(start), elapsed)
				if err != nil {
					errs.Add(1)
					errSeries.inc(began.Sub(start))
				}
			}
		}()
	}

	cpu := newCPUSampler()
	cpuSamples := sampleCPUPerBucket(cpu, cfg.Bucket, cfg.Duration)

	// Dispatch in 10ms slices to approximate a uniform arrival process
	// without a per-request timer.
	const slice = 10 * time.Millisecond
	perSlice := float64(cfg.TargetRPS) * slice.Seconds()
	var carry float64
	var n uint64
	deadline := start.Add(cfg.Duration)
	next := start
	for time.Now().Before(deadline) {
		carry += perSlice
		for carry >= 1 {
			carry--
			select {
			case queue <- n:
				n++
			default:
				// The workers are saturated; the request is dropped, which
				// is what a production load balancer would do past SLA.
				errs.Add(1)
				errSeries.inc(time.Since(start))
			}
		}
		next = next.Add(slice)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)
	sent.Store(n)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	cores := <-cpuSamples
	points := make([]BucketPoint, 0)
	for i, sp := range series.Points() {
		p := BucketPoint{
			Offset:   sp.Offset,
			Requests: sp.Requests,
			Errors:   errSeries.at(i),
			P75:      sp.P75,
			P90:      sp.P90,
			P995:     sp.P995,
		}
		if i < len(cores) {
			p.Cores = cores[i]
		}
		points = append(points, p)
	}
	res := &Result{
		Points:      points,
		Total:       series.Total(),
		Sent:        sent.Load(),
		Errors:      errs.Load(),
		AchievedRPS: float64(sent.Load()) / elapsed.Seconds(),
		Elapsed:     elapsed,
		GCPause:     time.Duration(msAfter.PauseTotalNs - msBefore.PauseTotalNs),
		GCCycles:    msAfter.NumGC - msBefore.NumGC,
	}
	if done := res.Sent; done > 0 {
		res.AllocsPerRequest = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(done)
		res.AllocBytesPerReq = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(done)
	}
	return res, nil
}

// sampleCPUPerBucket samples process CPU time per bucket for the duration
// and delivers the per-bucket core usage once finished.
func sampleCPUPerBucket(c *cpuSampler, bucket, duration time.Duration) <-chan []float64 {
	out := make(chan []float64, 1)
	go func() {
		var cores []float64
		prev, _ := c.processCPUTime()
		deadline := time.Now().Add(duration)
		for time.Now().Before(deadline) {
			time.Sleep(bucket)
			cur, ok := c.processCPUTime()
			if !ok {
				cores = append(cores, 0)
				continue
			}
			cores = append(cores, (cur-prev).Seconds()/bucket.Seconds())
			prev = cur
		}
		out <- cores
	}()
	return out
}

// Workload turns held-out sessions into the replay request stream the
// paper's load test uses ("replaying historical traffic"). Each click of
// each test session becomes one session-update request; limit > 0 caps the
// number of requests.
func Workload(ds *sessions.Dataset, limit int) []serving.Request {
	return BurstWorkload(ds, limit, 1)
}

// BurstWorkload replays each session burst times under distinct session
// keys, interleaved click by click: at every point of every session, burst
// users sit at the same position of the same click path. This is the
// duplicate-heavy traffic shape of flash sales and landing-page campaigns —
// the workload the single-flight result cache and the batcher's shared
// posting walks are built for. burst <= 1 degenerates to Workload.
func BurstWorkload(ds *sessions.Dataset, limit, burst int) []serving.Request {
	if burst < 1 {
		burst = 1
	}
	var reqs []serving.Request
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		for _, item := range s.Items {
			for b := 0; b < burst; b++ {
				key := fmt.Sprintf("replay-%d", s.ID)
				if burst > 1 {
					key = fmt.Sprintf("replay-%d-%d", s.ID, b)
				}
				reqs = append(reqs, serving.Request{
					SessionKey: key,
					Item:       item,
					Consent:    true,
				})
				if limit > 0 && len(reqs) >= limit {
					return reqs
				}
			}
		}
	}
	return reqs
}
