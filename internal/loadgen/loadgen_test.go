package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"serenade/internal/sessions"
)

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{TargetRPS: 0, Duration: time.Second}, func(uint64) error { return nil }); err == nil {
		t.Error("zero RPS accepted")
	}
	if _, err := Run(Config{TargetRPS: 10, Duration: 0}, func(uint64) error { return nil }); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunAchievesApproximateRate(t *testing.T) {
	var calls atomic.Uint64
	res, err := Run(Config{TargetRPS: 500, Duration: 600 * time.Millisecond, Bucket: 100 * time.Millisecond},
		func(uint64) error {
			calls.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	// ~300 expected; allow wide scheduling slack.
	if res.Sent < 150 || res.Sent > 450 {
		t.Errorf("sent = %d, want roughly 300", res.Sent)
	}
	if calls.Load() != res.Sent {
		t.Errorf("do() called %d times, sent = %d", calls.Load(), res.Sent)
	}
	if res.AchievedRPS < 200 || res.AchievedRPS > 800 {
		t.Errorf("achieved RPS = %.0f, want near 500", res.AchievedRPS)
	}
	if res.Total.Count() != res.Sent {
		t.Errorf("histogram count %d != sent %d", res.Total.Count(), res.Sent)
	}
	if len(res.Points) == 0 {
		t.Error("no series points")
	}
}

func TestRunCountsErrors(t *testing.T) {
	res, err := Run(Config{TargetRPS: 200, Duration: 300 * time.Millisecond},
		func(i uint64) error {
			if i%2 == 0 {
				return errors.New("boom")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("errors not counted")
	}
	if res.Errors > res.Sent {
		t.Errorf("errors %d exceed sent %d", res.Errors, res.Sent)
	}
}

func TestRunRecordsLatency(t *testing.T) {
	res, err := Run(Config{TargetRPS: 100, Duration: 300 * time.Millisecond, Workers: 8},
		func(uint64) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p90 := res.Total.Percentile(90); p90 < time.Millisecond {
		t.Errorf("p90 = %v, want >= 2ms-ish for a 2ms handler", p90)
	}
}

func TestParseProcStatCPU(t *testing.T) {
	// A realistic /proc/self/stat line; the command contains spaces and a
	// parenthesis to exercise the parser. utime=250 stime=150 ticks.
	stat := "1234 (weird (name) x) S 1 1 1 0 -1 4194560 500 0 0 0 250 150 0 0 20 0 8 0 100 1000000 200 18446744073709551615"
	d, ok := parseProcStatCPU(stat, 100)
	if !ok {
		t.Fatal("parse failed")
	}
	if want := 4 * time.Second; d != want {
		t.Errorf("cpu time = %v, want %v", d, want)
	}
}

func TestParseProcStatCPUMalformed(t *testing.T) {
	for _, s := range []string{"", "no parens here", "1 (x) S 1 2 3"} {
		if _, ok := parseProcStatCPU(s, 100); ok {
			t.Errorf("malformed stat %q parsed", s)
		}
	}
}

func TestCPUSamplerLive(t *testing.T) {
	c := newCPUSampler()
	d, ok := c.processCPUTime()
	if !ok {
		t.Skip("no procfs on this system")
	}
	if d < 0 {
		t.Errorf("cpu time = %v, want >= 0", d)
	}
}

func TestWorkload(t *testing.T) {
	ds := sessions.FromSessions("w", []sessions.Session{
		{ID: 0, Items: []sessions.ItemID{1, 2}, Times: []int64{10, 20}},
		{ID: 1, Items: []sessions.ItemID{3}, Times: []int64{30}},
	})
	reqs := Workload(ds, 0)
	if len(reqs) != 3 {
		t.Fatalf("requests = %d, want 3", len(reqs))
	}
	if reqs[0].SessionKey != "replay-0" || reqs[2].SessionKey != "replay-1" {
		t.Errorf("session keys wrong: %v", reqs)
	}
	if !reqs[0].Consent {
		t.Error("replay requests must carry consent")
	}
	if limited := Workload(ds, 2); len(limited) != 2 {
		t.Errorf("limited = %d, want 2", len(limited))
	}
}
