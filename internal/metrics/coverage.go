package metrics

import (
	"serenade/internal/rank"
	"serenade/internal/sessions"
)

// CoverageAccumulator measures catalogue coverage and popularity bias of a
// recommender — the standard session-rec companion metrics to accuracy:
// a recommender that only ever surfaces the same few bestsellers can score
// well on accuracy while being useless for discovery.
type CoverageAccumulator struct {
	catalogSize int
	popularity  map[sessions.ItemID]int

	recommended map[sessions.ItemID]struct{}
	events      int
	popSum      float64
	popCount    int
}

// NewCoverageAccumulator creates an accumulator. catalogSize is the number
// of recommendable items; popularity maps items to their training click
// counts (used for the popularity-bias average).
func NewCoverageAccumulator(catalogSize int, popularity map[sessions.ItemID]int) *CoverageAccumulator {
	return &CoverageAccumulator{
		catalogSize: catalogSize,
		popularity:  popularity,
		recommended: make(map[sessions.ItemID]struct{}),
	}
}

// Add records one recommendation list.
func (c *CoverageAccumulator) Add(recs []sessions.ItemID) {
	c.events++
	for _, it := range recs {
		c.recommended[it] = struct{}{}
		if c.popularity != nil {
			c.popSum += float64(c.popularity[it])
			c.popCount++
		}
	}
}

// CoverageReport summarises the accumulated lists.
type CoverageReport struct {
	// Coverage is the share of the catalogue that appeared in at least one
	// recommendation list.
	Coverage float64
	// DistinctItems is the absolute number of distinct recommended items.
	DistinctItems int
	// MeanPopularity is the average training click count of recommended
	// items (higher = stronger popularity bias).
	MeanPopularity float64
	// Events is the number of recommendation lists recorded.
	Events int
}

// Report computes the summary.
func (c *CoverageAccumulator) Report() CoverageReport {
	r := CoverageReport{DistinctItems: len(c.recommended), Events: c.events}
	r.Coverage = rank.Coverage(len(c.recommended), c.catalogSize)
	if c.popCount > 0 {
		r.MeanPopularity = c.popSum / float64(c.popCount)
	}
	return r
}
