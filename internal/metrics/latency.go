package metrics

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Histogram is a high-dynamic-range latency histogram. Values (durations in
// nanoseconds) are bucketed logarithmically with 32 sub-buckets per power of
// two, giving a relative error of about 3% — ample for the p75/p90/p99.5
// percentile plots of Figures 3(b) and 3(c). The zero value is ready to use.
// Histogram is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [64 * subBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

const subBucketBits = 5
const subBuckets = 1 << subBucketBits // 32

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - subBucketBits
	sub := v >> uint(exp) // in [subBuckets, 2*subBuckets)
	return int(exp+1)*subBuckets + int(sub-subBuckets)
}

// bucketValue returns a representative (midpoint) value for a bucket.
func bucketValue(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := uint(i/subBuckets - 1)
	sub := uint64(i%subBuckets) + subBuckets
	lo := sub << exp
	return lo + (uint64(1)<<exp)/2
}

// bucketUpperBound returns the largest value that maps to bucket i.
func bucketUpperBound(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := uint(i/subBuckets - 1)
	sub := uint64(i%subBuckets) + subBuckets
	return (sub+1)<<exp - 1
}

// NumBuckets is the number of HDR buckets in a Histogram or
// StripedHistogram, exported for exposition code.
const NumBuckets = 64 * subBuckets

// Distribution is a point-in-time copy of a histogram's bucket contents,
// the raw material for Prometheus cumulative-bucket exposition.
type Distribution struct {
	Buckets []uint64 // len NumBuckets
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// CumulativeLE reports how many observations fall in buckets wholly at or
// below v (nanoseconds). With the histogram's ~3% bucket resolution this is
// the `le`-bucket count Prometheus expects, to within one bucket's width.
func (d Distribution) CumulativeLE(v uint64) uint64 {
	var n uint64
	for i, c := range d.Buckets {
		if c == 0 {
			continue
		}
		if bucketUpperBound(i) > v {
			break
		}
		n += c
	}
	return n
}

// Distribution returns a copy of the histogram's current contents.
func (h *Histogram) Distribution() Distribution {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := Distribution{
		Buckets: make([]uint64, NumBuckets),
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
	copy(d.Buckets, h.buckets[:])
	return d
}

// Record adds a duration observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the mean observation.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Percentile returns the p-th percentile (p in [0,100]) of the recorded
// values, accurate to the histogram's bucket resolution.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 100 {
		return time.Duration(h.max)
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			// bucketValue is the bucket midpoint, which can overshoot the
			// recorded max (or undercut the min) when the extreme lands in
			// the lower (upper) half of its bucket; clamp so percentiles
			// never report a latency outside the observed range.
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	count, sum, min, max := other.count, other.sum, other.min, other.max
	var snapshot [64 * subBuckets]uint64
	copy(snapshot[:], other.buckets[:])
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range snapshot {
		h.buckets[i] += c
	}
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Summary formats the percentiles the paper quotes.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p75=%v p90=%v p99=%v p99.5=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(75), h.Percentile(90),
		h.Percentile(99), h.Percentile(99.5), h.Max())
}

// SeriesPoint is one time bucket of a latency series.
type SeriesPoint struct {
	// Offset is the bucket start relative to the series start.
	Offset time.Duration
	// Requests is the number of observations in the bucket.
	Requests uint64
	P75      time.Duration
	P90      time.Duration
	P995     time.Duration
}

// Series collects per-time-bucket latency distributions, producing the
// requests-per-second and latency-percentile curves of Figures 3(b)/3(c).
// Series is safe for concurrent use.
type Series struct {
	bucket time.Duration

	mu    sync.Mutex
	hists []*Histogram
}

// NewSeries creates a series with the given time-bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		panic("metrics: series bucket width must be positive")
	}
	return &Series{bucket: bucket}
}

// Record adds an observation at the given offset from the series start.
func (s *Series) Record(offset time.Duration, d time.Duration) {
	if offset < 0 {
		offset = 0
	}
	idx := int(offset / s.bucket)
	s.mu.Lock()
	for len(s.hists) <= idx {
		s.hists = append(s.hists, &Histogram{})
	}
	h := s.hists[idx]
	s.mu.Unlock()
	h.Record(d)
}

// Points returns one point per bucket in time order.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	hists := make([]*Histogram, len(s.hists))
	copy(hists, s.hists)
	s.mu.Unlock()
	pts := make([]SeriesPoint, len(hists))
	for i, h := range hists {
		pts[i] = SeriesPoint{
			Offset:   time.Duration(i) * s.bucket,
			Requests: h.Count(),
			P75:      h.Percentile(75),
			P90:      h.Percentile(90),
			P995:     h.Percentile(99.5),
		}
	}
	return pts
}

// Total merges all buckets into a single histogram.
func (s *Series) Total() *Histogram {
	total := &Histogram{}
	s.mu.Lock()
	hists := make([]*Histogram, len(s.hists))
	copy(hists, s.hists)
	s.mu.Unlock()
	for _, h := range hists {
		total.Merge(h)
	}
	return total
}
