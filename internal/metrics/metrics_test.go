package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"serenade/internal/sessions"
)

func items(ids ...int) []sessions.ItemID {
	out := make([]sessions.ItemID, len(ids))
	for i, v := range ids {
		out[i] = sessions.ItemID(v)
	}
	return out
}

func TestNewRankingAccumulatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewRankingAccumulator(0)
}

func TestRankingPerfectPrediction(t *testing.T) {
	a := NewRankingAccumulator(20)
	a.Add(items(5, 6, 7), 5, items(5, 6, 7))
	r := a.Report()
	if r.MRR != 1.0 || r.HitRate != 1.0 {
		t.Errorf("MRR=%v HR=%v, want 1 1", r.MRR, r.HitRate)
	}
	if r.Recall != 1.0 {
		t.Errorf("Recall=%v, want 1", r.Recall)
	}
	if want := 3.0 / 20.0; math.Abs(r.Precision-want) > 1e-12 {
		t.Errorf("Precision=%v, want %v", r.Precision, want)
	}
	if r.MAP != 1.0 {
		t.Errorf("MAP=%v, want 1 (all hits at top ranks, denom=min(k,|rest|)=3)", r.MAP)
	}
}

func TestRankingMRRPosition(t *testing.T) {
	a := NewRankingAccumulator(20)
	a.Add(items(9, 8, 5), 5, items(5))
	r := a.Report()
	if want := 1.0 / 3.0; math.Abs(r.MRR-want) > 1e-12 {
		t.Errorf("MRR=%v, want %v", r.MRR, want)
	}
	if r.HitRate != 1.0 {
		t.Errorf("HR=%v, want 1", r.HitRate)
	}
}

func TestRankingMiss(t *testing.T) {
	a := NewRankingAccumulator(3)
	a.Add(items(1, 2, 3), 9, items(9, 10))
	r := a.Report()
	if r.MRR != 0 || r.HitRate != 0 || r.Precision != 0 || r.Recall != 0 || r.MAP != 0 {
		t.Errorf("all metrics should be zero on a miss, got %+v", r)
	}
}

func TestRankingCutoffRespected(t *testing.T) {
	a := NewRankingAccumulator(2)
	// next item is at rank 3, beyond the cutoff
	a.Add(items(1, 2, 9), 9, items(9))
	r := a.Report()
	if r.MRR != 0 || r.HitRate != 0 {
		t.Errorf("beyond-cutoff hit must not count: %+v", r)
	}
}

func TestRankingAveragesOverEvents(t *testing.T) {
	a := NewRankingAccumulator(10)
	a.Add(items(5), 5, items(5)) // hit at 1
	a.Add(items(1), 5, items(5)) // miss
	r := a.Report()
	if r.MRR != 0.5 || r.HitRate != 0.5 {
		t.Errorf("MRR=%v HR=%v, want 0.5 0.5", r.MRR, r.HitRate)
	}
	if r.N != 2 {
		t.Errorf("N=%d, want 2", r.N)
	}
}

func TestRankingEmptyReport(t *testing.T) {
	r := NewRankingAccumulator(20).Report()
	if r.MRR != 0 || r.N != 0 {
		t.Errorf("empty report should be zero: %+v", r)
	}
	if r.String() == "" {
		t.Error("String() empty")
	}
}

func TestRankingShortRecList(t *testing.T) {
	a := NewRankingAccumulator(20)
	a.Add(nil, 5, items(5))
	if r := a.Report(); r.MRR != 0 {
		t.Errorf("empty rec list must score 0: %+v", r)
	}
}

func TestRankingDuplicateNextCountsOnce(t *testing.T) {
	a := NewRankingAccumulator(10)
	a.Add(items(5, 5, 5), 5, items(5))
	r := a.Report()
	if r.MRR != 1.0 || r.HitRate != 1.0 {
		t.Errorf("duplicate next must count once at best rank: %+v", r)
	}
}

// TestRankingPropertyBounds: every metric lies in [0,1] for random inputs.
func TestRankingPropertyBounds(t *testing.T) {
	prop := func(recSeed, restSeed []uint8, next uint8) bool {
		a := NewRankingAccumulator(10)
		recs := make([]sessions.ItemID, len(recSeed))
		for i, v := range recSeed {
			recs[i] = sessions.ItemID(v % 32)
		}
		rest := make([]sessions.ItemID, 0, len(restSeed)+1)
		for _, v := range restSeed {
			rest = append(rest, sessions.ItemID(v%32))
		}
		rest = append(rest, sessions.ItemID(next%32))
		a.Add(recs, sessions.ItemID(next%32), rest)
		r := a.Report()
		for _, m := range []float64{r.MRR, r.HitRate, r.Precision, r.Recall, r.MAP} {
			if m < 0 || m > 1 || math.IsNaN(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Quantile(vals, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(vals, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Quantile(vals, 0.5); got != 2.5 {
		t.Errorf("q0.5 = %v, want 2.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("q of empty = %v, want 0", got)
	}
	// input must not be mutated
	if vals[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(50) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	p50 := h.Percentile(50)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	p90 := h.Percentile(90)
	if p90 < 85*time.Millisecond || p90 > 95*time.Millisecond {
		t.Errorf("p90 = %v, want ~90ms", p90)
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Error("p0 > p100")
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", h.Max())
	}
	if h.Summary() == "" {
		t.Error("Summary empty")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := &Histogram{}
	h.Record(-5 * time.Millisecond)
	if h.Percentile(100) != 0 {
		t.Errorf("negative duration should clamp to 0, got %v", h.Percentile(100))
	}
}

// TestHistogramAccuracy: bucketed percentiles stay within ~4% relative
// error of exact percentiles over a wide dynamic range.
func TestHistogramAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := &Histogram{}
	var exact []float64
	for i := 0; i < 20000; i++ {
		// log-uniform between 1µs and 1s
		v := math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3
		exact = append(exact, v)
		h.Record(time.Duration(v))
	}
	sort.Float64s(exact)
	for _, p := range []float64{50, 75, 90, 99, 99.5} {
		want := exact[int(p/100*float64(len(exact)))]
		got := float64(h.Percentile(p))
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("p%.1f: got %.0f want %.0f rel err %.3f", p, got, want, rel)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(rng.Intn(1000)) * time.Microsecond)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	a.Record(1 * time.Millisecond)
	b.Record(100 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("Count = %d, want 2", a.Count())
	}
	if a.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", a.Max())
	}
	empty := &Histogram{}
	a.Merge(empty) // merging empty is a no-op
	if a.Count() != 2 {
		t.Errorf("Count after empty merge = %d, want 2", a.Count())
	}
}

func TestBucketRoundTripMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 100, 1000, 1 << 20, 1 << 40} {
		idx := bucketIndex(v)
		if idx <= prev && v > 0 {
			// indexes must be non-decreasing in v
			t.Errorf("bucketIndex(%d) = %d not increasing past %d", v, idx, prev)
		}
		prev = idx
		rep := bucketValue(idx)
		if v >= 32 {
			if rel := math.Abs(float64(rep)-float64(v)) / float64(v); rel > 0.05 {
				t.Errorf("bucketValue(bucketIndex(%d)) = %d, rel err %.3f", v, rep, rel)
			}
		} else if rep != v {
			t.Errorf("small value %d must be exact, got %d", v, rep)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(time.Second)
	s.Record(0, 5*time.Millisecond)
	s.Record(500*time.Millisecond, 7*time.Millisecond)
	s.Record(1500*time.Millisecond, 9*time.Millisecond)
	s.Record(-time.Second, time.Millisecond) // clamped to bucket 0
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Requests != 3 || pts[1].Requests != 1 {
		t.Errorf("requests = %d,%d want 3,1", pts[0].Requests, pts[1].Requests)
	}
	if pts[1].Offset != time.Second {
		t.Errorf("offset = %v, want 1s", pts[1].Offset)
	}
	if total := s.Total(); total.Count() != 4 {
		t.Errorf("Total count = %d, want 4", total.Count())
	}
}

func TestNewSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestCoverageAccumulator(t *testing.T) {
	pop := map[sessions.ItemID]int{1: 100, 2: 50, 3: 10}
	c := NewCoverageAccumulator(10, pop)
	c.Add(items(1, 2))
	c.Add(items(2, 3))
	r := c.Report()
	if r.DistinctItems != 3 {
		t.Errorf("distinct = %d, want 3", r.DistinctItems)
	}
	if math.Abs(r.Coverage-0.3) > 1e-12 {
		t.Errorf("coverage = %v, want 0.3", r.Coverage)
	}
	if want := (100.0 + 50 + 50 + 10) / 4; math.Abs(r.MeanPopularity-want) > 1e-12 {
		t.Errorf("mean popularity = %v, want %v", r.MeanPopularity, want)
	}
	if r.Events != 2 {
		t.Errorf("events = %d, want 2", r.Events)
	}
}

func TestCoverageAccumulatorEmpty(t *testing.T) {
	r := NewCoverageAccumulator(0, nil).Report()
	if r.Coverage != 0 || r.MeanPopularity != 0 || r.DistinctItems != 0 {
		t.Errorf("empty report not zero: %+v", r)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
}
