// Package metrics implements the evaluation metrics used throughout the
// paper: ranking quality (MRR@k, Precision@k, Recall@k, MAP@k, HitRate@k)
// following the session-rec evaluation protocol of Ludewig & Jannach, and
// latency measurement (high-dynamic-range histograms with percentile
// queries, plus time-bucketed series for the load-test and A/B-test plots).
package metrics

import (
	"fmt"

	"serenade/internal/rank"
	"serenade/internal/sessions"
)

// RankingAccumulator accumulates ranking metrics over next-item prediction
// events. For each prefix of a test session, a recommender produces a ranked
// list; the immediate next item scores MRR@k and HitRate@k, while the set of
// all remaining session items scores Precision@k, Recall@k and MAP@k — the
// protocol of the paper's §5.1.1.
type RankingAccumulator struct {
	K int

	n         int
	sumMRR    float64
	sumHit    float64
	sumPrec   float64
	sumRecall float64
	sumAP     float64
}

// NewRankingAccumulator returns an accumulator with cutoff k. It panics if
// k < 1.
func NewRankingAccumulator(k int) *RankingAccumulator {
	if k < 1 {
		panic("metrics: cutoff k must be at least 1")
	}
	return &RankingAccumulator{K: k}
}

// Add records one prediction event. recs is the ranked recommendation list
// (best first), next the immediate next item, rest all remaining items of
// the session including next. Recommendations beyond position K are ignored.
func (a *RankingAccumulator) Add(recs []sessions.ItemID, next sessions.ItemID, rest []sessions.ItemID) {
	a.n++
	k := a.K
	if len(recs) < k {
		k = len(recs)
	}
	restSet := make(map[sessions.ItemID]struct{}, len(rest))
	for _, it := range rest {
		restSet[it] = struct{}{}
	}

	// MRR@k / HitRate@k score the immediate next item by its first-occurrence
	// rank — shared with the online estimators via internal/rank so offline
	// and production math cannot diverge.
	if r := rank.RankOf(recs, next, k); r > 0 {
		a.sumMRR += rank.Reciprocal(r)
		a.sumHit++
	}

	// Each relevant item counts at most once even if the list repeats it
	// (standard IR semantics; also keeps Recall <= 1 on malformed lists).
	hits := 0
	sumPrecAtHits := 0.0
	matched := make(map[sessions.ItemID]struct{}, k)
	for i := 0; i < k; i++ {
		r := recs[i]
		if _, ok := restSet[r]; !ok {
			continue
		}
		if _, dup := matched[r]; dup {
			continue
		}
		matched[r] = struct{}{}
		hits++
		sumPrecAtHits += float64(hits) / float64(i+1)
	}
	a.sumPrec += float64(hits) / float64(a.K)
	if len(restSet) > 0 {
		a.sumRecall += float64(hits) / float64(len(restSet))
	}
	denom := len(restSet)
	if a.K < denom {
		denom = a.K
	}
	if denom > 0 {
		a.sumAP += sumPrecAtHits / float64(denom)
	}
}

// N reports the number of recorded events.
func (a *RankingAccumulator) N() int { return a.n }

// Report holds averaged ranking metrics.
type Report struct {
	K                               int
	N                               int
	MRR, HitRate, Precision, Recall float64
	MAP                             float64
}

// Report averages the accumulated metrics. All metrics are zero when no
// events were recorded.
func (a *RankingAccumulator) Report() Report {
	r := Report{K: a.K, N: a.n}
	if a.n == 0 {
		return r
	}
	f := float64(a.n)
	r.MRR = a.sumMRR / f
	r.HitRate = a.sumHit / f
	r.Precision = a.sumPrec / f
	r.Recall = a.sumRecall / f
	r.MAP = a.sumAP / f
	return r
}

// String formats the report the way the paper quotes metrics.
func (r Report) String() string {
	return fmt.Sprintf("MRR@%d=%.4f HR@%d=%.4f Prec@%d=%.4f R@%d=%.4f MAP@%d=%.4f (n=%d)",
		r.K, r.MRR, r.K, r.HitRate, r.K, r.Precision, r.K, r.Recall, r.K, r.MAP, r.N)
}

// Quantile returns the q-quantile (0<=q<=1) of values using linear
// interpolation between order statistics. It returns 0 for empty input.
// values need not be sorted; a sorted copy is made.
func Quantile(values []float64, q float64) float64 {
	return rank.Quantile(values, q)
}
