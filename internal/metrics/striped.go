package metrics

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"
	_ "unsafe" // for go:linkname (per-P stripe selection)
)

// runtime_procPin pins the calling goroutine to its P and returns the P's
// id; runtime_procUnpin releases it. This is the same mechanism sync.Pool
// uses for its per-P local pools: while pinned, no other goroutine runs on
// this P, so the P-indexed stripe below has exactly one writer at a time
// and every Record hits a cache line that stays exclusive to one core.
//
//go:linkname runtime_procPin sync.runtime_procPin
func runtime_procPin() int

//go:linkname runtime_procUnpin sync.runtime_procUnpin
func runtime_procUnpin()

// StripedHistogram is a contention-free variant of Histogram for
// write-heavy serving paths. Record touches only atomic counters in the
// stripe owned by the calling goroutine's P, so concurrent writers on
// different CPUs never serialise on a mutex or bounce a shared cache line.
// Reads merge the stripes on demand into a plain Histogram.
//
// Two trade-offs versus Histogram: memory (one bucket array per P) and an
// approximated sum — Record increments only the value's bucket, and
// Snapshot reconstitutes the sum from bucket midpoints, so Mean carries the
// histogram's ~3% bucket resolution instead of being exact. Both are
// irrelevant for a handful of process-wide request/stage histograms scraped
// every few seconds. Use NewStripedHistogram; the zero value is not ready.
type StripedHistogram struct {
	stripes []histStripe
	mask    uint32
}

// histStripe pads its hot scalars to a cache line so neighbouring stripes'
// min/max never share one with another P's bucket counters.
type histStripe struct {
	min atomic.Uint64 // math.MaxUint64 when empty
	max atomic.Uint64
	_   [48]byte
	buckets [NumBuckets]atomic.Uint64
}

// NewStripedHistogram sizes the stripe set to the next power of two at or
// above GOMAXPROCS. Raising GOMAXPROCS afterwards folds the extra Ps onto
// existing stripes (the P id wraps at the mask), which costs contention,
// not correctness.
func NewStripedHistogram() *StripedHistogram {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	h := &StripedHistogram{stripes: make([]histStripe, n), mask: uint32(n - 1)}
	for i := range h.stripes {
		h.stripes[i].min.Store(math.MaxUint64)
	}
	return h
}

// Record adds a duration observation. It never allocates and never blocks:
// one atomic increment on a P-exclusive cache line, plus min/max updates
// that only write while an extreme is actually being pushed outward.
func (h *StripedHistogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	idx := bucketIndex(v)
	st := &h.stripes[uint32(runtime_procPin())&h.mask]
	st.buckets[idx].Add(1)
	if v < st.min.Load() {
		for {
			cur := st.min.Load()
			if v >= cur || st.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if v > st.max.Load() {
		for {
			cur := st.max.Load()
			if v <= cur || st.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	runtime_procUnpin()
}

// Count reports the number of observations.
func (h *StripedHistogram) Count() uint64 {
	var n uint64
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.buckets {
			n += st.buckets[b].Load()
		}
	}
	return n
}

// Snapshot merges the stripes into a plain Histogram, on which the usual
// percentile/mean/summary math applies. Concurrent writers may land between
// bucket loads, so a snapshot taken under load is consistent only to within
// the in-flight handful of records — fine for monitoring reads.
func (h *StripedHistogram) Snapshot() *Histogram {
	out := &Histogram{min: math.MaxUint64}
	for i := range h.stripes {
		st := &h.stripes[i]
		var stripeCount uint64
		for b := range st.buckets {
			if c := st.buckets[b].Load(); c != 0 {
				out.buckets[b] += c
				out.sum += bucketValue(b) * c
				stripeCount += c
			}
		}
		if stripeCount == 0 {
			continue
		}
		out.count += stripeCount
		if mn := st.min.Load(); mn < out.min {
			out.min = mn
		}
		if mx := st.max.Load(); mx > out.max {
			out.max = mx
		}
	}
	if out.count == 0 {
		out.min = 0
		return out
	}
	// The midpoint-reconstituted sum can stray outside [min*count,
	// max*count] when extremes sit off-centre in their buckets; clamp so
	// Mean never reports a value outside the observed range.
	if out.sum < out.min*out.count {
		out.sum = out.min * out.count
	}
	if out.sum > out.max*out.count {
		out.sum = out.max * out.count
	}
	return out
}

// Distribution returns the merged bucket contents for exposition.
func (h *StripedHistogram) Distribution() Distribution {
	return h.Snapshot().Distribution()
}
