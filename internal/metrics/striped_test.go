package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestStripedHistogramConcurrent hammers Record from many goroutines while a
// reader merges snapshots, then checks the merged totals are exact once the
// writers have joined. Run under -race this also proves the striped path has
// no unsynchronised access.
func TestStripedHistogramConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
	)
	h := NewStripedHistogram()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			if c := snap.Count(); c > writers*perWriter {
				t.Errorf("snapshot count %d exceeds records written", c)
				return
			}
			_ = snap.Percentile(90)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Spread across buckets; include the extremes so min/max
				// CAS paths are exercised.
				h.Record(time.Duration(1 + (w*perWriter+i)%1_000_000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := h.Snapshot()
	if got, want := snap.Count(), uint64(writers*perWriter); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if got := time.Duration(snap.min); got != 1 {
		t.Errorf("min = %v, want 1ns", got)
	}
	// Values recorded are 1 + (w*perWriter+i) % 1e6 with the global index
	// below 160000, so the largest observation is exactly 160000ns.
	if got, want := snap.Max(), time.Duration(writers*perWriter); got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	if p := snap.Percentile(50); p < time.Duration(snap.min) || p > snap.Max() {
		t.Errorf("p50 %v outside [min,max] = [%d, %v]", p, snap.min, snap.Max())
	}

	// The merged distribution must be internally consistent.
	d := h.Distribution()
	var n uint64
	for _, c := range d.Buckets {
		n += c
	}
	if n != d.Count {
		t.Errorf("bucket total %d != count %d", n, d.Count)
	}
	if d.CumulativeLE(^uint64(0)) != d.Count {
		t.Errorf("CumulativeLE(+Inf) = %d, want %d", d.CumulativeLE(^uint64(0)), d.Count)
	}
}

func TestStripedHistogramEmpty(t *testing.T) {
	h := NewStripedHistogram()
	snap := h.Snapshot()
	if snap.Count() != 0 || snap.Max() != 0 || snap.Percentile(90) != 0 {
		t.Fatalf("empty snapshot not zero: %s", snap.Summary())
	}
}

func TestStripedHistogramRecordDoesNotAllocate(t *testing.T) {
	h := NewStripedHistogram()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(123456)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v times per op, want 0", allocs)
	}
}

// TestHistogramPercentileClamped is the regression test for midpoint
// overshoot: a bucket's representative midpoint can exceed the recorded max
// (or undercut the min) and must be clamped to the observed range.
func TestHistogramPercentileClamped(t *testing.T) {
	// 1009 falls in log bucket [1008,1024) whose midpoint 1016 > max.
	h := &Histogram{}
	h.Record(1009)
	for _, p := range []float64{25, 50, 75, 90, 99.5} {
		if got := h.Percentile(p); got != 1009 {
			t.Errorf("single-value p%v = %v, want 1009ns", p, got)
		}
	}

	// 1023 shares the bucket; its midpoint 1016 < min and must clamp up.
	h2 := &Histogram{}
	h2.Record(1023)
	if got := h2.Percentile(50); got != 1023 {
		t.Errorf("p50 = %v, want 1023ns (clamped to min)", got)
	}

	// Mixed recording: no percentile may leave [min, max].
	h3 := &Histogram{}
	for _, v := range []time.Duration{100, 1009, 5003, 90001} {
		h3.Record(v)
	}
	for p := 0.0; p <= 100; p += 2.5 {
		got := h3.Percentile(p)
		if got < 100 || got > 90001 {
			t.Errorf("p%v = %v outside recorded range [100ns, 90001ns]", p, got)
		}
	}
}

// BenchmarkHistogramRecordParallel contrasts the mutex-guarded histogram
// with the striped one under parallel writers. The striped path must scale
// (and allocate nothing) where the mutex path flatlines on contention.
func BenchmarkHistogramRecordParallel(b *testing.B) {
	b.Run("Mutex", func(b *testing.B) {
		h := &Histogram{}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := time.Duration(12345)
			for pb.Next() {
				h.Record(d)
			}
		})
	})
	b.Run("Striped", func(b *testing.B) {
		h := NewStripedHistogram()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := time.Duration(12345)
			for pb.Next() {
				h.Record(d)
			}
		})
	})
}
