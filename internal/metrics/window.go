package metrics

import (
	"sync/atomic"
	"time"
)

// windowLanes is the number of independent counters a WindowedCounter tracks
// per time bucket. Three lanes cover every current use: the SLO engine
// records (total, slow, error) per request and the result cache records
// (lookups, hits) per prediction.
const windowLanes = 3

// winBucket is one second of windowed counts. stamp is the unix second the
// bucket currently holds; a bucket whose stamp has fallen out of the queried
// window is dead weight that the next writer landing on its slot recycles.
// The struct is padded to its own cache line so two adjacent seconds never
// false-share under concurrent writers.
type winBucket struct {
	stamp atomic.Int64
	lanes [windowLanes]atomic.Uint64
	_     [64 - 8 - 8*windowLanes]byte
}

// WindowedCounter is a rolling multi-window counter: a ring of per-second
// buckets covering a fixed horizon, from which the counts of any trailing
// window up to the horizon can be summed. It is the accumulator beneath the
// SLO engine's burn rates and the health signal's hit-ratio windows.
//
// Add is wait-free and allocation-free: one atomic stamp check (plus a CAS
// when the bucket rolls into a new second) and one atomic add per lane. A
// count recorded concurrently with the bucket's once-per-second recycling can
// be lost — at most one writer's worth per lane per second, which is noise
// against the window sums this feeds. Sum never blocks writers.
type WindowedCounter struct {
	horizon int64 // seconds of history, = len(buckets)
	nowUnix func() int64
	buckets []winBucket
}

// NewWindowedCounter creates a counter able to answer windows up to horizon.
// now is the clock (nil means time.Now); tests inject a fake to drive the
// window deterministically.
func NewWindowedCounter(horizon time.Duration, now func() time.Time) *WindowedCounter {
	secs := int64(horizon / time.Second)
	if secs < 1 {
		secs = 1
	}
	nowUnix := func() int64 { return time.Now().Unix() }
	if now != nil {
		nowUnix = func() int64 { return now().Unix() }
	}
	w := &WindowedCounter{horizon: secs, nowUnix: nowUnix, buckets: make([]winBucket, secs)}
	for i := range w.buckets {
		w.buckets[i].stamp.Store(-1)
	}
	return w
}

// Horizon reports the longest answerable window.
func (w *WindowedCounter) Horizon() time.Duration {
	return time.Duration(w.horizon) * time.Second
}

// Add records one observation: l0..l2 are added to the current second's
// lanes. Zero-valued lanes still cost one atomic add; callers on hot paths
// pass 0/1 flags, so the branch is not worth its misprediction.
func (w *WindowedCounter) Add(l0, l1, l2 uint64) {
	now := w.nowUnix()
	b := &w.buckets[now%w.horizon]
	if s := b.stamp.Load(); s != now {
		if b.stamp.CompareAndSwap(s, now) {
			// This writer recycles the bucket for the new second. A racing
			// add between the CAS and these stores is lost; see type doc.
			for i := range b.lanes {
				b.lanes[i].Store(0)
			}
		}
	}
	b.lanes[0].Add(l0)
	b.lanes[1].Add(l1)
	b.lanes[2].Add(l2)
}

// Sum totals the lanes over the trailing window (clamped to the horizon),
// including the in-progress current second for responsiveness.
func (w *WindowedCounter) Sum(window time.Duration) (l0, l1, l2 uint64) {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > w.horizon {
		secs = w.horizon
	}
	now := w.nowUnix()
	oldest := now - secs + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if s := b.stamp.Load(); s >= oldest && s <= now {
			l0 += b.lanes[0].Load()
			l1 += b.lanes[1].Load()
			l2 += b.lanes[2].Load()
		}
	}
	return l0, l1, l2
}

// maxBucket is one coarse bucket of a WindowedMax watermark.
type maxBucket struct {
	stamp atomic.Int64
	max   atomic.Uint64
	_     [48]byte
}

// WindowedMax tracks a rolling high-watermark: the largest value observed in
// any trailing window up to the horizon, at one-second resolution. It feeds
// the health signal's batcher-wait watermark — "what is the worst queue wait
// any request ate recently", the overload symptom averages hide.
//
// Observe is wait-free and allocation-free. Like WindowedCounter, a value
// observed concurrently with a bucket recycling into a new second can be
// dropped; the next observation in that second re-establishes the watermark.
type WindowedMax struct {
	horizon int64
	nowUnix func() int64
	buckets []maxBucket
}

// NewWindowedMax creates a watermark able to answer windows up to horizon.
// now is the clock (nil means time.Now).
func NewWindowedMax(horizon time.Duration, now func() time.Time) *WindowedMax {
	secs := int64(horizon / time.Second)
	if secs < 1 {
		secs = 1
	}
	nowUnix := func() int64 { return time.Now().Unix() }
	if now != nil {
		nowUnix = func() int64 { return now().Unix() }
	}
	w := &WindowedMax{horizon: secs, nowUnix: nowUnix, buckets: make([]maxBucket, secs)}
	for i := range w.buckets {
		w.buckets[i].stamp.Store(-1)
	}
	return w
}

// Observe records a value into the current second's bucket.
func (w *WindowedMax) Observe(v uint64) {
	now := w.nowUnix()
	b := &w.buckets[now%w.horizon]
	if s := b.stamp.Load(); s != now {
		if b.stamp.CompareAndSwap(s, now) {
			b.max.Store(0)
		}
	}
	for {
		cur := b.max.Load()
		if v <= cur || b.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Max reports the largest value observed in the trailing window (clamped to
// the horizon); zero when the window saw no observations.
func (w *WindowedMax) Max(window time.Duration) uint64 {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > w.horizon {
		secs = w.horizon
	}
	now := w.nowUnix()
	oldest := now - secs + 1
	var out uint64
	for i := range w.buckets {
		b := &w.buckets[i]
		if s := b.stamp.Load(); s >= oldest && s <= now {
			if m := b.max.Load(); m > out {
				out = m
			}
		}
	}
	return out
}
