package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable clock for driving windows deterministically.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) now() time.Time  { return time.Unix(c.sec.Load(), 0) }
func (c *fakeClock) set(s int64)     { c.sec.Store(s) }
func (c *fakeClock) advance(d int64) { c.sec.Add(d) }

func TestWindowedCounterDeterministic(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	w := NewWindowedCounter(time.Hour, clk.now)

	// 100 requests at t=1000, 5 slow, 2 errors.
	for i := 0; i < 100; i++ {
		var slow, errs uint64
		if i < 5 {
			slow = 1
		}
		if i < 2 {
			errs = 1
		}
		w.Add(1, slow, errs)
	}
	if tot, slow, errs := w.Sum(time.Minute); tot != 100 || slow != 5 || errs != 2 {
		t.Fatalf("Sum(1m) = (%d,%d,%d), want (100,5,2)", tot, slow, errs)
	}

	// 30 seconds later another 50 clean requests: the 1m window sees both.
	clk.advance(30)
	for i := 0; i < 50; i++ {
		w.Add(1, 0, 0)
	}
	if tot, slow, _ := w.Sum(time.Minute); tot != 150 || slow != 5 {
		t.Fatalf("Sum(1m) after 30s = (%d,%d), want (150,5)", tot, slow)
	}
	// A 10s window sees only the recent batch.
	if tot, slow, _ := w.Sum(10 * time.Second); tot != 50 || slow != 0 {
		t.Fatalf("Sum(10s) = (%d,%d), want (50,0)", tot, slow)
	}

	// 2 minutes later the first batch has left the 1m window but not the 5m.
	clk.advance(120)
	if tot, _, _ := w.Sum(time.Minute); tot != 0 {
		t.Fatalf("Sum(1m) after expiry = %d, want 0", tot)
	}
	if tot, slow, errs := w.Sum(5 * time.Minute); tot != 150 || slow != 5 || errs != 2 {
		t.Fatalf("Sum(5m) = (%d,%d,%d), want (150,5,2)", tot, slow, errs)
	}

	// Past the horizon everything ages out, including recycled slots.
	clk.advance(3700)
	if tot, _, _ := w.Sum(time.Hour); tot != 0 {
		t.Fatalf("Sum(1h) after horizon = %d, want 0", tot)
	}
}

// TestWindowedCounterRecycling checks that a bucket slot reused for a new
// second (same index modulo horizon) does not leak the old second's counts.
func TestWindowedCounterRecycling(t *testing.T) {
	clk := &fakeClock{}
	clk.set(7)
	w := NewWindowedCounter(10*time.Second, clk.now)
	w.Add(1, 1, 0)
	clk.advance(10) // lands on the same slot: 17 % 10 == 7 % 10
	w.Add(1, 0, 0)
	if tot, slow, _ := w.Sum(10 * time.Second); tot != 1 || slow != 0 {
		t.Fatalf("recycled slot leaked old counts: (%d,%d), want (1,0)", tot, slow)
	}
}

func TestWindowedCounterClampsWindow(t *testing.T) {
	clk := &fakeClock{}
	clk.set(100)
	w := NewWindowedCounter(10*time.Second, clk.now)
	w.Add(1, 0, 0)
	// Asking beyond the horizon clamps instead of misindexing.
	if tot, _, _ := w.Sum(time.Hour); tot != 1 {
		t.Fatalf("clamped Sum = %d, want 1", tot)
	}
	if w.Horizon() != 10*time.Second {
		t.Fatalf("Horizon = %v", w.Horizon())
	}
}

// TestWindowedCounterClockSkew drives the counter through NTP-style clock
// steps. The invariants: a backward step recycles the slot it lands on (no
// stale counts leak into sums), buckets stamped in the future relative to the
// querying clock are excluded from Sum, and when the clock recovers the
// still-live buckets become visible again.
func TestWindowedCounterClockSkew(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	w := NewWindowedCounter(time.Minute, clk.now)
	w.Add(1, 0, 0) // stamped 1000

	// The clock steps back 10s. The add lands in a fresh slot; the bucket
	// stamped 1000 is now in this clock's future and must not be summed.
	clk.set(990)
	w.Add(1, 0, 0)
	if tot, _, _ := w.Sum(time.Minute); tot != 1 {
		t.Fatalf("Sum(1m) under backward skew = %d, want 1 (future bucket excluded)", tot)
	}

	// The clock recovers: both seconds are inside the window again.
	clk.set(1000)
	if tot, _, _ := w.Sum(time.Minute); tot != 2 {
		t.Fatalf("Sum(1m) after recovery = %d, want 2", tot)
	}

	// A backward step landing on an already-stamped slot recycles it rather
	// than merging counts across different seconds: 1005 and 945 share a slot
	// (horizon 60), and the CAS on the stamp must reset the lanes.
	clk.set(1005)
	w.Add(5, 0, 0)
	clk.set(945)
	w.Add(3, 0, 0)
	if tot, _, _ := w.Sum(time.Minute); tot != 3 {
		t.Fatalf("Sum(1m) after backward recycle = %d, want 3 (no merged lanes)", tot)
	}

	// A large forward step ages everything out; the recycled slots must not
	// resurrect old counts.
	clk.set(5000)
	if tot, _, _ := w.Sum(time.Minute); tot != 0 {
		t.Fatalf("Sum(1m) after forward jump = %d, want 0", tot)
	}
	w.Add(7, 0, 0)
	if tot, _, _ := w.Sum(time.Minute); tot != 7 {
		t.Fatalf("Sum(1m) post-jump = %d, want 7", tot)
	}
}

func TestWindowedMaxDeterministic(t *testing.T) {
	clk := &fakeClock{}
	clk.set(500)
	w := NewWindowedMax(time.Minute, clk.now)
	w.Observe(10)
	w.Observe(300)
	w.Observe(50)
	if m := w.Max(time.Minute); m != 300 {
		t.Fatalf("Max = %d, want 300", m)
	}
	clk.advance(30)
	w.Observe(80)
	if m := w.Max(10 * time.Second); m != 80 {
		t.Fatalf("Max(10s) = %d, want 80", m)
	}
	if m := w.Max(time.Minute); m != 300 {
		t.Fatalf("Max(1m) = %d, want 300", m)
	}
	clk.advance(120)
	if m := w.Max(time.Minute); m != 0 {
		t.Fatalf("Max after expiry = %d, want 0", m)
	}
}

// TestWindowedCounterConcurrent hammers Add/Sum from many goroutines while
// the clock advances; run under -race this is the burn-rate accumulator's
// concurrency proof. Counts may drop at second boundaries (documented), so
// the assertion is a bound, not equality.
func TestWindowedCounterConcurrent(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1)
	w := NewWindowedCounter(time.Hour, clk.now)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // reader
		for {
			select {
			case <-stop:
				return
			default:
				w.Sum(time.Minute)
			}
		}
	}()
	go func() { // clock mover: a few boundary crossings mid-run
		for i := 0; i < 4; i++ {
			time.Sleep(time.Millisecond)
			clk.advance(1)
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.Add(1, uint64(i&1), 0)
			}
		}()
	}
	wg.Wait()
	close(stop)
	tot, slow, _ := w.Sum(time.Hour)
	if tot > writers*perWriter || slow > tot {
		t.Fatalf("impossible totals: tot=%d slow=%d", tot, slow)
	}
	// Allow up to one lost add per lane per writer per boundary crossing.
	if min := uint64(writers*perWriter - writers*8); tot < min {
		t.Fatalf("lost too many counts: tot=%d, want ≥%d", tot, min)
	}
}

func TestWindowedMaxConcurrent(t *testing.T) {
	w := NewWindowedMax(time.Minute, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Observe(uint64(g*2000 + i))
				w.Max(time.Minute)
			}
		}(g)
	}
	wg.Wait()
	if m := w.Max(time.Minute); m != 8*2000-1 {
		t.Fatalf("Max = %d, want %d", m, 8*2000-1)
	}
}

// TestWindowRecordPathAllocs asserts the acceptance criterion: the rolling
// accumulators are allocation-free on their record paths.
func TestWindowRecordPathAllocs(t *testing.T) {
	w := NewWindowedCounter(time.Hour, nil)
	if n := testing.AllocsPerRun(1000, func() { w.Add(1, 1, 0) }); n != 0 {
		t.Fatalf("WindowedCounter.Add allocates %.1f/op, want 0", n)
	}
	m := NewWindowedMax(time.Minute, nil)
	if n := testing.AllocsPerRun(1000, func() { m.Observe(42) }); n != 0 {
		t.Fatalf("WindowedMax.Observe allocates %.1f/op, want 0", n)
	}
}

func BenchmarkWindowedCounterAdd(b *testing.B) {
	w := NewWindowedCounter(time.Hour, nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w.Add(1, 1, 0)
		}
	})
}

func BenchmarkWindowedMaxObserve(b *testing.B) {
	w := NewWindowedMax(time.Minute, nil)
	b.ReportAllocs()
	var v uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v++
			w.Observe(v)
		}
	})
}
