package neural

import "math/rand"

// GRUCell is a gated recurrent unit:
//
//	z = σ(Wz·x + Uz·h + bz)        update gate
//	r = σ(Wr·x + Ur·h + br)        reset gate
//	h̃ = tanh(Wh·x + Uh·(r⊙h) + bh) candidate state
//	h' = (1−z)⊙h + z⊙h̃
type GRUCell struct {
	Wz, Uz, Bz *Param
	Wr, Ur, Br *Param
	Wh, Uh, Bh *Param
	hidden     int
}

// NewGRUCell allocates a GRU mapping inputs of size in to a hidden state of
// size hidden.
func NewGRUCell(in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		Wz: NewParam("gru.Wz", hidden, in, rng), Uz: NewParam("gru.Uz", hidden, hidden, rng), Bz: NewZeroParam("gru.bz", hidden, 1),
		Wr: NewParam("gru.Wr", hidden, in, rng), Ur: NewParam("gru.Ur", hidden, hidden, rng), Br: NewZeroParam("gru.br", hidden, 1),
		Wh: NewParam("gru.Wh", hidden, in, rng), Uh: NewParam("gru.Uh", hidden, hidden, rng), Bh: NewZeroParam("gru.bh", hidden, 1),
		hidden: hidden,
	}
}

// Params lists the cell's trainable parameters.
func (c *GRUCell) Params() []*Param {
	return []*Param{c.Wz, c.Uz, c.Bz, c.Wr, c.Ur, c.Br, c.Wh, c.Uh, c.Bh}
}

// Hidden reports the state size.
func (c *GRUCell) Hidden() int { return c.hidden }

// Step advances the recurrence by one input.
func (c *GRUCell) Step(t *Tape, x, h *Vec) *Vec {
	z := t.Sigmoid(t.AddBias(t.Add(t.MatVec(c.Wz, x), t.MatVec(c.Uz, h)), c.Bz))
	r := t.Sigmoid(t.AddBias(t.Add(t.MatVec(c.Wr, x), t.MatVec(c.Ur, h)), c.Br))
	cand := t.Tanh(t.AddBias(t.Add(t.MatVec(c.Wh, x), t.MatVec(c.Uh, t.Mul(r, h))), c.Bh))
	return t.Add(t.Mul(t.OneMinus(z), h), t.Mul(z, cand))
}
