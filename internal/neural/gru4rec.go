package neural

import (
	"math/rand"

	"serenade/internal/sessions"
)

// GRU4Rec is the session-based recurrent recommender of Hidasi et al.
// (ICLR 2016): item embeddings feed a GRU whose hidden state is projected
// onto the item vocabulary; each click is trained to predict the next.
type GRU4Rec struct {
	cfg  Config
	emb  *Param // items × embed
	cell *GRUCell
	out  *Param // items × hidden
	bOut *Param // items × 1
	opt  *Optimizer
	rng  *rand.Rand // negative sampling for the ranking losses
}

// NewGRU4Rec allocates the model.
func NewGRU4Rec(cfg Config) *GRU4Rec {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &GRU4Rec{
		cfg:  cfg,
		emb:  NewParam("gru4rec.emb", cfg.NumItems, cfg.EmbedDim, rng),
		cell: NewGRUCell(cfg.EmbedDim, cfg.HiddenDim, rng),
		out:  NewParam("gru4rec.out", cfg.NumItems, cfg.HiddenDim, rng),
		bOut: NewZeroParam("gru4rec.bout", cfg.NumItems, 1),
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	params := append([]*Param{m.emb, m.out, m.bOut}, m.cell.Params()...)
	m.opt = &Optimizer{LR: cfg.LR, Params: params}
	return m
}

// Name implements Model.
func (m *GRU4Rec) Name() string {
	if m.cfg.Loss == CrossEntropyLoss {
		return "GRU4Rec"
	}
	return "GRU4Rec-" + m.cfg.Loss.String()
}

// forward runs the recurrence over the session prefix and returns the
// hidden states after each input item.
func (m *GRU4Rec) forward(t *Tape, items []sessions.ItemID) []*Vec {
	h := NewVec(m.cfg.HiddenDim)
	states := make([]*Vec, 0, len(items))
	for _, it := range items {
		x := t.Lookup(m.emb, int(it))
		h = m.cell.Step(t, x, h)
		states = append(states, h)
	}
	return states
}

// TrainSession implements Model.
func (m *GRU4Rec) TrainSession(items []sessions.ItemID) float64 {
	items = truncateSession(items, m.cfg.MaxLen)
	if len(items) < 2 {
		return 0
	}
	t := &Tape{}
	states := m.forward(t, items[:len(items)-1])
	loss := 0.0
	for i, h := range states {
		target := int(items[i+1])
		switch m.cfg.Loss {
		case BPRLoss, TOP1Loss:
			rows := append([]int{target}, sampleNegatives(m.rng, m.cfg.NumItems, target, m.cfg.NegSamples)...)
			scores := t.RowsAffine(m.out, m.bOut, h, rows)
			if m.cfg.Loss == BPRLoss {
				loss += BPRFromScores(scores)
			} else {
				loss += TOP1FromScores(scores)
			}
		default:
			logits := t.AddBias(t.MatVec(m.out, h), m.bOut)
			loss += SoftmaxCrossEntropy(logits, target, 1)
		}
	}
	t.Backward()
	m.opt.Step()
	return loss
}

// Scores implements Model.
func (m *GRU4Rec) Scores(evolving []sessions.ItemID) []float64 {
	evolving = truncateSession(evolving, m.cfg.MaxLen)
	t := &Tape{}
	states := m.forward(t, evolving)
	h := states[len(states)-1]
	logits := t.AddBias(t.MatVec(m.out, h), m.bOut)
	return logits.X
}
