package neural

import (
	"math"
	"math/rand"
)

// Loss selects the training objective. The original GRU4Rec paper trains
// with pairwise ranking losses over sampled negatives (BPR and TOP1) rather
// than full softmax, which is what makes it tractable for large item
// catalogs.
type Loss int

const (
	// CrossEntropyLoss is full softmax cross-entropy over the vocabulary.
	CrossEntropyLoss Loss = iota
	// BPRLoss is Bayesian Personalised Ranking over sampled negatives:
	// −log σ(s_target − s_negative), averaged over the samples.
	BPRLoss
	// TOP1Loss is GRU4Rec's regularised pairwise loss:
	// σ(s_neg − s_target) + σ(s_neg²), averaged over the samples.
	TOP1Loss
)

// String names the loss for experiment tables.
func (l Loss) String() string {
	switch l {
	case BPRLoss:
		return "bpr"
	case TOP1Loss:
		return "top1"
	default:
		return "cross-entropy"
	}
}

// RowsDot computes y_r = W[rows[r]]·x for a subset of the rows of W — the
// sampled-score computation that lets ranking losses avoid touching the
// whole output matrix.
func (t *Tape) RowsDot(w *Param, x *Vec, rows []int) *Vec {
	out := NewVec(len(rows))
	for r, row := range rows {
		wr := w.W[row*w.Cols : (row+1)*w.Cols]
		s := 0.0
		for c, xv := range x.X {
			s += wr[c] * xv
		}
		out.X[r] = s
	}
	t.record(func() {
		for r, row := range rows {
			g := out.G[r]
			if g == 0 {
				continue
			}
			wr := w.W[row*w.Cols : (row+1)*w.Cols]
			gr := w.G[row*w.Cols : (row+1)*w.Cols]
			for c := range x.X {
				gr[c] += g * x.X[c]
				x.G[c] += g * wr[c]
			}
		}
	})
	return out
}

// RowsAffine is RowsDot plus a per-row bias: y_r = W[rows[r]]·x + b[rows[r]].
func (t *Tape) RowsAffine(w, b *Param, x *Vec, rows []int) *Vec {
	out := t.RowsDot(w, x, rows)
	for r, row := range rows {
		out.X[r] += b.W[row]
	}
	t.record(func() {
		for r, row := range rows {
			b.G[row] += out.G[r]
		}
	})
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// BPRFromScores seeds gradients for the BPR loss on a score vector whose
// first entry is the target and the rest sampled negatives, and returns the
// loss value.
func BPRFromScores(scores *Vec) float64 {
	n := scores.Len() - 1
	if n <= 0 {
		return 0
	}
	target := scores.X[0]
	loss := 0.0
	inv := 1 / float64(n)
	for j := 1; j <= n; j++ {
		diff := target - scores.X[j]
		loss += -math.Log(sigmoid(diff) + 1e-24)
		g := sigmoid(-diff) * inv // σ(s_j − s_target)
		scores.G[j] += g
		scores.G[0] -= g
	}
	return loss * inv
}

// TOP1FromScores seeds gradients for the TOP1 loss (same layout as
// BPRFromScores) and returns the loss value.
func TOP1FromScores(scores *Vec) float64 {
	n := scores.Len() - 1
	if n <= 0 {
		return 0
	}
	target := scores.X[0]
	loss := 0.0
	inv := 1 / float64(n)
	for j := 1; j <= n; j++ {
		sj := scores.X[j]
		a := sigmoid(sj - target)
		b := sigmoid(sj * sj)
		loss += a + b
		// d/ds_j = σ'(s_j − s_t) + 2·s_j·σ'(s_j²); σ'(x) = σ(x)(1−σ(x)).
		scores.G[j] += (a*(1-a) + 2*sj*b*(1-b)) * inv
		scores.G[0] -= a * (1 - a) * inv
	}
	return loss * inv
}

// sampleNegatives draws n item ids uniformly from [0, vocab) excluding the
// target (uniform sampling; the original paper also supports
// popularity-based sampling via minibatch items).
func sampleNegatives(rng *rand.Rand, vocab, target, n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		v := rng.Intn(vocab)
		if v == target {
			continue
		}
		out = append(out, v)
	}
	return out
}
