package neural

import (
	"math"
	"math/rand"
	"testing"

	"serenade/internal/sessions"
)

func TestRowsDotGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParam("w", 6, 4, rng)
	rows := []int{3, 0, 5}

	xData := make([]float64, 4)
	for i := range xData {
		xData[i] = rng.NormFloat64()
	}

	loss := func(backward bool) float64 {
		tp := &Tape{}
		x := Constant(append([]float64(nil), xData...))
		out := tp.RowsDot(w, x, rows)
		// Scalar objective: sum of squares of the selected scores.
		l := 0.0
		for i := range out.X {
			l += out.X[i] * out.X[i]
			out.G[i] = 2 * out.X[i]
		}
		if backward {
			tp.Backward()
		}
		return l
	}

	w.ZeroGrad()
	loss(true)
	analytic := append([]float64(nil), w.G...)
	w.ZeroGrad()

	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(len(w.W))
		orig := w.W[i]
		w.W[i] = orig + h
		up := loss(false)
		w.ZeroGrad()
		w.W[i] = orig - h
		down := loss(false)
		w.ZeroGrad()
		w.W[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(analytic[i]-numeric) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("w[%d]: analytic %v vs numeric %v", i, analytic[i], numeric)
		}
	}
}

// numGradScores checks a FromScores loss function against finite
// differences of the raw score vector.
func numGradScores(t *testing.T, lossFn func(*Vec) float64, scores []float64) {
	t.Helper()
	v := NewVec(len(scores))
	copy(v.X, scores)
	lossFn(v)
	analytic := append([]float64(nil), v.G...)

	const h = 1e-6
	for i := range scores {
		up := NewVec(len(scores))
		copy(up.X, scores)
		up.X[i] += h
		lUp := lossFn(up)
		down := NewVec(len(scores))
		copy(down.X, scores)
		down.X[i] -= h
		lDown := lossFn(down)
		numeric := (lUp - lDown) / (2 * h)
		if math.Abs(analytic[i]-numeric) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("score[%d]: analytic %v vs numeric %v", i, analytic[i], numeric)
		}
	}
}

func TestBPRGradients(t *testing.T) {
	numGradScores(t, BPRFromScores, []float64{0.4, -0.3, 1.2, 0.1})
}

func TestTOP1Gradients(t *testing.T) {
	numGradScores(t, TOP1FromScores, []float64{0.4, -0.3, 1.2, 0.1})
}

func TestRankingLossesDegenerate(t *testing.T) {
	v := NewVec(1) // target only, no negatives
	if BPRFromScores(v) != 0 || TOP1FromScores(v) != 0 {
		t.Error("loss without negatives must be 0")
	}
}

func TestBPRPrefersTargetAboveNegatives(t *testing.T) {
	good := NewVec(3)
	copy(good.X, []float64{5, -5, -5})
	bad := NewVec(3)
	copy(bad.X, []float64{-5, 5, 5})
	if BPRFromScores(good) >= BPRFromScores(bad) {
		t.Error("BPR loss must be lower when the target outranks negatives")
	}
}

func TestSampleNegativesExcludesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		negs := sampleNegatives(rng, 5, 3, 16)
		if len(negs) != 16 {
			t.Fatalf("samples = %d, want 16", len(negs))
		}
		for _, n := range negs {
			if n == 3 {
				t.Fatal("target sampled as negative")
			}
			if n < 0 || n >= 5 {
				t.Fatalf("sample %d out of range", n)
			}
		}
	}
}

func TestGRU4RecBPRLearnsPattern(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 12, EmbedDim: 16, HiddenDim: 16, Seed: 21, Loss: BPRLoss, NegSamples: 8, LR: 0.1})
	if m.Name() != "GRU4Rec-bpr" {
		t.Errorf("name = %q", m.Name())
	}
	testLearnsPattern(t, m, 25)
}

func TestGRU4RecTOP1LearnsPattern(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 12, EmbedDim: 16, HiddenDim: 16, Seed: 22, Loss: TOP1Loss, NegSamples: 8, LR: 0.1})
	if m.Name() != "GRU4Rec-top1" {
		t.Errorf("name = %q", m.Name())
	}
	testLearnsPattern(t, m, 25)
}

// TestRankingLossCheaperPerStep: sampled losses must not touch the full
// output matrix — verify indirectly by checking gradients only land on
// sampled rows.
func TestRankingLossTouchesOnlySampledRows(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 100, EmbedDim: 4, HiddenDim: 4, Seed: 23, Loss: BPRLoss, NegSamples: 3})
	// One training step; then inspect the Adagrad state: untouched rows of
	// the output matrix must have zero accumulated squared gradient.
	m.TrainSession([]sessions.ItemID{1, 2, 3})
	touched := 0
	for row := 0; row < 100; row++ {
		rowTouched := false
		for c := 0; c < 4; c++ {
			if m.out.ssq[row*4+c] != 0 {
				rowTouched = true
			}
		}
		if rowTouched {
			touched++
		}
	}
	// 2 steps × (1 target + 3 negatives) = at most 8 distinct rows.
	if touched == 0 || touched > 8 {
		t.Errorf("touched rows = %d, want 1..8 (sampled subset only)", touched)
	}
}
