package neural

import (
	"math/rand"
	"sort"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// Model is a trainable session-based recommender.
type Model interface {
	// Name identifies the architecture (for experiment tables).
	Name() string
	// TrainSession runs one optimisation step on a session's click
	// sequence and returns the summed next-item cross-entropy loss.
	TrainSession(items []sessions.ItemID) float64
	// Scores returns unnormalised next-item scores over the full item
	// vocabulary for an evolving session.
	Scores(evolving []sessions.ItemID) []float64
}

// Config shapes a neural model.
type Config struct {
	// NumItems is the dense item vocabulary size.
	NumItems int
	// EmbedDim is the item embedding width.
	EmbedDim int
	// HiddenDim is the recurrent/hidden layer width.
	HiddenDim int
	// LR is the Adagrad learning rate.
	LR float64
	// MaxLen truncates training sessions (cost is quadratic in length for
	// the attention models). 0 means 20.
	MaxLen int
	// Loss selects the training objective (GRU4Rec only; the attention
	// models always train with full cross-entropy).
	Loss Loss
	// NegSamples is the number of sampled negatives per step for the
	// ranking losses; 0 means 32.
	NegSamples int
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.EmbedDim == 0 {
		c.EmbedDim = 32
	}
	if c.HiddenDim == 0 {
		c.HiddenDim = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.MaxLen == 0 {
		c.MaxLen = 20
	}
	if c.NegSamples == 0 {
		c.NegSamples = 32
	}
	return c
}

// truncateSession caps a session to its most recent maxLen items.
func truncateSession(items []sessions.ItemID, maxLen int) []sessions.ItemID {
	if len(items) > maxLen {
		return items[len(items)-maxLen:]
	}
	return items
}

// Recommend ranks the model's scores and returns the top n items.
func Recommend(m Model, evolving []sessions.ItemID, n int) []core.ScoredItem {
	if len(evolving) == 0 || n <= 0 {
		return nil
	}
	scores := m.Scores(evolving)
	out := make([]core.ScoredItem, 0, len(scores))
	for item, s := range scores {
		out = append(out, core.ScoredItem{Item: sessions.ItemID(item), Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Fit trains the model for the given number of epochs over the dataset's
// sessions (shuffled per epoch) and returns the mean per-session loss of
// each epoch.
func Fit(m Model, ds *sessions.Dataset, epochs int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, len(ds.Sessions))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total, n := 0.0, 0
		for _, si := range order {
			items := ds.Sessions[si].Items
			if len(items) < 2 {
				continue
			}
			total += m.TrainSession(items)
			n++
		}
		if n == 0 {
			losses = append(losses, 0)
			continue
		}
		losses = append(losses, total/float64(n))
	}
	return losses
}
