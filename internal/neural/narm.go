package neural

import (
	"math/rand"

	"serenade/internal/sessions"
)

// NARM is the neural attentive session recommender of Li et al. (CIKM
// 2017): a GRU encoder whose final state acts as a global representation,
// combined with an attention-weighted sum of all hidden states (the local,
// purpose-capturing representation); the concatenation scores items through
// a bilinear decoder.
type NARM struct {
	cfg  Config
	emb  *Param // items × embed
	cell *GRUCell
	a1   *Param // hidden × hidden (query projection)
	a2   *Param // hidden × hidden (key projection)
	v    *Param // 1 × hidden (attention energy)
	dec  *Param // items × 2·hidden (bilinear decoder over [global; local])
	opt  *Optimizer
}

// NewNARM allocates the model.
func NewNARM(cfg Config) *NARM {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &NARM{
		cfg:  cfg,
		emb:  NewParam("narm.emb", cfg.NumItems, cfg.EmbedDim, rng),
		cell: NewGRUCell(cfg.EmbedDim, cfg.HiddenDim, rng),
		a1:   NewParam("narm.A1", cfg.HiddenDim, cfg.HiddenDim, rng),
		a2:   NewParam("narm.A2", cfg.HiddenDim, cfg.HiddenDim, rng),
		v:    NewParam("narm.v", 1, cfg.HiddenDim, rng),
		dec:  NewParam("narm.dec", cfg.NumItems, 2*cfg.HiddenDim, rng),
	}
	params := append([]*Param{m.emb, m.a1, m.a2, m.v, m.dec}, m.cell.Params()...)
	m.opt = &Optimizer{LR: cfg.LR, Params: params}
	return m
}

// Name implements Model.
func (m *NARM) Name() string { return "NARM" }

// logitsAt computes the decoder logits for the prefix ending at position
// last (inclusive) given all hidden states up to last.
func (m *NARM) logitsAt(t *Tape, states []*Vec, last int) *Vec {
	hLast := states[last]
	query := t.MatVec(m.a1, hLast)
	energies := NewVec(last + 1)
	parts := make([]*Vec, last+1)
	for j := 0; j <= last; j++ {
		key := t.MatVec(m.a2, states[j])
		e := t.Dot(t.Lookup(m.v, 0), t.Sigmoid(t.Add(query, key)))
		parts[j] = e
		energies.X[j] = e.X[0]
	}
	// Bridge the per-position scalars into one vector node.
	t.record(func() {
		for j, p := range parts {
			p.G[0] += energies.G[j]
		}
	})
	alpha := t.Softmax(energies)
	local := t.WeightedSum(states[:last+1], alpha)
	ctx := t.Concat2(hLast, local)
	return t.MatVec(m.dec, ctx)
}

func (m *NARM) forward(t *Tape, items []sessions.ItemID) []*Vec {
	h := NewVec(m.cfg.HiddenDim)
	states := make([]*Vec, 0, len(items))
	for _, it := range items {
		x := t.Lookup(m.emb, int(it))
		h = m.cell.Step(t, x, h)
		states = append(states, h)
	}
	return states
}

// TrainSession implements Model.
func (m *NARM) TrainSession(items []sessions.ItemID) float64 {
	items = truncateSession(items, m.cfg.MaxLen)
	if len(items) < 2 {
		return 0
	}
	t := &Tape{}
	states := m.forward(t, items[:len(items)-1])
	loss := 0.0
	for i := range states {
		logits := m.logitsAt(t, states, i)
		loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
	}
	t.Backward()
	m.opt.Step()
	return loss
}

// Scores implements Model.
func (m *NARM) Scores(evolving []sessions.ItemID) []float64 {
	evolving = truncateSession(evolving, m.cfg.MaxLen)
	t := &Tape{}
	states := m.forward(t, evolving)
	return m.logitsAt(t, states, len(states)-1).X
}
