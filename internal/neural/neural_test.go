package neural

import (
	"math"
	"math/rand"
	"testing"

	"serenade/internal/sessions"
)

const gradTol = 1e-5

// checkGradients compares analytic gradients against central finite
// differences for every parameter of a model, using loss() as the scalar
// objective. loss() must be a pure function of the parameters that seeds
// gradients via SoftmaxCrossEntropy and a tape Backward.
func checkGradients(t *testing.T, params []*Param, lossAndBackward func() float64, lossOnly func() float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	lossAndBackward()
	analytic := make(map[string][]float64)
	for _, p := range params {
		g := make([]float64, len(p.G))
		copy(g, p.G)
		analytic[p.Name] = g
		p.ZeroGrad()
	}

	const h = 1e-6
	rng := rand.New(rand.NewSource(1))
	for _, p := range params {
		// Sample a handful of entries per parameter.
		checks := 4
		if len(p.W) < checks {
			checks = len(p.W)
		}
		for c := 0; c < checks; c++ {
			i := rng.Intn(len(p.W))
			orig := p.W[i]
			p.W[i] = orig + h
			up := lossOnly()
			p.W[i] = orig - h
			down := lossOnly()
			p.W[i] = orig
			numeric := (up - down) / (2 * h)
			got := analytic[p.Name][i]
			if math.Abs(got-numeric) > gradTol*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, got, numeric)
			}
		}
		p.ZeroGrad()
	}
}

func zeroAll(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

func TestGRU4RecGradients(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 6, EmbedDim: 4, HiddenDim: 3, Seed: 9})
	items := []sessions.ItemID{0, 2, 4, 1}
	params := m.opt.Params
	forwardLoss := func() float64 {
		tp := &Tape{}
		states := m.forward(tp, items[:len(items)-1])
		loss := 0.0
		for i, h := range states {
			logits := tp.AddBias(tp.MatVec(m.out, h), m.bOut)
			loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
		}
		return loss
	}
	lossOnly := func() float64 {
		l := forwardLoss()
		zeroAll(params)
		return l
	}
	lossAndBackward := func() float64 {
		tp := &Tape{}
		states := m.forward(tp, items[:len(items)-1])
		loss := 0.0
		for i, h := range states {
			logits := tp.AddBias(tp.MatVec(m.out, h), m.bOut)
			loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
		}
		tp.Backward()
		return loss
	}
	checkGradients(t, params, lossAndBackward, lossOnly)
}

func TestNARMGradients(t *testing.T) {
	m := NewNARM(Config{NumItems: 6, EmbedDim: 3, HiddenDim: 3, Seed: 10})
	items := []sessions.ItemID{1, 3, 5, 0}
	params := m.opt.Params
	run := func(backward bool) float64 {
		tp := &Tape{}
		states := m.forward(tp, items[:len(items)-1])
		loss := 0.0
		for i := range states {
			logits := m.logitsAt(tp, states, i)
			loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
		}
		if backward {
			tp.Backward()
		}
		return loss
	}
	lossOnly := func() float64 {
		l := run(false)
		zeroAll(params)
		return l
	}
	checkGradients(t, params, func() float64 { return run(true) }, lossOnly)
}

func TestSTAMPGradients(t *testing.T) {
	m := NewSTAMP(Config{NumItems: 6, EmbedDim: 3, Seed: 11})
	items := []sessions.ItemID{2, 0, 4, 3}
	params := m.opt.Params
	run := func(backward bool) float64 {
		tp := &Tape{}
		embs := make([]*Vec, len(items)-1)
		for i := 0; i < len(items)-1; i++ {
			embs[i] = tp.Lookup(m.emb, int(items[i]))
		}
		loss := 0.0
		for i := range embs {
			logits := m.logits(tp, embs, i)
			loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
		}
		if backward {
			tp.Backward()
		}
		return loss
	}
	lossOnly := func() float64 {
		l := run(false)
		zeroAll(params)
		return l
	}
	checkGradients(t, params, func() float64 { return run(true) }, lossOnly)
}

// patternDataset builds sessions following deterministic cyclic patterns so
// a sequence model can achieve near-perfect next-item accuracy.
func patternDataset(n int) *sessions.Dataset {
	patterns := [][]sessions.ItemID{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
		{8, 9, 10, 11},
	}
	var ss []sessions.Session
	for i := 0; i < n; i++ {
		p := patterns[i%len(patterns)]
		times := make([]int64, len(p))
		for j := range times {
			times[j] = int64(1000*i + j)
		}
		ss = append(ss, sessions.Session{ID: sessions.SessionID(i), Items: p, Times: times})
	}
	return sessions.FromSessions("pattern", ss)
}

func testLearnsPattern(t *testing.T, m Model, epochs int) {
	t.Helper()
	ds := patternDataset(30)
	losses := Fit(m, ds, epochs, 42)
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("%s: loss did not decrease: first %.3f last %.3f", m.Name(), losses[0], losses[len(losses)-1])
	}
	cases := []struct {
		prefix []sessions.ItemID
		want   sessions.ItemID
	}{
		{[]sessions.ItemID{0, 1}, 2},
		{[]sessions.ItemID{4, 5, 6}, 7},
		{[]sessions.ItemID{8}, 9},
	}
	for _, tc := range cases {
		recs := Recommend(m, tc.prefix, 3)
		if len(recs) == 0 {
			t.Fatalf("%s: no recommendations for %v", m.Name(), tc.prefix)
		}
		found := false
		for _, r := range recs {
			if r.Item == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: prefix %v: want %d in top-3, got %v", m.Name(), tc.prefix, tc.want, recs)
		}
	}
}

func TestGRU4RecLearnsPattern(t *testing.T) {
	testLearnsPattern(t, NewGRU4Rec(Config{NumItems: 12, EmbedDim: 16, HiddenDim: 16, Seed: 1}), 15)
}

func TestNARMLearnsPattern(t *testing.T) {
	testLearnsPattern(t, NewNARM(Config{NumItems: 12, EmbedDim: 16, HiddenDim: 16, Seed: 2}), 15)
}

func TestSTAMPLearnsPattern(t *testing.T) {
	testLearnsPattern(t, NewSTAMP(Config{NumItems: 12, EmbedDim: 16, Seed: 3}), 15)
}

func TestRecommendEdgeCases(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 5, Seed: 4})
	if Recommend(m, nil, 5) != nil {
		t.Error("Recommend on empty session must be nil")
	}
	if Recommend(m, []sessions.ItemID{1}, 0) != nil {
		t.Error("Recommend with n=0 must be nil")
	}
	recs := Recommend(m, []sessions.ItemID{1}, 3)
	if len(recs) != 3 {
		t.Errorf("Recommend returned %d, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Error("recommendations not sorted")
		}
	}
}

func TestTrainSessionTooShort(t *testing.T) {
	m := NewSTAMP(Config{NumItems: 5, Seed: 5})
	if loss := m.TrainSession([]sessions.ItemID{1}); loss != 0 {
		t.Errorf("training on a 1-click session returned loss %v, want 0", loss)
	}
}

func TestTruncateSession(t *testing.T) {
	in := []sessions.ItemID{1, 2, 3, 4, 5}
	got := truncateSession(in, 3)
	if len(got) != 3 || got[0] != 3 {
		t.Errorf("truncate = %v, want [3 4 5]", got)
	}
	if len(truncateSession(in, 10)) != 5 {
		t.Error("truncate must keep short sessions intact")
	}
}

func TestFitSkipsShortSessions(t *testing.T) {
	ds := sessions.FromSessions("short", []sessions.Session{
		{ID: 0, Items: []sessions.ItemID{1}, Times: []int64{1}},
	})
	m := NewGRU4Rec(Config{NumItems: 5, Seed: 6})
	losses := Fit(m, ds, 2, 1)
	if losses[0] != 0 || losses[1] != 0 {
		t.Errorf("losses = %v, want zeros for all-short dataset", losses)
	}
}

func TestSoftmaxCrossEntropyGradientSums(t *testing.T) {
	logits := NewVec(4)
	copy(logits.X, []float64{0.5, -1, 2, 0})
	loss := SoftmaxCrossEntropy(logits, 2, 1)
	if loss < 0 {
		t.Errorf("loss = %v, want >= 0", loss)
	}
	sum := 0.0
	for _, g := range logits.G {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("gradient sums to %v, want 0 (softmax minus onehot)", sum)
	}
}

func TestAdagradStepReducesLoss(t *testing.T) {
	m := NewGRU4Rec(Config{NumItems: 6, EmbedDim: 8, HiddenDim: 8, Seed: 7, LR: 0.1})
	items := []sessions.ItemID{0, 1, 2, 3}
	first := m.TrainSession(items)
	var last float64
	for i := 0; i < 30; i++ {
		last = m.TrainSession(items)
	}
	if last >= first {
		t.Errorf("loss did not decrease on repeated training: %v -> %v", first, last)
	}
}
