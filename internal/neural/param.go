package neural

import (
	"math"
	"math/rand"
)

// Param is a trainable weight matrix (or vector when Cols == 1 or Rows == 1)
// with its gradient accumulator and Adagrad state.
type Param struct {
	Name       string
	Rows, Cols int
	W          []float64
	G          []float64
	ssq        []float64 // Adagrad accumulated squared gradients
}

// NewParam allocates a parameter initialised with Glorot-style uniform
// noise.
func NewParam(name string, rows, cols int, rng *rand.Rand) *Param {
	n := rows * cols
	p := &Param{
		Name: name, Rows: rows, Cols: cols,
		W:   make([]float64, n),
		G:   make([]float64, n),
		ssq: make([]float64, n),
	}
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

// NewZeroParam allocates a zero-initialised parameter (biases).
func NewZeroParam(name string, rows, cols int) *Param {
	n := rows * cols
	return &Param{
		Name: name, Rows: rows, Cols: cols,
		W:   make([]float64, n),
		G:   make([]float64, n),
		ssq: make([]float64, n),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// adagradStep applies one Adagrad update with the given learning rate and
// clears the gradient.
func (p *Param) adagradStep(lr float64) {
	const eps = 1e-8
	for i, g := range p.G {
		if g == 0 {
			continue
		}
		p.ssq[i] += g * g
		p.W[i] -= lr * g / (math.Sqrt(p.ssq[i]) + eps)
		p.G[i] = 0
	}
}

// Optimizer applies Adagrad steps over a parameter set.
type Optimizer struct {
	LR     float64
	Params []*Param
}

// Step updates all parameters from their accumulated gradients and clears
// them.
func (o *Optimizer) Step() {
	for _, p := range o.Params {
		p.adagradStep(o.LR)
	}
}
