package neural

import (
	"math/rand"

	"serenade/internal/sessions"
)

// STAMP is the short-term attention/memory priority model of Liu et al.
// (KDD 2018): an attention over the session's item embeddings conditioned
// on the last click and the session's mean embedding produces a general
// interest vector; combined multiplicatively with the last click's
// projection it scores candidate items by embedding dot product — no
// recurrence, which makes it the cheapest of the three baselines.
type STAMP struct {
	cfg Config
	emb *Param // items × embed (shared encoder/decoder embedding)
	w1  *Param // embed × embed (attention: per-item)
	w2  *Param // embed × embed (attention: last click)
	w3  *Param // embed × embed (attention: session mean)
	w0  *Param // 1 × embed    (attention energy)
	ws  *Param // embed × embed (general-interest MLP)
	bs  *Param
	wt  *Param // embed × embed (last-click MLP)
	bt  *Param
	opt *Optimizer
}

// NewSTAMP allocates the model.
func NewSTAMP(cfg Config) *STAMP {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &STAMP{
		cfg: cfg,
		emb: NewParam("stamp.emb", cfg.NumItems, cfg.EmbedDim, rng),
		w1:  NewParam("stamp.W1", cfg.EmbedDim, cfg.EmbedDim, rng),
		w2:  NewParam("stamp.W2", cfg.EmbedDim, cfg.EmbedDim, rng),
		w3:  NewParam("stamp.W3", cfg.EmbedDim, cfg.EmbedDim, rng),
		w0:  NewParam("stamp.w0", 1, cfg.EmbedDim, rng),
		ws:  NewParam("stamp.Ws", cfg.EmbedDim, cfg.EmbedDim, rng),
		bs:  NewZeroParam("stamp.bs", cfg.EmbedDim, 1),
		wt:  NewParam("stamp.Wt", cfg.EmbedDim, cfg.EmbedDim, rng),
		bt:  NewZeroParam("stamp.bt", cfg.EmbedDim, 1),
	}
	m.opt = &Optimizer{LR: cfg.LR, Params: []*Param{
		m.emb, m.w1, m.w2, m.w3, m.w0, m.ws, m.bs, m.wt, m.bt,
	}}
	return m
}

// Name implements Model.
func (m *STAMP) Name() string { return "STAMP" }

// logits scores all items for the prefix embs[0..last].
func (m *STAMP) logits(t *Tape, embs []*Vec, last int) *Vec {
	xt := embs[last]
	// Session memory: mean embedding of the prefix.
	sum := embs[0]
	for j := 1; j <= last; j++ {
		sum = t.Add(sum, embs[j])
	}
	ms := t.Scale(sum, 1/float64(last+1))

	// Attention with last-click priority.
	qLast := t.MatVec(m.w2, xt)
	qMean := t.MatVec(m.w3, ms)
	base := t.Add(qLast, qMean)
	energies := NewVec(last + 1)
	parts := make([]*Vec, last+1)
	for j := 0; j <= last; j++ {
		e := t.Dot(t.Lookup(m.w0, 0), t.Sigmoid(t.Add(t.MatVec(m.w1, embs[j]), base)))
		parts[j] = e
		energies.X[j] = e.X[0]
	}
	t.record(func() {
		for j, p := range parts {
			p.G[0] += energies.G[j]
		}
	})
	alpha := t.Softmax(energies)
	ma := t.WeightedSum(embs[:last+1], alpha)

	hs := t.Tanh(t.AddBias(t.MatVec(m.ws, ma), m.bs))
	ht := t.Tanh(t.AddBias(t.MatVec(m.wt, xt), m.bt))
	return t.MatVec(m.emb, t.Mul(hs, ht))
}

// TrainSession implements Model.
func (m *STAMP) TrainSession(items []sessions.ItemID) float64 {
	items = truncateSession(items, m.cfg.MaxLen)
	if len(items) < 2 {
		return 0
	}
	t := &Tape{}
	embs := make([]*Vec, len(items)-1)
	for i := 0; i < len(items)-1; i++ {
		embs[i] = t.Lookup(m.emb, int(items[i]))
	}
	loss := 0.0
	for i := range embs {
		logits := m.logits(t, embs, i)
		loss += SoftmaxCrossEntropy(logits, int(items[i+1]), 1)
	}
	t.Backward()
	m.opt.Step()
	return loss
}

// Scores implements Model.
func (m *STAMP) Scores(evolving []sessions.ItemID) []float64 {
	evolving = truncateSession(evolving, m.cfg.MaxLen)
	t := &Tape{}
	embs := make([]*Vec, len(evolving))
	for i, it := range evolving {
		embs[i] = t.Lookup(m.emb, int(it))
	}
	return m.logits(t, embs, len(embs)-1).X
}
