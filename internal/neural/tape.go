// Package neural is a small from-scratch neural network library and the
// three neural session-recommendation baselines the paper compares against
// in §5.1.1: GRU4Rec (Hidasi et al.), NARM (Li et al.) and STAMP (Liu et
// al.).
//
// The library is a tape-based reverse-mode automatic differentiation engine
// over dense vectors: every forward operation appends a backward closure to
// a tape, and running the tape in reverse accumulates gradients. Models are
// architecturally faithful, scaled-down versions of the published baselines
// (GRU recurrence; NARM's attention over hidden states; STAMP's attention
// with last-item priority), trained with Adagrad on the synthetic datasets —
// see the substitution notes in DESIGN.md.
package neural

import "math"

// Tape records backward closures in forward execution order; executing them
// in reverse order is a valid reverse topological traversal of the compute
// graph.
type Tape struct {
	backward []func()
}

// Reset discards the recorded graph, keeping storage for reuse.
func (t *Tape) Reset() { t.backward = t.backward[:0] }

// Backward runs the recorded closures in reverse. The caller seeds the
// output gradient first (SoftmaxCrossEntropy does this itself).
func (t *Tape) Backward() {
	for i := len(t.backward) - 1; i >= 0; i-- {
		t.backward[i]()
	}
}

func (t *Tape) record(f func()) { t.backward = append(t.backward, f) }

// Vec is a node in the compute graph: a value vector X with its gradient G.
type Vec struct {
	X []float64
	G []float64
}

// NewVec allocates a zero vector node of length n.
func NewVec(n int) *Vec {
	return &Vec{X: make([]float64, n), G: make([]float64, n)}
}

// Len returns the vector length.
func (v *Vec) Len() int { return len(v.X) }

// Constant wraps data in a leaf node (its gradient is accumulated but
// unused).
func Constant(data []float64) *Vec {
	return &Vec{X: data, G: make([]float64, len(data))}
}

// Add returns a + b.
func (t *Tape) Add(a, b *Vec) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = a.X[i] + b.X[i]
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// Mul returns the elementwise product a ⊙ b.
func (t *Tape) Mul(a, b *Vec) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = a.X[i] * b.X[i]
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * b.X[i]
			b.G[i] += out.G[i] * a.X[i]
		}
	})
	return out
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Vec, s float64) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = s * a.X[i]
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += s * out.G[i]
		}
	})
	return out
}

// OneMinus returns 1 − a, the gate complement used by the GRU update.
func (t *Tape) OneMinus(a *Vec) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = 1 - a.X[i]
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] -= out.G[i]
		}
	})
	return out
}

// Sigmoid returns σ(a) elementwise.
func (t *Tape) Sigmoid(a *Vec) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = 1 / (1 + math.Exp(-a.X[i]))
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * out.X[i] * (1 - out.X[i])
		}
	})
	return out
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Vec) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = math.Tanh(a.X[i])
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * (1 - out.X[i]*out.X[i])
		}
	})
	return out
}

// MatVec returns W·x for a parameter matrix W (rows×cols) and x of length
// cols.
func (t *Tape) MatVec(w *Param, x *Vec) *Vec {
	out := NewVec(w.Rows)
	for r := 0; r < w.Rows; r++ {
		row := w.W[r*w.Cols : (r+1)*w.Cols]
		s := 0.0
		for c, xv := range x.X {
			s += row[c] * xv
		}
		out.X[r] = s
	}
	t.record(func() {
		for r := 0; r < w.Rows; r++ {
			g := out.G[r]
			if g == 0 {
				continue
			}
			row := w.W[r*w.Cols : (r+1)*w.Cols]
			grow := w.G[r*w.Cols : (r+1)*w.Cols]
			for c := range x.X {
				grow[c] += g * x.X[c]
				x.G[c] += g * row[c]
			}
		}
	})
	return out
}

// AddBias returns a + b for a bias parameter vector b.
func (t *Tape) AddBias(a *Vec, b *Param) *Vec {
	out := NewVec(a.Len())
	for i := range out.X {
		out.X[i] = a.X[i] + b.W[i]
	}
	t.record(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// Lookup returns row idx of the embedding parameter as a graph node.
func (t *Tape) Lookup(emb *Param, idx int) *Vec {
	out := NewVec(emb.Cols)
	copy(out.X, emb.W[idx*emb.Cols:(idx+1)*emb.Cols])
	t.record(func() {
		grow := emb.G[idx*emb.Cols : (idx+1)*emb.Cols]
		for i := range out.G {
			grow[i] += out.G[i]
		}
	})
	return out
}

// Dot returns the scalar a·b as a length-1 node.
func (t *Tape) Dot(a, b *Vec) *Vec {
	out := NewVec(1)
	s := 0.0
	for i := range a.X {
		s += a.X[i] * b.X[i]
	}
	out.X[0] = s
	t.record(func() {
		g := out.G[0]
		for i := range a.X {
			a.G[i] += g * b.X[i]
			b.G[i] += g * a.X[i]
		}
	})
	return out
}

// WeightedSum returns Σ_j weights[j]·vecs[j], the attention context vector.
// weights is a node of length len(vecs).
func (t *Tape) WeightedSum(vecs []*Vec, weights *Vec) *Vec {
	out := NewVec(vecs[0].Len())
	for j, v := range vecs {
		w := weights.X[j]
		for i := range out.X {
			out.X[i] += w * v.X[i]
		}
	}
	t.record(func() {
		for j, v := range vecs {
			w := weights.X[j]
			dw := 0.0
			for i := range out.G {
				v.G[i] += w * out.G[i]
				dw += v.X[i] * out.G[i]
			}
			weights.G[j] += dw
		}
	})
	return out
}

// Softmax returns softmax(a) as a node (used for attention weights).
func (t *Tape) Softmax(a *Vec) *Vec {
	out := NewVec(a.Len())
	max := a.X[0]
	for _, v := range a.X[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range a.X {
		e := math.Exp(v - max)
		out.X[i] = e
		sum += e
	}
	for i := range out.X {
		out.X[i] /= sum
	}
	t.record(func() {
		// dL/da_i = y_i (g_i − Σ_j g_j y_j)
		dot := 0.0
		for j := range out.X {
			dot += out.G[j] * out.X[j]
		}
		for i := range a.X {
			a.G[i] += out.X[i] * (out.G[i] - dot)
		}
	})
	return out
}

// Concat2 returns the concatenation [a; b].
func (t *Tape) Concat2(a, b *Vec) *Vec {
	out := NewVec(a.Len() + b.Len())
	copy(out.X, a.X)
	copy(out.X[a.Len():], b.X)
	t.record(func() {
		for i := range a.G {
			a.G[i] += out.G[i]
		}
		off := a.Len()
		for i := range b.G {
			b.G[i] += out.G[off+i]
		}
	})
	return out
}

// SoftmaxCrossEntropy computes softmax cross-entropy of logits against a
// target class, seeds the logits' gradient (softmax − onehot, scaled by
// weight), and returns the loss. It terminates a training step.
func SoftmaxCrossEntropy(logits *Vec, target int, weight float64) float64 {
	max := logits.X[0]
	for _, v := range logits.X[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range logits.X {
		sum += math.Exp(v - max)
	}
	logZ := math.Log(sum) + max
	loss := (logZ - logits.X[target]) * weight
	for i, v := range logits.X {
		p := math.Exp(v-logZ) * weight
		logits.G[i] += p
	}
	logits.G[target] -= weight
	return loss
}
