package obs

import (
	"runtime"
	"time"
)

// HealthSignal is one replica's overload telemetry snapshot: the leading
// indicators admission control needs (queue depth, queue-wait watermarks,
// in-flight requests) next to the trailing ones (burn rates, hit ratios, GC
// pressure). Serving fills it, the cluster proxy republishes it per backend
// at /proxy/health, and the load tester prints it against the offered load.
//
// Durations serialise as nanoseconds, matching /debug/traces.
type HealthSignal struct {
	Replica string    `json:"replica,omitempty"`
	Time    time.Time `json:"time"`

	// Request pressure.
	InFlight int64 `json:"in_flight"`

	// Batcher pressure: instantaneous queue depth plus rolling queue-wait
	// high-watermarks — the overload symptom averages hide.
	BatchQueueDepth int           `json:"batch_queue_depth"`
	BatchWaitMax10s time.Duration `json:"batch_wait_max_10s_ns"`
	BatchWaitMax1m  time.Duration `json:"batch_wait_max_1m_ns"`

	// Result-cache effectiveness over rolling windows; a falling short-window
	// ratio under rising load means the cache is churning, not absorbing.
	CacheLookups1m   uint64  `json:"cache_lookups_1m"`
	CacheHitRatio10s float64 `json:"cache_hit_ratio_10s"`
	CacheHitRatio1m  float64 `json:"cache_hit_ratio_1m"`

	// SLO burn summary (worst endpoint).
	BurnRate float64 `json:"slo_burn_rate"`
	FastBurn bool    `json:"slo_fast_burn"`
	SlowBurn bool    `json:"slo_slow_burn"`

	// Recommendation-quality drift summary (worst variant/pipeline line):
	// whether the online click-rank/score distribution departed from the
	// offline baseline, the tripped check, and the headline online numbers.
	QualityDrift       bool    `json:"quality_drift"`
	QualityDriftReason string  `json:"quality_drift_reason,omitempty"`
	QualityRankTV      float64 `json:"quality_rank_tv,omitempty"`
	QualityMRRRatio    float64 `json:"quality_mrr_ratio,omitempty"`
	QualityCTR         float64 `json:"quality_ctr,omitempty"`

	// Runtime pressure. AllocRate is the heap allocation rate between
	// successive health polls — the leading GC-pressure indicator: a deploy
	// that regresses the hot path's allocation discipline shows here before
	// pause times move.
	Goroutines    int           `json:"goroutines"`
	HeapAlloc     uint64        `json:"heap_alloc_bytes"`
	AllocTotal    uint64        `json:"alloc_total_bytes"`
	AllocRate     float64       `json:"alloc_bytes_per_sec"`
	LastGCPause   time.Duration `json:"last_gc_pause_ns"`
	GCPauseTotal  time.Duration `json:"gc_pause_total_ns"`
	GCCycles      uint32        `json:"gc_cycles"`
	GCCPUFraction float64       `json:"gc_cpu_fraction"`
}

// healthAllocMeter backs AllocRate across FillRuntime calls; package-level
// because the signal itself is a per-poll value.
var healthAllocMeter AllocRateMeter

// FillRuntime populates the runtime-pressure fields from the Go runtime.
// ReadMemStats stops the world briefly; health is polled at human frequency,
// not per request, so that cost is acceptable here.
func (h *HealthSignal) FillRuntime() {
	h.Goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.HeapAlloc = ms.HeapAlloc
	h.AllocTotal = ms.TotalAlloc
	h.AllocRate = healthAllocMeter.Observe(ms.TotalAlloc, time.Now())
	h.GCPauseTotal = time.Duration(ms.PauseTotalNs)
	h.GCCycles = ms.NumGC
	h.GCCPUFraction = ms.GCCPUFraction
	if ms.NumGC > 0 {
		h.LastGCPause = time.Duration(ms.PauseNs[(ms.NumGC+255)%256])
	}
}
