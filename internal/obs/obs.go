// Package obs is Serenade's lightweight, dependency-free observability
// layer: per-request spans with monotonic stage timings, a sampled ring
// buffer of recent traces (GET /debug/traces), an atomic metric registry
// with full Prometheus text exposition (cumulative `le`-bucket histograms
// derived from the HDR buckets in internal/metrics), and a sampled
// slow-query log built on log/slog.
//
// The paper's evaluation (§6, Figures 3b/3c) is Grafana over exactly these
// series — requests per second and p75/p90/p99.5 latency, attributable to
// index lookup vs. scoring vs. serialization. Everything here exists so a
// real scrape of a running server can reproduce those curves and explain a
// tail-latency regression down to the stage that caused it.
package obs

import (
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"time"
)

// TraceparentHeader carries trace context between tiers, in the W3C Trace
// Context format: "00-<32 hex trace id>-<16 hex span id>-01".
const TraceparentHeader = "Traceparent"

// RequestIDHeader echoes the request's trace id back to the caller, so a
// slow response can be matched to its server-side trace.
const RequestIDHeader = "X-Request-Id"

// NewTraceID returns a 32-character lowercase-hex trace id.
func NewTraceID() string {
	var b [16]byte
	putUint64(b[:8], rand.Uint64())
	putUint64(b[8:], rand.Uint64())
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a 16-character lowercase-hex span id.
func NewSpanID() string {
	var b [8]byte
	putUint64(b[:], rand.Uint64())
	return hex.EncodeToString(b[:])
}

// NewTraceAndSpanID mints a fresh trace id and span id sharing one string
// allocation: both ids are substrings of a single 48-character hex backing,
// so the per-request id cost on the serving hot path is one allocation
// instead of two.
func NewTraceAndSpanID() (traceID, spanID string) {
	var b [24]byte
	putUint64(b[:8], rand.Uint64())
	putUint64(b[8:16], rand.Uint64())
	putUint64(b[16:], rand.Uint64())
	var dst [48]byte
	hex.Encode(dst[:], b[:])
	s := string(dst[:])
	return s[:32], s[32:]
}

func putUint64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// FormatTraceparent renders a traceparent header value for propagation.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace id and the parent span id from a
// traceparent header. ok is false for anything malformed, in which case the
// receiver should start a fresh trace.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes.
	if len(h) != 55 || h[:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// PropagateTrace ensures an outbound request carries trace context: an
// existing traceparent is kept (the hop stays inside the caller's trace),
// otherwise a fresh trace id is minted. Either way the returned trace id
// identifies the request end to end.
func PropagateTrace(h http.Header) (traceID string) {
	if tid, _, ok := ParseTraceparent(h.Get(TraceparentHeader)); ok {
		return tid
	}
	traceID = NewTraceID()
	h.Set(TraceparentHeader, FormatTraceparent(traceID, NewSpanID()))
	return traceID
}

// nowMono is the span clock; a variable so tests can freeze it.
var nowMono = time.Now
