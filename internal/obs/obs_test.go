package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id lengths: trace %d span %d", len(tid), len(sid))
	}
	h := FormatTraceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q → (%q, %q, %v)", h, gotT, gotS, ok)
	}
	for _, bad := range []string{
		"", "00-short-short-01",
		"zz-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase
		"00-0123456789abcdef0123456789abcdef+0123456789abcdef-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestSpanCutPartitionsTotal(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	sp := tr.Start("recommend")
	sp.Cut(StageStore)
	time.Sleep(2 * time.Millisecond)
	sp.Cut(StageScore)
	sp.Cut(StageEncode)
	sp.End()
	if sp.Stages[StageScore] < 2*time.Millisecond {
		t.Errorf("score stage %v, want ≥2ms", sp.Stages[StageScore])
	}
	sum, total := sp.StageSum(), sp.Total
	if sum > total {
		t.Errorf("stage sum %v exceeds total %v", sum, total)
	}
	if total-sum > total/10 {
		t.Errorf("stage sum %v misses >10%% of total %v", sum, total)
	}
	tr.Finish(sp)
}

func TestTracerRingAndSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 4, SampleEvery: 2})
	for i := 0; i < 10; i++ {
		sp := tr.Start("op")
		tr.Finish(sp)
	}
	got := tr.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4 (capacity)", len(got))
	}
	if tr.sampled.Load() != 5 {
		t.Errorf("sampled %d of 10 at 1-in-2, want 5", tr.sampled.Load())
	}

	// The remote form keeps the propagated identity (fresh tracer so the
	// 1-in-2 sampling phase cannot drop it).
	tr2 := NewTracer(TracerOptions{RingSize: 4})
	parentSpan := NewSpanID()
	tp := FormatTraceparent(strings.Repeat("ab", 16), parentSpan)
	sp := tr2.StartRemote("op", tp)
	if sp.TraceID != strings.Repeat("ab", 16) || sp.ParentID != parentSpan {
		t.Fatalf("StartRemote did not adopt trace context: %+v", sp)
	}
	tr2.Finish(sp)
	if newest := tr2.Recent()[0]; newest.ParentID != parentSpan {
		t.Errorf("newest trace parent = %q, want %q", newest.ParentID, parentSpan)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 8})
	sp := tr.Start("recommend")
	sp.Cut(StageStore)
	sp.Cut(StageScore)
	tr.Finish(sp)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Finished uint64 `json:"finished"`
		Traces   []struct {
			TraceID string           `json:"trace_id"`
			TotalNS int64            `json:"total_ns"`
			Stages  map[string]int64 `json:"stages_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding /debug/traces: %v\n%s", err, rec.Body.String())
	}
	if body.Finished != 1 || len(body.Traces) != 1 {
		t.Fatalf("finished=%d traces=%d, want 1/1", body.Finished, len(body.Traces))
	}
	tv := body.Traces[0]
	if len(tv.TraceID) != 32 || tv.TotalNS <= 0 {
		t.Errorf("bad trace view: %+v", tv)
	}
	var sum int64
	for _, ns := range tv.Stages {
		sum += ns
	}
	if sum <= 0 || sum > tv.TotalNS {
		t.Errorf("stage sum %d not in (0, total=%d]", sum, tv.TotalNS)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("op")
				sp.Cut(StageScore)
				tr.Finish(sp)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = tr.Recent()
		}
	}()
	wg.Wait()
	<-done
	if got := tr.finished.Load(); got != 4000 {
		t.Fatalf("finished %d spans, want 4000", got)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	sl := NewSlowLog(logger, time.Millisecond, 1000)
	tr := NewTracer(TracerOptions{SlowLog: sl})

	fast := tr.Start("op")
	fast.Total = 10 * time.Microsecond
	tr.Finish(fast)

	slow := tr.Start("op")
	slow.Stages[StageScore] = 2 * time.Millisecond
	slow.Total = 3 * time.Millisecond
	traceID := slow.TraceID
	tr.Finish(slow)

	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, traceID) {
		t.Fatalf("slow query not logged with trace id; log:\n%s", out)
	}
	if !strings.Contains(out, "stage_score") {
		t.Errorf("slow-query entry missing stage breakdown:\n%s", out)
	}
	if strings.Contains(out, fastTraceID(fast)) {
		t.Errorf("fast request logged as slow:\n%s", out)
	}

	sl.Flush()
	if out := buf.String(); !strings.Contains(out, "slow-query log summary") {
		t.Errorf("Flush did not emit summary:\n%s", out)
	}
}

// fastTraceID: the span was pooled after Finish, so capture-by-read would
// race; the fast span's id is simply unknown here — return a sentinel that
// never matches.
func fastTraceID(*Span) string { return "\x00never" }

func TestSlowLogRateLimit(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	sl := NewSlowLog(logger, time.Nanosecond, 2)
	for i := 0; i < 10; i++ {
		sp := &Span{TraceID: NewTraceID(), Op: "op", Total: time.Second}
		sl.Log(sp)
	}
	if n := strings.Count(buf.String(), "slow query"); n > 2 {
		t.Fatalf("rate limit let %d entries through in one second window, want ≤2", n)
	}
	if sl.suppressed.Load() < 8 {
		t.Errorf("suppressed = %d, want ≥8", sl.suppressed.Load())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func TestPhases(t *testing.T) {
	p := StartPhases()
	time.Sleep(time.Millisecond)
	if d := p.Mark("load"); d < time.Millisecond {
		t.Errorf("load phase %v, want ≥1ms", d)
	}
	p.Mark("build")
	s := p.String()
	for _, want := range []string{"load=", "build=", "total="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if len(p.List()) != 2 {
		t.Errorf("List() has %d phases, want 2", len(p.List()))
	}
}
