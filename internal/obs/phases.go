package obs

import (
	"fmt"
	"strings"
	"time"
)

// Phases times the sequential phases of a batch job (the indexer's
// load/build/save pipeline). Not safe for concurrent use — batch phases are
// sequential by construction.
type Phases struct {
	start time.Time
	last  time.Time
	list  []Phase
}

// Phase is one named, completed phase.
type Phase struct {
	Name     string
	Duration time.Duration
}

// StartPhases begins timing.
func StartPhases() *Phases {
	now := nowMono()
	return &Phases{start: now, last: now}
}

// Mark closes the current phase under the given name and returns its
// duration.
func (p *Phases) Mark(name string) time.Duration {
	now := nowMono()
	d := now.Sub(p.last)
	p.last = now
	p.list = append(p.list, Phase{Name: name, Duration: d})
	return d
}

// Total is the time since StartPhases.
func (p *Phases) Total() time.Duration { return nowMono().Sub(p.start) }

// List returns the completed phases in order.
func (p *Phases) List() []Phase { return p.list }

// String renders "load=1.2s build=3.4s save=0.5s total=5.1s".
func (p *Phases) String() string {
	var b strings.Builder
	for _, ph := range p.list {
		fmt.Fprintf(&b, "%s=%v ", ph.Name, ph.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "total=%v", p.Total().Round(time.Millisecond))
	return b.String()
}
