package quality

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is an offline quality snapshot the drift detector compares the
// online stream against. serenade-eval emits one (-quality-baseline) from the
// same evaluation loop that prints MRR@k, so the reference distribution is
// the recommender as it actually evaluated — not a hand-maintained constant.
type Baseline struct {
	// Profile names the dataset profile the baseline was evaluated on.
	Profile string `json:"profile,omitempty"`
	// K is the cutoff the baseline was computed at.
	K int `json:"k"`
	// MRR and HitRate are the offline MRR@k / HitRate@k over all events.
	MRR     float64 `json:"mrr"`
	HitRate float64 `json:"hit_rate"`
	// CondMRR is the MRR conditioned on a hit (MRR / HitRate): the expected
	// reciprocal rank given the clicked item appeared in the list. The online
	// estimator can measure this without knowing the propensity of a click,
	// which makes it the primary drift statistic.
	CondMRR float64 `json:"cond_mrr"`
	// RankDist is P(rank | hit) for ranks 1..K — the shape statistic the
	// total-variation drift check compares against.
	RankDist []float64 `json:"rank_dist,omitempty"`
	// Coverage and MeanPopularity summarise the Ludewig & Jannach companion
	// metrics at evaluation time.
	Coverage       float64 `json:"coverage,omitempty"`
	MeanPopularity float64 `json:"mean_popularity,omitempty"`
	// TopScoreP50 is the median top-1 recommendation score, a cheap proxy for
	// the score distribution (an index serving stale generations shifts it).
	TopScoreP50 float64 `json:"top_score_p50,omitempty"`
	// Events is the number of prediction events behind the snapshot.
	Events int `json:"events"`
	// GeneratedAt is an informational timestamp string set by the emitter.
	GeneratedAt string `json:"generated_at,omitempty"`
}

// Save writes the baseline as indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("quality: marshal baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline snapshot written by Save.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("quality: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("quality: parse baseline %s: %w", path, err)
	}
	return &b, nil
}
