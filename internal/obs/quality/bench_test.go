package quality

import (
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// TestRecordPathAllocs asserts the acceptance criterion directly: recording
// an exposure and attributing its click never allocate.
func TestRecordPathAllocs(t *testing.T) {
	tr := New(Options{CatalogSize: 1000,
		Popularity: func(it sessions.ItemID) float64 { return float64(it) }})
	ln := tr.Line("knn")
	list := recs(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tail := []sessions.ItemID{1, 2, 3}

	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordExposure(ln, list, tail, "req")
	}); n != 0 {
		t.Fatalf("RecordExposure allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		id := tr.RecordExposure(ln, list, tail, "req")
		tr.Attribute(id, 3, false)
	}); n != 0 {
		t.Fatalf("RecordExposure+Attribute allocates %.1f/op, want 0", n)
	}
}

func BenchmarkRecordExposure(b *testing.B) {
	tr := New(Options{CatalogSize: 1000,
		Popularity: func(it sessions.ItemID) float64 { return float64(it) }})
	ln := tr.Line("knn")
	list := recs(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	tail := []sessions.ItemID{1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordExposure(ln, list, tail, "req")
	}
}

func BenchmarkAttribute(b *testing.B) {
	tr := New(Options{Exposures: 1 << 16})
	ln := tr.Line("knn")
	list := recs(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.RecordExposure(ln, list, nil, "")
		tr.Attribute(id, list[i%len(list)].Item, false)
	}
}

func BenchmarkRecordExposureParallel(b *testing.B) {
	tr := New(Options{Exposures: 1 << 14})
	ln := tr.Line("knn")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		list := make([]core.ScoredItem, 10)
		for i := range list {
			list[i] = core.ScoredItem{Item: sessions.ItemID(i + 1), Score: float64(10 - i)}
		}
		for pb.Next() {
			id := tr.RecordExposure(ln, list, nil, "")
			tr.Attribute(id, list[0].Item, false)
		}
	})
}
