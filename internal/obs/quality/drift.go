package quality

import "serenade/internal/rank"

// DriftThresholds tune the drift detector. Zero fields take defaults; the
// CTR floor and score-ratio checks are opt-in (zero disables them) because
// their natural values depend on the deployment's click model.
type DriftThresholds struct {
	// MaxRankTV is the maximum total-variation distance between the online
	// click-rank distribution and the baseline's before drift is raised.
	MaxRankTV float64 `json:"max_rank_tv"`
	// MinMRRRatio is the minimum online-conditional-MRR / baseline-CondMRR
	// ratio; below it the ranker is placing clicked items lower than the
	// offline evaluation did.
	MinMRRRatio float64 `json:"min_mrr_ratio"`
	// MinClicks gates the distribution checks: with fewer attributed clicks
	// in the horizon the TV/MRR statistics are noise.
	MinClicks uint64 `json:"min_clicks"`
	// CTRFloor raises drift when windowed CTR falls below it with at least
	// MinExposures exposures — the check that still fires when degradation
	// kills clicks entirely (so MinClicks can never be reached). Zero
	// disables it.
	CTRFloor float64 `json:"ctr_floor,omitempty"`
	// MinExposures gates the CTR-floor check.
	MinExposures uint64 `json:"min_exposures"`
	// MinScoreRatio raises drift when the online median top-1 score falls
	// below this fraction of the baseline's — a stale or mismatched index
	// generation shifts scores before it shifts clicks. Zero disables it.
	MinScoreRatio float64 `json:"min_score_ratio,omitempty"`
}

// Default drift thresholds.
const (
	DefaultMaxRankTV    = 0.35
	DefaultMinMRRRatio  = 0.5
	DefaultMinClicks    = 30
	DefaultMinExposures = 200
)

// withDefaults fills zero fields.
func (d DriftThresholds) withDefaults() DriftThresholds {
	if d.MaxRankTV <= 0 {
		d.MaxRankTV = DefaultMaxRankTV
	}
	if d.MinMRRRatio <= 0 {
		d.MinMRRRatio = DefaultMinMRRRatio
	}
	if d.MinClicks == 0 {
		d.MinClicks = DefaultMinClicks
	}
	if d.MinExposures == 0 {
		d.MinExposures = DefaultMinExposures
	}
	return d
}

// DriftState is the detector's verdict for one line (or, via Drift, the
// worst line): whether the online quality distribution has departed from
// the offline baseline, and the statistics behind the call.
type DriftState struct {
	Drifting bool   `json:"drifting"`
	Variant  string `json:"variant,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
	// Reason names the tripped check: rank_tv, mrr_ratio, ctr_floor,
	// score_ratio; empty when not drifting.
	Reason string `json:"reason,omitempty"`
	// RankTV is the total-variation distance online-vs-baseline (0 when not
	// computable).
	RankTV float64 `json:"rank_tv"`
	// MRRRatio is online CondMRR / baseline CondMRR (0 when not computable).
	MRRRatio float64 `json:"mrr_ratio"`
	// ScoreRatio is online median top-1 score / baseline's.
	ScoreRatio float64 `json:"score_ratio,omitempty"`
	CTR        float64 `json:"ctr"`
	Clicks     uint64  `json:"clicks"`
	Exposures  uint64  `json:"exposures"`
}

// lineDrift evaluates the detector for one line over the horizon.
func (t *Tracker) lineDrift(ln *Line) DriftState {
	th := t.opts.Drift
	base := t.opts.Baseline
	ws := t.windowStats(ln, t.opts.Horizon)
	st := DriftState{
		Variant:   ln.variant,
		Pipeline:  ln.pipeline,
		CTR:       ws.CTR,
		Clicks:    ws.Clicks,
		Exposures: ws.Exposures,
	}
	if th.CTRFloor > 0 && ws.Exposures >= th.MinExposures && ws.CTR < th.CTRFloor {
		st.Drifting = true
		st.Reason = "ctr_floor"
	}
	if base == nil {
		return st
	}
	if ws.Clicks >= th.MinClicks {
		if len(base.RankDist) > 0 {
			h := t.windowedRanks(ln, t.opts.Horizon)
			st.RankTV = rank.TotalVariation(h.Dist(), base.RankDist)
			if !st.Drifting && st.RankTV > th.MaxRankTV {
				st.Drifting = true
				st.Reason = "rank_tv"
			}
		}
		if base.CondMRR > 0 {
			st.MRRRatio = ws.CondMRR / base.CondMRR
			if !st.Drifting && st.MRRRatio < th.MinMRRRatio {
				st.Drifting = true
				st.Reason = "mrr_ratio"
			}
		}
	}
	if th.MinScoreRatio > 0 && base.TopScoreP50 > 0 && ws.Exposures >= th.MinExposures {
		scores := t.windowedSamples(&ln.scoreStamp, &ln.scoreBits, t.opts.Horizon)
		if len(scores) > 0 {
			st.ScoreRatio = rank.Quantile(scores, 0.5) / base.TopScoreP50
			if !st.Drifting && st.ScoreRatio < th.MinScoreRatio {
				st.Drifting = true
				st.Reason = "score_ratio"
			}
		}
	}
	return st
}

// Drift sweeps elapsed windows and returns the worst line's drift state: a
// drifting line wins over a healthy one; among drifting lines the lowest
// MRR ratio wins. The zero state (no lines) is healthy.
func (t *Tracker) Drift() DriftState {
	t.Sweep()
	var worst DriftState
	first := true
	for _, ln := range t.snapshotLines() {
		st := t.lineDrift(ln)
		if first || driftWorse(st, worst) {
			worst = st
			first = false
		}
	}
	if first {
		return DriftState{}
	}
	return worst
}

// driftWorse orders drift states by severity.
func driftWorse(a, b DriftState) bool {
	if a.Drifting != b.Drifting {
		return a.Drifting
	}
	if a.Drifting {
		// Both drifting: the lower MRR ratio (or the higher TV when ratios
		// are absent) is the worse arm.
		if a.MRRRatio != b.MRRRatio {
			return a.MRRRatio < b.MRRRatio
		}
		return a.RankTV > b.RankTV
	}
	return a.RankTV > b.RankTV
}
