// Package quality closes Serenade's feedback loop: the serving tier stamps
// every response with a recommendation id and records an exposure (variant,
// pipeline, top-k items, session tail); click/conversion feedback arriving
// at POST /track is attributed back to the exposure within a configurable
// window; and the attributed stream is folded into per-variant, per-pipeline
// windowed quality gauges — attributed CTR, online MRR estimates, the
// click-rank histogram, catalogue coverage and popularity-bias quantiles —
// plus a drift detector that compares the online rank/score distribution
// against an offline baseline snapshot from serenade-eval.
//
// The paper's §6 validates Serenade with exactly this signal (online CTR
// uplift per variant); this package is what makes that experiment runnable
// on the reproduction. The exposure-record and attribution paths are
// zero-alloc and wait-free-ish (fixed rings, atomics, one short per-slot
// mutex), built on the metrics.WindowedCounter second-buckets so the gauges
// roll forward without a sweeper thread.
package quality

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/core"
	"serenade/internal/metrics"
	"serenade/internal/obs"
	"serenade/internal/rank"
	"serenade/internal/sessions"
)

const (
	// MaxK bounds the recommendation list length an exposure slot can hold;
	// lists are truncated, never dropped.
	MaxK = 32
	// maxTail bounds the session-tail suffix kept per exposure for debugging.
	maxTail = 8
	// rankRingSize bounds the windowed click-rank sample ring per line; the
	// drift distribution is computed over the most recent samples inside the
	// horizon, which is ample for a total-variation test.
	rankRingSize = 2048
	// sampleRingSize bounds the popularity / top-score sample rings.
	sampleRingSize = 512
)

// Attribution outcomes reported by Track.
const (
	OutcomeAttributed = "attributed"
	OutcomeUnknownID  = "unknown_id"
	OutcomeExpired    = "expired"
	OutcomeDuplicate  = "duplicate"
	OutcomeOfflist    = "offlist"
)

// DefaultWindow is the attribution window when Options.Window is zero: a
// click later than this after the exposure no longer credits it.
const DefaultWindow = 2 * time.Minute

// DefaultHorizon is the windowed-gauge horizon when Options.Horizon is zero.
const DefaultHorizon = 10 * time.Minute

// Options configures a Tracker. The zero value is usable: defaults are
// applied by New.
type Options struct {
	// Variant names the serving variant this replica is running (A/B arm);
	// empty means "default".
	Variant string
	// Window is the attribution window; DefaultWindow when zero.
	Window time.Duration
	// Horizon is the windowed-gauge horizon; DefaultHorizon when zero, and
	// clamped to at least Window (an exposure must stay visible in the
	// windows long enough to be attributed).
	Horizon time.Duration
	// K is the rank cutoff for attribution and histograms; capped at MaxK.
	// Zero means MaxK.
	K int
	// Exposures is the exposure ring capacity — the number of outstanding
	// recommendations awaiting feedback. An exposure recycled before its
	// window elapsed finalises as a non-click; size the ring above
	// (peak RPS x window seconds) to avoid early finalisation. Default 8192.
	Exposures int
	// Baseline is the offline reference snapshot for drift detection; nil
	// disables the baseline-relative checks (the CTR floor still applies).
	Baseline *Baseline
	// Drift holds the detector thresholds; zero fields take defaults.
	Drift DriftThresholds
	// Popularity maps an item to its training popularity (click count);
	// nil disables the popularity-bias quantiles.
	Popularity func(sessions.ItemID) float64
	// CatalogSize is the number of recommendable items, used to size the
	// coverage stamp table; zero disables coverage.
	CatalogSize int
	// Now injects a clock for tests; nil means time.Now.
	Now func() time.Time
}

// Windows are the trailing windows the quality gauges are reported over;
// the second entry is replaced by the configured horizon.
var Windows = [2]time.Duration{time.Minute, DefaultHorizon}

// slot is one outstanding exposure awaiting attribution. Slots live in a
// fixed ring indexed by recommendation id, so the whole structure is
// allocated once; the per-slot mutex is uncontended except when a click
// races the slot's recycling.
type slot struct {
	mu        sync.Mutex
	id        uint64
	atUnix    int64
	line      *Line
	n         uint8
	tailN     uint8
	clicked   bool
	finalized bool
	reqID     string
	items     [MaxK]sessions.ItemID
	tail      [maxTail]sessions.ItemID
}

// Line accumulates quality counters for one (variant, pipeline) pair. All
// fields are atomics or wait-free rings; the hot path takes no line-level
// lock.
type Line struct {
	variant  string
	pipeline string

	// flow lanes: exposures, clicks, conversions.
	flow *metrics.WindowedCounter
	// aux lanes: reciprocal-rank micros (sum of 1e6/rank per attributed
	// click), finalised non-clicks, late clicks.
	aux *metrics.WindowedCounter

	cumExposures   atomic.Uint64
	cumClicks      atomic.Uint64
	cumConversions atomic.Uint64
	finClicked     atomic.Uint64
	finNonclick    atomic.Uint64
	dupClicks      atomic.Uint64
	offlistClicks  atomic.Uint64
	lateClicks     atomic.Uint64

	// rankCum counts attributed clicks by rank 1..K, cumulatively.
	rankCum []atomic.Uint64

	// rankRing holds windowed click-rank samples packed as unix<<8 | rank,
	// so one atomic store publishes stamp and value tear-free.
	rankRing [rankRingSize]atomic.Uint64
	rankPos  atomic.Uint64

	// popularity / top-score sample rings: paired stamp+bits arrays. A read
	// torn across a recycle mixes one sample's stamp with another's value —
	// acceptable noise for quantile gauges.
	popStamp   [sampleRingSize]atomic.Int64
	popBits    [sampleRingSize]atomic.Uint64
	popPos     atomic.Uint64
	scoreStamp [sampleRingSize]atomic.Int64
	scoreBits  [sampleRingSize]atomic.Uint64
	scorePos   atomic.Uint64

	// covStamps[i] is the unix second item i last appeared in a list; the
	// coverage gauge counts stamps inside the horizon. Items beyond the
	// catalogue size at construction are not tracked.
	covStamps []atomic.Int64
}

// Tracker is the per-replica quality telemetry engine.
type Tracker struct {
	opts        Options
	windowSecs  int64
	horizonSecs int64
	k           int
	slots       []slot
	seq         atomic.Uint64
	unmatched   atomic.Uint64
	nowUnix     func() int64
	now         func() time.Time

	mu    sync.Mutex
	lines map[string]*Line
	list  []*Line
	reg   *obs.Registry
}

// New creates a Tracker, applying Option defaults.
func New(opts Options) *Tracker {
	if opts.Variant == "" {
		opts.Variant = "default"
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Horizon <= 0 {
		opts.Horizon = DefaultHorizon
	}
	if opts.Horizon < opts.Window {
		opts.Horizon = opts.Window
	}
	if opts.K <= 0 || opts.K > MaxK {
		opts.K = MaxK
	}
	if opts.Exposures <= 0 {
		opts.Exposures = 8192
	}
	opts.Drift = opts.Drift.withDefaults()
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Tracker{
		opts:        opts,
		windowSecs:  int64(opts.Window / time.Second),
		horizonSecs: int64(opts.Horizon / time.Second),
		k:           opts.K,
		slots:       make([]slot, opts.Exposures),
		now:         opts.Now,
		lines:       make(map[string]*Line),
	}
	if t.windowSecs < 1 {
		t.windowSecs = 1
	}
	t.nowUnix = func() int64 { return t.now().Unix() }
	return t
}

// Variant reports the configured variant name.
func (t *Tracker) Variant() string { return t.opts.Variant }

// Window reports the attribution window.
func (t *Tracker) Window() time.Duration { return t.opts.Window }

// Baseline reports the configured offline baseline (nil when absent).
func (t *Tracker) Baseline() *Baseline { return t.opts.Baseline }

// Line returns the accumulator for a pipeline under this tracker's variant,
// creating (and, if a registry is attached, registering) it on first use.
// Serving resolves its pipelines once at startup so the request path never
// takes this lock.
func (t *Tracker) Line(pipeline string) *Line {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.lines[pipeline]; ok {
		return ln
	}
	ln := &Line{
		variant:  t.opts.Variant,
		pipeline: pipeline,
		flow:     metrics.NewWindowedCounter(t.opts.Horizon, t.now),
		aux:      metrics.NewWindowedCounter(t.opts.Horizon, t.now),
		rankCum:  make([]atomic.Uint64, t.k),
	}
	if t.opts.CatalogSize > 0 {
		ln.covStamps = make([]atomic.Int64, t.opts.CatalogSize)
		for i := range ln.covStamps {
			ln.covStamps[i].Store(-1)
		}
	}
	t.lines[pipeline] = ln
	t.list = append(t.list, ln)
	if t.reg != nil {
		t.registerLine(t.reg, ln)
	}
	return ln
}

// snapshotLines copies the line list under the registry lock.
func (t *Tracker) snapshotLines() []*Line {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Line, len(t.list))
	copy(out, t.list)
	return out
}

// RecordExposure records one served recommendation list and returns its
// recommendation id (never zero). The slot previously occupying the ring
// position is finalised as a non-click if its feedback never arrived.
// The path is allocation-free: fixed arrays, atomics, and one slot mutex.
func (t *Tracker) RecordExposure(ln *Line, recs []core.ScoredItem, tail []sessions.ItemID, reqID string) uint64 {
	now := t.nowUnix()
	id := t.seq.Add(1)
	s := &t.slots[id%uint64(len(t.slots))]
	s.mu.Lock()
	if s.id != 0 && !s.finalized {
		// The ring lapped an exposure still awaiting feedback; it counts as
		// a non-click exactly once, here.
		finalizeNonclick(s, now)
	}
	s.id = id
	s.atUnix = now
	s.line = ln
	s.clicked = false
	s.finalized = false
	s.reqID = reqID
	n := len(recs)
	if n > t.k {
		n = t.k
	}
	s.n = uint8(n)
	for i := 0; i < n; i++ {
		s.items[i] = recs[i].Item
	}
	tn := len(tail)
	if tn > maxTail {
		tail = tail[tn-maxTail:]
		tn = maxTail
	}
	s.tailN = uint8(tn)
	for i := 0; i < tn; i++ {
		s.tail[i] = tail[i]
	}
	s.mu.Unlock()

	ln.flow.Add(1, 0, 0)
	ln.cumExposures.Add(1)
	for i := 0; i < n; i++ {
		if idx := int(recs[i].Item); idx >= 0 && idx < len(ln.covStamps) {
			ln.covStamps[idx].Store(now)
		}
	}
	if t.opts.Popularity != nil && n > 0 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += t.opts.Popularity(recs[i].Item)
		}
		pushSample(&ln.popStamp, &ln.popBits, &ln.popPos, now, sum/float64(n))
	}
	if n > 0 {
		pushSample(&ln.scoreStamp, &ln.scoreBits, &ln.scorePos, now, recs[0].Score)
	}
	return id
}

// pushSample publishes one (stamp, value) sample into a paired ring.
func pushSample(stamps *[sampleRingSize]atomic.Int64, bits *[sampleRingSize]atomic.Uint64, pos *atomic.Uint64, now int64, v float64) {
	i := (pos.Add(1) - 1) % sampleRingSize
	stamps[i].Store(now)
	bits[i].Store(math.Float64bits(v))
}

// finalizeNonclick marks a live, unclicked slot as resolved and counts the
// non-click. The caller holds the slot mutex; the finalized flag makes the
// count exactly-once across the recycle, sweep and late-click paths.
func finalizeNonclick(s *slot, now int64) {
	s.finalized = true
	s.line.finNonclick.Add(1)
	s.line.aux.Add(0, 1, 0)
	_ = now
}

// Attribution is the result of attributing one feedback event.
type Attribution struct {
	Outcome  string `json:"outcome"`
	Rank     int    `json:"rank,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Pipeline string `json:"pipeline,omitempty"`
}

// Attribute joins one click (or conversion) back to its exposure. item is
// the item the user acted on; the event attributes when the exposure is
// still in the ring, inside the window, and the item appeared in the list.
func (t *Tracker) Attribute(id uint64, item sessions.ItemID, conversion bool) Attribution {
	if id == 0 {
		t.unmatched.Add(1)
		return Attribution{Outcome: OutcomeUnknownID}
	}
	now := t.nowUnix()
	s := &t.slots[id%uint64(len(t.slots))]
	s.mu.Lock()
	if s.id != id {
		s.mu.Unlock()
		t.unmatched.Add(1)
		return Attribution{Outcome: OutcomeUnknownID}
	}
	ln := s.line
	if now-s.atUnix > t.windowSecs {
		// Too late to credit; the exposure resolves (once) as a non-click
		// and the event is counted so chronic lateness stays visible.
		if !s.finalized && !s.clicked {
			finalizeNonclick(s, now)
		}
		s.mu.Unlock()
		ln.lateClicks.Add(1)
		ln.aux.Add(0, 0, 1)
		return Attribution{Outcome: OutcomeExpired, Variant: ln.variant, Pipeline: ln.pipeline}
	}
	r := rank.RankOf(s.items[:s.n], item, 0)
	if r == 0 {
		s.mu.Unlock()
		ln.offlistClicks.Add(1)
		return Attribution{Outcome: OutcomeOfflist, Variant: ln.variant, Pipeline: ln.pipeline}
	}
	first := !s.clicked
	if !first && !conversion {
		s.mu.Unlock()
		ln.dupClicks.Add(1)
		return Attribution{Outcome: OutcomeDuplicate, Rank: r, Variant: ln.variant, Pipeline: ln.pipeline}
	}
	s.clicked = true
	s.finalized = true
	s.mu.Unlock()

	var convLane uint64
	if conversion {
		ln.cumConversions.Add(1)
		convLane = 1
	}
	if first {
		ln.cumClicks.Add(1)
		ln.finClicked.Add(1)
		ln.flow.Add(0, 1, convLane)
		ln.aux.Add(uint64(1e6*rank.Reciprocal(r)), 0, 0)
		ln.rankCum[min(r, t.k)-1].Add(1)
		i := (ln.rankPos.Add(1) - 1) % rankRingSize
		ln.rankRing[i].Store(uint64(now)<<8 | uint64(min(r, t.k)))
	} else {
		ln.flow.Add(0, 0, convLane)
	}
	return Attribution{Outcome: OutcomeAttributed, Rank: r, Variant: ln.variant, Pipeline: ln.pipeline}
}

// Sweep finalises exposures whose attribution window elapsed without
// feedback, counting each as a non-click exactly once. Serving calls it from
// its periodic session sweeper; Snapshot and Drift also call it so reads
// reflect resolved windows even without a sweeper.
func (t *Tracker) Sweep() {
	now := t.nowUnix()
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.id != 0 && !s.finalized && now-s.atUnix > t.windowSecs {
			finalizeNonclick(s, now)
		}
		s.mu.Unlock()
	}
}

// Unmatched reports feedback events that referenced no live exposure.
func (t *Tracker) Unmatched() uint64 { return t.unmatched.Load() }

// windowedRanks folds the line's click-rank ring into a histogram over the
// trailing window.
func (t *Tracker) windowedRanks(ln *Line, window time.Duration) *rank.Histogram {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > t.horizonSecs {
		secs = t.horizonSecs
	}
	now := t.nowUnix()
	oldest := now - secs + 1
	h := rank.NewHistogram(t.k)
	for i := range ln.rankRing {
		v := ln.rankRing[i].Load()
		if v == 0 {
			continue
		}
		if st := int64(v >> 8); st >= oldest && st <= now {
			h.Add(int(v & 0xff))
		}
	}
	return h
}

// windowedSamples reads a paired sample ring over the trailing window.
func (t *Tracker) windowedSamples(stamps *[sampleRingSize]atomic.Int64, bits *[sampleRingSize]atomic.Uint64, window time.Duration) []float64 {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	now := t.nowUnix()
	oldest := now - secs + 1
	out := make([]float64, 0, sampleRingSize)
	for i := range stamps {
		if st := stamps[i].Load(); st >= oldest && st <= now {
			out = append(out, math.Float64frombits(bits[i].Load()))
		}
	}
	return out
}

// coverage reports the share of the catalogue recommended inside the horizon.
func (t *Tracker) coverage(ln *Line) float64 {
	if len(ln.covStamps) == 0 {
		return 0
	}
	now := t.nowUnix()
	oldest := now - t.horizonSecs + 1
	distinct := 0
	for i := range ln.covStamps {
		if st := ln.covStamps[i].Load(); st >= oldest && st <= now {
			distinct++
		}
	}
	return rank.Coverage(distinct, len(ln.covStamps))
}

// WindowStats is one trailing window's quality summary for a line.
type WindowStats struct {
	Window      string  `json:"window"`
	Exposures   uint64  `json:"exposures"`
	Clicks      uint64  `json:"clicks"`
	Conversions uint64  `json:"conversions"`
	NonClicks   uint64  `json:"non_clicks"`
	LateClicks  uint64  `json:"late_clicks"`
	CTR         float64 `json:"ctr"`
	// MRR is the naive online estimate: summed reciprocal ranks over
	// exposures. It is biased low by non-feedback; CondMRR (per click) is
	// the estimate compared against the baseline.
	MRR     float64 `json:"mrr"`
	CondMRR float64 `json:"cond_mrr"`
}

// windowStats computes one window's stats for a line.
func (t *Tracker) windowStats(ln *Line, w time.Duration) WindowStats {
	exp, clicks, conv := ln.flow.Sum(w)
	rrMicros, nonclicks, late := ln.aux.Sum(w)
	ws := WindowStats{
		Window:      w.String(),
		Exposures:   exp,
		Clicks:      clicks,
		Conversions: conv,
		NonClicks:   nonclicks,
		LateClicks:  late,
	}
	if exp > 0 {
		ws.CTR = float64(clicks) / float64(exp)
		ws.MRR = float64(rrMicros) / 1e6 / float64(exp)
	}
	if clicks > 0 {
		ws.CondMRR = float64(rrMicros) / 1e6 / float64(clicks)
	}
	return ws
}

// CumulativeStats are the monotone per-line counters.
type CumulativeStats struct {
	Exposures       uint64 `json:"exposures"`
	Clicks          uint64 `json:"clicks"`
	Conversions     uint64 `json:"conversions"`
	NonClicks       uint64 `json:"non_clicks"`
	DuplicateClicks uint64 `json:"duplicate_clicks"`
	OfflistClicks   uint64 `json:"offlist_clicks"`
	LateClicks      uint64 `json:"late_clicks"`
}

// LineSnapshot is one (variant, pipeline) line's full quality picture.
type LineSnapshot struct {
	Variant    string          `json:"variant"`
	Pipeline   string          `json:"pipeline"`
	Windows    []WindowStats   `json:"windows"`
	Cumulative CumulativeStats `json:"cumulative"`
	// RankClicks counts attributed clicks by rank 1..K, cumulatively.
	RankClicks []uint64 `json:"rank_clicks"`
	// RankDist is the windowed (horizon) click-rank distribution.
	RankDist []float64 `json:"rank_dist,omitempty"`
	Coverage float64   `json:"coverage"`
	// Popularity-bias and top-score quantiles over the horizon's samples.
	PopularityP50 float64    `json:"popularity_p50,omitempty"`
	PopularityP90 float64    `json:"popularity_p90,omitempty"`
	PopularityP99 float64    `json:"popularity_p99,omitempty"`
	TopScoreP50   float64    `json:"top_score_p50,omitempty"`
	TopScoreP90   float64    `json:"top_score_p90,omitempty"`
	Drift         DriftState `json:"drift"`
}

// Snapshot is the full /debug/quality document.
type Snapshot struct {
	Time      time.Time      `json:"time"`
	Variant   string         `json:"variant"`
	Window    string         `json:"attribution_window"`
	Horizon   string         `json:"horizon"`
	K         int            `json:"k"`
	Lines     []LineSnapshot `json:"lines"`
	Unmatched uint64         `json:"unmatched_track_events"`
	Baseline  *Baseline      `json:"baseline,omitempty"`
	Exposures []ExposureView `json:"exposures,omitempty"`
}

// lineSnapshot assembles one line's snapshot.
func (t *Tracker) lineSnapshot(ln *Line) LineSnapshot {
	out := LineSnapshot{
		Variant:  ln.variant,
		Pipeline: ln.pipeline,
		Windows: []WindowStats{
			t.windowStats(ln, time.Minute),
			t.windowStats(ln, t.opts.Horizon),
		},
		Cumulative: CumulativeStats{
			Exposures:       ln.cumExposures.Load(),
			Clicks:          ln.cumClicks.Load(),
			Conversions:     ln.cumConversions.Load(),
			NonClicks:       ln.finNonclick.Load(),
			DuplicateClicks: ln.dupClicks.Load(),
			OfflistClicks:   ln.offlistClicks.Load(),
			LateClicks:      ln.lateClicks.Load(),
		},
		Coverage: t.coverage(ln),
		Drift:    t.lineDrift(ln),
	}
	out.RankClicks = make([]uint64, t.k)
	for i := range ln.rankCum {
		out.RankClicks[i] = ln.rankCum[i].Load()
	}
	out.RankDist = t.windowedRanks(ln, t.opts.Horizon).Dist()
	if pops := t.windowedSamples(&ln.popStamp, &ln.popBits, t.opts.Horizon); len(pops) > 0 {
		out.PopularityP50 = rank.Quantile(pops, 0.50)
		out.PopularityP90 = rank.Quantile(pops, 0.90)
		out.PopularityP99 = rank.Quantile(pops, 0.99)
	}
	if scores := t.windowedSamples(&ln.scoreStamp, &ln.scoreBits, t.opts.Horizon); len(scores) > 0 {
		out.TopScoreP50 = rank.Quantile(scores, 0.50)
		out.TopScoreP90 = rank.Quantile(scores, 0.90)
	}
	return out
}

// Snapshot assembles the full quality document, sweeping elapsed windows
// first so non-clicks are current.
func (t *Tracker) Snapshot() Snapshot {
	t.Sweep()
	snap := Snapshot{
		Time:      t.now(),
		Variant:   t.opts.Variant,
		Window:    t.opts.Window.String(),
		Horizon:   t.opts.Horizon.String(),
		K:         t.k,
		Unmatched: t.unmatched.Load(),
		Baseline:  t.opts.Baseline,
	}
	for _, ln := range t.snapshotLines() {
		snap.Lines = append(snap.Lines, t.lineSnapshot(ln))
	}
	return snap
}

// ExposureView is a debug rendering of one live exposure slot.
type ExposureView struct {
	ID         uint64            `json:"id"`
	AgeSeconds int64             `json:"age_seconds"`
	Variant    string            `json:"variant"`
	Pipeline   string            `json:"pipeline"`
	RequestID  string            `json:"request_id,omitempty"`
	Items      []sessions.ItemID `json:"items"`
	Tail       []sessions.ItemID `json:"tail,omitempty"`
	Clicked    bool              `json:"clicked"`
	Finalized  bool              `json:"finalized"`
}

// exposures renders up to limit live slots, newest first by id.
func (t *Tracker) exposures(limit int) []ExposureView {
	now := t.nowUnix()
	out := make([]ExposureView, 0, limit)
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.id == 0 {
			s.mu.Unlock()
			continue
		}
		v := ExposureView{
			ID:         s.id,
			AgeSeconds: now - s.atUnix,
			Variant:    s.line.variant,
			Pipeline:   s.line.pipeline,
			RequestID:  s.reqID,
			Items:      append([]sessions.ItemID(nil), s.items[:s.n]...),
			Clicked:    s.clicked,
			Finalized:  s.finalized,
		}
		if s.tailN > 0 {
			v.Tail = append([]sessions.ItemID(nil), s.tail[:s.tailN]...)
		}
		s.mu.Unlock()
		out = append(out, v)
		if len(out) >= limit {
			break
		}
	}
	return out
}

// Handler serves the snapshot as JSON; ?exposures=1 adds a sample of live
// exposure slots for debugging attribution issues.
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := t.Snapshot()
		if r.URL.Query().Get("exposures") == "1" {
			snap.Exposures = t.exposures(64)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

// RegisterMetrics exposes the serenade_quality_* families on a registry and
// remembers it so lines created later self-register.
func (t *Tracker) RegisterMetrics(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
	reg.CounterFunc("serenade_quality_track_unmatched_total",
		"Track events that referenced no live exposure.",
		func() float64 { return float64(t.unmatched.Load()) })
	for _, ln := range t.list {
		t.registerLine(reg, ln)
	}
}

// registerLine wires one line's gauge/counter funcs. Caller holds t.mu.
func (t *Tracker) registerLine(reg *obs.Registry, ln *Line) {
	lbl := []string{"variant", ln.variant, "pipeline", ln.pipeline}
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, lbl...)
	}
	counter("serenade_quality_exposures_total", "Recommendation lists served, by variant and pipeline.", &ln.cumExposures)
	counter("serenade_quality_clicks_total", "Clicks attributed to an exposure within the window.", &ln.cumClicks)
	counter("serenade_quality_conversions_total", "Conversions attributed to an exposure within the window.", &ln.cumConversions)
	counter("serenade_quality_nonclicks_total", "Exposures finalised without a click inside the window.", &ln.finNonclick)
	counter("serenade_quality_duplicate_clicks_total", "Clicks on an exposure already credited.", &ln.dupClicks)
	counter("serenade_quality_offlist_clicks_total", "Tracked items absent from the exposure's list.", &ln.offlistClicks)
	counter("serenade_quality_late_clicks_total", "Feedback arriving after the attribution window.", &ln.lateClicks)
	for _, w := range []time.Duration{time.Minute, t.opts.Horizon} {
		w := w
		wl := append(append([]string(nil), lbl...), "window", w.String())
		reg.GaugeFunc("serenade_quality_ctr",
			"Attributed click-through rate over the trailing window.",
			func() float64 { return t.windowStats(ln, w).CTR }, wl...)
		reg.GaugeFunc("serenade_quality_mrr",
			"Online MRR estimate (reciprocal ranks over exposures) over the trailing window.",
			func() float64 { return t.windowStats(ln, w).MRR }, wl...)
		reg.GaugeFunc("serenade_quality_cond_mrr",
			"Online MRR conditioned on a click over the trailing window.",
			func() float64 { return t.windowStats(ln, w).CondMRR }, wl...)
	}
	reg.GaugeFunc("serenade_quality_coverage",
		"Share of the catalogue recommended inside the horizon.",
		func() float64 { return t.coverage(ln) }, lbl...)
	for _, q := range []struct {
		name string
		q    float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
		q := q
		reg.GaugeFunc("serenade_quality_popularity",
			"Quantiles of mean list popularity over the horizon (popularity bias).",
			func() float64 {
				return rank.Quantile(t.windowedSamples(&ln.popStamp, &ln.popBits, t.opts.Horizon), q.q)
			}, append(append([]string(nil), lbl...), "quantile", q.name)...)
	}
	for i := range ln.rankCum {
		c := &ln.rankCum[i]
		reg.CounterFunc("serenade_quality_rank_clicks_total",
			"Attributed clicks by rank position.",
			func() float64 { return float64(c.Load()) },
			append(append([]string(nil), lbl...), "rank", itoa(i+1))...)
	}
	reg.GaugeFunc("serenade_quality_drift",
		"1 when the online quality distribution drifts from the offline baseline.",
		func() float64 {
			if t.lineDrift(ln).Drifting {
				return 1
			}
			return 0
		}, lbl...)
	reg.GaugeFunc("serenade_quality_drift_rank_tv",
		"Total-variation distance between online and baseline click-rank distributions.",
		func() float64 { return t.lineDrift(ln).RankTV }, lbl...)
	reg.GaugeFunc("serenade_quality_drift_mrr_ratio",
		"Online conditional MRR over the offline baseline's (1 = on baseline).",
		func() float64 { return t.lineDrift(ln).MRRRatio }, lbl...)
}

// itoa is strconv.Itoa for small positive ints without the import weight.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
