package quality

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/obs"
	"serenade/internal/sessions"
)

// fakeClock drives the tracker deterministically through attribution windows.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) now() time.Time  { return time.Unix(c.sec.Load(), 0) }
func (c *fakeClock) set(s int64)     { c.sec.Store(s) }
func (c *fakeClock) advance(d int64) { c.sec.Add(d) }

// recs builds a scored list with descending scores.
func recs(items ...sessions.ItemID) []core.ScoredItem {
	out := make([]core.ScoredItem, len(items))
	for i, it := range items {
		out[i] = core.ScoredItem{Item: it, Score: float64(len(items) - i)}
	}
	return out
}

func newTracker(clk *fakeClock, opts Options) *Tracker {
	opts.Now = clk.now
	return New(opts)
}

func TestAttributionOutcomes(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Variant: "a"})
	ln := tr.Line("knn")

	id := tr.RecordExposure(ln, recs(10, 20, 30), []sessions.ItemID{1, 2}, "req-1")
	if id == 0 {
		t.Fatal("RecordExposure returned id 0")
	}

	// First click on the rank-2 item attributes.
	at := tr.Attribute(id, 20, false)
	if at.Outcome != OutcomeAttributed || at.Rank != 2 || at.Variant != "a" || at.Pipeline != "knn" {
		t.Fatalf("click attribution = %+v", at)
	}
	// A second click on the same exposure is a duplicate.
	if at := tr.Attribute(id, 10, false); at.Outcome != OutcomeDuplicate {
		t.Fatalf("duplicate click outcome = %+v", at)
	}
	// A conversion on an already-clicked exposure still counts the conversion.
	if at := tr.Attribute(id, 20, true); at.Outcome != OutcomeAttributed {
		t.Fatalf("conversion outcome = %+v", at)
	}
	// An item that was never in the list cannot be credited.
	id2 := tr.RecordExposure(ln, recs(10, 20, 30), nil, "")
	if at := tr.Attribute(id2, 99, false); at.Outcome != OutcomeOfflist {
		t.Fatalf("offlist outcome = %+v", at)
	}
	// Unknown ids: zero and never-issued.
	if at := tr.Attribute(0, 10, false); at.Outcome != OutcomeUnknownID {
		t.Fatalf("id-0 outcome = %+v", at)
	}
	if at := tr.Attribute(999999, 10, false); at.Outcome != OutcomeUnknownID {
		t.Fatalf("unissued-id outcome = %+v", at)
	}
	if tr.Unmatched() != 2 {
		t.Fatalf("Unmatched = %d, want 2", tr.Unmatched())
	}

	snap := tr.Snapshot()
	if len(snap.Lines) != 1 {
		t.Fatalf("snapshot has %d lines, want 1", len(snap.Lines))
	}
	cum := snap.Lines[0].Cumulative
	if cum.Exposures != 2 || cum.Clicks != 1 || cum.Conversions != 1 ||
		cum.DuplicateClicks != 1 || cum.OfflistClicks != 1 {
		t.Fatalf("cumulative = %+v", cum)
	}
	if snap.Lines[0].RankClicks[1] != 1 {
		t.Fatalf("rank_clicks = %v, want click at rank 2", snap.Lines[0].RankClicks)
	}
}

// TestNonClickFinalizedOnce is the attribution-window-expiry acceptance test:
// an exposure whose window elapses without a click counts as exactly one
// non-click, no matter how many of the sweep / late-click / ring-recycle
// paths visit it afterwards.
func TestNonClickFinalizedOnce(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Window: 30 * time.Second, Horizon: 5 * time.Minute})
	ln := tr.Line("knn")
	id := tr.RecordExposure(ln, recs(10, 20), nil, "")

	// Inside the window nothing finalises.
	tr.Sweep()
	if n := ln.finNonclick.Load(); n != 0 {
		t.Fatalf("non-clicks before expiry = %d, want 0", n)
	}

	clk.advance(31)
	tr.Sweep()
	tr.Sweep() // idempotent
	if n := ln.finNonclick.Load(); n != 1 {
		t.Fatalf("non-clicks after repeated sweeps = %d, want 1", n)
	}

	// A late click on the already-finalised exposure reports expired and does
	// not re-finalise.
	if at := tr.Attribute(id, 10, false); at.Outcome != OutcomeExpired {
		t.Fatalf("late click outcome = %+v", at)
	}
	if n := ln.finNonclick.Load(); n != 1 {
		t.Fatalf("non-clicks after late click = %d, want 1", n)
	}
	if n := ln.lateClicks.Load(); n != 1 {
		t.Fatalf("late clicks = %d, want 1", n)
	}
}

// TestLateClickFinalizesUnsweptSlot covers the expiry path where the late
// click itself is the first to observe the elapsed window (no sweeper ran).
func TestLateClickFinalizesUnsweptSlot(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Window: 30 * time.Second})
	ln := tr.Line("knn")
	id := tr.RecordExposure(ln, recs(10), nil, "")
	clk.advance(31)
	if at := tr.Attribute(id, 10, false); at.Outcome != OutcomeExpired {
		t.Fatalf("outcome = %+v", at)
	}
	if n := ln.finNonclick.Load(); n != 1 {
		t.Fatalf("non-clicks = %d, want 1", n)
	}
	tr.Sweep()
	if n := ln.finNonclick.Load(); n != 1 {
		t.Fatalf("non-clicks after sweep = %d, want 1", n)
	}
}

// TestRecycleFinalizesLappedExposure covers the third expiry path: the ring
// laps an exposure still awaiting feedback, which must finalise it exactly
// once — and a clicked exposure must not be double-counted on recycle.
func TestRecycleFinalizesLappedExposure(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Exposures: 1, Window: time.Minute})
	ln := tr.Line("knn")

	tr.RecordExposure(ln, recs(10), nil, "") // will be lapped unclicked
	tr.RecordExposure(ln, recs(20), nil, "") // laps slot 0
	if n := ln.finNonclick.Load(); n != 1 {
		t.Fatalf("non-clicks after lap = %d, want 1", n)
	}

	// Clicked exposures are already resolved: lapping them adds nothing, and
	// neither does the post-expiry sweep.
	id := tr.RecordExposure(ln, recs(30), nil, "")
	if at := tr.Attribute(id, 30, false); at.Outcome != OutcomeAttributed {
		t.Fatalf("outcome = %+v", at)
	}
	tr.RecordExposure(ln, recs(40), nil, "")
	clk.advance(61)
	tr.Sweep()
	// Ids 1..4 share the one slot: id1 lapped unclicked (#1), id2 lapped
	// unclicked (#2), id3 clicked then lapped (no count), id4 swept (#3).
	if n := ln.finNonclick.Load(); n != 3 {
		t.Fatalf("non-clicks = %d, want 3", n)
	}
	if n := ln.finClicked.Load(); n != 1 {
		t.Fatalf("clicked finalisations = %d, want 1", n)
	}
}

func TestWindowedStatsRollOff(t *testing.T) {
	clk := &fakeClock{}
	clk.set(5000)
	tr := newTracker(clk, Options{Window: 30 * time.Second, Horizon: 4 * time.Minute})
	ln := tr.Line("knn")

	// 4 exposures, 2 clicks at ranks 1 and 2.
	ids := make([]uint64, 4)
	for i := range ids {
		ids[i] = tr.RecordExposure(ln, recs(10, 20, 30), nil, "")
	}
	tr.Attribute(ids[0], 10, false)
	tr.Attribute(ids[1], 20, true)

	ws := tr.windowStats(ln, time.Minute)
	if ws.Exposures != 4 || ws.Clicks != 2 || ws.Conversions != 1 {
		t.Fatalf("window stats = %+v", ws)
	}
	if ws.CTR != 0.5 {
		t.Fatalf("CTR = %v, want 0.5", ws.CTR)
	}
	wantMRR := (1.0 + 0.5) / 4
	if diff := ws.MRR - wantMRR; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("MRR = %v, want %v", ws.MRR, wantMRR)
	}
	wantCond := (1.0 + 0.5) / 2
	if diff := ws.CondMRR - wantCond; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("CondMRR = %v, want %v", ws.CondMRR, wantCond)
	}

	// Past the horizon the windows drain but the cumulative counters persist.
	clk.advance(300)
	ws = tr.windowStats(ln, tr.opts.Horizon)
	if ws.Exposures != 0 || ws.Clicks != 0 {
		t.Fatalf("stats after horizon = %+v, want empty", ws)
	}
	if ln.cumExposures.Load() != 4 || ln.cumClicks.Load() != 2 {
		t.Fatalf("cumulative lost: exp=%d clicks=%d", ln.cumExposures.Load(), ln.cumClicks.Load())
	}
	// The windowed rank histogram drains with the horizon too.
	if h := tr.windowedRanks(ln, tr.opts.Horizon); h.Total() != 0 {
		t.Fatalf("rank histogram after horizon = %d samples, want 0", h.Total())
	}
}

func TestCoverageAndPopularity(t *testing.T) {
	clk := &fakeClock{}
	clk.set(2000)
	pop := func(it sessions.ItemID) float64 { return float64(it) }
	tr := newTracker(clk, Options{CatalogSize: 10, Popularity: pop, Horizon: 2 * time.Minute})
	ln := tr.Line("knn")
	tr.RecordExposure(ln, recs(1, 2, 3), nil, "")
	tr.RecordExposure(ln, recs(2, 3, 4), nil, "")

	if cov := tr.coverage(ln); cov != 0.4 { // items 1,2,3,4 of 10
		t.Fatalf("coverage = %v, want 0.4", cov)
	}
	snap := tr.Snapshot()
	ls := snap.Lines[0]
	if ls.PopularityP50 <= 0 {
		t.Fatalf("popularity quantiles missing: %+v", ls)
	}
	// Out-of-catalogue items are ignored, not panicking.
	tr.RecordExposure(ln, recs(99), nil, "")
	if cov := tr.coverage(ln); cov != 0.4 {
		t.Fatalf("coverage after offcatalog = %v, want 0.4", cov)
	}
	// Coverage ages out with the horizon.
	clk.advance(200)
	if cov := tr.coverage(ln); cov != 0 {
		t.Fatalf("coverage after horizon = %v, want 0", cov)
	}
}

func TestDriftCTRFloor(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{
		Window: 10 * time.Second,
		Drift:  DriftThresholds{CTRFloor: 0.05, MinExposures: 10},
	})
	ln := tr.Line("knn")
	for i := 0; i < 20; i++ {
		tr.RecordExposure(ln, recs(10, 20), nil, "")
	}
	st := tr.Drift()
	if !st.Drifting || st.Reason != "ctr_floor" {
		t.Fatalf("drift = %+v, want ctr_floor", st)
	}
	// Below the exposure gate the check stays quiet.
	tr2 := newTracker(clk, Options{
		Window: 10 * time.Second,
		Drift:  DriftThresholds{CTRFloor: 0.05, MinExposures: 100},
	})
	ln2 := tr2.Line("knn")
	for i := 0; i < 20; i++ {
		tr2.RecordExposure(ln2, recs(10, 20), nil, "")
	}
	if st := tr2.Drift(); st.Drifting {
		t.Fatalf("under-gated drift = %+v, want healthy", st)
	}
}

// driveClicks records n exposures on ln and clicks each at the given 1-based
// rank of the list (10, 20, 30, ...).
func driveClicks(tr *Tracker, ln *Line, n, clickRank int) {
	list := recs(10, 20, 30, 40, 50)
	for i := 0; i < n; i++ {
		id := tr.RecordExposure(ln, list, nil, "")
		tr.Attribute(id, list[clickRank-1].Item, false)
	}
}

func TestDriftRankTV(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	base := &Baseline{K: 5, CondMRR: 1.0, RankDist: []float64{1, 0, 0, 0, 0}}
	tr := newTracker(clk, Options{
		K:        5,
		Baseline: base,
		// MinMRRRatio tiny so only the shape check can trip.
		Drift: DriftThresholds{MinClicks: 5, MaxRankTV: 0.5, MinMRRRatio: 1e-9},
	})
	ln := tr.Line("knn")
	driveClicks(tr, ln, 10, 3) // all clicks at rank 3: TV vs all-rank-1 is 1
	st := tr.Drift()
	if !st.Drifting || st.Reason != "rank_tv" {
		t.Fatalf("drift = %+v, want rank_tv", st)
	}
	if st.RankTV < 0.99 {
		t.Fatalf("RankTV = %v, want ~1", st.RankTV)
	}
}

func TestDriftMRRRatio(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	// No RankDist: the shape check is skipped, only the MRR ratio applies.
	base := &Baseline{K: 5, CondMRR: 1.0}
	tr := newTracker(clk, Options{
		K:        5,
		Baseline: base,
		Drift:    DriftThresholds{MinClicks: 5, MinMRRRatio: 0.5},
	})
	ln := tr.Line("knn")
	driveClicks(tr, ln, 10, 4) // CondMRR 0.25 vs baseline 1.0
	st := tr.Drift()
	if !st.Drifting || st.Reason != "mrr_ratio" {
		t.Fatalf("drift = %+v, want mrr_ratio", st)
	}
	if st.MRRRatio > 0.26 || st.MRRRatio < 0.24 {
		t.Fatalf("MRRRatio = %v, want 0.25", st.MRRRatio)
	}
}

func TestDriftScoreRatio(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	base := &Baseline{K: 5, TopScoreP50: 100}
	tr := newTracker(clk, Options{
		Baseline: base,
		Drift:    DriftThresholds{MinScoreRatio: 0.5, MinExposures: 5},
	})
	ln := tr.Line("knn")
	// Top scores of recs(10,20,30,40,50) are 5 — 5% of the baseline median.
	for i := 0; i < 10; i++ {
		tr.RecordExposure(ln, recs(10, 20, 30, 40, 50), nil, "")
	}
	st := tr.Drift()
	if !st.Drifting || st.Reason != "score_ratio" {
		t.Fatalf("drift = %+v, want score_ratio", st)
	}
}

func TestDriftHealthyAndWorstLine(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	base := &Baseline{K: 5, CondMRR: 1.0, RankDist: []float64{1, 0, 0, 0, 0}}
	tr := newTracker(clk, Options{
		K:        5,
		Baseline: base,
		Drift:    DriftThresholds{MinClicks: 5, MaxRankTV: 0.5, MinMRRRatio: 0.5},
	})
	good := tr.Line("knn")
	driveClicks(tr, good, 10, 1) // matches the baseline exactly
	if st := tr.Drift(); st.Drifting {
		t.Fatalf("healthy line drifted: %+v", st)
	}
	// A second, degraded pipeline becomes the worst line.
	bad := tr.Line("knn+popular")
	driveClicks(tr, bad, 10, 4)
	st := tr.Drift()
	if !st.Drifting || st.Pipeline != "knn+popular" {
		t.Fatalf("worst line = %+v, want drifting knn+popular", st)
	}
}

func TestSnapshotHandlerJSON(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Variant: "b", CatalogSize: 10})
	ln := tr.Line("knn")
	id := tr.RecordExposure(ln, recs(1, 2, 3), []sessions.ItemID{7, 8}, "req-42")
	tr.Attribute(id, 2, false)

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality?exposures=1", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.Variant != "b" || snap.K != MaxK || len(snap.Lines) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Exposures) != 1 || snap.Exposures[0].RequestID != "req-42" ||
		len(snap.Exposures[0].Tail) != 2 || !snap.Exposures[0].Clicked {
		t.Fatalf("exposures view = %+v", snap.Exposures)
	}
	if got := snap.Lines[0].Windows[0].Clicks; got != 1 {
		t.Fatalf("windowed clicks = %d, want 1", got)
	}
}

func TestBaselineSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	in := &Baseline{Profile: "smoke", K: 20, MRR: 0.31, HitRate: 0.52, CondMRR: 0.6,
		RankDist: []float64{0.5, 0.3, 0.2}, Events: 1234}
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.K != 20 || out.CondMRR != 0.6 || len(out.RankDist) != 3 || out.Events != 1234 {
		t.Fatalf("roundtrip = %+v", out)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing baseline should fail")
	}
}

func TestRegisterMetricsFamilies(t *testing.T) {
	clk := &fakeClock{}
	clk.set(1000)
	tr := newTracker(clk, Options{Variant: "a", CatalogSize: 5})
	pre := tr.Line("knn") // registered retroactively
	reg := obs.NewRegistry()
	tr.RegisterMetrics(reg)
	post := tr.Line("knn+popular") // self-registers lazily
	tr.RecordExposure(pre, recs(1, 2), nil, "")
	tr.RecordExposure(post, recs(3), nil, "")

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, family := range []string{
		"serenade_quality_exposures_total",
		"serenade_quality_clicks_total",
		"serenade_quality_nonclicks_total",
		"serenade_quality_ctr",
		"serenade_quality_cond_mrr",
		"serenade_quality_coverage",
		"serenade_quality_rank_clicks_total",
		"serenade_quality_drift",
		"serenade_quality_track_unmatched_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition missing %s:\n%s", family, text)
		}
	}
	if !strings.Contains(text, `pipeline="knn+popular"`) {
		t.Fatalf("lazily created line not registered:\n%s", text)
	}
}

// TestConcurrentTracking exercises the full record/attribute/snapshot surface
// from many goroutines; under -race this is the tentpole's concurrency proof.
func TestConcurrentTracking(t *testing.T) {
	tr := New(Options{Exposures: 64, CatalogSize: 100,
		Popularity: func(it sessions.ItemID) float64 { return float64(it) }})
	ln := tr.Line("knn")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // reader
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
				tr.Drift()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			list := recs(1, 2, 3, 4, 5)
			for i := 0; i < 2000; i++ {
				id := tr.RecordExposure(ln, list, nil, "")
				if i%3 == 0 {
					tr.Attribute(id, list[i%5].Item, i%7 == 0)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if got := ln.cumExposures.Load(); got != 8*2000 {
		t.Fatalf("exposures = %d, want %d", got, 8*2000)
	}
	// Every exposure resolves exactly once: clicked + non-clicked never
	// exceeds exposures, and after a final expiry sweep the live remainder
	// is bounded by the ring size.
	tr.Sweep()
	resolved := ln.finClicked.Load() + ln.finNonclick.Load()
	if resolved > 8*2000 {
		t.Fatalf("resolved %d exposures of %d recorded", resolved, 8*2000)
	}
	if unresolved := 8*2000 - resolved; unresolved > 64 {
		t.Fatalf("%d exposures unresolved, want ≤ ring size 64", unresolved)
	}
}
