package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"serenade/internal/metrics"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histogramSource is anything exposable as cumulative le buckets; both
// metrics.Histogram and metrics.StripedHistogram satisfy it.
type histogramSource interface {
	Distribution() metrics.Distribution
}

// series is one exposition line: a family member with a fixed label set.
type series struct {
	labels  string // `{k="v",...}` suffix, or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    histogramSource
}

// family is one metric name with HELP/TYPE and its label-distinguished
// series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

// Registry is a process-wide set of named metrics with Prometheus text
// exposition. Registration is idempotent: asking for an existing
// name+labels returns the existing instrument, so restarted components
// (e.g. a re-added proxy backend) keep their counts. All methods are safe
// for concurrent use; instrument updates are lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string

	// DefaultBuckets are the `le` boundaries (seconds) used for histogram
	// exposition; the defaults bracket the paper's <7ms p90 SLO.
	buckets []float64
}

// DefaultLatencyBuckets are the exposition boundaries in seconds: dense
// below 10ms where the SLO lives, sparse above.
var DefaultLatencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.0075, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		buckets:  DefaultLatencyBuckets,
	}
}

// labelSuffix renders pairwise labels ("k","v",...) as a canonical suffix.
func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getOrAdd finds or creates the family and the series for a label set.
// Returns nil when a series exists already (caller keeps the old one).
func (r *Registry) getOrAdd(name, help, typ string, labels []string) *series {
	suffix := labelSuffix(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	for _, s := range f.series {
		if s.labels == suffix {
			return s
		}
	}
	s := &series{labels: suffix}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for name+labels, creating it if needed.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrAdd(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrAdd(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrAdd(name, help, "gauge", labels)
	s.fn = fn
}

// CounterFunc registers a counter whose value is read at scrape time from
// an external monotonic source (e.g. a kvstore's internal op counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrAdd(name, help, "counter", labels)
	s.fn = fn
}

// Histogram registers a latency histogram for cumulative-bucket exposition.
// The source's nanosecond HDR buckets are folded into the registry's
// `le`-second boundaries at scrape time.
func (r *Registry) Histogram(name, help string, h histogramSource, labels ...string) {
	s := r.getOrAdd(name, help, "histogram", labels)
	s.hist = h
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order,
// series sorted within a family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	order := make([]string, len(r.order))
	copy(order, r.order)
	fams := make(map[string]*family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	r.mu.RUnlock()

	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		srs := make([]*series, len(f.series))
		copy(srs, f.series)
		sort.Slice(srs, func(i, j int) bool { return srs[i].labels < srs[j].labels })
		for _, s := range srs {
			switch {
			case s.hist != nil:
				r.writeHistogram(w, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.fn())
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			}
		}
	}
}

// writeHistogram folds the HDR nanosecond buckets into cumulative
// second-denominated `le` buckets.
func (r *Registry) writeHistogram(w io.Writer, name string, s *series) {
	d := s.hist.Distribution()
	for _, le := range r.buckets {
		n := d.CumulativeLE(uint64(le * 1e9))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, joinLabels(s.labels, fmt.Sprintf(`le="%g"`, le)), n)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, joinLabels(s.labels, `le="+Inf"`), d.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, s.labels, float64(d.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, d.Count)
}

// joinLabels merges an extra label into an existing `{...}` suffix.
func joinLabels(suffix, extra string) string {
	if suffix == "" {
		return "{" + extra + "}"
	}
	return suffix[:len(suffix)-1] + "," + extra + "}"
}
