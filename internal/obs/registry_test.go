package obs

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"serenade/internal/metrics"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("serenade_test_total", "Test counter.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registering returns the same instrument.
	if again := r.Counter("serenade_test_total", "Test counter."); again.Value() != 5 {
		t.Fatalf("re-registered counter lost state: %d", again.Value())
	}

	g := r.Gauge("serenade_test_gauge", "Test gauge.")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	// Labeled series are distinct; same labels are shared.
	a := r.Counter("serenade_labeled_total", "Labeled.", "backend", "pod-0")
	b := r.Counter("serenade_labeled_total", "Labeled.", "backend", "pod-1")
	a2 := r.Counter("serenade_labeled_total", "Labeled.", "backend", "pod-0")
	a.Inc()
	if b.Value() != 0 || a2.Value() != 1 {
		t.Fatalf("label separation broken: a=%d b=%d a2=%d", a.Value(), b.Value(), a2.Value())
	}
}

// promLine matches one exposition sample line (metric name, optional
// labels, float value).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("serenade_requests_total", "Requests.").Add(3)
	r.Gauge("serenade_sessions", "Sessions.").Set(11)
	r.GaugeFunc("serenade_fn_gauge", "Func gauge.", func() float64 { return 2.5 })
	r.Counter("serenade_errs_total", "Errs.", "class", "store").Inc()
	r.Counter("serenade_errs_total", "Errs.", "class", `we"ird\`).Inc()
	r.RegisterGoRuntime()

	h := metrics.NewStripedHistogram()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * 10 * time.Microsecond) // 0 .. 10ms
	}
	r.Histogram("serenade_request_latency_seconds", "Latency.", h)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	sc := bufio.NewScanner(strings.NewReader(out))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
		samples++
	}
	if samples < 10 {
		t.Errorf("only %d sample lines, want ≥10\n%s", samples, out)
	}
	for _, want := range []string{
		"# TYPE serenade_requests_total counter",
		"# TYPE serenade_request_latency_seconds histogram",
		"serenade_requests_total 3",
		"serenade_sessions 11",
		"serenade_fn_gauge 2.5",
		`serenade_errs_total{class="store"} 1`,
		`serenade_errs_total{class="we\"ird\\"} 1`,
		`serenade_request_latency_seconds_bucket{le="+Inf"} 1000`,
		"serenade_request_latency_seconds_count 1000",
		"serenade_go_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := &metrics.Histogram{}
	// 100 obs at 1ms, 100 at 20ms, 10 at 600ms.
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(20 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(600 * time.Millisecond)
	}
	r.Histogram("serenade_lat_seconds", "Latency.", h)
	var sb strings.Builder
	r.WritePrometheus(&sb)

	type bkt struct {
		le string
		n  uint64
	}
	var bkts []bkt
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "serenade_lat_seconds_bucket") {
			continue
		}
		le := line[strings.Index(line, `le="`)+4 : strings.Index(line, `"}`)]
		n, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		bkts = append(bkts, bkt{le, n})
	}
	if len(bkts) != len(DefaultLatencyBuckets)+1 {
		t.Fatalf("got %d bucket lines, want %d", len(bkts), len(DefaultLatencyBuckets)+1)
	}
	var prev uint64
	for _, b := range bkts {
		if b.n < prev {
			t.Errorf("bucket le=%s count %d < previous %d (not cumulative)", b.le, b.n, prev)
		}
		prev = b.n
	}
	if last := bkts[len(bkts)-1]; last.le != "+Inf" || last.n != 210 {
		t.Errorf("+Inf bucket = %+v, want {+Inf 210}", last)
	}
	// Spot-check the boundaries around the recorded values: everything at
	// 1ms is ≤2.5ms; the 600ms outliers are beyond 0.5s.
	for _, b := range bkts {
		switch b.le {
		case "0.0025":
			if b.n != 100 {
				t.Errorf("le=2.5ms = %d, want 100", b.n)
			}
		case "0.05":
			if b.n != 200 {
				t.Errorf("le=50ms = %d, want 200", b.n)
			}
		case "0.5":
			if b.n != 200 {
				t.Errorf("le=0.5s = %d, want 200", b.n)
			}
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := metrics.NewStripedHistogram()
	r.Histogram("serenade_lat_seconds", "Latency.", h)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("serenade_hammer_total", "Hammer.", "g", strconv.Itoa(g%2))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Record(time.Duration(i))
				if i%100 == 0 {
					r.Gauge("serenade_hammer_gauge", "Hammer.").Set(int64(i))
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	total := r.Counter("serenade_hammer_total", "Hammer.", "g", "0").Value() +
		r.Counter("serenade_hammer_total", "Hammer.", "g", "1").Value()
	if total != 8000 {
		t.Fatalf("hammer counters sum to %d, want 8000", total)
	}
}
