package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache amortises runtime.ReadMemStats — a stop-the-world pause —
// across the several runtime gauges read in one scrape.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// RegisterGoRuntime adds the Go runtime gauges a production dashboard
// expects next to the request series: goroutine count, heap in use, total
// GC pause time and GC cycle count.
func (r *Registry) RegisterGoRuntime() {
	cache := &memStatsCache{}
	r.GaugeFunc("serenade_go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("serenade_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(cache.read().HeapAlloc) })
	r.GaugeFunc("serenade_go_sys_bytes", "Total bytes obtained from the OS.",
		func() float64 { return float64(cache.read().Sys) })
	r.CounterFunc("serenade_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(cache.read().PauseTotalNs) / 1e9 })
	r.CounterFunc("serenade_go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(cache.read().NumGC) })
}
