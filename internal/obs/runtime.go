package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache amortises runtime.ReadMemStats — a stop-the-world pause —
// across the several runtime gauges read in one scrape.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return c.stat
}

// AllocRateMeter derives a bytes-per-second allocation rate from successive
// MemStats.TotalAlloc samples: the GC-pressure number that tells an operator
// whether a deploy regressed the hot path's allocation discipline.
type AllocRateMeter struct {
	mu    sync.Mutex
	at    time.Time
	total uint64
	rate  float64
}

// Observe feeds one TotalAlloc sample and returns the current rate. The rate
// only re-derives when at least a second elapsed since the last derivation,
// so closely spaced scrapes see a stable value instead of noise.
func (m *AllocRateMeter) Observe(totalAlloc uint64, now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.at.IsZero() {
		m.at, m.total = now, totalAlloc
		return 0
	}
	if dt := now.Sub(m.at).Seconds(); dt >= 1 {
		m.rate = float64(totalAlloc-m.total) / dt
		m.at, m.total = now, totalAlloc
	}
	return m.rate
}

// RegisterGoRuntime adds the Go runtime gauges a production dashboard
// expects next to the request series: goroutine count, heap in use, GC
// pause time (cumulative and most recent), GC cycle and CPU cost, and the
// allocation rate.
func (r *Registry) RegisterGoRuntime() {
	cache := &memStatsCache{}
	meter := &AllocRateMeter{}
	r.GaugeFunc("serenade_go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("serenade_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(cache.read().HeapAlloc) })
	r.GaugeFunc("serenade_go_sys_bytes", "Total bytes obtained from the OS.",
		func() float64 { return float64(cache.read().Sys) })
	r.CounterFunc("serenade_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(cache.read().PauseTotalNs) / 1e9 })
	r.GaugeFunc("serenade_gc_pause_seconds", "Most recent stop-the-world GC pause.",
		func() float64 {
			ms := cache.read()
			if ms.NumGC == 0 {
				return 0
			}
			return float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
		})
	r.CounterFunc("serenade_go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(cache.read().NumGC) })
	r.GaugeFunc("serenade_go_gc_cpu_fraction", "Fraction of available CPU consumed by the GC since start.",
		func() float64 { return cache.read().GCCPUFraction })
	r.CounterFunc("serenade_go_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		func() float64 { return float64(cache.read().TotalAlloc) })
	r.GaugeFunc("serenade_go_alloc_bytes_per_sec", "Heap allocation rate between scrapes.",
		func() float64 { return meter.Observe(cache.read().TotalAlloc, time.Now()) })
}
