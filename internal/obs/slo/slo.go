// Package slo is Serenade's error-budget engine: per-endpoint latency and
// error objectives tracked over multiple rolling windows with burn-rate
// computation, in the multi-window multi-burn-rate style of the Google SRE
// workbook. The serving tier records every request into it (0 allocs, no
// locks on the record path); operators read it three ways — GET /debug/slo
// (JSON), serenade_slo_* gauges in the Prometheus exposition, and the
// fast/slow-burn booleans the health signal and the slow-query log embed.
//
// The paper's headline claim is itself an SLO — sub-millisecond-scale
// predictions under heavy load (§5.2) — and this package turns that from a
// post-hoc histogram read into an operated objective: "is the p99 budget
// burning, and how fast" is answerable at any instant, which is also the
// admission-control input the distributed-cluster roadmap item needs.
package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"serenade/internal/metrics"
	"serenade/internal/obs"
)

// Objective declares what the serving tier promises for one endpoint.
type Objective struct {
	// LatencyThreshold is the latency target: a request at or above it is
	// "slow" and spends latency budget. Zero disables the latency objective.
	LatencyThreshold time.Duration `json:"latency_threshold_ns"`
	// LatencyBudget is the allowed slow fraction; 0.01 makes LatencyThreshold
	// a p99 target, 0.005 a p99.5 target. Zero means DefaultLatencyBudget.
	LatencyBudget float64 `json:"latency_budget"`
	// ErrorBudget is the allowed failed-request fraction. Zero disables the
	// error objective (set it explicitly; errors are not free by default
	// only because an objective of exactly 0 cannot be divided by).
	ErrorBudget float64 `json:"error_budget"`
}

// DefaultLatencyBudget makes the latency threshold a p99 objective when
// Objective.LatencyBudget is zero.
const DefaultLatencyBudget = 0.01

// Windows are the rolling windows burn rates are computed over: a fast
// window that reacts within a minute, a mid window that smooths bursts, and
// the slow window that accumulates budget history. The horizon of the
// underlying accumulator is the last entry.
var Windows = [3]time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// Burn-rate alert thresholds, scaled from the SRE workbook's multiwindow
// policy to this engine's 1h horizon: a fast burn (page) means the budget is
// burning ≥14.4x faster than sustainable — a 1% budget would be gone in
// minutes — confirmed by both the 1m and 5m windows so a single straggler
// cannot page. A slow burn (ticket) means a ≥6x sustained burn confirmed by
// the 5m and 1h windows.
const (
	FastBurnRate = 14.4
	SlowBurnRate = 6.0
)

// Tracker accumulates one endpoint's request outcomes. Record is the hot
// path: wait-free, allocation-free, safe for any number of concurrent
// callers.
type Tracker struct {
	endpoint string
	obj      Objective
	win      *metrics.WindowedCounter
}

// Record classifies one finished request against the objective.
func (t *Tracker) Record(total time.Duration, isErr bool) {
	var slow, errs uint64
	if t.obj.LatencyThreshold > 0 && total >= t.obj.LatencyThreshold {
		slow = 1
	}
	if isErr {
		errs = 1
	}
	t.win.Add(1, slow, errs)
}

// Objective returns the tracked objective.
func (t *Tracker) Objective() Objective { return t.obj }

// WindowState is one rolling window's burn arithmetic for one endpoint.
type WindowState struct {
	Window        string  `json:"window"`
	Total         uint64  `json:"total"`
	Slow          uint64  `json:"slow"`
	Errors        uint64  `json:"errors"`
	SlowFraction  float64 `json:"slow_fraction"`
	ErrorFraction float64 `json:"error_fraction"`
	// LatencyBurnRate is SlowFraction / LatencyBudget: 1.0 burns the budget
	// exactly as fast as it refills, >1 is over budget. Zero when the
	// latency objective is disabled.
	LatencyBurnRate float64 `json:"latency_burn_rate"`
	// ErrorBurnRate is ErrorFraction / ErrorBudget; zero when disabled.
	ErrorBurnRate float64 `json:"error_burn_rate"`
}

// EndpointState is one endpoint's full SLO view at GET /debug/slo.
type EndpointState struct {
	Endpoint  string        `json:"endpoint"`
	Objective Objective     `json:"objective"`
	Windows   []WindowState `json:"windows"`
	// FastBurn is the page condition: burn ≥ FastBurnRate in both the 1m and
	// 5m windows (for either objective).
	FastBurn bool `json:"fast_burn"`
	// SlowBurn is the ticket condition: burn ≥ SlowBurnRate in both the 5m
	// and 1h windows.
	SlowBurn bool `json:"slow_burn"`
	// BudgetRemaining is the fraction of the combined budget left over the
	// 1h window: 1 - max(latency burn, error burn), floored at 0. 1.0 means
	// an untouched budget.
	BudgetRemaining float64 `json:"budget_remaining"`
}

// Engine tracks objectives for a set of endpoints. Trackers are created
// lazily (or eagerly via Tracker) and live forever; the read paths — State,
// Handler, the registered gauges — never block writers.
type Engine struct {
	def Objective
	now func() time.Time

	mu       sync.RWMutex
	trackers map[string]*Tracker
	order    []string
	reg      *obs.Registry // non-nil once RegisterMetrics ran; late trackers self-register
}

// NewEngine creates an engine whose endpoints default to def. now injects a
// clock for deterministic tests; nil means time.Now.
func NewEngine(def Objective, now func() time.Time) *Engine {
	if def.LatencyThreshold > 0 && def.LatencyBudget <= 0 {
		def.LatencyBudget = DefaultLatencyBudget
	}
	return &Engine{def: def, now: now, trackers: make(map[string]*Tracker)}
}

// Tracker returns the endpoint's tracker, creating it against the engine
// default objective if needed. Callers on the request path should resolve
// their tracker once and keep it: the returned Tracker's Record is the
// 0-alloc path, while this lookup takes a read lock.
func (e *Engine) Tracker(endpoint string) *Tracker {
	e.mu.RLock()
	t := e.trackers[endpoint]
	e.mu.RUnlock()
	if t != nil {
		return t
	}
	return e.TrackerWithObjective(endpoint, e.def)
}

// TrackerWithObjective returns the endpoint's tracker, creating it with the
// given objective if it does not exist yet (an existing tracker keeps its
// original objective).
func (e *Engine) TrackerWithObjective(endpoint string, obj Objective) *Tracker {
	if obj.LatencyThreshold > 0 && obj.LatencyBudget <= 0 {
		obj.LatencyBudget = DefaultLatencyBudget
	}
	e.mu.Lock()
	t := e.trackers[endpoint]
	if t == nil {
		t = &Tracker{
			endpoint: endpoint,
			obj:      obj,
			win:      metrics.NewWindowedCounter(Windows[len(Windows)-1], e.now),
		}
		e.trackers[endpoint] = t
		e.order = append(e.order, endpoint)
	}
	reg := e.reg
	e.mu.Unlock()
	if reg != nil {
		e.registerTracker(reg, t)
	}
	return t
}

// state computes one tracker's current view.
func (e *Engine) state(t *Tracker) EndpointState {
	st := EndpointState{Endpoint: t.endpoint, Objective: t.obj, BudgetRemaining: 1}
	burns := make([]float64, len(Windows)) // max(latency, error) burn per window
	for i, w := range Windows {
		total, slow, errs := t.win.Sum(w)
		ws := WindowState{Window: w.String(), Total: total, Slow: slow, Errors: errs}
		if total > 0 {
			ws.SlowFraction = float64(slow) / float64(total)
			ws.ErrorFraction = float64(errs) / float64(total)
			if t.obj.LatencyThreshold > 0 {
				ws.LatencyBurnRate = ws.SlowFraction / t.obj.LatencyBudget
			}
			if t.obj.ErrorBudget > 0 {
				ws.ErrorBurnRate = ws.ErrorFraction / t.obj.ErrorBudget
			}
		}
		burns[i] = ws.LatencyBurnRate
		if ws.ErrorBurnRate > burns[i] {
			burns[i] = ws.ErrorBurnRate
		}
		st.Windows = append(st.Windows, ws)
	}
	st.FastBurn = burns[0] >= FastBurnRate && burns[1] >= FastBurnRate
	st.SlowBurn = burns[1] >= SlowBurnRate && burns[2] >= SlowBurnRate
	if st.BudgetRemaining = 1 - burns[2]; st.BudgetRemaining < 0 {
		st.BudgetRemaining = 0
	}
	return st
}

// State snapshots every endpoint, in registration order.
func (e *Engine) State() []EndpointState {
	e.mu.RLock()
	trackers := make([]*Tracker, 0, len(e.order))
	for _, name := range e.order {
		trackers = append(trackers, e.trackers[name])
	}
	e.mu.RUnlock()
	out := make([]EndpointState, len(trackers))
	for i, t := range trackers {
		out[i] = e.state(t)
	}
	return out
}

// Endpoint returns one endpoint's state; ok is false for an unknown one.
func (e *Engine) Endpoint(name string) (EndpointState, bool) {
	e.mu.RLock()
	t := e.trackers[name]
	e.mu.RUnlock()
	if t == nil {
		return EndpointState{}, false
	}
	return e.state(t), true
}

// Burning reports the worst burn state across endpoints: the highest
// fast-window (1m) burn rate and whether any endpoint is in fast or slow
// burn — the compressed form the health signal and slow-query log carry.
func (e *Engine) Burning() (worstBurn float64, fast, slow bool) {
	for _, st := range e.State() {
		if len(st.Windows) > 0 {
			b := st.Windows[0].LatencyBurnRate
			if st.Windows[0].ErrorBurnRate > b {
				b = st.Windows[0].ErrorBurnRate
			}
			if b > worstBurn {
				worstBurn = b
			}
		}
		fast = fast || st.FastBurn
		slow = slow || st.SlowBurn
	}
	return worstBurn, fast, slow
}

// Handler serves the engine state as JSON:
//
//	GET /debug/slo              every endpoint
//	GET /debug/slo?endpoint=x   one endpoint (404 when unknown)
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if name := r.URL.Query().Get("endpoint"); name != "" {
			st, ok := e.Endpoint(name)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "unknown endpoint " + name})
				return
			}
			_ = json.NewEncoder(w).Encode(st)
			return
		}
		states := e.State()
		sort.SliceStable(states, func(i, j int) bool { return states[i].Endpoint < states[j].Endpoint })
		_ = json.NewEncoder(w).Encode(map[string]any{"endpoints": states})
	})
}

// RegisterMetrics exposes the engine as serenade_slo_* gauges: the declared
// objective, per-window burn rates, the alert booleans and the remaining
// budget, all computed at scrape time. Trackers created after registration
// register themselves.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	e.mu.Lock()
	e.reg = reg
	trackers := make([]*Tracker, 0, len(e.order))
	for _, name := range e.order {
		trackers = append(trackers, e.trackers[name])
	}
	e.mu.Unlock()
	for _, t := range trackers {
		e.registerTracker(reg, t)
	}
}

func (e *Engine) registerTracker(reg *obs.Registry, t *Tracker) {
	ep := t.endpoint
	reg.GaugeFunc("serenade_slo_latency_threshold_seconds",
		"Declared latency objective threshold per endpoint.",
		func() float64 { return t.obj.LatencyThreshold.Seconds() }, "endpoint", ep)
	reg.GaugeFunc("serenade_slo_latency_budget",
		"Allowed fraction of requests at or over the latency threshold.",
		func() float64 { return t.obj.LatencyBudget }, "endpoint", ep)
	reg.GaugeFunc("serenade_slo_error_budget",
		"Allowed fraction of failed requests.",
		func() float64 { return t.obj.ErrorBudget }, "endpoint", ep)
	for i := range Windows {
		w := Windows[i]
		label := w.String()
		reg.GaugeFunc("serenade_slo_burn_rate",
			"Budget burn rate per objective and rolling window (1.0 = burning exactly the budget).",
			func() float64 {
				st := e.state(t)
				return st.Windows[i].LatencyBurnRate
			}, "endpoint", ep, "slo", "latency", "window", label)
		reg.GaugeFunc("serenade_slo_burn_rate",
			"Budget burn rate per objective and rolling window (1.0 = burning exactly the budget).",
			func() float64 {
				st := e.state(t)
				return st.Windows[i].ErrorBurnRate
			}, "endpoint", ep, "slo", "error", "window", label)
	}
	reg.GaugeFunc("serenade_slo_fast_burn",
		"1 when the fast-burn page condition holds (burn ≥14.4x in the 1m and 5m windows).",
		func() float64 { return boolGauge(e.state(t).FastBurn) }, "endpoint", ep)
	reg.GaugeFunc("serenade_slo_slow_burn",
		"1 when the slow-burn ticket condition holds (burn ≥6x in the 5m and 1h windows).",
		func() float64 { return boolGauge(e.state(t).SlowBurn) }, "endpoint", ep)
	reg.GaugeFunc("serenade_slo_budget_remaining",
		"Fraction of the error budget left over the 1h window (1 = untouched).",
		func() float64 { return e.state(t).BudgetRemaining }, "endpoint", ep)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// String renders an objective for logs and tables.
func (o Objective) String() string {
	s := "slo{"
	if o.LatencyThreshold > 0 {
		budget := o.LatencyBudget
		if budget <= 0 {
			budget = DefaultLatencyBudget
		}
		s += fmt.Sprintf("p%g<%v", 100*(1-budget), o.LatencyThreshold)
	}
	if o.ErrorBudget > 0 {
		if len(s) > len("slo{") {
			s += " "
		}
		s += fmt.Sprintf("err<%g%%", 100*o.ErrorBudget)
	}
	return s + "}"
}
