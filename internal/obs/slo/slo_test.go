package slo_test

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"serenade/internal/loadgen"
	"serenade/internal/obs"
	"serenade/internal/obs/slo"
)

// fakeClock drives the rolling windows deterministically.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) now() time.Time  { return time.Unix(c.sec.Load(), 0) }
func (c *fakeClock) advance(d int64) { c.sec.Add(d) }

func newTestEngine(obj slo.Objective) (*slo.Engine, *fakeClock) {
	clk := &fakeClock{}
	clk.sec.Store(10_000)
	return slo.NewEngine(obj, clk.now), clk
}

func TestBurnRateArithmetic(t *testing.T) {
	e, clk := newTestEngine(slo.Objective{
		LatencyThreshold: 5 * time.Millisecond,
		LatencyBudget:    0.01,
		ErrorBudget:      0.001,
	})
	tr := e.Tracker("recommend")

	// 1000 requests: 20 slow (2%), 1 error (0.1%).
	for i := 0; i < 1000; i++ {
		d := time.Millisecond
		if i < 20 {
			d = 10 * time.Millisecond
		}
		tr.Record(d, i == 0)
	}
	st, ok := e.Endpoint("recommend")
	if !ok {
		t.Fatal("endpoint missing")
	}
	w := st.Windows[0] // 1m
	if w.Total != 1000 || w.Slow != 20 || w.Errors != 1 {
		t.Fatalf("window counts = %+v", w)
	}
	if w.LatencyBurnRate != 2.0 { // 0.02 / 0.01
		t.Fatalf("latency burn = %v, want 2.0", w.LatencyBurnRate)
	}
	if w.ErrorBurnRate != 1.0 { // 0.001 / 0.001
		t.Fatalf("error burn = %v, want 1.0", w.ErrorBurnRate)
	}
	if st.FastBurn || st.SlowBurn {
		t.Fatalf("2x burn must not alert: %+v", st)
	}
	if st.BudgetRemaining >= 1 {
		t.Fatalf("budget untouched despite burn: %v", st.BudgetRemaining)
	}

	// The traffic ages out of every window past the horizon.
	clk.advance(3601)
	st, _ = e.Endpoint("recommend")
	if st.Windows[2].Total != 0 {
		t.Fatalf("1h window retained aged-out traffic: %+v", st.Windows[2])
	}
}

// TestMultiWindowBurnAlerts drives the page and ticket conditions through
// their window combinations with a fake clock.
func TestMultiWindowBurnAlerts(t *testing.T) {
	e, clk := newTestEngine(slo.Objective{LatencyThreshold: time.Millisecond, LatencyBudget: 0.01})
	tr := e.Tracker("recommend")

	// Everything slow: burn = 100x in the 1m and 5m windows → fast burn.
	for i := 0; i < 500; i++ {
		tr.Record(10*time.Millisecond, false)
	}
	st, _ := e.Endpoint("recommend")
	if !st.FastBurn {
		t.Fatalf("100x burn in 1m+5m did not page: %+v", st)
	}

	// 90 seconds later the 1m window is clean but 5m and 1h still burn ≥6x:
	// the page clears, the ticket stays.
	clk.advance(90)
	for i := 0; i < 500; i++ {
		tr.Record(time.Microsecond, false)
	}
	st, _ = e.Endpoint("recommend")
	if st.FastBurn {
		t.Fatalf("fast burn persisted after the 1m window cleared: %+v", st)
	}
	if !st.SlowBurn {
		t.Fatalf("sustained 5m/1h burn did not ticket: %+v windows=%+v", st, st.Windows)
	}

	worst, fast, slowB := e.Burning()
	if fast || !slowB {
		t.Fatalf("Burning() = (%v, %v, %v)", worst, fast, slowB)
	}
}

// TestBurnRateUnderLoadgen is the acceptance check: a loadgen-driven run
// pushes the objective deterministically over budget, and a second clean run
// stays under. Durations are synthetic, so the outcome depends only on the
// recorded traffic, not on scheduler timing.
func TestBurnRateUnderLoadgen(t *testing.T) {
	over, _ := newTestEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, LatencyBudget: 0.01})
	tr := over.Tracker("recommend")
	_, err := loadgen.Run(loadgen.Config{TargetRPS: 500, Duration: 600 * time.Millisecond}, func(i uint64) error {
		tr.Record(20*time.Millisecond, false) // every request blows the threshold
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := over.Endpoint("recommend")
	if st.Windows[0].LatencyBurnRate < slo.FastBurnRate || !st.FastBurn {
		t.Fatalf("loadgen run did not push over budget: %+v", st)
	}

	under, _ := newTestEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, LatencyBudget: 0.01})
	tr2 := under.Tracker("recommend")
	_, err = loadgen.Run(loadgen.Config{TargetRPS: 500, Duration: 600 * time.Millisecond}, func(i uint64) error {
		tr2.Record(time.Millisecond, false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ = under.Endpoint("recommend")
	if st.Windows[0].LatencyBurnRate != 0 || st.FastBurn || st.SlowBurn {
		t.Fatalf("clean loadgen run burned budget: %+v", st)
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("clean run spent budget: %v", st.BudgetRemaining)
	}
}

func TestHandlerJSON(t *testing.T) {
	e, _ := newTestEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, ErrorBudget: 0.001})
	e.Tracker("recommend").Record(time.Millisecond, false)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var body struct {
		Endpoints []slo.EndpointState `json:"endpoints"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding /debug/slo: %v\n%s", err, rec.Body.String())
	}
	if len(body.Endpoints) != 1 || body.Endpoints[0].Endpoint != "recommend" {
		t.Fatalf("endpoints = %+v", body.Endpoints)
	}
	if got := body.Endpoints[0].Objective.LatencyBudget; got != slo.DefaultLatencyBudget {
		t.Errorf("default latency budget not applied: %v", got)
	}
	if n := len(body.Endpoints[0].Windows); n != len(slo.Windows) {
		t.Errorf("window count = %d", n)
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo?endpoint=recommend", nil))
	var one slo.EndpointState
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || one.Endpoint != "recommend" {
		t.Fatalf("single-endpoint view: %v\n%s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo?endpoint=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown endpoint status = %d", rec.Code)
	}
}

func TestRegisterMetrics(t *testing.T) {
	e, _ := newTestEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, LatencyBudget: 0.01, ErrorBudget: 0.001})
	tr := e.Tracker("recommend")
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	// A tracker created after registration self-registers too.
	e.Tracker("explain").Record(time.Millisecond, false)
	for i := 0; i < 100; i++ {
		tr.Record(10*time.Millisecond, false) // all slow: burn 100x
	}
	var buf recorder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`serenade_slo_latency_threshold_seconds{endpoint="recommend"} 0.005`,
		`serenade_slo_burn_rate{endpoint="recommend",slo="latency",window="1m0s"} 100`,
		`serenade_slo_fast_burn{endpoint="recommend"} 1`,
		`serenade_slo_budget_remaining{endpoint="recommend"} 0`,
		`serenade_slo_burn_rate{endpoint="explain",slo="latency",window="1m0s"} 0`,
	} {
		if !contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

type recorder struct{ b []byte }

func (r *recorder) Write(p []byte) (int, error) { r.b = append(r.b, p...); return len(p), nil }
func (r *recorder) String() string              { return string(r.b) }

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestTrackerRecordAllocs asserts the record path is allocation-free.
func TestTrackerRecordAllocs(t *testing.T) {
	e, _ := newTestEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, ErrorBudget: 0.001})
	tr := e.Tracker("recommend")
	if n := testing.AllocsPerRun(1000, func() { tr.Record(time.Millisecond, false) }); n != 0 {
		t.Fatalf("Tracker.Record allocates %.1f/op, want 0", n)
	}
}

// TestEngineConcurrent runs Record/State/Burning/Tracker concurrently; under
// -race this is the engine's concurrency proof.
func TestEngineConcurrent(t *testing.T) {
	e := slo.NewEngine(slo.Objective{LatencyThreshold: time.Millisecond, ErrorBudget: 0.01}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := e.Tracker("recommend")
			for i := 0; i < 3000; i++ {
				tr.Record(time.Duration(i)*time.Microsecond, i%100 == 0)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			e.State()
			e.Burning()
			e.Tracker("explain").Record(time.Millisecond, false)
		}
	}()
	wg.Wait()
	st, ok := e.Endpoint("recommend")
	if !ok || st.Windows[2].Total == 0 {
		t.Fatalf("lost all traffic: %+v", st)
	}
}

func BenchmarkTrackerRecord(b *testing.B) {
	e := slo.NewEngine(slo.Objective{LatencyThreshold: 5 * time.Millisecond, ErrorBudget: 0.001}, nil)
	tr := e.Tracker("recommend")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(time.Millisecond, false)
		}
	})
}
