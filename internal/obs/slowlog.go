package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// SlowLog is a sampled slow-query log: every request slower than Threshold
// gets its full trace dumped through a slog.Logger, rate-limited to
// MaxPerSecond entries so a latency incident cannot turn the log itself
// into the bottleneck. Suppressed entries are counted and reported by
// Flush (and on the next emitted entry).
type SlowLog struct {
	logger       *slog.Logger
	threshold    time.Duration
	maxPerSecond int64

	winStart   atomic.Int64 // unix second of the current rate window
	winCount   atomic.Int64
	logged     atomic.Uint64
	suppressed atomic.Uint64 // drained into the next emitted entry
	// suppressedTotal never resets; it backs the exported metric so dropped
	// slow-log lines stay visible even though suppressed drains per entry.
	suppressedTotal atomic.Uint64

	// burnState, when set, is sampled at emission time so each slow-query
	// line carries the SLO burn picture the request contributed to. It
	// returns the worst current burn rate and the page/ticket conditions.
	burnState atomic.Pointer[func() (worst float64, fastBurn, slowBurn bool)]

	// qualityState, when set, adds the recommendation-quality drift picture
	// to the same burn-state context: whether online quality has departed
	// from the offline baseline, and the drift statistic behind the call.
	qualityState atomic.Pointer[func() (drifting bool, reason string)]
}

// NewSlowLog creates a slow-query log. A nil logger uses slog.Default();
// maxPerSecond <= 0 means 5.
func NewSlowLog(logger *slog.Logger, threshold time.Duration, maxPerSecond int) *SlowLog {
	if logger == nil {
		logger = slog.Default()
	}
	if maxPerSecond <= 0 {
		maxPerSecond = 5
	}
	return &SlowLog{logger: logger, threshold: threshold, maxPerSecond: int64(maxPerSecond)}
}

// SetBurnState wires a provider (typically the SLO engine's Burning method)
// whose snapshot is attached to every slow-query entry.
func (l *SlowLog) SetBurnState(fn func() (worst float64, fastBurn, slowBurn bool)) {
	if l != nil && fn != nil {
		l.burnState.Store(&fn)
	}
}

// SetQualityState wires a provider (typically the quality tracker's drift
// detector) whose verdict is attached to every slow-query entry next to the
// SLO burn state.
func (l *SlowLog) SetQualityState(fn func() (drifting bool, reason string)) {
	if l != nil && fn != nil {
		l.qualityState.Store(&fn)
	}
}

// Logged reports the number of emitted entries.
func (l *SlowLog) Logged() uint64 { return l.logged.Load() }

// SuppressedTotal reports the cumulative number of rate-limited entries; it
// is monotone, unlike the per-entry drain, so it can back a counter metric.
func (l *SlowLog) SuppressedTotal() uint64 { return l.suppressedTotal.Load() }

// IsSlow reports whether a total duration crosses the threshold.
func (l *SlowLog) IsSlow(d time.Duration) bool {
	return l != nil && l.threshold > 0 && d >= l.threshold
}

// Log emits the span's full stage breakdown, subject to the per-second cap.
func (l *SlowLog) Log(sp *Span) {
	now := time.Now().Unix()
	if l.winStart.Load() != now {
		// A stale window resets the budget; the CAS loser just counts
		// against the winner's fresh window.
		l.winStart.Store(now)
		l.winCount.Store(0)
	}
	if l.winCount.Add(1) > l.maxPerSecond {
		l.suppressed.Add(1)
		l.suppressedTotal.Add(1)
		return
	}
	l.logged.Add(1)
	attrs := make([]any, 0, 2*int(NumStages)+26)
	attrs = append(attrs,
		"trace_id", sp.TraceID,
		"op", sp.Op,
		"total", sp.Total,
		"threshold", l.threshold,
	)
	if sp.RequestID != "" {
		attrs = append(attrs, "request_id", sp.RequestID)
	}
	for i, d := range sp.Stages {
		if d > 0 {
			attrs = append(attrs, "stage_"+Stage(i).String(), d)
		}
	}
	// Cache/batch context: was this a cache hit or a scored miss, was it
	// coalesced or batched, how big was the batch, how long did it queue.
	attrs = append(attrs, "flags", sp.Flags.String())
	if sp.BatchSize > 0 {
		attrs = append(attrs, "batch_size", sp.BatchSize)
	}
	if w := sp.Stages[StageBatchWait]; w > 0 {
		attrs = append(attrs, "queue_wait", w)
	}
	if fn := l.burnState.Load(); fn != nil {
		worst, fastBurn, slowBurn := (*fn)()
		attrs = append(attrs,
			"slo_burn_rate", worst,
			"slo_fast_burn", fastBurn,
			"slo_slow_burn", slowBurn,
		)
	}
	if fn := l.qualityState.Load(); fn != nil {
		drifting, reason := (*fn)()
		attrs = append(attrs, "quality_drift", drifting)
		if reason != "" {
			attrs = append(attrs, "quality_drift_reason", reason)
		}
	}
	if sp.Error != "" {
		attrs = append(attrs, "error", sp.Error)
	}
	if sup := l.suppressed.Swap(0); sup > 0 {
		attrs = append(attrs, "suppressed_since_last", sup)
	}
	l.logger.Warn("slow query", attrs...)
}

// Flush emits a final summary; serving binaries call it on shutdown so
// suppressed-entry counts are never lost.
func (l *SlowLog) Flush() {
	if l == nil {
		return
	}
	l.logger.Info("slow-query log summary",
		"threshold", l.threshold,
		"logged", l.logged.Load(),
		"suppressed", l.suppressed.Load(),
	)
}
