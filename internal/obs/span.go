package obs

import (
	"time"
)

// Stage identifies one timed segment of a request. The taxonomy follows the
// serving pipeline of §4: read/update the evolving session in the local
// store, select candidate neighbour sessions from the index, score their
// items, apply the business-rule filters, and serialise the response. A
// cross-shard hop through the cluster proxy is attributed to StageProxy.
type Stage uint8

const (
	StageStore      Stage = iota // session-store read + update
	StageCandidates              // VMIS-kNN neighbour sampling (index lookup)
	StageScore                   // item scoring + top-k selection
	StageFilter                  // business rules + popularity fallback
	StageEncode                  // response serialisation
	StageProxy                   // cross-shard proxy hop
	StageBatchWait               // time queued in the wait-window batcher
	NumStages
)

var stageNames = [NumStages]string{
	"store", "candidates", "score", "filter", "encode", "proxy", "batch_wait",
}

// String returns the stage's stable, scrape-friendly name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// SpanFlags annotate how a request was served — result-cache outcome and
// batching role — as a bitmask so pooled spans stay allocation-free.
type SpanFlags uint8

const (
	// FlagCacheHit marks a request served straight from the result cache.
	FlagCacheHit SpanFlags = 1 << iota
	// FlagCacheMiss marks a request that missed the result cache.
	FlagCacheMiss
	// FlagCacheLeader marks the single-flight leader that computed the
	// cache entry other requests coalesced onto.
	FlagCacheLeader
	// FlagCacheWaiter marks a request that coalesced onto a leader's
	// in-flight computation instead of scoring itself.
	FlagCacheWaiter
	// FlagBatched marks a request scored inside a shared batch.
	FlagBatched
)

var flagNames = []struct {
	f    SpanFlags
	name string
}{
	{FlagCacheHit, "cache_hit"},
	{FlagCacheMiss, "cache_miss"},
	{FlagCacheLeader, "cache_leader"},
	{FlagCacheWaiter, "cache_waiter"},
	{FlagBatched, "batched"},
}

// Names expands the bitmask into stable, scrape-friendly strings.
func (f SpanFlags) Names() []string {
	if f == 0 {
		return nil
	}
	out := make([]string, 0, 3)
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// String renders the flags comma-joined, "-" when none are set; it is the
// zero-alloc-friendly form the slow-query log uses.
func (f SpanFlags) String() string {
	if f == 0 {
		return "-"
	}
	s := ""
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			if s != "" {
				s += ","
			}
			s += fn.name
		}
	}
	return s
}

// Span is one request's trace record: identity, wall-clock start, and
// monotonic per-stage durations. Spans are created by a Tracer, carried
// through the request path, and handed back via Tracer.Finish, after which
// the span must not be touched (it is pooled).
type Span struct {
	TraceID  string
	SpanID   string
	ParentID string // parent span id when the trace was propagated to us
	Op       string
	// RequestID is the id echoed to the caller in X-Request-Id (the inbound
	// header when the caller supplied one, else the trace id). It joins an
	// attributed recommendation-quality record back to its span in the
	// slow-query log and the error-tier trace ring.
	RequestID string

	Start  time.Time
	Total  time.Duration
	Stages [NumStages]time.Duration
	Error  string // error class, empty on success

	// Flags annotate cache outcome and batch role; BatchSize is the number
	// of queries in the batch this request was scored with (0 = unbatched).
	Flags     SpanFlags
	BatchSize int

	// cursor is the end of the last attributed segment; Cut advances it.
	cursor time.Time
}

// AddFlags ORs annotation flags into the span.
func (sp *Span) AddFlags(f SpanFlags) { sp.Flags |= f }

// Cut attributes the time since the previous Cut (or since Start) to the
// given stage and advances the cursor, so consecutive cuts partition the
// request wall time without gaps: the stage durations of a fully-cut span
// sum to its total, which is what makes a trace trustworthy for tail
// attribution.
func (sp *Span) Cut(st Stage) {
	now := nowMono()
	sp.Stages[st] += now.Sub(sp.cursor)
	sp.cursor = now
}

// CutSplit attributes the time since the previous Cut to two stages: d of it
// to a, the remainder to b (d is clamped to the elapsed segment). It exists
// for the batcher, where one elapsed segment covers both queueing and
// scoring: the queue wait is measured separately and billed to
// StageBatchWait, the rest to StageScore, and the partition invariant of Cut
// — stage durations sum to the total — still holds.
func (sp *Span) CutSplit(a Stage, d time.Duration, b Stage) {
	now := nowMono()
	elapsed := now.Sub(sp.cursor)
	if d < 0 {
		d = 0
	}
	if d > elapsed {
		d = elapsed
	}
	sp.Stages[a] += d
	sp.Stages[b] += elapsed - d
	sp.cursor = now
}

// Skip advances the cursor without attributing the elapsed segment to any
// stage — for bookkeeping the trace should not bill to the next stage.
func (sp *Span) Skip() {
	sp.cursor = nowMono()
}

// Observe adds an externally measured duration to a stage (used by the
// proxy tier, whose hop time is measured around a whole downstream call).
func (sp *Span) Observe(st Stage, d time.Duration) {
	if d > 0 {
		sp.Stages[st] += d
	}
}

// SetError records the request's error class (e.g. "store", "bad_request").
func (sp *Span) SetError(class string) { sp.Error = class }

// End freezes the span's total duration. Idempotent; Tracer.Finish calls it
// for spans the request path did not end explicitly.
func (sp *Span) End() {
	if sp.Total == 0 {
		sp.Total = nowMono().Sub(sp.Start)
	}
}

// StageSum reports the total time attributed to stages.
func (sp *Span) StageSum() time.Duration {
	var sum time.Duration
	for _, d := range sp.Stages {
		sum += d
	}
	return sum
}

// Traceparent renders this span's context for propagation downstream.
func (sp *Span) Traceparent() string {
	return FormatTraceparent(sp.TraceID, sp.SpanID)
}

func (sp *Span) reset() {
	*sp = Span{}
}
