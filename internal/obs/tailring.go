package obs

import (
	"sync"
	"time"
)

// tailRing is the tail-based retention tier behind a Tracer: where the
// uniform-sampled ring answers "what does typical traffic look like", the
// tail ring answers "what did the worst traffic look like" — and unlike
// uniform sampling it cannot lose an outlier to eviction by the fast
// requests that follow it.
//
// Two tiers:
//
//   - slowest-N per window: the current window keeps the N slowest finished
//     spans; when the window rotates the set is parked as the previous
//     window (still queryable) and a fresh one starts, so a queried outlier
//     survives for between one and two windows.
//   - errors: every span that finished with an error class, in a fixed ring
//     (oldest overwritten). Errors are rare and always worth keeping.
type tailRing struct {
	keep   int           // slowest-N capacity per window
	window time.Duration // rotation period

	mu      sync.Mutex
	started time.Time // start of the current window
	cur     []Span    // current window's slowest, unordered
	prev    []Span    // previous window's slowest

	errRing []Span
	errNext int
	errN    int
}

func newTailRing(keep int, window time.Duration, errKeep int) *tailRing {
	r := &tailRing{keep: keep, window: window}
	if errKeep > 0 {
		r.errRing = make([]Span, errKeep)
	}
	if keep > 0 {
		r.cur = make([]Span, 0, keep)
	}
	return r
}

// offer considers a finished span for both tiers. The span is copied: the
// caller recycles sp into the pool right after.
func (r *tailRing) offer(sp *Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	if sp.Error != "" && len(r.errRing) > 0 {
		r.errRing[r.errNext] = *sp
		r.errNext = (r.errNext + 1) % len(r.errRing)
		if r.errN < len(r.errRing) {
			r.errN++
		}
	}

	if r.keep <= 0 {
		return
	}
	now := nowMono()
	if r.started.IsZero() {
		r.started = now
	} else if now.Sub(r.started) >= r.window {
		r.prev, r.cur = r.cur, r.prev[:0]
		if r.cur == nil {
			r.cur = make([]Span, 0, r.keep)
		}
		r.started = now
	}
	if len(r.cur) < r.keep {
		r.cur = append(r.cur, *sp)
		return
	}
	// Full window: replace the current minimum if this span is slower.
	min := 0
	for i := 1; i < len(r.cur); i++ {
		if r.cur[i].Total < r.cur[min].Total {
			min = i
		}
	}
	if sp.Total > r.cur[min].Total {
		r.cur[min] = *sp
	}
}

// slowest returns the retained slowest spans across the current and previous
// windows, slowest first.
func (r *tailRing) slowest() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, 0, len(r.cur)+len(r.prev))
	out = append(out, r.cur...)
	out = append(out, r.prev...)
	r.mu.Unlock()
	// Insertion sort by descending total: the set is at most 2*keep spans.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// errors returns the retained error spans, newest first.
func (r *tailRing) errors() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.errN)
	for i := 0; i < r.errN; i++ {
		idx := (r.errNext - 1 - i + 2*len(r.errRing)) % len(r.errRing)
		out = append(out, r.errRing[idx])
	}
	return out
}
