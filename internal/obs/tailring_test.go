package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishAt runs a span through Finish with a synthetic start and duration by
// freezing the span clock; the caller owns restoring nowMono.
func finishAt(tr *Tracer, op string, start time.Time, total time.Duration, errClass string) {
	nowMono = func() time.Time { return start }
	sp := tr.Start(op)
	nowMono = func() time.Time { return start.Add(total) }
	sp.Cut(StageScore)
	if errClass != "" {
		sp.SetError(errClass)
	}
	tr.Finish(sp)
}

// TestTailRingRetainsOutlier is the acceptance check: with the same ring
// size, uniform sampling loses a 100ms outlier to eviction by the fast
// traffic that follows, while the slowest-N tier provably retains it.
func TestTailRingRetainsOutlier(t *testing.T) {
	defer func() { nowMono = time.Now }()
	tr := NewTracer(TracerOptions{RingSize: 8, TailKeep: 8, TailWindow: time.Hour})

	base := time.Now()
	finishAt(tr, "recommend", base, 100*time.Millisecond, "") // the outlier
	for i := 0; i < 50; i++ {
		finishAt(tr, "recommend", base, 500*time.Microsecond, "")
	}

	for _, sp := range tr.Recent() {
		if sp.Total >= 100*time.Millisecond {
			t.Fatalf("uniform ring still holds the outlier after 50 evicting spans")
		}
	}
	slowest := tr.Slowest()
	if len(slowest) == 0 || slowest[0].Total < 100*time.Millisecond {
		t.Fatalf("tail tier lost the 100ms outlier: %v", slowest)
	}
	// Slowest-first ordering.
	for i := 1; i < len(slowest); i++ {
		if slowest[i].Total > slowest[i-1].Total {
			t.Fatalf("slowest() out of order at %d: %v > %v", i, slowest[i].Total, slowest[i-1].Total)
		}
	}
}

func TestTailRingWindowRotation(t *testing.T) {
	defer func() { nowMono = time.Now }()
	base := time.Now()
	tr := NewTracer(TracerOptions{RingSize: 8, TailKeep: 2, TailWindow: time.Minute})

	finishAt(tr, "a", base, 50*time.Millisecond, "")
	// Advance past one window: the 50ms span parks in the previous window.
	finishAt(tr, "b", base.Add(2*time.Minute), 10*time.Millisecond, "")
	got := tr.Slowest()
	if len(got) != 2 || got[0].Op != "a" || got[1].Op != "b" {
		t.Fatalf("after one rotation: %+v", got)
	}
	// A second rotation expires the 50ms span entirely.
	finishAt(tr, "c", base.Add(4*time.Minute), 1*time.Millisecond, "")
	for _, sp := range tr.Slowest() {
		if sp.Op == "a" {
			t.Fatalf("span survived two window rotations")
		}
	}
}

func TestErrorTierRetainsAllErrors(t *testing.T) {
	defer func() { nowMono = time.Now }()
	tr := NewTracer(TracerOptions{RingSize: 4, SampleEvery: 100, ErrorKeep: 16})
	for i := 0; i < 30; i++ {
		finishAt(tr, "recommend", time.Now(), time.Millisecond, "")
	}
	finishAt(tr, "recommend", time.Now(), time.Millisecond, "store")
	finishAt(tr, "recommend", time.Now(), time.Millisecond, "bad_request")
	errs := tr.ErrorTraces()
	if len(errs) != 2 || errs[0].Error != "bad_request" || errs[1].Error != "store" {
		t.Fatalf("error tier = %+v", errs)
	}
}

func TestCutSplitPartitionsSegment(t *testing.T) {
	defer func() { nowMono = time.Now }()
	base := time.Now()
	nowMono = func() time.Time { return base }
	tr := NewTracer(TracerOptions{})
	sp := tr.Start("recommend")
	base = base.Add(10 * time.Millisecond)
	sp.CutSplit(StageBatchWait, 4*time.Millisecond, StageScore)
	if sp.Stages[StageBatchWait] != 4*time.Millisecond || sp.Stages[StageScore] != 6*time.Millisecond {
		t.Fatalf("split = (%v, %v), want (4ms, 6ms)", sp.Stages[StageBatchWait], sp.Stages[StageScore])
	}
	// The wait is clamped to the elapsed segment, preserving the partition
	// invariant even if the measured queue wait overshoots.
	base = base.Add(time.Millisecond)
	sp.CutSplit(StageBatchWait, time.Hour, StageScore)
	sp.End()
	if sp.StageSum() != sp.Total {
		t.Fatalf("stage sum %v != total %v after clamped split", sp.StageSum(), sp.Total)
	}
	tr.Finish(sp)
}

func TestSpanFlags(t *testing.T) {
	f := FlagCacheMiss | FlagBatched
	if got := f.String(); got != "cache_miss,batched" {
		t.Fatalf("String = %q", got)
	}
	if got := SpanFlags(0).String(); got != "-" {
		t.Fatalf("zero String = %q", got)
	}
	names := (FlagCacheHit | FlagCacheWaiter).Names()
	if len(names) != 2 || names[0] != "cache_hit" || names[1] != "cache_waiter" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTraceHandlerFilters(t *testing.T) {
	defer func() { nowMono = time.Now }()
	tr := NewTracer(TracerOptions{RingSize: 64, TailKeep: 8, ErrorKeep: 8})
	finishAt(tr, "recommend", time.Now(), 50*time.Millisecond, "")
	finishAt(tr, "recommend", time.Now(), time.Millisecond, "")
	finishAt(tr, "explain", time.Now(), 30*time.Millisecond, "")
	finishAt(tr, "recommend", time.Now(), time.Millisecond, "store")

	get := func(url string) (string, []traceView) {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body struct {
			View   string      `json:"view"`
			Traces []traceView `json:"traces"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
		return body.View, body.Traces
	}

	if _, all := get("/debug/traces"); len(all) != 4 {
		t.Fatalf("unfiltered = %d traces, want 4", len(all))
	}
	if _, slow := get("/debug/traces?min_ms=20"); len(slow) != 2 {
		t.Fatalf("min_ms=20 = %d traces, want 2", len(slow))
	}
	if _, op := get("/debug/traces?endpoint=explain"); len(op) != 1 || op[0].Op != "explain" {
		t.Fatalf("endpoint filter = %+v", op)
	}
	view, errs := get("/debug/traces?errors=1")
	if view != "errors" || len(errs) != 1 || errs[0].Error != "store" {
		t.Fatalf("errors view = %q %+v", view, errs)
	}
	view, slowest := get("/debug/traces?slowest=1&endpoint=recommend&min_ms=20")
	if view != "slowest" || len(slowest) != 1 || slowest[0].TotalNS < int64(50*time.Millisecond) {
		t.Fatalf("combined slowest view = %q %+v", view, slowest)
	}
}

func TestSlowLogContextAndBurnState(t *testing.T) {
	defer func() { nowMono = time.Now }()
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	sl := NewSlowLog(logger, time.Millisecond, 100)
	sl.SetBurnState(func() (float64, bool, bool) { return 22.5, true, false })
	tr := NewTracer(TracerOptions{SlowLog: sl})

	base := time.Now()
	nowMono = func() time.Time { return base }
	sp := tr.Start("recommend")
	sp.AddFlags(FlagCacheMiss | FlagBatched)
	sp.BatchSize = 7
	base = base.Add(5 * time.Millisecond)
	sp.CutSplit(StageBatchWait, 2*time.Millisecond, StageScore)
	tr.Finish(sp)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"flags=cache_miss,batched",
		"batch_size=7",
		"queue_wait=2ms",
		"slo_burn_rate=22.5",
		"slo_fast_burn=true",
		"slo_slow_burn=false",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-log entry missing %q:\n%s", want, out)
		}
	}
}

func TestSlowLogSuppressedTotalMonotone(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	sl := NewSlowLog(logger, time.Nanosecond, 2)
	tr := NewTracer(TracerOptions{SlowLog: sl})
	for i := 0; i < 10; i++ {
		sp := tr.Start("op")
		time.Sleep(10 * time.Microsecond)
		tr.Finish(sp)
	}
	if sl.Logged() == 0 {
		t.Fatal("nothing logged")
	}
	first := sl.SuppressedTotal()
	if first == 0 {
		t.Fatal("nothing suppressed at 2/s over 10 rapid entries")
	}
	// Emitting another entry drains the per-entry counter but must not
	// reduce the cumulative one.
	sp := tr.Start("op")
	time.Sleep(10 * time.Microsecond)
	tr.Finish(sp)
	if sl.SuppressedTotal() < first {
		t.Fatalf("SuppressedTotal went backwards: %d → %d", first, sl.SuppressedTotal())
	}
}
