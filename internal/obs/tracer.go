package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TracerOptions parameterise a Tracer. The zero value is usable: every
// request sampled into a 256-slot ring, no slow-query log.
type TracerOptions struct {
	// RingSize is the trace ring capacity; 0 means 256, negative disables
	// the ring.
	RingSize int
	// SampleEvery keeps 1 in N finished spans in the ring (1 = all). Slow
	// spans bypass sampling — a tail-latency request is always kept.
	SampleEvery int
	// SlowLog, when non-nil, receives every span slower than its threshold.
	SlowLog *SlowLog
	// TailKeep is the slowest-N retention tier's capacity per window:
	// the N slowest spans of each window are always retained, immune to
	// the eviction-by-fast-traffic that loses outliers from the uniform
	// ring. 0 means 32, negative disables the tier.
	TailKeep int
	// TailWindow is the slowest-N rotation period; 0 means one minute. A
	// retained span survives between one and two windows.
	TailWindow time.Duration
	// ErrorKeep is the error-trace tier's ring size — every span finishing
	// with an error class is retained, oldest overwritten. 0 means 64,
	// negative disables the tier.
	ErrorKeep int
}

// Tracer hands out spans, samples finished ones into a fixed ring of recent
// traces, and feeds the slow-query log. All methods are safe for concurrent
// use; span structs are pooled across requests.
type Tracer struct {
	opts TracerOptions

	pool     sync.Pool
	seq      atomic.Uint64 // finished spans, for sampling
	sampled  atomic.Uint64
	finished atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int
	n    int // live entries in ring

	tail *tailRing
}

// NewTracer creates a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize == 0 {
		opts.RingSize = 256
	}
	if opts.RingSize < 0 {
		opts.RingSize = 0
	}
	if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}
	if opts.TailKeep == 0 {
		opts.TailKeep = 32
	}
	if opts.TailKeep < 0 {
		opts.TailKeep = 0
	}
	if opts.TailWindow <= 0 {
		opts.TailWindow = time.Minute
	}
	if opts.ErrorKeep == 0 {
		opts.ErrorKeep = 64
	}
	if opts.ErrorKeep < 0 {
		opts.ErrorKeep = 0
	}
	t := &Tracer{opts: opts, ring: make([]Span, opts.RingSize)}
	if opts.TailKeep > 0 || opts.ErrorKeep > 0 {
		t.tail = newTailRing(opts.TailKeep, opts.TailWindow, opts.ErrorKeep)
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Start begins a span for a locally originated request.
func (t *Tracer) Start(op string) *Span {
	sp := t.pool.Get().(*Span)
	now := nowMono()
	sp.TraceID, sp.SpanID = NewTraceAndSpanID()
	sp.Op = op
	sp.Start = now
	sp.cursor = now
	return sp
}

// StartRemote begins a span continuing a propagated trace. A missing or
// malformed traceparent degrades to a fresh local trace.
func (t *Tracer) StartRemote(op, traceparent string) *Span {
	sp := t.Start(op)
	if tid, parent, ok := ParseTraceparent(traceparent); ok {
		sp.TraceID = tid
		sp.ParentID = parent
	}
	return sp
}

// Finish ends the span, samples it into the ring, feeds the slow-query log,
// and recycles the struct. The caller must not use sp afterwards.
func (t *Tracer) Finish(sp *Span) {
	sp.End()
	t.finished.Add(1)
	slow := t.opts.SlowLog != nil && t.opts.SlowLog.IsSlow(sp.Total)
	if len(t.ring) > 0 {
		n := t.seq.Add(1)
		if slow || t.opts.SampleEvery == 1 || n%uint64(t.opts.SampleEvery) == 0 {
			t.sampled.Add(1)
			t.mu.Lock()
			t.ring[t.next] = *sp
			t.next = (t.next + 1) % len(t.ring)
			if t.n < len(t.ring) {
				t.n++
			}
			t.mu.Unlock()
		}
	}
	t.tail.offer(sp)
	if slow {
		t.opts.SlowLog.Log(sp)
	}
	sp.reset()
	t.pool.Put(sp)
}

// Slowest returns the tail-retention tier: the slowest spans of the current
// and previous windows, slowest first. Unlike Recent, an outlier here cannot
// be evicted by the fast traffic that follows it.
func (t *Tracer) Slowest() []Span { return t.tail.slowest() }

// ErrorTraces returns the retained error spans, newest first.
func (t *Tracer) ErrorTraces() []Span { return t.tail.errors() }

// Recent returns the sampled traces, newest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the newest slot; walk backwards.
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// FlushSlowLog emits the slow-query log's final summary, if one is wired.
func (t *Tracer) FlushSlowLog() {
	if t.opts.SlowLog != nil {
		t.opts.SlowLog.Flush()
	}
}

// traceView is the JSON shape of one trace at /debug/traces. Durations are
// nanoseconds; stages with zero time are omitted.
type traceView struct {
	TraceID   string           `json:"trace_id"`
	SpanID    string           `json:"span_id"`
	ParentID  string           `json:"parent_id,omitempty"`
	RequestID string           `json:"request_id,omitempty"`
	Op        string           `json:"op"`
	Start    time.Time        `json:"start"`
	TotalNS  int64            `json:"total_ns"`
	Total    string           `json:"total"`
	Stages   map[string]int64 `json:"stages_ns"`
	Error    string           `json:"error,omitempty"`
	Flags    []string         `json:"flags,omitempty"`
	Batch    int              `json:"batch_size,omitempty"`
}

func viewOf(sp Span) traceView {
	v := traceView{
		TraceID:   sp.TraceID,
		SpanID:    sp.SpanID,
		ParentID:  sp.ParentID,
		RequestID: sp.RequestID,
		Op:        sp.Op,
		Start:    sp.Start,
		TotalNS:  int64(sp.Total),
		Total:    sp.Total.String(),
		Stages:   make(map[string]int64, len(sp.Stages)),
		Error:    sp.Error,
		Flags:    sp.Flags.Names(),
		Batch:    sp.BatchSize,
	}
	for i, d := range sp.Stages {
		if d > 0 {
			v.Stages[Stage(i).String()] = int64(d)
		}
	}
	return v
}

// Handler serves the retained traces as JSON:
//
//	GET /debug/traces?n=50        at most n traces, newest first (default all)
//	GET /debug/traces?slowest=1   the slowest-N retention tier, slowest first
//	GET /debug/traces?errors=1    the error-trace tier, newest first
//	GET /debug/traces?min_ms=20   only traces at least that slow
//	GET /debug/traces?endpoint=recommend   only traces for that op
//
// The view selectors pick the source tier; the filters then narrow it.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var spans []Span
		view := "sampled"
		switch {
		case q.Get("errors") == "1":
			spans = t.ErrorTraces()
			view = "errors"
		case q.Get("slowest") == "1":
			spans = t.Slowest()
			view = "slowest"
		default:
			spans = t.Recent()
		}
		if raw := q.Get("min_ms"); raw != "" {
			if ms, err := parsePositive(raw); err == nil {
				min := time.Duration(ms) * time.Millisecond
				kept := spans[:0]
				for _, sp := range spans {
					if sp.Total >= min {
						kept = append(kept, sp)
					}
				}
				spans = kept
			}
		}
		if op := q.Get("endpoint"); op != "" {
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Op == op {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		if raw := q.Get("n"); raw != "" {
			if n, err := parsePositive(raw); err == nil && n < len(spans) {
				spans = spans[:n]
			}
		}
		views := make([]traceView, len(spans))
		for i, sp := range spans {
			views[i] = viewOf(sp)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"finished": t.finished.Load(),
			"sampled":  t.sampled.Load(),
			"view":     view,
			"traces":   views,
		})
	})
}

func parsePositive(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' || n > 1<<20 {
			return 0, errBadNumber
		}
		n = n*10 + int(s[i]-'0')
	}
	if len(s) == 0 || n == 0 {
		return 0, errBadNumber
	}
	return n, nil
}

var errBadNumber = &badNumberError{}

type badNumberError struct{}

func (*badNumberError) Error() string { return "obs: bad number" }
