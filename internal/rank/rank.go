// Package rank holds the ranking-math primitives shared by the offline
// evaluators (internal/metrics, internal/experiments, internal/abtest) and
// the online quality telemetry (internal/obs/quality): first-occurrence rank
// lookup, reciprocal-rank, catalogue coverage, quantiles, rank histograms
// and distribution distance. Keeping one implementation is the point — the
// online MRR estimator must agree bit-for-bit with the offline MRR@k it is
// compared against, or "drift" becomes an artefact of divergent math.
package rank

import (
	"sort"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// RankOf returns the 1-based rank of the first occurrence of target within
// the top k entries of items, or 0 when absent. k <= 0 means the whole list.
func RankOf(items []sessions.ItemID, target sessions.ItemID, k int) int {
	if k <= 0 || k > len(items) {
		k = len(items)
	}
	for i := 0; i < k; i++ {
		if items[i] == target {
			return i + 1
		}
	}
	return 0
}

// RankOfScored is RankOf over a scored recommendation list.
func RankOfScored(recs []core.ScoredItem, target sessions.ItemID, k int) int {
	if k <= 0 || k > len(recs) {
		k = len(recs)
	}
	for i := 0; i < k; i++ {
		if recs[i].Item == target {
			return i + 1
		}
	}
	return 0
}

// Reciprocal converts a 1-based rank into its reciprocal-rank contribution;
// rank 0 (absent) contributes nothing.
func Reciprocal(r int) float64 {
	if r <= 0 {
		return 0
	}
	return 1.0 / float64(r)
}

// Coverage is the share of a catalogue that appeared in at least one
// recommendation list; 0 when the catalogue size is unknown.
func Coverage(distinct, catalogSize int) float64 {
	if catalogSize <= 0 {
		return 0
	}
	return float64(distinct) / float64(catalogSize)
}

// Quantile returns the q-quantile (0<=q<=1) of values using linear
// interpolation between order statistics. It returns 0 for empty input.
// values need not be sorted; a sorted copy is made.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already-sorted slice, for callers that
// amortise the sort across several quantile reads.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts events by 1-based rank position up to a fixed cutoff K.
// Rank 0 (miss) is not counted; ranks beyond K clamp into the last bucket so
// the total is preserved.
type Histogram struct {
	Counts []uint64
}

// NewHistogram returns a histogram with k buckets for ranks 1..k.
func NewHistogram(k int) *Histogram {
	if k < 1 {
		k = 1
	}
	return &Histogram{Counts: make([]uint64, k)}
}

// Add counts one event at 1-based rank r; r <= 0 is ignored, r > K clamps.
func (h *Histogram) Add(r int) {
	if r <= 0 {
		return
	}
	if r > len(h.Counts) {
		r = len(h.Counts)
	}
	h.Counts[r-1]++
}

// Total reports the number of counted events.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Dist normalises the histogram into a probability distribution over ranks;
// nil when the histogram is empty.
func (h *Histogram) Dist() []float64 {
	n := h.Total()
	if n == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// MRR reports the mean reciprocal rank of the histogram's events over a
// denominator of n trials (events with rank 0 simply contribute nothing);
// with n == Total() this is the conditional MRR given a hit.
func (h *Histogram) MRR(n uint64) float64 {
	if n == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.Counts {
		sum += float64(c) * Reciprocal(i+1)
	}
	return sum / float64(n)
}

// TotalVariation is the total-variation distance between two distributions:
// half the L1 distance, in [0, 1]. Distributions of different lengths are
// compared by treating missing entries as zero mass.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	var l1 float64
	for i := 0; i < n; i++ {
		var pv, qv float64
		if i < len(p) {
			pv = p[i]
		}
		if i < len(q) {
			qv = q[i]
		}
		d := pv - qv
		if d < 0 {
			d = -d
		}
		l1 += d
	}
	return l1 / 2
}
