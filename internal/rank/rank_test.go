package rank

import (
	"math"
	"testing"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRankOf(t *testing.T) {
	items := []sessions.ItemID{10, 20, 30, 20, 40}
	cases := []struct {
		target sessions.ItemID
		k      int
		want   int
	}{
		{10, 0, 1},
		{20, 0, 2},  // first occurrence, not the duplicate at 4
		{40, 0, 5},
		{40, 3, 0},  // outside cutoff
		{30, 3, 3},  // exactly at cutoff
		{99, 0, 0},  // absent
		{10, 100, 1}, // k beyond list clamps
	}
	for _, c := range cases {
		if got := RankOf(items, c.target, c.k); got != c.want {
			t.Errorf("RankOf(%v, %d, k=%d) = %d, want %d", items, c.target, c.k, got, c.want)
		}
	}
	if got := RankOf(nil, 1, 0); got != 0 {
		t.Errorf("RankOf(nil) = %d, want 0", got)
	}
}

func TestRankOfScored(t *testing.T) {
	recs := []core.ScoredItem{{Item: 5, Score: 3}, {Item: 7, Score: 2}, {Item: 9, Score: 1}}
	if got := RankOfScored(recs, 7, 0); got != 2 {
		t.Errorf("RankOfScored = %d, want 2", got)
	}
	if got := RankOfScored(recs, 9, 2); got != 0 {
		t.Errorf("RankOfScored with cutoff = %d, want 0", got)
	}
	if got := RankOfScored(recs, 11, 0); got != 0 {
		t.Errorf("RankOfScored absent = %d, want 0", got)
	}
}

func TestReciprocal(t *testing.T) {
	golden := []struct {
		r    int
		want float64
	}{{0, 0}, {-3, 0}, {1, 1}, {2, 0.5}, {4, 0.25}, {10, 0.1}}
	for _, g := range golden {
		if got := Reciprocal(g.r); !almost(got, g.want) {
			t.Errorf("Reciprocal(%d) = %g, want %g", g.r, got, g.want)
		}
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage(25, 100); !almost(got, 0.25) {
		t.Errorf("Coverage(25, 100) = %g, want 0.25", got)
	}
	if got := Coverage(5, 0); got != 0 {
		t.Errorf("Coverage with unknown catalogue = %g, want 0", got)
	}
}

func TestQuantileGolden(t *testing.T) {
	vals := []float64{4, 1, 3, 2} // unsorted on purpose
	golden := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
		{-1, 1}, {2, 4},
	}
	for _, g := range golden {
		if got := Quantile(vals, g.q); !almost(got, g.want) {
			t.Errorf("Quantile(%v, %g) = %g, want %g", vals, g.q, got, g.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.99); !almost(got, 7) {
		t.Errorf("Quantile(single) = %g, want 7", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(3)
	h.Add(1)
	h.Add(1)
	h.Add(2)
	h.Add(5) // clamps into bucket 3
	h.Add(0) // miss, ignored
	h.Add(-1)
	if got := h.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	dist := h.Dist()
	want := []float64{0.5, 0.25, 0.25}
	for i := range want {
		if !almost(dist[i], want[i]) {
			t.Errorf("Dist[%d] = %g, want %g", i, dist[i], want[i])
		}
	}
	// MRR over 8 trials: (2*1 + 1*0.5 + 1*(1/3)) / 8
	if got, want := h.MRR(8), (2+0.5+1.0/3)/8; !almost(got, want) {
		t.Errorf("MRR(8) = %g, want %g", got, want)
	}
	if got := h.MRR(0); got != 0 {
		t.Errorf("MRR(0) = %g, want 0", got)
	}
	empty := NewHistogram(4)
	if empty.Dist() != nil {
		t.Error("empty histogram Dist should be nil")
	}
}

func TestTotalVariation(t *testing.T) {
	cases := []struct {
		p, q []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 0},
		{[]float64{1, 0}, []float64{0, 1}, 1},
		{[]float64{0.5, 0.5}, []float64{0.25, 0.75}, 0.25},
		{[]float64{0.5, 0.5}, []float64{0.5, 0.25, 0.25}, 0.25}, // length mismatch
		{nil, []float64{1}, 0.5},
	}
	for _, c := range cases {
		if got := TotalVariation(c.p, c.q); !almost(got, c.want) {
			t.Errorf("TotalVariation(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}
