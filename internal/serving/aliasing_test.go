package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRequestsNoAliasing hammers the pooled-scratch edge from many
// goroutines and checks that every response carries its own session's state.
// The failure mode it exists for: a response buffer, session slice, or items
// slice recycled into another in-flight request would garble the JSON or
// leak another session's session_length. Run it under -race; the pools make
// any cross-request sharing a detector hit as well as an assertion failure.
func TestConcurrentRequestsNoAliasing(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	const goroutines = 8
	const iters = 60

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("alias-%d", g)
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"session_id":%q,"item_id":0,"consent":true}`, key)
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d iter %d: status %d: %s", g, i, w.Code, w.Body.String())
					return
				}
				var resp Response
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: garbled response %q: %v", g, i, w.Body.String(), err)
					return
				}
				// Each goroutine owns its session, so its length must track its
				// own iteration count — a cross-request scratch mixup surfaces
				// as another goroutine's (different) length.
				if want := i + 1; want <= 20 && resp.SessionLength != want {
					errs <- fmt.Errorf("goroutine %d iter %d: session_length = %d, want %d", g, i, resp.SessionLength, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentIdempotentReplayNoAliasing replays one stored idempotent
// response from many goroutines at once; every replay must be byte-identical
// to the original. The replay path copies the stored bytes into a pooled
// buffer, so a recycled buffer shared between two in-flight replays would
// diverge here.
func TestConcurrentIdempotentReplayNoAliasing(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	body := `{"session_id":"alias-idem","item_id":0,"consent":true}`
	original := append([]byte(nil), postRecommend(t, h, "alias-idem", "alias-idem-key", 0).Body.Bytes()...)

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set(IdempotencyKeyHeader, "alias-idem-key")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d iter %d: status %d", g, i, w.Code)
					return
				}
				if w.Header().Get(IdempotencyReplayHeader) != "true" {
					errs <- fmt.Errorf("goroutine %d iter %d: replay not flagged", g, i)
					return
				}
				if !bytes.Equal(w.Body.Bytes(), original) {
					errs <- fmt.Errorf("goroutine %d iter %d: replay diverged:\n got %q\nwant %q", g, i, w.Body.Bytes(), original)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCacheLeaderWaiterNoAliasing sends many concurrent requests
// whose sessions share a kernel tail, so they collide on one result-cache
// entry: one goroutine computes as leader, the rest wait and copy the cached
// items. Every response must list identical items — a waiter handed a slice
// aliased to the leader's pooled scratch would see items mutate under it.
func TestConcurrentCacheLeaderWaiterNoAliasing(t *testing.T) {
	s := testServer(t, Config{ResultCacheSize: 4096, ResultCacheTTL: 3600e9})
	h := s.Handler()

	const goroutines = 8
	const iters = 40

	type itemsJSON struct {
		Items json.RawMessage `json:"items"`
	}
	var ref itemsJSON
	refBody := postRecommend(t, h, "alias-cache-ref", "", 0).Body.Bytes()
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatalf("reference response: %v", err)
	}
	refItems := string(ref.Items)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Fresh session per request: every session's kernel tail is the
				// single item 0, so all of them hash to the same cache key.
				body := fmt.Sprintf(`{"session_id":"alias-cache-%d-%d","item_id":0,"consent":true}`, g, i)
				req := httptest.NewRequest(http.MethodPost, "/v1/recommend", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d iter %d: status %d", g, i, w.Code)
					return
				}
				var got itemsJSON
				if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: garbled response: %v", g, i, err)
					return
				}
				if string(got.Items) != refItems {
					errs <- fmt.Errorf("goroutine %d iter %d: items diverged from leader:\n got %s\nwant %s", g, i, got.Items, refItems)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
