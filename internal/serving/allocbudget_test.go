package serving

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"serenade/internal/obs/quality"
)

// Steady-state allocation budgets for the HTTP edge, in allocations per
// request through the full handler stack (mux routing, decode, kernel or
// cache, encode). These are regression tripwires, not aspirations: the
// remaining allocations are accounted for one by one (the session-key
// string the kvstore retains, the trace/span id backing, and the
// X-Request-Id header value slice), so any new allocation on the hot path
// fails the test by name.
const (
	allocBudgetRecommendPost = 3 // session key + trace/span ids + request-id header value
	allocBudgetRecommendGet  = 2 // key is a RawQuery substring; ids + header value remain
	allocBudgetCacheHit      = 3 // same as the miss path; the cache itself adds none
	allocBudgetReplay        = 3 // stored-bytes replay still mints ids
	allocBudgetTrack         = 0 // no session key, no per-request ids on /track
)

// allocEps absorbs the occasional sync.Pool refill after a GC cycle lands
// mid-measurement; a real per-request regression adds ≥1 whole allocation.
const allocEps = 0.25

// measureAllocs drives one prepared request through the handler repeatedly
// and returns the mean allocations per request, after a warm-up that grows
// every pooled buffer to its steady-state size.
func measureAllocs(t *testing.T, h http.Handler, req *http.Request, body *resettableBody) float64 {
	t.Helper()
	w := &benchResponseWriter{h: make(http.Header)}
	serve := func() {
		if body != nil {
			body.Seek(0, io.SeekStart)
		}
		w.status = 0
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status = %d", w.status)
		}
	}
	for i := 0; i < 100; i++ {
		serve()
	}
	return testing.AllocsPerRun(200, serve)
}

func checkBudget(t *testing.T, name string, got float64, budget float64) {
	t.Helper()
	if got > budget+allocEps {
		t.Errorf("%s: %.2f allocs/request, budget %.0f", name, got, budget)
	}
}

// TestHTTPAllocBudgets pins the allocs-per-request of every hot endpoint.
// The budgets assume uninstrumented builds; under -race the detector's own
// bookkeeping allocates, so the test skips there (the aliasing hammer in
// aliasing_test.go is the -race counterpart).
func TestHTTPAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated under -race")
	}

	t.Run("RecommendPostMiss", func(t *testing.T) {
		s := testServer(t, Config{})
		reqs, bodies := benchRequests(t, 1)
		got := measureAllocs(t, s.Handler(), reqs[0], bodies[0])
		checkBudget(t, "POST /v1/recommend (cache miss)", got, allocBudgetRecommendPost)
	})

	t.Run("RecommendPostCacheHit", func(t *testing.T) {
		s := testServer(t, Config{ResultCacheSize: 4096, ResultCacheTTL: 3600e9})
		reqs, bodies := benchRequests(t, 1)
		got := measureAllocs(t, s.Handler(), reqs[0], bodies[0])
		checkBudget(t, "POST /v1/recommend (cache hit)", got, allocBudgetCacheHit)
	})

	t.Run("RecommendGet", func(t *testing.T) {
		s := testServer(t, Config{})
		req, err := http.NewRequest(http.MethodGet, "/v1/recommend?session_id=alloc-get&item_id=0", nil)
		if err != nil {
			t.Fatal(err)
		}
		got := measureAllocs(t, s.Handler(), req, nil)
		checkBudget(t, "GET /v1/recommend", got, allocBudgetRecommendGet)
	})

	t.Run("IdempotentReplay", func(t *testing.T) {
		s := testServer(t, Config{})
		reqs, bodies := benchRequests(t, 1)
		reqs[0].Header.Set(IdempotencyKeyHeader, "alloc-idem-key")
		got := measureAllocs(t, s.Handler(), reqs[0], bodies[0])
		checkBudget(t, "POST /v1/recommend (idempotent replay)", got, allocBudgetReplay)
	})

	t.Run("Track", func(t *testing.T) {
		s := testServer(t, Config{Quality: &quality.Options{Variant: "alloc"}})
		resp, err := s.Recommend(Request{SessionKey: "alloc-track", Item: popularItem(), Consent: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Items) == 0 {
			t.Fatal("no items to click")
		}
		payload, err := json.Marshal(TrackRequest{
			RecommendationID: resp.RecommendationID,
			Item:             resp.Items[0].Item,
		})
		if err != nil {
			t.Fatal(err)
		}
		body := &resettableBody{}
		body.Reset(payload)
		req, err := http.NewRequest(http.MethodPost, "/track", body)
		if err != nil {
			t.Fatal(err)
		}
		got := measureAllocs(t, s.Handler(), req, body)
		checkBudget(t, "POST /track", got, allocBudgetTrack)
	})
}
