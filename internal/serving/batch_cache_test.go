package serving

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// replaySessions drives the same deterministic click traffic through a
// server and returns every response, so two differently-configured servers
// can be compared request for request.
func replaySessions(t *testing.T, s *Server, seed int64, users, clicks int) []Response {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []Response
	for u := 0; u < users; u++ {
		key := fmt.Sprintf("user-%d", u)
		for c := 0; c < clicks; c++ {
			item := sessions.ItemID(rng.Intn(s.Index().NumItems()))
			resp, err := s.Recommend(Request{SessionKey: key, Item: item, Consent: true})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, resp)
		}
	}
	return out
}

// TestBatchedRecommendMatchesDefault is the serving-layer differential test:
// a batching server must answer the same traffic with exactly the responses
// of the default per-request server (batch lanes run the same kernel code in
// the same per-lane order).
func TestBatchedRecommendMatchesDefault(t *testing.T) {
	plain := testServer(t, Config{})
	batched := testServer(t, Config{BatchWindow: 200 * time.Microsecond, BatchMax: 8})
	want := replaySessions(t, plain, 5, 6, 8)
	got := replaySessions(t, batched, 5, 6, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batched server diverged from the per-request server on identical traffic")
	}
	if st := batched.Stats(); st.Batches == 0 || st.BatchedRequests == 0 {
		t.Errorf("batched server reports no batch activity: %+v", st)
	}
}

// TestResultCacheHitAndCopy: two sessions at the same point in the same
// click path share one cached prediction, the hit returns the same ranked
// items, and the cached copy is immune to the per-request in-place
// business-rule filtering (each caller gets a private slice).
func TestResultCacheHitAndCopy(t *testing.T) {
	s := testServer(t, Config{ResultCacheSize: 1024})
	first, err := s.Recommend(Request{SessionKey: "a", Item: popularItem(), Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Recommend(Request{SessionKey: "b", Item: popularItem(), Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Items, second.Items) {
		t.Fatal("cache hit returned different items than the miss that filled it")
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("cache counters after two identical-tail requests: misses=%d hits=%d (want 1/1)",
			st.CacheMisses, st.CacheHits)
	}
	if st.CacheEntries == 0 {
		t.Error("no live cache entries after a miss")
	}
}

// TestResultCacheTTLExpiry: past the TTL an entry must stop answering and
// the next identical request recomputes.
func TestResultCacheTTLExpiry(t *testing.T) {
	clk := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := testServer(t, Config{ResultCacheSize: 64, ResultCacheTTL: time.Second, Now: clk.Now})
	if _, err := s.Recommend(Request{SessionKey: "a", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, err := s.Recommend(Request{SessionKey: "b", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 0 || st.CacheMisses != 2 {
		t.Errorf("expired entry was served: hits=%d misses=%d (want 0/2)", st.CacheHits, st.CacheMisses)
	}
}

// TestResultCacheInvalidatedOnSwap pins rollover invalidation: an index swap
// must both purge the live entries and (via the generation-tagged keys) make
// any survivor unreachable, so the first post-swap request recomputes
// against the new index.
func TestResultCacheInvalidatedOnSwap(t *testing.T) {
	s := testServer(t, Config{ResultCacheSize: 64})
	if _, err := s.Recommend(Request{SessionKey: "a", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries == 0 {
		t.Fatal("no cache entry before the swap")
	}
	if err := s.SwapIndex(testIndex(t)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Errorf("swap left %d cache entries alive", st.CacheEntries)
	}
	if _, err := s.Recommend(Request{SessionKey: "b", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 0 || st.CacheMisses != 2 {
		t.Errorf("post-swap request did not recompute: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

// TestResultCacheSingleFlight: N concurrent requests with an identical
// session tail must resolve to exactly one kernel execution — one miss, the
// rest hits or coalesced waits — and all must agree on the answer.
func TestResultCacheSingleFlight(t *testing.T) {
	s := testServer(t, Config{ResultCacheSize: 1024})
	const n = 16
	responses := make([]Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Recommend(Request{SessionKey: fmt.Sprintf("u%d", i), Item: popularItem(), Consent: true})
			if err != nil {
				t.Error(err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(responses[i].Items, responses[0].Items) {
			t.Fatalf("concurrent identical requests disagree: %v vs %v", responses[i].Items, responses[0].Items)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("%d kernel executions for %d identical concurrent requests, want 1", st.CacheMisses, n)
	}
	if st.CacheHits+st.CacheCoalesced != n-1 {
		t.Errorf("hits=%d coalesced=%d, want them to cover the remaining %d requests",
			st.CacheHits, st.CacheCoalesced, n-1)
	}
}

// TestBatcherHammer floods a batching+caching server from many goroutines
// while the index is swapped underneath it — the -race test of the
// batch-lane isolation audit. Responses only need to be well-formed; the
// differential tests above pin exact content.
func TestBatcherHammer(t *testing.T) {
	s := testServer(t, Config{
		BatchWindow:     100 * time.Microsecond,
		BatchMax:        8,
		ResultCacheSize: 256,
	})
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.SwapIndex(testIndex(t)); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				key := fmt.Sprintf("w%d-u%d", seed, rng.Intn(6))
				resp, err := s.Recommend(Request{
					SessionKey: key,
					Item:       sessions.ItemID(rng.Intn(40)),
					Consent:    rng.Intn(8) != 0,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp.Items) > DefaultRecommendations {
					t.Errorf("response overflows the slot: %d items", len(resp.Items))
					return
				}
				for j := 1; j < len(resp.Items); j++ {
					if resp.Items[j].Score > resp.Items[j-1].Score {
						t.Error("response not in descending score order")
						return
					}
				}
			}
		}(int64(w))
	}
	close(stop)
	wg.Wait()
}

// TestBatchedFloat32Serving smoke-tests the float32 accumulator through the
// whole serving stack (batcher + cache): responses stay well-formed and
// deterministic across identical servers.
func TestBatchedFloat32Serving(t *testing.T) {
	cfg := Config{
		Params:          core.Params{M: 100, K: 50, Float32Scores: true},
		BatchWindow:     100 * time.Microsecond,
		ResultCacheSize: 128,
	}
	a := testServer(t, cfg)
	b := testServer(t, cfg)
	got := replaySessions(t, a, 9, 4, 6)
	want := replaySessions(t, b, 9, 4, 6)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("two identical float32 servers diverged on identical traffic")
	}
}
