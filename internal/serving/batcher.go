package serving

import (
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// DefaultBatchMax bounds a gathered batch when Config.BatchMax is zero.
const DefaultBatchMax = 16

// batchJob is one request's slot in a gathered batch. items, genSeq, wait
// and batchSize are written by the batch runner before it signals done and
// are owned by the requester afterwards, until the requester recycles the
// job with putBatchJob.
//
// Jobs are pooled: done is a single-slot buffered channel reused across
// requests (the runner sends one token per dispatch instead of closing), and
// items is a reusable buffer the requester must copy out of before recycling.
type batchJob struct {
	predictFrom []sessions.ItemID
	slot        int
	done        chan struct{}
	// enqueued is stamped at submit; the runner derives the queue wait from
	// it so traces can bill wait-window time to batch_wait, not score.
	enqueued  time.Time
	items     []core.ScoredItem
	genSeq    uint64
	wait      time.Duration
	batchSize int
}

var batchJobPool = sync.Pool{New: func() any {
	return &batchJob{done: make(chan struct{}, 1)}
}}

func getBatchJob(predictFrom []sessions.ItemID, slot int) *batchJob {
	job := batchJobPool.Get().(*batchJob)
	job.predictFrom = predictFrom
	job.slot = slot
	return job
}

// putBatchJob recycles a completed job. The caller must have received the
// done token and copied items out; predictFrom is dropped so the pool does
// not pin a request scratch buffer.
func putBatchJob(job *batchJob) {
	job.predictFrom = nil
	batchJobPool.Put(job)
}

// batcher gathers concurrent recommendation requests into shared
// BatchRecommend executions: the first request of a batch opens a wait
// window, every request arriving within it (up to max) joins, and the batch
// runs the kernel once with shared posting walks. The window trades a bounded
// per-request delay for cross-request memory locality; at low concurrency
// batches degenerate to size 1 and only the window delay remains, which is
// why batching is opt-in (Config.BatchWindow).
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	jobs    chan *batchJob
	stop    chan struct{}
	stopped sync.WaitGroup

	depth           atomic.Int64 // jobs submitted but not yet dispatched
	batches         atomic.Uint64
	batchedRequests atomic.Uint64
}

func newBatcher(s *Server, window time.Duration, max int) *batcher {
	if max <= 0 {
		max = DefaultBatchMax
	}
	b := &batcher{
		s:      s,
		window: window,
		max:    max,
		jobs:   make(chan *batchJob, 4*max),
		stop:   make(chan struct{}),
	}
	b.stopped.Add(1)
	go b.run()
	return b
}

// submit enqueues a job; the caller then waits on job.done. The jobs channel
// is deep enough that submission virtually never blocks, and when it does the
// collector is guaranteed to be draining.
func (b *batcher) submit(job *batchJob) {
	job.enqueued = time.Now()
	b.depth.Add(1)
	b.jobs <- job
}

// run is the collector loop: block for the first job of a batch, gather
// joiners for one wait window (or until the batch is full), dispatch, repeat.
// Dispatch happens on a fresh goroutine so gathering the next batch overlaps
// the current batch's kernel execution.
func (b *batcher) run() {
	defer b.stopped.Done()
	for {
		var first *batchJob
		select {
		case first = <-b.jobs:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []*batchJob{first}
		deadline := time.NewTimer(b.window)
	gather:
		for len(batch) < b.max {
			select {
			case job := <-b.jobs:
				batch = append(batch, job)
			case <-deadline.C:
				break gather
			case <-b.stop:
				break gather
			}
		}
		deadline.Stop()
		b.depth.Add(-int64(len(batch)))
		b.batches.Add(1)
		b.batchedRequests.Add(uint64(len(batch)))
		go b.s.runBatch(batch)
		select {
		case <-b.stop:
			b.drain()
			return
		default:
		}
	}
}

// drain flushes jobs that were queued when the batcher stopped, so no
// requester is left waiting on a done channel that would never close.
func (b *batcher) drain() {
	for {
		select {
		case job := <-b.jobs:
			b.depth.Add(-1)
			b.s.runBatch([]*batchJob{job})
		default:
			return
		}
	}
}

// close stops the collector and flushes queued jobs. In-flight dispatched
// batches complete on their own goroutines.
func (b *batcher) close() {
	close(b.stop)
	b.stopped.Wait()
}

// batchQueriesPool recycles the per-batch query-slice header so dispatching
// a batch does not allocate. Entries are cleared before pooling: a retained
// reference would pin a requester's scratch session buffer.
var batchQueriesPool = sync.Pool{New: func() any {
	return new([][]sessions.ItemID)
}}

// runBatch executes one gathered batch against the active index generation
// and hands each requester a private copy of its result (in the job's
// reusable buffer, valid until the requester recycles the job).
func (s *Server) runBatch(jobs []*batchJob) {
	// Queue wait is measured at dispatch, before the kernel runs: the time a
	// request spent gathering joiners (plus any channel backlog). The rolling
	// high-watermark feeds the health signal; the per-job value lets the
	// requester's span split batch_wait out of score.
	dispatched := time.Now()
	for _, job := range jobs {
		job.wait = dispatched.Sub(job.enqueued)
		job.batchSize = len(jobs)
		if s.batchWaitMax != nil && job.wait > 0 {
			s.batchWaitMax.Observe(uint64(job.wait))
		}
	}
	gen := s.acquireGen()
	br := gen.batchPool.Get().(*core.BatchRecommender)
	qp := batchQueriesPool.Get().(*[][]sessions.ItemID)
	queries := (*qp)[:0]
	for _, job := range jobs {
		queries = append(queries, job.predictFrom)
	}
	// The over-fetch slot is a server constant, identical across jobs.
	results := br.BatchRecommend(queries, jobs[0].slot)
	for i, job := range jobs {
		job.items = append(job.items[:0], results[i]...)
		job.genSeq = gen.seq
		job.done <- struct{}{}
	}
	gen.batchPool.Put(br)
	gen.release()
	clear(queries)
	*qp = queries
	batchQueriesPool.Put(qp)
}
