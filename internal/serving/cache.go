package serving

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"serenade/internal/core"
	"serenade/internal/sessions"
)

// DefaultResultCacheTTL bounds how long a cached prediction may be replayed
// when Config.ResultCacheTTL is zero. Short on purpose: the cache exists to
// absorb duplicate bursts (flash sales, bot refreshes), not to serve stale
// rankings all day.
const DefaultResultCacheTTL = 5 * time.Second

// cacheShardCount stripes the cache so concurrent requests on different keys
// never contend on one mutex. Power of two; shard selection uses the key
// hash's low bits.
const cacheShardCount = 16

// resultCache is a single-flight TTL cache over raw (pre-business-rules)
// predictions, keyed on (kernel-truncated session tail, over-fetch slot,
// index generation). Duplicate-burst traffic — many sessions at the same
// point in the same click path — collapses onto one kernel execution: the
// first request becomes the leader and computes, concurrent requests for the
// same key coalesce on the leader's pending entry, and later requests within
// the TTL hit the completed entry. Keys embed the generation sequence number,
// so entries of a replaced index can never be served after a rollover (the
// swap also purges eagerly to release the memory).
//
// Cached values are pre-business-rules on purpose: catalog flags and the
// currently displayed item vary per request, so rules are applied by each
// caller to a private copy.
type resultCache struct {
	ttl        time.Duration
	maxEntries int
	now        func() time.Time

	shards [cacheShardCount]cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

// cacheEntry is one single-flight slot. done closes when the leader finishes;
// items and expires are written exactly once, before that close, and are
// immutable afterwards. A nil items after done closes marks an abandoned
// entry (the leader failed before filling): waiters fall back to computing
// themselves.
type cacheEntry struct {
	done    chan struct{}
	items   []core.ScoredItem
	expires time.Time
}

func newResultCache(maxEntries int, ttl time.Duration, now func() time.Time) *resultCache {
	if ttl <= 0 {
		ttl = DefaultResultCacheTTL
	}
	c := &resultCache{ttl: ttl, maxEntries: maxEntries, now: now}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
	}
	return c
}

// appendCacheKey encodes (generation seq, slot, session tail) as the cache's
// map key, appending to dst so the per-request key builds in a reused
// scratch buffer. The full tail is embedded — not a digest — so two
// different sessions can never alias one entry. The bytes only become a
// string (one retained allocation) when a leader inserts the entry; lookups
// use Go's allocation-free map[string] access on the byte form.
func appendCacheKey(dst []byte, tail []sessions.ItemID, slot int, genSeq uint64) []byte {
	var tmp [8]byte
	le := binary.LittleEndian
	le.PutUint64(tmp[:], genSeq)
	dst = append(dst, tmp[:]...)
	le.PutUint32(tmp[:4], uint32(slot))
	dst = append(dst, tmp[:4]...)
	for _, it := range tail {
		le.PutUint32(tmp[:4], uint32(it))
		dst = append(dst, tmp[:4]...)
	}
	return dst
}

// shardOf picks the stripe for a key (FNV-1a over the key bytes).
func (c *resultCache) shardOf(key []byte) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&(cacheShardCount-1)]
}

// cacheOutcome reports how acquire resolved a lookup; it doubles as the
// span-annotation source so traces say how each request met the cache.
type cacheOutcome uint8

const (
	cacheLead cacheOutcome = iota // caller is the leader and must fill/abandon
	cacheHit                      // completed entry, served from memory
	cacheWait                     // pending entry, coalesced onto the leader
)

// acquire looks the key up and returns the entry plus the outcome. Leaders
// MUST complete the entry with fill (or abandon); every other caller waits on
// entry.done and then reads entry.items. Hit, miss and coalesced counters are
// maintained here.
func (c *resultCache) acquire(key []byte) (*cacheEntry, cacheOutcome) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[string(key)]; ok { // no-alloc map access
		select {
		case <-e.done:
			if c.now().Before(e.expires) && e.items != nil {
				c.hits.Add(1)
				return e, cacheHit
			}
			// Expired or abandoned: this caller becomes the new leader.
		default:
			c.coalesced.Add(1)
			return e, cacheWait
		}
	}
	c.misses.Add(1)
	if len(sh.entries) >= c.maxEntries/cacheShardCount {
		c.evictLocked(sh)
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.entries[string(key)] = e // the one place the key bytes become a string
	return e, cacheLead
}

// evictLocked frees room in a full shard: expired completed entries first,
// then arbitrary completed entries (map order) until the shard is below its
// bound. Pending entries are never evicted — their leaders hold the only
// reference waiters coalesce on.
func (c *resultCache) evictLocked(sh *cacheShard) {
	limit := c.maxEntries / cacheShardCount
	now := c.now()
	for key, e := range sh.entries {
		select {
		case <-e.done:
			if !now.Before(e.expires) {
				delete(sh.entries, key)
				c.evictions.Add(1)
			}
		default:
		}
	}
	for key, e := range sh.entries {
		if len(sh.entries) < limit {
			break
		}
		select {
		case <-e.done:
			delete(sh.entries, key)
			c.evictions.Add(1)
		default:
		}
	}
}

// fill completes a leader's entry with its computed prediction (a private
// copy, so callers may mutate what they were handed) and publishes it to
// waiters. keep=false — the prediction was computed against a different index
// generation than the key names (a rollover raced the request) — still
// publishes to the coalesced waiters but drops the entry instead of caching
// it.
func (c *resultCache) fill(key []byte, e *cacheEntry, items []core.ScoredItem, keep bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e.items = append(make([]core.ScoredItem, 0, len(items)), items...)
	e.expires = c.now().Add(c.ttl)
	close(e.done)
	if !keep && sh.entries[string(key)] == e {
		delete(sh.entries, string(key))
	}
	sh.mu.Unlock()
}

// abandon releases a leader's entry without a value (the compute path
// failed): waiters see nil items and compute for themselves.
func (c *resultCache) abandon(key []byte, e *cacheEntry) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	close(e.done)
	if sh.entries[string(key)] == e {
		delete(sh.entries, string(key))
	}
	sh.mu.Unlock()
}

// purge drops every completed entry — the eager half of rollover
// invalidation (the generation-tagged keys are the correctness half).
func (c *resultCache) purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			select {
			case <-e.done:
				delete(sh.entries, key)
			default:
			}
		}
		sh.mu.Unlock()
	}
}

// len reports the live entry count across shards.
func (c *resultCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
