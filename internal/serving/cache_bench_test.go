package serving

import (
	"fmt"
	"testing"
	"time"

	"serenade/internal/sessions"
)

// Result-cache hot-path benchmarks. The hit benchmark replays one session
// tail so every request after the first is answered from the completed
// entry; the miss benchmark forces a distinct key per request so every op
// pays a kernel execution plus the fill. The spread between the two is the
// cache's headline win on duplicate-burst traffic.

func benchWarmRequest(b *testing.B, s *Server, key string, item sessions.ItemID) {
	b.Helper()
	if _, err := s.Recommend(Request{SessionKey: key, Item: item, Consent: true}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRecommendCacheHit(b *testing.B) {
	s := testServer(b, Config{ResultCacheSize: 4096})
	benchWarmRequest(b, s, "warm", popularItem())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct session keys, identical click tail: every op is a hit.
		if _, err := s.Recommend(Request{
			SessionKey: fmt.Sprintf("u%d", i),
			Item:       popularItem(),
			Consent:    true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecommendCacheMiss(b *testing.B) {
	// A 1ns TTL expires every entry before it can be reused, so every op
	// pays the full miss path: kernel execution plus the single-flight fill.
	s := testServer(b, Config{ResultCacheSize: 4096, ResultCacheTTL: time.Nanosecond})
	numItems := s.Index().NumItems()
	benchWarmRequest(b, s, "warm", popularItem())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Recommend(Request{
			SessionKey: fmt.Sprintf("u%d", i),
			Item:       sessions.ItemID(i % numItems),
			Consent:    true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendNoCache is the baseline the hit/miss pair is read
// against: the default per-request path with neither cache nor batcher.
func BenchmarkRecommendNoCache(b *testing.B) {
	s := testServer(b, Config{})
	numItems := s.Index().NumItems()
	benchWarmRequest(b, s, "warm", popularItem())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Recommend(Request{
			SessionKey: fmt.Sprintf("u%d", i),
			Item:       sessions.ItemID(i % numItems),
			Consent:    true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
