package serving

import (
	"sync"

	"serenade/internal/sessions"
)

// Catalog holds the item flags consulted by the business rules of §4.2:
// unavailable products must never be recommended, and adult products are
// filtered from the product-detail-page slot. The catalog is mutable at
// runtime (availability changes continuously on a live platform) and safe
// for concurrent use.
type Catalog struct {
	mu          sync.RWMutex
	unavailable map[sessions.ItemID]struct{}
	adult       map[sessions.ItemID]struct{}
}

// NewCatalog returns an empty catalog in which every item is recommendable.
func NewCatalog() *Catalog {
	return &Catalog{
		unavailable: make(map[sessions.ItemID]struct{}),
		adult:       make(map[sessions.ItemID]struct{}),
	}
}

// SetAvailable marks an item as in or out of stock.
func (c *Catalog) SetAvailable(item sessions.ItemID, available bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if available {
		delete(c.unavailable, item)
	} else {
		c.unavailable[item] = struct{}{}
	}
}

// SetAdult flags an item as adult-only.
func (c *Catalog) SetAdult(item sessions.ItemID, adult bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if adult {
		c.adult[item] = struct{}{}
	} else {
		delete(c.adult, item)
	}
}

// Recommendable reports whether the item may appear in the recommendation
// slot.
func (c *Catalog) Recommendable(item sessions.ItemID) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.unavailable[item]; ok {
		return false
	}
	_, ok := c.adult[item]
	return !ok
}
