package serving

import (
	"fmt"
	"math"

	"serenade/internal/core"
	"serenade/internal/fastjson"
	"serenade/internal/sessions"
)

// This file holds the hand-rolled wire codecs for the four fixed HTTP edge
// schemas. Each Encode* is byte-identical to json.Marshal for every value
// the server can produce, and each Decode* accepts exactly the documents the
// handler's previous json.Decoder accepted with the same resulting struct —
// server-side decodes are strict (DisallowUnknownFields), client-side
// decodes are lenient (unknown fields skipped). The contract is enforced by
// codec_test.go and FuzzFastJSON. Exported so the client package drives the
// same code, keeping loadgen's measurements about the server, not loadgen.

// foldEq reports whether the decoded key matches the lower-case field name
// under encoding/json's ASCII-case-insensitive matching (Go 1.21+ folds
// ASCII letters only; non-ASCII bytes must match exactly).
func foldEq(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(key); i++ {
		a := key[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if a != name[i] {
			return false
		}
	}
	return true
}

func errUnknownField(key []byte) error {
	return fmt.Errorf("json: unknown field %q", key)
}

// readItemID reads a uint32-bounded item id, mirroring encoding/json's
// overflow rejection for uint32 fields.
func readItemID(d *fastjson.Dec) (sessions.ItemID, error) {
	v, err := d.ReadUint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("json: number %d overflows item id", v)
	}
	return sessions.ItemID(v), nil
}

// endObjectField consumes the "," or "}" after an object member. done is
// true at the closing brace.
func endObjectField(d *fastjson.Dec) (done bool, err error) {
	switch c := d.Peek(); c {
	case ',':
		d.TryConsume(',')
		return false, nil
	case '}':
		d.TryConsume('}')
		return true, nil
	default:
		return false, fmt.Errorf("json: invalid character %q after object value", c)
	}
}

// EncodeRequest appends the json.Marshal form of req.
func EncodeRequest(dst []byte, req *Request) []byte {
	dst = append(dst, `{"session_id":`...)
	dst = fastjson.AppendString(dst, req.SessionKey)
	dst = append(dst, `,"item_id":`...)
	dst = fastjson.AppendItemID(dst, uint32(req.Item))
	dst = append(dst, `,"consent":`...)
	dst = fastjson.AppendBool(dst, req.Consent)
	return append(dst, '}')
}

// DecodeRequest parses data into req with json.Decoder semantics and
// DisallowUnknownFields, like handleRecommendPost's previous decoder:
// null is a no-op, keys match ASCII-case-insensitively, trailing data after
// the first value is ignored.
func DecodeRequest(d *fastjson.Dec, data []byte, req *Request) error {
	d.Init(data)
	if d.TryNull() {
		return nil
	}
	if err := d.Expect('{'); err != nil {
		return err
	}
	if d.TryConsume('}') {
		return nil
	}
	for {
		key, err := d.ReadString()
		if err != nil {
			return err
		}
		var known string
		switch {
		case foldEq(key, "session_id"):
			known = "session_id"
		case foldEq(key, "item_id"):
			known = "item_id"
		case foldEq(key, "consent"):
			known = "consent"
		default:
			return errUnknownField(key)
		}
		if err := d.Expect(':'); err != nil {
			return err
		}
		if !d.TryNull() {
			switch known {
			case "session_id":
				s, err := d.ReadString()
				if err != nil {
					return err
				}
				req.SessionKey = string(s)
			case "item_id":
				if req.Item, err = readItemID(d); err != nil {
					return err
				}
			case "consent":
				if req.Consent, err = d.ReadBool(); err != nil {
					return err
				}
			}
		}
		done, err := endObjectField(d)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// EncodeTrackRequest appends the json.Marshal form of req.
func EncodeTrackRequest(dst []byte, req *TrackRequest) []byte {
	dst = append(dst, `{"recommendation_id":`...)
	dst = fastjson.AppendUint(dst, req.RecommendationID)
	dst = append(dst, `,"item_id":`...)
	dst = fastjson.AppendItemID(dst, uint32(req.Item))
	if req.Event != "" {
		dst = append(dst, `,"event":`...)
		dst = fastjson.AppendString(dst, req.Event)
	}
	return append(dst, '}')
}

// DecodeTrackRequest parses data into req with strict handleTrack semantics
// (json.Decoder + DisallowUnknownFields).
func DecodeTrackRequest(d *fastjson.Dec, data []byte, req *TrackRequest) error {
	d.Init(data)
	if d.TryNull() {
		return nil
	}
	if err := d.Expect('{'); err != nil {
		return err
	}
	if d.TryConsume('}') {
		return nil
	}
	for {
		key, err := d.ReadString()
		if err != nil {
			return err
		}
		var known string
		switch {
		case foldEq(key, "recommendation_id"):
			known = "recommendation_id"
		case foldEq(key, "item_id"):
			known = "item_id"
		case foldEq(key, "event"):
			known = "event"
		default:
			return errUnknownField(key)
		}
		if err := d.Expect(':'); err != nil {
			return err
		}
		if !d.TryNull() {
			switch known {
			case "recommendation_id":
				if req.RecommendationID, err = d.ReadUint(); err != nil {
					return err
				}
			case "item_id":
				if req.Item, err = readItemID(d); err != nil {
					return err
				}
			case "event":
				s, err := d.ReadString()
				if err != nil {
					return err
				}
				req.Event = string(s)
			}
		}
		done, err := endObjectField(d)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// EncodeResponse appends the json.Marshal form of resp. core.ScoredItem has
// no json tags, so items marshal with Go field names; a nil slice encodes as
// null, like encoding/json.
func EncodeResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, `{"items":`...)
	if resp.Items == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range resp.Items {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"Item":`...)
			dst = fastjson.AppendItemID(dst, uint32(resp.Items[i].Item))
			dst = append(dst, `,"Score":`...)
			dst = fastjson.AppendFloat(dst, resp.Items[i].Score)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"session_length":`...)
	dst = fastjson.AppendInt(dst, int64(resp.SessionLength))
	if resp.RecommendationID != 0 {
		dst = append(dst, `,"recommendation_id":`...)
		dst = fastjson.AppendUint(dst, resp.RecommendationID)
	}
	return append(dst, '}')
}

// DecodeResponse parses data into resp with lenient client semantics (the
// client's json.Decoder does not disallow unknown fields). Slice reuse
// mirrors encoding/json's d.array: existing elements are decoded into
// without zeroing, the backing array is reused across duplicate keys, and
// an empty JSON array yields an empty non-nil slice.
func DecodeResponse(d *fastjson.Dec, data []byte, resp *Response) error {
	d.Init(data)
	if d.TryNull() {
		return nil
	}
	if err := d.Expect('{'); err != nil {
		return err
	}
	if d.TryConsume('}') {
		return nil
	}
	for {
		key, err := d.ReadString()
		if err != nil {
			return err
		}
		known := ""
		switch {
		case foldEq(key, "items"):
			known = "items"
		case foldEq(key, "session_length"):
			known = "session_length"
		case foldEq(key, "recommendation_id"):
			known = "recommendation_id"
		}
		if err := d.Expect(':'); err != nil {
			return err
		}
		switch known {
		case "items":
			if !d.TryNull() {
				if err := decodeItems(d, &resp.Items); err != nil {
					return err
				}
			}
		case "session_length":
			if !d.TryNull() {
				v, err := d.ReadInt()
				if err != nil {
					return err
				}
				resp.SessionLength = int(v)
			}
		case "recommendation_id":
			if !d.TryNull() {
				if resp.RecommendationID, err = d.ReadUint(); err != nil {
					return err
				}
			}
		default:
			if err := d.SkipValue(); err != nil {
				return err
			}
		}
		done, err := endObjectField(d)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// decodeItems decodes a JSON array into items, reusing the slice the way
// encoding/json does: elements within len are decoded into in place (absent
// fields keep old values), elements within cap are re-exposed via the
// equivalent of reflect.SetLen, and only growth past cap allocates.
func decodeItems(d *fastjson.Dec, items *[]core.ScoredItem) error {
	if err := d.Expect('['); err != nil {
		return err
	}
	out := *items
	n := 0
	if d.TryConsume(']') {
		if out == nil {
			out = []core.ScoredItem{}
		}
		*items = out[:0]
		return nil
	}
	for {
		if n >= len(out) {
			if n < cap(out) {
				// Re-expose capacity, zeroing the element first the way
				// encoding/json does when it lengthens a reused slice.
				out = out[:n+1]
				out[n] = core.ScoredItem{}
			} else {
				out = append(out, core.ScoredItem{})
			}
		}
		if !d.TryNull() {
			if err := decodeScoredItem(d, &out[n]); err != nil {
				return err
			}
		}
		n++
		switch c := d.Peek(); c {
		case ',':
			d.TryConsume(',')
		case ']':
			d.TryConsume(']')
			*items = out[:n]
			return nil
		default:
			return fmt.Errorf("json: invalid character %q after array element", c)
		}
	}
}

// decodeScoredItem decodes one item object leniently. core.ScoredItem has no
// json tags, so keys match the Go field names (ASCII-case-insensitively).
func decodeScoredItem(d *fastjson.Dec, it *core.ScoredItem) error {
	if err := d.Expect('{'); err != nil {
		return err
	}
	if d.TryConsume('}') {
		return nil
	}
	for {
		key, err := d.ReadString()
		if err != nil {
			return err
		}
		known := ""
		switch {
		case foldEq(key, "item"):
			known = "item"
		case foldEq(key, "score"):
			known = "score"
		}
		if err := d.Expect(':'); err != nil {
			return err
		}
		switch known {
		case "item":
			if !d.TryNull() {
				if it.Item, err = readItemID(d); err != nil {
					return err
				}
			}
		case "score":
			if !d.TryNull() {
				if it.Score, err = d.ReadFloat(); err != nil {
					return err
				}
			}
		default:
			if err := d.SkipValue(); err != nil {
				return err
			}
		}
		done, err := endObjectField(d)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// EncodeTrackResponse appends the json.Marshal form of resp.
func EncodeTrackResponse(dst []byte, resp *TrackResponse) []byte {
	dst = append(dst, `{"outcome":`...)
	dst = fastjson.AppendString(dst, resp.Outcome)
	if resp.Rank != 0 {
		dst = append(dst, `,"rank":`...)
		dst = fastjson.AppendInt(dst, int64(resp.Rank))
	}
	if resp.Variant != "" {
		dst = append(dst, `,"variant":`...)
		dst = fastjson.AppendString(dst, resp.Variant)
	}
	if resp.Pipeline != "" {
		dst = append(dst, `,"pipeline":`...)
		dst = fastjson.AppendString(dst, resp.Pipeline)
	}
	return append(dst, '}')
}

// DecodeTrackResponse parses data into resp with lenient client semantics.
func DecodeTrackResponse(d *fastjson.Dec, data []byte, resp *TrackResponse) error {
	d.Init(data)
	if d.TryNull() {
		return nil
	}
	if err := d.Expect('{'); err != nil {
		return err
	}
	if d.TryConsume('}') {
		return nil
	}
	for {
		key, err := d.ReadString()
		if err != nil {
			return err
		}
		known := ""
		switch {
		case foldEq(key, "outcome"):
			known = "outcome"
		case foldEq(key, "rank"):
			known = "rank"
		case foldEq(key, "variant"):
			known = "variant"
		case foldEq(key, "pipeline"):
			known = "pipeline"
		}
		if err := d.Expect(':'); err != nil {
			return err
		}
		switch known {
		case "outcome", "variant", "pipeline":
			if !d.TryNull() {
				s, err := d.ReadString()
				if err != nil {
					return err
				}
				switch known {
				case "outcome":
					resp.Outcome = string(s)
				case "variant":
					resp.Variant = string(s)
				case "pipeline":
					resp.Pipeline = string(s)
				}
			}
		case "rank":
			if !d.TryNull() {
				v, err := d.ReadInt()
				if err != nil {
					return err
				}
				resp.Rank = int(v)
			}
		default:
			if err := d.SkipValue(); err != nil {
				return err
			}
		}
		done, err := endObjectField(d)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}
