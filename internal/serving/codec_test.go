package serving

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"serenade/internal/core"
	"serenade/internal/fastjson"
)

var codecRequests = []Request{
	{},
	{SessionKey: "s1", Item: 42, Consent: true},
	{SessionKey: "über-session \"quoted\" <tag>&", Item: 4095, Consent: false},
	{SessionKey: "ctl\x01\ttab", Item: 1<<32 - 1, Consent: true},
	{SessionKey: "bad\xffutf8", Item: 4096},
}

var codecTrackRequests = []TrackRequest{
	{},
	{RecommendationID: 1, Item: 2},
	{RecommendationID: 1 << 60, Item: 99, Event: "conversion"},
	{RecommendationID: 7, Item: 0, Event: "click"},
}

var codecResponses = []Response{
	{},
	{Items: []core.ScoredItem{}, SessionLength: 1},
	{Items: []core.ScoredItem{{Item: 3, Score: 0.5}}, SessionLength: 2, RecommendationID: 9},
	{Items: []core.ScoredItem{{Item: 0, Score: 0}, {Item: 4097, Score: 0.265511}, {Item: 1<<32 - 1, Score: 1e-9}}, SessionLength: -3},
	{Items: nil, SessionLength: 100, RecommendationID: 1<<64 - 1},
}

var codecTrackResponses = []TrackResponse{
	{},
	{Outcome: "attributed", Rank: 3, Variant: "b", Pipeline: "knn"},
	{Outcome: "off<list>", Rank: -1},
	{Outcome: "dup", Variant: "a&b"},
}

// TestEncodeByteCompat proves every encoder matches json.Marshal byte for
// byte on representative values.
func TestEncodeByteCompat(t *testing.T) {
	for _, v := range codecRequests {
		want, _ := json.Marshal(v)
		if got := EncodeRequest(nil, &v); !bytes.Equal(got, want) {
			t.Errorf("EncodeRequest(%+v)\n got %s\nwant %s", v, got, want)
		}
	}
	for _, v := range codecTrackRequests {
		want, _ := json.Marshal(v)
		if got := EncodeTrackRequest(nil, &v); !bytes.Equal(got, want) {
			t.Errorf("EncodeTrackRequest(%+v)\n got %s\nwant %s", v, got, want)
		}
	}
	for _, v := range codecResponses {
		want, _ := json.Marshal(v)
		if got := EncodeResponse(nil, &v); !bytes.Equal(got, want) {
			t.Errorf("EncodeResponse(%+v)\n got %s\nwant %s", v, got, want)
		}
	}
	for _, v := range codecTrackResponses {
		want, _ := json.Marshal(v)
		if got := EncodeTrackResponse(nil, &v); !bytes.Equal(got, want) {
			t.Errorf("EncodeTrackResponse(%+v)\n got %s\nwant %s", v, got, want)
		}
	}
}

// strictRefDecode is the reference the server handlers used: a json.Decoder
// with DisallowUnknownFields.
func strictRefDecode(data []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(out)
}

// lenientRefDecode is the reference the client used: a plain json.Decoder.
func lenientRefDecode(data []byte, out any) error {
	return json.NewDecoder(bytes.NewReader(data)).Decode(out)
}

// decodeInputs is a battery of documents exercising every semantic corner:
// null no-ops, case folding, duplicate keys, unknown fields, type errors,
// overflow, trailing data, escapes in keys and values.
var decodeInputs = []string{
	``, ` `, `null`, `{}`, `[]`, `"s"`, `0`, `true`,
	`{"session_id":"a","item_id":1,"consent":true}`,
	`{"SESSION_ID":"a","Item_Id":2,"CONSENT":false}`,
	`{"session_id":null,"item_id":null,"consent":null}`,
	`{"session_id":"a","session_id":"b"}`,
	`{"session_id":"esc-key"}`,
	`{"session_id":"😀 emoji"}`,
	`{"item_id":4294967295}`,
	`{"item_id":4294967296}`,
	`{"item_id":-1}`,
	`{"item_id":1.5}`,
	`{"item_id":1e2}`,
	`{"item_id":"5"}`,
	`{"consent":1}`,
	`{"unknown":1}`,
	`{"session_id":"a"} trailing garbage`,
	`{"session_id":"a",}`,
	`{"session_id":}`,
	`{"session_id" "a"}`,
	`{"recommendation_id":18446744073709551615,"item_id":3,"event":"click"}`,
	`{"recommendation_id":18446744073709551616}`,
	`{"event":""}`,
	`{"items":null,"session_length":5}`,
	`{"items":[],"session_length":0}`,
	`{"items":[{"Item":1,"Score":0.5}],"session_length":2,"recommendation_id":7}`,
	`{"items":[{"item":1,"score":2},{"ITEM":3}],"session_length":-2}`,
	`{"items":[{"Item":1,"Score":0.5,"Extra":[1,{"a":"b"}]}]}`,
	`{"items":[null,{"Item":2}]}`,
	`{"items":[{"Item":7,"Score":1}],"items":[{}]}`,
	`{"items":[{"Item":7,"Score":1}],"items":[],"items":[{}]}`,
	`{"items":[{"Item":7,"Score":1},{"Item":8,"Score":2}],"items":[{"Score":9}]}`,
	`{"items":[5]}`,
	`{"items":{}}`,
	`{"items":[{"Item":1}`,
	`{"session_length":1.0}`,
	`{"session_length":-9223372036854775808}`,
	`{"session_length":-9223372036854775809}`,
	`{"recommendation_id":1e3}`,
	`{"outcome":"attributed","rank":2,"variant":"a","pipeline":"knn"}`,
	`{"outcome":null,"rank":-5,"other":{"deep":[true,null]}}`,
	`{"rank":"3"}`,
	"{\"session_id\":\"bad \xff utf8\"}",
	"\t{\"consent\" : true }\n",
}

func TestDecodeRequestDifferential(t *testing.T) {
	var d fastjson.Dec
	for _, in := range decodeInputs {
		var want Request
		wantErr := strictRefDecode([]byte(in), &want)
		var got Request
		gotErr := DecodeRequest(&d, []byte(in), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("DecodeRequest(%q): err = %v, reference err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("DecodeRequest(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestDecodeTrackRequestDifferential(t *testing.T) {
	var d fastjson.Dec
	for _, in := range decodeInputs {
		var want TrackRequest
		wantErr := strictRefDecode([]byte(in), &want)
		var got TrackRequest
		gotErr := DecodeTrackRequest(&d, []byte(in), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("DecodeTrackRequest(%q): err = %v, reference err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("DecodeTrackRequest(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestDecodeResponseDifferential(t *testing.T) {
	var d fastjson.Dec
	for _, in := range decodeInputs {
		var want Response
		wantErr := lenientRefDecode([]byte(in), &want)
		var got Response
		gotErr := DecodeResponse(&d, []byte(in), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("DecodeResponse(%q): err = %v, reference err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("DecodeResponse(%q) = %+v, want %+v", in, got, want)
		}
		if (got.Items == nil) != (want.Items == nil) {
			t.Errorf("DecodeResponse(%q): items nil-ness %v vs %v", in, got.Items == nil, want.Items == nil)
		}
	}
}

func TestDecodeTrackResponseDifferential(t *testing.T) {
	var d fastjson.Dec
	for _, in := range decodeInputs {
		var want TrackResponse
		wantErr := lenientRefDecode([]byte(in), &want)
		var got TrackResponse
		gotErr := DecodeTrackResponse(&d, []byte(in), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("DecodeTrackResponse(%q): err = %v, reference err = %v", in, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("DecodeTrackResponse(%q) = %+v, want %+v", in, got, want)
		}
	}
}

// TestDecodeResponseSliceReuse pins the capacity-reuse contract the pooled
// scratch depends on: a second decode into the same Response reuses the item
// backing array.
func TestDecodeResponseSliceReuse(t *testing.T) {
	var d fastjson.Dec
	var resp Response
	if err := DecodeResponse(&d, []byte(`{"items":[{"Item":1,"Score":1},{"Item":2,"Score":2}]}`), &resp); err != nil {
		t.Fatal(err)
	}
	first := &resp.Items[0]
	if err := DecodeResponse(&d, []byte(`{"items":[{"Item":9,"Score":9}]}`), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0].Item != 9 {
		t.Fatalf("items = %+v", resp.Items)
	}
	if &resp.Items[0] != first {
		t.Fatal("backing array was reallocated")
	}
}

// FuzzFastJSON is the differential fuzz target of the codec compatibility
// contract: for arbitrary bytes, every schema decode must agree with its
// encoding/json reference (strict for server-side schemas, lenient for
// client-side ones) on both error presence and decoded value, and every
// successfully decoded value must re-encode byte-identically to
// json.Marshal.
func FuzzFastJSON(f *testing.F) {
	f.Add([]byte(`{"session_id":"s1","item_id":42,"consent":true}`))
	f.Add([]byte(`{"SESSION_ID":"fold","Item_Id":2,"consent":null}`))
	f.Add([]byte(`{"recommendation_id":123456789,"item_id":7,"event":"conversion"}`))
	f.Add([]byte(`{"items":[{"Item":3,"Score":0.5},{"Item":4096,"Score":1e-9}],"session_length":2,"recommendation_id":9}`))
	f.Add([]byte(`{"items":[null,{}],"items":[],"unknown":[1,{"a":"b"},"\ud800"]}`))
	f.Add([]byte(`{"outcome":"attributed","rank":3,"variant":"b","pipeline":"knn+popular"}`))
	f.Add([]byte(`{"session_id":"😀  ","item_id":4294967295}`))
	f.Add([]byte(`{"item_id":4294967296}`))
	f.Add([]byte(`{"session_length":-1,"items":[{"Item":1,"Score":2},{"Item":3}],"items":[{"Score":9}]}`))
	f.Add([]byte("{\"session_id\":\"raw \xff bytes\"}"))
	f.Add([]byte(`[{"not":"an object"}]`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d fastjson.Dec

		{
			var want, got Request
			wantErr := strictRefDecode(data, &want)
			gotErr := DecodeRequest(&d, data, &got)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Request decode divergence on %q: %v vs %v", data, gotErr, wantErr)
			}
			if wantErr == nil {
				if got != want {
					t.Fatalf("Request value divergence on %q: %+v vs %+v", data, got, want)
				}
				wantB, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if gotB := EncodeRequest(nil, &got); !bytes.Equal(gotB, wantB) {
					t.Fatalf("Request encode divergence: %s vs %s", gotB, wantB)
				}
			}
		}

		{
			var want, got TrackRequest
			wantErr := strictRefDecode(data, &want)
			gotErr := DecodeTrackRequest(&d, data, &got)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("TrackRequest decode divergence on %q: %v vs %v", data, gotErr, wantErr)
			}
			if wantErr == nil {
				if got != want {
					t.Fatalf("TrackRequest value divergence on %q: %+v vs %+v", data, got, want)
				}
				wantB, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if gotB := EncodeTrackRequest(nil, &got); !bytes.Equal(gotB, wantB) {
					t.Fatalf("TrackRequest encode divergence: %s vs %s", gotB, wantB)
				}
			}
		}

		{
			var want, got Response
			wantErr := lenientRefDecode(data, &want)
			gotErr := DecodeResponse(&d, data, &got)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Response decode divergence on %q: %v vs %v", data, gotErr, wantErr)
			}
			if wantErr == nil {
				if !reflect.DeepEqual(got, want) || (got.Items == nil) != (want.Items == nil) {
					t.Fatalf("Response value divergence on %q: %+v vs %+v", data, got, want)
				}
				wantB, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if gotB := EncodeResponse(nil, &got); !bytes.Equal(gotB, wantB) {
					t.Fatalf("Response encode divergence: %s vs %s", gotB, wantB)
				}
			}
		}

		{
			var want, got TrackResponse
			wantErr := lenientRefDecode(data, &want)
			gotErr := DecodeTrackResponse(&d, data, &got)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("TrackResponse decode divergence on %q: %v vs %v", data, gotErr, wantErr)
			}
			if wantErr == nil {
				if got != want {
					t.Fatalf("TrackResponse value divergence on %q: %+v vs %+v", data, got, want)
				}
				wantB, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if gotB := EncodeTrackResponse(nil, &got); !bytes.Equal(gotB, wantB) {
					t.Fatalf("TrackResponse encode divergence: %s vs %s", gotB, wantB)
				}
			}
		}
	})
}
