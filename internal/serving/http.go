package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"serenade/internal/index"
	"serenade/internal/obs"
	"serenade/internal/sessions"
)

// IdempotencyKeyHeader names the header carrying a client-chosen key that
// identifies one logical recommendation request across retries. The server
// retains the response for each key (Config.IdempotencyTTL) and replays it
// for duplicates instead of appending the click to the session again.
const IdempotencyKeyHeader = "X-Idempotency-Key"

// IdempotencyReplayHeader is set to "true" on responses served from the
// idempotency table rather than freshly computed.
const IdempotencyReplayHeader = "X-Idempotency-Replay"

// Handler exposes the server as the REST application of §4.2:
//
//	POST /v1/recommend            body: {"session_id","item_id","consent"}
//	GET  /v1/recommend?session_id=&item_id=&consent=   (frontend beacon form)
//	GET  /v1/session/{id}         debug view of stored session state
//	GET  /healthz                 liveness probe for the orchestrator
//	GET  /metrics                 JSON counters
//	GET  /metrics.prom            Prometheus text exposition
//	GET  /debug/traces            recent request traces with stage timings
//	GET  /debug/slo               multi-window SLO burn rates (JSON)
//	GET  /debug/health            overload telemetry snapshot (JSON)
//	POST /track                   click/conversion feedback attribution
//	GET  /debug/quality           online quality windows + drift (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recommend", s.handleRecommendPost)
	mux.HandleFunc("GET /v1/recommend", s.handleRecommendGet)
	mux.HandleFunc("POST /track", s.handleTrack)
	mux.HandleFunc("GET /debug/quality", s.handleQuality)
	mux.HandleFunc("GET /v1/session/{id}", s.handleSession)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics.prom", s.handlePromMetrics)
	mux.Handle("GET /debug/traces", s.tracer.Handler())
	mux.Handle("GET /debug/slo", s.slo.Handler())
	mux.HandleFunc("GET /debug/health", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/trending", s.handleTrending)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	return mux
}

// handleTrending serves the companion "new and trending" slot.
//
//	GET /v1/trending?n=10            most popular right now
//	GET /v1/trending?n=10&new=24h    trending among recently first-seen items
func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Trending == nil {
		writeError(w, http.StatusNotFound, "trending is not enabled on this server")
		return
	}
	q := r.URL.Query()
	n := 21
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "invalid n")
			return
		}
		n = v
	}
	var items any
	if raw := q.Get("new"); raw != "" {
		maxAge, err := time.ParseDuration(raw)
		if err != nil || maxAge <= 0 {
			writeError(w, http.StatusBadRequest, "invalid new= duration")
			return
		}
		items = s.cfg.Trending.TopNew(n, maxAge)
	} else {
		items = s.cfg.Trending.Top(n)
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": items})
}

// handleExplain answers "why would item X be recommended to this session?"
// for debugging and merchandising reviews.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("session_id")
	if key == "" {
		writeError(w, http.StatusBadRequest, "session_id is required")
		return
	}
	item, err := strconv.ParseUint(q.Get("item_id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid item_id")
		return
	}
	ex, ok := s.Explain(key, sessions.ItemID(item))
	if !ok {
		writeError(w, http.StatusNotFound, "no score attribution for this session/item")
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// handleReload loads a new index file and swaps it in atomically — the
// endpoint the daily offline job calls after shipping a fresh build.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.Path == "" {
		writeError(w, http.StatusBadRequest, "body must be {\"path\": \"<index file>\"}")
		return
	}
	idx, err := index.LoadFile(req.Path)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "loading index: "+err.Error())
		return
	}
	if err := s.SwapIndex(idx); err != nil {
		idx.Close() // release the fresh mapping; nothing serves from it
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": idx.NumSessions(),
		"items":    idx.NumItems(),
	})
}

// handleTrack ingests click/conversion feedback and attributes it back to
// the exposure its recommendation id names. The whole path — body read,
// decode, encode — runs on pooled scratch buffers.
func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	if s.quality == nil {
		writeError(w, http.StatusNotFound, "quality telemetry is not enabled on this server")
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	body, err := readAllInto(sc.body, r.Body)
	sc.body = body
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	var req TrackRequest
	if err := DecodeTrackRequest(&sc.dec, body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if req.Event != "" && req.Event != "click" && req.Event != "conversion" {
		writeError(w, http.StatusBadRequest, "event must be \"click\" or \"conversion\"")
		return
	}
	resp, _ := s.Track(req)
	// Trailing newline matches the json.Encoder framing this endpoint has
	// always used.
	sc.enc = append(EncodeTrackResponse(sc.enc[:0], &resp), '\n')
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(http.StatusOK)
	w.Write(sc.enc)
}

// handleQuality serves the online quality snapshot.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if s.quality == nil {
		writeError(w, http.StatusNotFound, "quality telemetry is not enabled on this server")
		return
	}
	s.quality.Handler().ServeHTTP(w, r)
}

func (s *Server) handleRecommendPost(w http.ResponseWriter, r *http.Request) {
	sc := getScratch()
	defer putScratch(sc)
	body, err := readAllInto(sc.body, r.Body)
	sc.body = body
	if err != nil {
		s.countBadRequest()
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	var req Request
	if err := DecodeRequest(&sc.dec, body, &req); err != nil {
		s.countBadRequest()
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	s.serveRecommend(w, r, req, sc)
}

func (s *Server) handleRecommendGet(w http.ResponseWriter, r *http.Request) {
	var itemStr, sessionKey string
	consent := true
	var haveItem, haveSession, haveConsent bool
	// Hand-rolled query scan: url.Values would allocate a map plus a value
	// slice per key on every beacon request. Unescaping only happens when a
	// value actually contains an escape.
	for q := r.URL.RawQuery; q != ""; {
		var kv string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			kv, q = q, ""
		}
		if kv == "" || strings.Contains(kv, ";") {
			continue // net/url also drops semicolon-separated settings
		}
		k, v, _ := strings.Cut(kv, "=")
		k, ok := queryUnescape(k)
		if !ok {
			continue
		}
		v, ok = queryUnescape(v)
		if !ok {
			continue
		}
		switch k {
		case "item_id":
			if !haveItem {
				itemStr, haveItem = v, true
			}
		case "session_id":
			if !haveSession {
				sessionKey, haveSession = v, true
			}
		case "consent":
			if !haveConsent {
				consent, haveConsent = v != "false", true
			}
		}
	}
	item, err := strconv.ParseUint(itemStr, 10, 32)
	if err != nil {
		s.countBadRequest()
		writeError(w, http.StatusBadRequest, "invalid item_id "+strconv.Quote(itemStr))
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	s.serveRecommend(w, r, Request{
		SessionKey: sessionKey,
		Item:       sessions.ItemID(item),
		Consent:    consent,
	}, sc)
}

// queryUnescape decodes one query component, returning it unchanged (and
// allocation-free) when it contains no escapes.
func queryUnescape(s string) (string, bool) {
	if !strings.ContainsAny(s, "%+") {
		return s, true
	}
	u, err := url.QueryUnescape(s)
	return u, err == nil
}

func (s *Server) countBadRequest() {
	s.errors.Inc()
	s.errInput.Inc()
}

// serveRecommend is the traced HTTP entry point: it continues a propagated
// trace (Traceparent header) or starts a fresh one, echoes the request id in
// X-Request-Id, and attributes response serialisation to the encode stage.
// The caller owns sc and releases it after serveRecommend returns, which is
// after the response bytes have been written.
func (s *Server) serveRecommend(w http.ResponseWriter, r *http.Request, req Request, sc *reqScratch) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	sp := s.tracer.StartRemote("recommend", r.Header.Get(obs.TraceparentHeader))
	// The caller's own request id wins when supplied; either way the id on
	// the span is what the exposure record and the slow-query log carry, so
	// an attributed bad recommendation joins back to its trace.
	sp.RequestID = r.Header.Get(obs.RequestIDHeader)
	if sp.RequestID == "" {
		sp.RequestID = sp.TraceID
	}
	w.Header().Set(obs.RequestIDHeader, sp.RequestID)
	if req.SessionKey == "" {
		s.countBadRequest()
		sp.SetError("bad_request")
		writeError(w, http.StatusBadRequest, "session_id is required")
		s.tracer.Finish(sp)
		return
	}
	// Duplicate delivery of a request that already landed (client retry
	// after a lost response): replay the stored response; the click must
	// not be appended to the evolving session a second time.
	idem := r.Header.Get(IdempotencyKeyHeader)
	if body, ok := s.replayIdempotent(idem, sc.enc[:0]); ok {
		sc.enc = body
		s.idemReplays.Inc()
		h := w.Header()
		h[IdempotencyReplayHeader] = replayTrue
		h["Content-Type"] = contentTypeJSON
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		sp.Cut(obs.StageEncode)
		s.observeSpan(sp, nil)
		return
	}
	resp, err := s.recommend(req, sp, sc)
	if err != nil {
		s.observeSpan(sp, err)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sc.enc = EncodeResponse(sc.enc[:0], &resp)
	// Record before responding, so a retry racing the response sees it
	// (the dedupe store copies the body out of the scratch buffer).
	s.storeIdempotent(idem, sc.enc)
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(http.StatusOK)
	w.Write(sc.enc)
	sp.Cut(obs.StageEncode)
	s.observeSpan(sp, nil)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	state, ok := s.SessionState(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no session state for "+strconv.Quote(key))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session_id": key, "items": state})
}

// handlePromMetrics exposes the full registry in the Prometheus text
// exposition format: cumulative `le`-bucket latency histograms (request
// total and per stage) derived from the HDR buckets, every counter and
// gauge, and Go runtime stats — the scrape target from which the paper's
// Figure 3(b)/3(c) curves can be reproduced.
func (s *Server) handlePromMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// contentTypeJSON and replayTrue are shared immutable header values: direct
// map assignment of a package-level slice skips the per-request []string
// allocation http.Header.Set would make. Nothing may ever mutate them.
var (
	contentTypeJSON = []string{"application/json"}
	replayTrue      = []string{"true"}
)

// jsonEnc pairs a buffer with an encoder bound to it, so writeJSON reuses
// both instead of constructing a fresh json.Encoder per call.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// writeJSON serialises v through a pooled encoder. Buffering before the
// first write also means an encode failure surfaces as a clean 500 instead
// of a torn 200 body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		jsonEncPool.Put(e)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header()["Content-Type"] = contentTypeJSON
	w.WriteHeader(status)
	w.Write(e.buf.Bytes())
	jsonEncPool.Put(e)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
