package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"serenade/internal/obs/quality"
)

// benchResponseWriter is a reusable ResponseWriter so the benchmark measures
// the server's per-request allocations, not the recorder's.
type benchResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *benchResponseWriter) Header() http.Header { return w.h }
func (w *benchResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *benchResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// resettableBody replays a fixed payload as an http.Request body without a
// per-request reader allocation.
type resettableBody struct{ bytes.Reader }

func (b *resettableBody) Close() error { return nil }

// benchRequests prepares n distinct recommend POSTs (distinct sessions) with
// reusable bodies. Shared between the benchmarks and the alloc-budget test,
// so the budget test measures exactly what the benchmark reports.
func benchRequests(b testing.TB, n int) ([]*http.Request, []*resettableBody) {
	b.Helper()
	reqs := make([]*http.Request, n)
	bodies := make([]*resettableBody, n)
	for i := range reqs {
		payload, err := json.Marshal(Request{
			SessionKey: fmt.Sprintf("bench-%d", i),
			Item:       popularItem(),
			Consent:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		body := &resettableBody{}
		body.Reset(payload)
		req, err := http.NewRequest(http.MethodPost, "/v1/recommend", body)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		reqs[i] = req
		bodies[i] = body
	}
	return reqs, bodies
}

func benchServe(b *testing.B, h http.Handler, reqs []*http.Request, bodies []*resettableBody) {
	b.Helper()
	w := &benchResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(reqs)
		if bodies[j] != nil {
			bodies[j].Seek(0, io.SeekStart)
		}
		w.status = 0
		h.ServeHTTP(w, reqs[j])
		if w.status != http.StatusOK {
			b.Fatalf("status = %d", w.status)
		}
	}
}

// BenchmarkHTTPRecommendPOST is the full-stack recommend path: mux routing,
// body decode, session update, kernel, business rules, response encode.
func BenchmarkHTTPRecommendPOST(b *testing.B) {
	s := testServer(b, Config{})
	reqs, bodies := benchRequests(b, 64)
	benchServe(b, s.Handler(), reqs, bodies)
}

// BenchmarkHTTPRecommendPOSTCacheHit serves the duplicate-burst shape: every
// request after the first hits the single-flight result cache.
func BenchmarkHTTPRecommendPOSTCacheHit(b *testing.B) {
	s := testServer(b, Config{ResultCacheSize: 4096, ResultCacheTTL: 3600e9})
	reqs, bodies := benchRequests(b, 64)
	benchServe(b, s.Handler(), reqs, bodies)
}

// BenchmarkHTTPRecommendGET is the frontend-beacon form (query string).
func BenchmarkHTTPRecommendGET(b *testing.B) {
	s := testServer(b, Config{})
	reqs := make([]*http.Request, 64)
	bodies := make([]*resettableBody, 64)
	for i := range reqs {
		req, err := http.NewRequest(http.MethodGet,
			fmt.Sprintf("/v1/recommend?session_id=bench-get-%d&item_id=0", i), nil)
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = req
	}
	benchServe(b, s.Handler(), reqs, bodies)
}

// BenchmarkHTTPIdempotentReplay measures the stored-response replay path.
func BenchmarkHTTPIdempotentReplay(b *testing.B) {
	s := testServer(b, Config{})
	reqs, bodies := benchRequests(b, 1)
	reqs[0].Header.Set(IdempotencyKeyHeader, "bench-idem-key")
	benchServe(b, s.Handler(), reqs, bodies)
}

// BenchmarkHTTPTrack measures click-feedback ingestion end to end.
func BenchmarkHTTPTrack(b *testing.B) {
	s := testServer(b, Config{Quality: &quality.Options{Variant: "bench"}})
	h := s.Handler()

	// One exposure to attribute against; duplicate clicks still exercise the
	// full decode → attribute → encode path.
	resp, err := s.Recommend(Request{SessionKey: "bench-track", Item: popularItem(), Consent: true})
	if err != nil {
		b.Fatal(err)
	}
	if len(resp.Items) == 0 {
		b.Fatal("no items to click")
	}
	payload, err := json.Marshal(TrackRequest{
		RecommendationID: resp.RecommendationID,
		Item:             resp.Items[0].Item,
	})
	if err != nil {
		b.Fatal(err)
	}
	body := &resettableBody{}
	body.Reset(payload)
	req, err := http.NewRequest(http.MethodPost, "/track", body)
	if err != nil {
		b.Fatal(err)
	}
	benchServe(b, h, []*http.Request{req}, []*resettableBody{body})
}
