package serving

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postRecommend(t *testing.T, h http.Handler, sessionKey, idemKey string, item int) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"session_id":%q,"item_id":%d,"consent":true}`, sessionKey, item)
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set(IdempotencyKeyHeader, idemKey)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/recommend = %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// TestIdempotencyKeyDeduplicates: a second delivery of the same logical
// request (same key) must replay the stored response byte-for-byte, mark it
// as a replay, and leave the session with a single click.
func TestIdempotencyKeyDeduplicates(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	first := postRecommend(t, h, "dup", "key-1", 0)
	if first.Header().Get(IdempotencyReplayHeader) != "" {
		t.Error("fresh request marked as replay")
	}
	second := postRecommend(t, h, "dup", "key-1", 0)
	if second.Header().Get(IdempotencyReplayHeader) != "true" {
		t.Error("duplicate delivery not marked as replay")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("replayed body differs:\n%s\n%s", first.Body.String(), second.Body.String())
	}
	if state, _ := s.SessionState("dup"); len(state) != 1 {
		t.Errorf("session has %d clicks after a duplicate delivery, want 1", len(state))
	}
}

// TestIdempotencyDistinctKeysAppend: distinct keys are distinct logical
// clicks and must both land in the session.
func TestIdempotencyDistinctKeysAppend(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	postRecommend(t, h, "u", "key-a", 0)
	rec := postRecommend(t, h, "u", "key-b", 1)
	if rec.Header().Get(IdempotencyReplayHeader) != "" {
		t.Error("distinct key answered as replay")
	}
	if state, _ := s.SessionState("u"); len(state) != 2 {
		t.Errorf("session has %d clicks, want 2", len(state))
	}
}

// TestIdempotencyWithoutKey: requests without the header are never
// deduplicated — each delivery appends.
func TestIdempotencyWithoutKey(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	postRecommend(t, h, "nokey", "", 0)
	postRecommend(t, h, "nokey", "", 0)
	if state, _ := s.SessionState("nokey"); len(state) != 2 {
		t.Errorf("session has %d clicks, want 2 (no key, no dedupe)", len(state))
	}
}

// TestIdempotencyDisabled: a negative TTL turns the table off entirely;
// duplicate deliveries reprocess (the pre-dedupe behaviour).
func TestIdempotencyDisabled(t *testing.T) {
	s := testServer(t, Config{IdempotencyTTL: -1})
	h := s.Handler()

	postRecommend(t, h, "off", "key-1", 0)
	rec := postRecommend(t, h, "off", "key-1", 0)
	if rec.Header().Get(IdempotencyReplayHeader) != "" {
		t.Error("replay served with deduplication disabled")
	}
	if state, _ := s.SessionState("off"); len(state) != 2 {
		t.Errorf("session has %d clicks, want 2 with dedupe disabled", len(state))
	}
}

// TestIdempotencyEntryExpires: after the TTL the key is forgotten and the
// same delivery reprocesses — the table is a bounded retry window, not a
// permanent log.
func TestIdempotencyEntryExpires(t *testing.T) {
	clk := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := testServer(t, Config{Now: clk.Now, IdempotencyTTL: time.Minute})
	h := s.Handler()

	postRecommend(t, h, "exp", "key-1", 0)
	clk.Advance(2 * time.Minute)
	rec := postRecommend(t, h, "exp", "key-1", 1)
	if rec.Header().Get(IdempotencyReplayHeader) != "" {
		t.Error("expired idempotency key still replayed")
	}
}
