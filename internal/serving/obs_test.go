package serving

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"serenade/internal/obs"
)

// TestRequestTrace drives one request through the HTTP handler and checks the
// acceptance criterion end to end: /debug/traces holds exactly one trace
// whose per-stage durations sum to within 10% of the recorded total, and the
// response carries the trace id in X-Request-Id.
func TestRequestTrace(t *testing.T) {
	s := testServer(t, Config{TraceSampleEvery: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/recommend?session_id=u1&item_id=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	reqID := resp.Header.Get(obs.RequestIDHeader)
	if len(reqID) != 32 {
		t.Fatalf("X-Request-Id = %q, want 32-hex trace id", reqID)
	}

	tr, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var payload struct {
		Finished uint64 `json:"finished"`
		Sampled  uint64 `json:"sampled"`
		Traces   []struct {
			TraceID  string           `json:"trace_id"`
			Op       string           `json:"op"`
			TotalNS  int64            `json:"total_ns"`
			StagesNS map[string]int64 `json:"stages_ns"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(payload.Traces))
	}
	got := payload.Traces[0]
	if got.TraceID != reqID {
		t.Errorf("trace id %q != X-Request-Id %q", got.TraceID, reqID)
	}
	if got.Op != "recommend" {
		t.Errorf("op = %q", got.Op)
	}
	var stageSum int64
	for _, ns := range got.StagesNS {
		stageSum += ns
	}
	if stageSum <= 0 || stageSum > got.TotalNS {
		t.Fatalf("stage sum %d out of range (total %d)", stageSum, got.TotalNS)
	}
	if miss := float64(got.TotalNS-stageSum) / float64(got.TotalNS); miss > 0.10 {
		t.Errorf("stages cover only %.0f%% of total (%d of %d ns)",
			100*(1-miss), stageSum, got.TotalNS)
	}
}

// TestTracePropagation checks that a caller-supplied Traceparent header is
// continued rather than replaced: the server's span must adopt the remote
// trace id and record the remote span as its parent.
func TestTracePropagation(t *testing.T) {
	s := testServer(t, Config{TraceSampleEvery: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, _ := http.NewRequest("GET", ts.URL+"/v1/recommend?session_id=u1&item_id=0", nil)
	req.Header.Set(obs.TraceparentHeader, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "0123456789abcdef0123456789abcdef" {
		t.Errorf("X-Request-Id = %q, want propagated trace id", got)
	}

	traces := s.Tracer().Recent()
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	if traces[0].TraceID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace id = %q", traces[0].TraceID)
	}
	if traces[0].ParentID != "00f067aa0ba902b7" {
		t.Errorf("parent id = %q", traces[0].ParentID)
	}
}

// TestStatsStageBreakdown checks that Stats reports a per-stage latency
// breakdown after traffic.
func TestStatsStageBreakdown(t *testing.T) {
	s := testServer(t, Config{})
	for i := 0; i < 5; i++ {
		if _, err := s.Recommend(Request{SessionKey: "u", Item: 0, Consent: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Requests != 5 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if len(st.Stages) == 0 {
		t.Fatal("no stage breakdown in Stats")
	}
	byName := map[string]StageStats{}
	for _, sg := range st.Stages {
		byName[sg.Stage] = sg
	}
	for _, want := range []string{"store", "candidates", "score", "filter"} {
		sg, ok := byName[want]
		if !ok {
			t.Errorf("stage %q missing from breakdown", want)
			continue
		}
		if sg.Count != 5 {
			t.Errorf("stage %q count = %d, want 5", want, sg.Count)
		}
	}
}

// lockedBuffer lets the slog handler and the test goroutine share a buffer.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestSlowQueryLogging sets a 1ns threshold so every request qualifies and
// checks the structured record reaches the logger.
func TestSlowQueryLogging(t *testing.T) {
	buf := &lockedBuffer{}
	logger := slog.New(slog.NewTextHandler(buf, nil))
	s := testServer(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		Logger:             logger,
	})
	if _, err := s.Recommend(Request{SessionKey: "u", Item: 0, Consent: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query record logged:\n%s", out)
	}
	if !strings.Contains(out, "trace_id=") || !strings.Contains(out, "stage_score=") {
		t.Errorf("slow-query record missing fields:\n%s", out)
	}
	s.FlushSlowLog()
	if !strings.Contains(buf.String(), "slow-query log summary") {
		t.Errorf("no flush summary:\n%s", buf.String())
	}
}
