package serving

import (
	"bufio"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"serenade/internal/obs/quality"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseExposition lints the raw scrape while parsing: metric and label
// naming, TYPE lines present and valid, samples only under a declared family.
func parseExposition(t *testing.T, raw string) []promSample {
	t.Helper()
	types := map[string]string{} // family -> counter|gauge|histogram
	var samples []promSample
	seen := map[string]bool{} // duplicate (name + labelset) detection
	sc := bufio.NewScanner(strings.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) || parts[1] == "" {
				t.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Errorf("line %d: malformed TYPE: %q", lineNo, line)
				continue
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: invalid TYPE %q", lineNo, parts[1])
			}
			if _, dup := types[parts[0]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparsable sample: %q", lineNo, line)
			continue
		}
		name := m[1]
		labels := map[string]string{}
		if m[2] != "" {
			for _, pair := range splitLabelPairs(m[2][1 : len(m[2])-1]) {
				lm := labelPairRe.FindStringSubmatch(pair)
				if lm == nil || !labelNameRe.MatchString(lm[1]) {
					t.Errorf("line %d: malformed label pair %q", lineNo, pair)
					continue
				}
				if _, dup := labels[lm[1]]; dup {
					t.Errorf("line %d: duplicate label %q", lineNo, lm[1])
				}
				labels[lm[1]] = lm[2]
			}
		}
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			if m[3] == "+Inf" {
				val = math.Inf(1)
			} else {
				t.Errorf("line %d: bad value %q", lineNo, m[3])
				continue
			}
		}
		// Every sample must belong to a declared family; histogram series
		// use the family name plus _bucket/_sum/_count.
		family := name
		if _, ok := types[family]; !ok {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if typ, ok := types[base]; ok && typ == "histogram" {
						family = base
					}
					break
				}
			}
		}
		typ, declared := types[family]
		if !declared {
			t.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if declared && typ == "histogram" && family == name {
			t.Errorf("line %d: bare sample %s for histogram family", lineNo, name)
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			t.Errorf("line %d: duplicate series %q", lineNo, key)
		}
		seen[key] = true
		samples = append(samples, promSample{name: name, labels: labels, value: val, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\':
			escaped = true
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestPromExpositionConformance is the promlint-style satellite: scrape the
// full /metrics.prom of a server with every subsystem enabled (batcher,
// cache, slow log, SLO engine) and lint naming, type lines, histogram bucket
// monotonicity, and the presence of the new serenade_slo_* and health
// families.
func TestPromExpositionConformance(t *testing.T) {
	s := testServer(t, Config{
		BatchWindow:         100 * time.Microsecond,
		ResultCacheSize:     64,
		SlowQueryThreshold:  time.Nanosecond, // everything is "slow": exercises the slowlog counters
		SLOLatencyThreshold: time.Millisecond,
		SLOErrorBudget:      0.001,
		Logger:              slog.New(slog.NewTextHandler(io.Discard, nil)),
		Quality:             &quality.Options{Variant: "a"},
	})
	for i := 0; i < 10; i++ {
		resp, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true})
		if err != nil {
			t.Fatal(err)
		}
		// Attribute a click so the quality counters carry real values.
		if i == 0 && len(resp.Items) > 0 {
			s.Track(TrackRequest{RecommendationID: resp.RecommendationID, Item: resp.Items[0].Item})
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	raw := sb.String()
	samples := parseExposition(t, raw)

	// The new families must be present.
	want := map[string]bool{
		"serenade_slo_latency_threshold_seconds": false,
		"serenade_slo_burn_rate":                 false,
		"serenade_slo_fast_burn":                 false,
		"serenade_slo_budget_remaining":          false,
		"serenade_inflight_requests":             false,
		"serenade_slowlog_entries_total":         false,
		"serenade_slowlog_suppressed_total":      false,
		"serenade_result_cache_hit_ratio":        false,
		"serenade_batcher_wait_max_seconds":      false,
		"serenade_quality_exposures_total":       false,
		"serenade_quality_clicks_total":          false,
		"serenade_quality_conversions_total":     false,
		"serenade_quality_nonclicks_total":       false,
		"serenade_quality_ctr":                   false,
		"serenade_quality_mrr":                   false,
		"serenade_quality_cond_mrr":              false,
		"serenade_quality_coverage":              false,
		"serenade_quality_rank_clicks_total":     false,
		"serenade_quality_drift":                 false,
		"serenade_quality_drift_rank_tv":         false,
		"serenade_quality_drift_mrr_ratio":       false,
		"serenade_quality_track_unmatched_total": false,
	}
	for _, sm := range samples {
		if _, ok := want[sm.name]; ok {
			want[sm.name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("exposition missing family %s", name)
		}
	}

	// The batch_wait stage histogram must expose observations.
	var batchWaitCount float64
	for _, sm := range samples {
		if sm.name == "serenade_stage_latency_seconds_count" && sm.labels["stage"] == "batch_wait" {
			batchWaitCount = sm.value
		}
	}
	if batchWaitCount == 0 {
		t.Error("batch_wait stage histogram has no observations")
	}

	checkHistogramBuckets(t, samples)
}

// checkHistogramBuckets asserts, per histogram series, that le bounds are
// monotonically increasing, cumulative counts are non-decreasing, the +Inf
// bucket exists, and it equals the series count.
func checkHistogramBuckets(t *testing.T, samples []promSample) {
	t.Helper()
	type bucket struct {
		le    float64
		count float64
		line  int
	}
	buckets := map[string][]bucket{} // series key (name + labels sans le)
	counts := map[string]float64{}
	for _, sm := range samples {
		if base, ok := strings.CutSuffix(sm.name, "_bucket"); ok {
			le := sm.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("line %d: bad le %q", sm.line, le)
					continue
				}
			}
			buckets[base+seriesKey(sm.labels, "le")] = append(
				buckets[base+seriesKey(sm.labels, "le")],
				bucket{le: bound, count: sm.value, line: sm.line})
		}
		if base, ok := strings.CutSuffix(sm.name, "_count"); ok {
			counts[base+seriesKey(sm.labels)] = sm.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				t.Errorf("%s: le not increasing at line %d (%g after %g)", key, bs[i].line, bs[i].le, bs[i-1].le)
			}
			if bs[i].count < bs[i-1].count {
				t.Errorf("%s: cumulative count decreases at line %d (%g after %g)", key, bs[i].line, bs[i].count, bs[i-1].count)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: missing +Inf bucket", key)
			continue
		}
		if total, ok := counts[key]; !ok || total != last.count {
			t.Errorf("%s: +Inf bucket %g != count %g", key, last.count, total)
		}
	}
}

// seriesKey renders a label set (minus excluded names) deterministically.
func seriesKey(labels map[string]string, exclude ...string) string {
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !skip[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	return sb.String()
}
