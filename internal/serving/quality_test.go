package serving

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"serenade/internal/core"
	"serenade/internal/obs"
	"serenade/internal/obs/quality"
	"serenade/internal/synth"
)

// qualityTestServer builds a server with the quality loop enabled and a
// deterministic clock.
func qualityTestServer(t testing.TB, clock *testClock, opts quality.Options) *Server {
	t.Helper()
	return testServer(t, Config{
		Now:     clock.Now,
		Quality: &opts,
	})
}

func TestQualityEndToEnd(t *testing.T) {
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := qualityTestServer(t, clock, quality.Options{
		Variant: "a",
		Window:  30 * time.Second,
		Horizon: 2 * time.Minute,
	})

	resp, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RecommendationID == 0 {
		t.Fatal("response has no recommendation id")
	}
	if len(resp.Items) == 0 {
		t.Fatal("no recommendations")
	}

	// Click the top recommendation.
	tr, ok := s.Track(TrackRequest{RecommendationID: resp.RecommendationID, Item: resp.Items[0].Item, Event: "click"})
	if !ok || tr.Outcome != quality.OutcomeAttributed || tr.Rank != 1 {
		t.Fatalf("track = %+v, %v", tr, ok)
	}
	if tr.Variant != "a" {
		t.Fatalf("variant = %q, want a", tr.Variant)
	}

	// A no-consent request lands on the depersonalised line.
	dresp, err := s.Recommend(Request{SessionKey: "u2", Item: popularItem(), Consent: false})
	if err != nil {
		t.Fatal(err)
	}
	if dresp.RecommendationID == 0 {
		t.Fatal("depersonalised response has no recommendation id")
	}

	snap := s.Quality().Snapshot()
	byPipeline := map[string]quality.LineSnapshot{}
	for _, ls := range snap.Lines {
		byPipeline[ls.Pipeline] = ls
	}
	if byPipeline["knn"].Cumulative.Clicks != 1 {
		t.Fatalf("knn line = %+v", byPipeline["knn"].Cumulative)
	}
	if byPipeline["depersonalised"].Cumulative.Exposures != 1 {
		t.Fatalf("depersonalised line = %+v", byPipeline["depersonalised"].Cumulative)
	}

	// The swept non-click resolves after the window.
	clock.Advance(31 * time.Second)
	s.SweepSessions()
	snap = s.Quality().Snapshot()
	for _, ls := range snap.Lines {
		byPipeline[ls.Pipeline] = ls
	}
	if nc := byPipeline["depersonalised"].Cumulative.NonClicks; nc != 1 {
		t.Fatalf("depersonalised non-clicks = %d, want 1", nc)
	}
}

func TestQualityHTTPEndpoints(t *testing.T) {
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := qualityTestServer(t, clock, quality.Options{Variant: "a"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Recommend over HTTP to get a recommendation id.
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json",
		strings.NewReader(`{"session_id":"u1","item_id":0,"consent":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var rec Response
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.RecommendationID == 0 || len(rec.Items) == 0 {
		t.Fatalf("recommend response = %+v", rec)
	}

	// Track the click over HTTP.
	body, _ := json.Marshal(TrackRequest{RecommendationID: rec.RecommendationID, Item: rec.Items[0].Item, Event: "click"})
	tresp, err := http.Post(ts.URL+"/track", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var tout TrackResponse
	if err := json.NewDecoder(tresp.Body).Decode(&tout); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tout.Outcome != quality.OutcomeAttributed || tout.Rank != 1 {
		t.Fatalf("track response = %+v", tout)
	}

	// Invalid event names are rejected.
	bad, err := http.Post(ts.URL+"/track", "application/json",
		strings.NewReader(`{"recommendation_id":1,"item_id":0,"event":"purchase"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad event status = %d, want 400", bad.StatusCode)
	}

	// The quality document is served at /debug/quality.
	qresp, err := http.Get(ts.URL + "/debug/quality?exposures=1")
	if err != nil {
		t.Fatal(err)
	}
	var snap quality.Snapshot
	if err := json.NewDecoder(qresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if snap.Variant != "a" || len(snap.Lines) == 0 {
		t.Fatalf("quality snapshot = %+v", snap)
	}
}

func TestQualityDisabled(t *testing.T) {
	s := testServer(t, Config{})
	resp, err := s.Recommend(Request{SessionKey: "u1", Item: popularItem(), Consent: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RecommendationID != 0 {
		t.Fatalf("recommendation id = %d on a quality-disabled server, want 0", resp.RecommendationID)
	}
	if _, ok := s.Track(TrackRequest{RecommendationID: 1, Item: 0}); ok {
		t.Fatal("Track reported ok on a quality-disabled server")
	}
	if s.Quality() != nil {
		t.Fatal("Quality() non-nil on a disabled server")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/track"},
		{http.MethodGet, "/debug/quality"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestQualityDegradationTripsDrift is the induced-degradation acceptance
// test: a healthy variant serves and earns clicks; then its index is swapped
// for a mismatched build and the clicks stop (users do not click bad
// recommendations). The CTR-floor check must raise quality_drift into
// /debug/health.
func TestQualityDegradationTripsDrift(t *testing.T) {
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := qualityTestServer(t, clock, quality.Options{
		Variant: "b",
		Window:  30 * time.Second,
		Horizon: 2 * time.Minute,
		Drift:   quality.DriftThresholds{CTRFloor: 0.2, MinExposures: 20},
	})

	click := func(n int, prefix string) {
		t.Helper()
		for i := 0; i < n; i++ {
			resp, err := s.Recommend(Request{SessionKey: prefix + itoaTest(i), Item: popularItem(), Consent: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Items) > 0 {
				s.Track(TrackRequest{RecommendationID: resp.RecommendationID, Item: resp.Items[0].Item})
			}
		}
	}

	// Healthy phase: everyone clicks.
	click(30, "healthy-")
	if h := s.Health(); h.QualityDrift {
		t.Fatalf("healthy phase drifted: %+v", h)
	}

	// Age the healthy window out entirely.
	clock.Advance(3 * time.Minute)

	// Induced degradation: swap in an index built from a disjoint catalogue
	// era; the served lists stop earning clicks.
	ds, err := synth.Generate(synth.Small(123))
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.BuildIndex(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SwapIndex(other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Recommend(Request{SessionKey: "degraded-" + itoaTest(i), Item: popularItem(), Consent: true}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(31 * time.Second) // past the attribution window: non-clicks resolve

	h := s.Health()
	if !h.QualityDrift {
		t.Fatalf("degraded phase did not trip drift: %+v", h)
	}
	if h.QualityDriftReason != "ctr_floor" {
		t.Fatalf("drift reason = %q, want ctr_floor", h.QualityDriftReason)
	}
	if h.QualityCTR != 0 {
		t.Fatalf("degraded CTR = %v, want 0", h.QualityCTR)
	}
}

// TestRequestIDPropagation is the request-id satellite: a caller-supplied
// X-Request-Id must be echoed on the response, stamped into slow-query log
// lines, and visible in the retained trace views.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := testServer(t, Config{
		Now:                clock.Now,
		SlowQueryThreshold: time.Nanosecond, // every request logs
		Logger:             slog.New(slog.NewTextHandler(&logBuf, nil)),
		Quality:            &quality.Options{Variant: "a"},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/recommend",
		strings.NewReader(`{"session_id":"u1","item_id":0,"consent":true}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "req-abc-123" {
		t.Fatalf("echoed request id = %q, want req-abc-123", got)
	}

	// The slow-query log line carries the id.
	if !strings.Contains(logBuf.String(), "request_id=req-abc-123") {
		t.Fatalf("slow log missing request_id:\n%s", logBuf.String())
	}

	// The trace ring carries it too.
	traces, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(traces.Body)
	traces.Body.Close()
	if !strings.Contains(body.String(), `"request_id": "req-abc-123"`) &&
		!strings.Contains(body.String(), `"request_id":"req-abc-123"`) {
		t.Fatalf("trace view missing request_id:\n%s", body.String())
	}

	// Without a caller-supplied id the trace id stands in — never empty.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/recommend",
		strings.NewReader(`{"session_id":"u2","item_id":0,"consent":true}`))
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("request id header empty without caller-supplied id")
	}
}

// itoaTest is a tiny strconv.Itoa stand-in for unique session keys.
func itoaTest(n int) string {
	return string(rune('a'+n%26)) + string(rune('a'+(n/26)%26))
}

// TestQualitySlowLogCarriesDriftState: once drift trips, slow-query log lines
// gain the quality_drift attribute — the burn-state context satellite.
func TestQualitySlowLogCarriesDriftState(t *testing.T) {
	var logBuf bytes.Buffer
	clock := &testClock{now: time.Unix(1_700_000_000, 0)}
	s := testServer(t, Config{
		Now:                clock.Now,
		SlowQueryThreshold: time.Nanosecond,
		SlowLogPerSecond:   1000, // the warm-up burst must not eat the budget
		Logger:             slog.New(slog.NewTextHandler(&logBuf, nil)),
		Quality: &quality.Options{
			Variant: "a",
			Window:  10 * time.Second,
			Drift:   quality.DriftThresholds{CTRFloor: 0.5, MinExposures: 5},
		},
	})
	// Unclicked exposures past the window trip the CTR floor.
	for i := 0; i < 10; i++ {
		if _, err := s.Recommend(Request{SessionKey: "u" + itoaTest(i), Item: popularItem(), Consent: true}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(11 * time.Second)
	logBuf.Reset()
	if _, err := s.Recommend(Request{SessionKey: "late", Item: popularItem(), Consent: true}); err != nil {
		t.Fatal(err)
	}
	out := logBuf.String()
	if !strings.Contains(out, "quality_drift=true") || !strings.Contains(out, "quality_drift_reason=ctr_floor") {
		t.Fatalf("slow log missing drift context:\n%s", out)
	}
}
