//go:build race

package serving

// raceEnabled reports whether the race detector is on; alloc-count
// assertions are skipped there because instrumentation inflates counts.
const raceEnabled = true
