package serving

import (
	"io"
	"sync"

	"serenade/internal/core"
	"serenade/internal/fastjson"
	"serenade/internal/sessions"
)

// reqScratch is the per-request scratch space that makes the HTTP edge
// allocation-free in steady state: one pooled struct carries every buffer a
// request needs — body read, JSON decode state, response items, session
// state codec, kvstore reads, cache key, response encode — through the
// handler, the recommendation pipeline and the response write.
//
// Lifecycle invariant: a scratch is acquired at the top of a handler and
// released (deferred) only after the response bytes have been handed to the
// ResponseWriter, so nothing downstream may retain a reference past the
// handler's return. Everything that must outlive the request — the session
// key, kvstore values, cache entries, batch results published to other
// requests — is copied out by its owner (kvstore.Put, resultCache.fill,
// quality.RecordExposure all copy).
type reqScratch struct {
	// dec is the reusable JSON scanner; its internal unescape buffer
	// amortises across requests.
	dec fastjson.Dec
	// body holds the raw request body.
	body []byte
	// enc holds the encoded response (and the replayed idempotent body).
	enc []byte
	// items backs the response item list end to end: kernel copy, business
	// rules (in place), popularity padding, Response.Items.
	items []core.ScoredItem
	// session backs the evolving session decoded from the store.
	session []sessions.ItemID
	// sessEnc holds the re-encoded session written back to the store.
	sessEnc []byte
	// kvBuf receives kvstore reads (session state).
	kvBuf []byte
	// key builds the result-cache key.
	key []byte
}

var scratchPool = sync.Pool{New: func() any {
	return &reqScratch{
		body:    make([]byte, 0, 512),
		enc:     make([]byte, 0, 2048),
		items:   make([]core.ScoredItem, 0, 64),
		session: make([]sessions.ItemID, 0, 64),
		sessEnc: make([]byte, 0, 256),
		kvBuf:   make([]byte, 0, 256),
		key:     make([]byte, 0, 128),
	}
}}

func getScratch() *reqScratch   { return scratchPool.Get().(*reqScratch) }
func putScratch(sc *reqScratch) { scratchPool.Put(sc) }

// readAllInto reads r to EOF into dst's backing array (growing it only when
// the body exceeds the retained capacity) and returns the filled slice.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	dst = dst[:0]
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
